"""Experiment FIG7: regenerate Fig. 7 -- RISC-V acceleration SotA.

Workload: the RISC-V subset of the survey; the bench prints the power
-band histogram and asserts the figure's clustering claim: designs
cluster "especially in the 100mW-1W power range", the >1 W HPC-inference
region is sparse (the gap the ICSC Flagship 2 SCF targets), and the
population has a strong European presence.
"""

from repro.core.tables import Table
from repro.survey import power_band_histogram, riscv_subset
from repro.survey.analysis import densest_band
from repro.survey.dataset import europe_subset

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()


def regenerate_fig7():
    subset = riscv_subset()
    histogram = power_band_histogram(subset)
    return subset, histogram, densest_band(subset)


def test_fig7_riscv_clustering(benchmark):
    subset, histogram, cluster = benchmark(regenerate_fig7)

    table = Table(
        ["power band (W)", "designs"],
        title="Fig. 7 -- RISC-V DL accelerators per power band",
    )
    for (lo, hi), count in sorted(histogram.items()):
        table.add_row([f"[{lo:g}, {hi:g})", count])
    print()
    print(table)
    for record in sorted(subset, key=lambda r: r.power_w):
        print(" ", record.describe())

    # The 100 mW - 1 W band is the densest (Fig. 7's cluster), and the
    # sub-watt region as a whole dwarfs the >1 W HPC-inference region --
    # the gap the ICSC Flagship 2 SCF targets.
    assert cluster == (0.1, 1.0)
    below_1w = sum(
        count for (lo, _), count in histogram.items() if lo < 1.0
    )
    above_1w = histogram[(1.0, 10.0)] + histogram[(10.0, 100.0)]
    assert below_1w >= 2 * above_1w
    # Strong EU presence among RISC-V designs (the sovereignty argument).
    eu_riscv = [r for r in europe_subset() if r in subset]
    assert len(eu_riscv) / len(subset) > 0.5
