"""Experiment FIG1: regenerate Fig. 1 -- TOPS/W trends of SotA AI
accelerators.

Workload: the curated survey dataset grouped by platform class; the
bench prints the power-vs-throughput scatter series with iso-TOPS/W
diagonals and the per-class efficiency ranking, and asserts the figure's
narrative: CPUs least efficient, GPUs well above CPUs, IMC-augmented
NPUs at the top, with a positive year-over-year efficiency trend.
"""

import numpy as np

from repro.core.tables import Table
from repro.survey import (
    PlatformClass,
    class_statistics,
    efficiency_trend,
    iso_efficiency_line,
    load_dataset,
    scatter_series,
)

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()


def regenerate_fig1():
    """Build the full Fig. 1 data package."""
    records = load_dataset()
    series = scatter_series(records)
    stats = class_statistics(records)
    trend = efficiency_trend(records)
    iso_lines = {
        eff: iso_efficiency_line(eff, (0.001, 1000.0))
        for eff in (0.1, 1.0, 10.0, 100.0)
    }
    return records, series, stats, trend, iso_lines


def test_fig1_survey(benchmark):
    records, series, stats, trend, iso_lines = benchmark(regenerate_fig1)

    table = Table(
        ["platform class", "n", "min TOPS/W", "median TOPS/W",
         "max TOPS/W"],
        title="Fig. 1 -- efficiency by platform class (ascending)",
    )
    for s in stats:
        table.add_row(
            [s.platform.value, s.count, s.min_tops_per_watt,
             s.median_tops_per_watt, s.max_tops_per_watt]
        )
    print()
    print(table)
    print(
        f"efficiency trend: x{trend.growth_per_year:.2f}/year "
        f"(doubling every {trend.doubling_years:.1f} years)"
    )
    print(f"scatter series: {sorted(series)}")
    print(f"iso-efficiency diagonals at {sorted(iso_lines)} TOPS/W")

    # Shape assertions (the Fig. 1 narrative).
    order = [s.platform for s in stats]
    assert order[0] is PlatformClass.CPU
    medians = {s.platform: s.median_tops_per_watt for s in stats}
    assert medians[PlatformClass.GPU] > 3 * medians[PlatformClass.CPU]
    imc_best = max(
        medians[PlatformClass.NPU_SRAM_IMC],
        medians[PlatformClass.NPU_RRAM_IMC],
    )
    assert imc_best > medians[PlatformClass.GPU]
    assert trend.growth_per_year > 1.0
    # The dataset spans the figure's six orders of magnitude in power.
    powers = np.array([r.power_w for r in records])
    assert powers.max() / powers.min() > 1e4
