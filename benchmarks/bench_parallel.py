"""Experiment PARALLEL: speedup-vs-workers and cache-hit-rate curves.

The throughput claim behind :mod:`repro.exec`: a campaign of
independent simulator cells scales with workers and a warm
content-addressed cache turns a rerun into lookups.  The campaign here
is an IMC crossbar grid (program-and-verify dominated -- genuinely
CPU-bound cells), the same shape as the paper's Sec. IV variability
sweeps.

Run standalone to emit the JSON artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_parallel.py --quick \
        --out bench_parallel.json

Acceptance targets (asserted with ``--check``, reported always):

- >= 2x wall-clock speedup at 4 workers on >= 64 cells (needs >= 4
  physical cores; the JSON records the measured value either way);
- warm-cache rerun >= 95% hit rate with results identical to the cold
  run (asserted unconditionally -- it does not depend on hardware).
"""

import argparse
import json
import os
import sys
import time

from repro.exec import ParallelEvaluator, ResultCache
from repro.imc.sweep import crossbar_sweep, sweep_grid

FULL_CELLS = 64
FULL_ROWS = 128
QUICK_CELLS = 12
QUICK_ROWS = 32
WORKER_COUNTS = (1, 2, 4)


def run_parallel_study(
    num_cells: int = FULL_CELLS,
    rows: int = FULL_ROWS,
    worker_counts=WORKER_COUNTS,
    cache_path=None,
):
    """Measure the speedup and cache curves on one campaign grid."""
    specs = sweep_grid(num_cells, rows=rows, cols=rows, num_inputs=16)

    start = time.perf_counter()
    baseline = crossbar_sweep(specs)
    serial_s = time.perf_counter() - start

    workers_curve = []
    for workers in worker_counts:
        engine = ParallelEvaluator(max_workers=workers)
        start = time.perf_counter()
        result = crossbar_sweep(specs, parallel=engine)
        wall = time.perf_counter() - start
        workers_curve.append(
            {
                "workers": workers,
                "wall_s": wall,
                "speedup": serial_s / wall if wall else float("inf"),
                "identical_to_serial": result == baseline,
            }
        )

    cache = ResultCache(path=cache_path)
    cold_engine = ParallelEvaluator(max_workers=worker_counts[-1],
                                    cache=cache)
    start = time.perf_counter()
    cold = crossbar_sweep(specs, parallel=cold_engine)
    cold_s = time.perf_counter() - start
    cold_stats = cache.stats()

    warm_engine = ParallelEvaluator(max_workers=worker_counts[-1],
                                    cache=cache)
    start = time.perf_counter()
    warm = crossbar_sweep(specs, parallel=warm_engine)
    warm_s = time.perf_counter() - start
    warm_stats = cache.stats()
    warm_hits = warm_stats["hits"] - cold_stats["hits"]
    warm_misses = warm_stats["misses"] - cold_stats["misses"]
    warm_lookups = warm_hits + warm_misses
    cache.close()

    return {
        "campaign": {
            "cells": num_cells,
            "rows": rows,
            "cols": rows,
            "inputs_per_cell": 16,
        },
        "hardware": {"cpu_count": os.cpu_count()},
        "serial_wall_s": serial_s,
        "workers": workers_curve,
        "cache": {
            "cold_wall_s": cold_s,
            "warm_wall_s": warm_s,
            "warm_hit_rate": warm_hits / warm_lookups if warm_lookups
            else 0.0,
            "warm_identical": warm == cold and cold == baseline,
            "final_stats": warm_stats,
        },
    }


def render(study) -> str:
    from repro.core.tables import Table

    table = Table(
        ["workers", "wall (s)", "speedup", "identical"],
        title=(
            f"bench_parallel -- {study['campaign']['cells']} cells of "
            f"{study['campaign']['rows']}x{study['campaign']['cols']} "
            "crossbar program+MVM"
        ),
    )
    table.add_row([0, round(study["serial_wall_s"], 3), 1.0, True])
    for row in study["workers"]:
        table.add_row(
            [row["workers"], round(row["wall_s"], 3),
             round(row["speedup"], 2), row["identical_to_serial"]]
        )
    cache = study["cache"]
    lines = [
        table.render(),
        (
            f"cache: cold {cache['cold_wall_s']:.3f}s -> warm "
            f"{cache['warm_wall_s']:.3f}s, hit rate "
            f"{cache['warm_hit_rate']:.1%}, identical="
            f"{cache['warm_identical']}"
        ),
    ]
    return "\n".join(lines)


def check(study, require_speedup: bool) -> None:
    """Assert the acceptance contract (cache always, speedup on >=4 cores)."""
    assert all(row["identical_to_serial"] for row in study["workers"]), (
        "parallel results diverged from the serial baseline"
    )
    assert study["cache"]["warm_identical"], (
        "warm-cache rerun diverged from the cold run"
    )
    assert study["cache"]["warm_hit_rate"] >= 0.95, (
        f"warm hit rate {study['cache']['warm_hit_rate']:.1%} < 95%"
    )
    if require_speedup:
        at4 = [r for r in study["workers"] if r["workers"] == 4]
        assert at4 and at4[0]["speedup"] >= 2.0, (
            f"speedup at 4 workers {at4[0]['speedup'] if at4 else 0:.2f}x "
            "< 2x"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced size for CI smoke runs")
    parser.add_argument("--cells", type=int, default=None)
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="write the study JSON here")
    parser.add_argument("--cache-dir", default=None,
                        help="persist the result cache in this directory")
    parser.add_argument("--check", action="store_true",
                        help="assert the >=2x @ 4 workers speedup target "
                        "(needs >= 4 cores) in addition to the cache "
                        "contract")
    args = parser.parse_args(argv)

    cells = args.cells or (QUICK_CELLS if args.quick else FULL_CELLS)
    rows = args.rows or (QUICK_ROWS if args.quick else FULL_ROWS)
    cache_path = (
        os.path.join(args.cache_dir, "bench-parallel-cache.json")
        if args.cache_dir
        else None
    )
    study = run_parallel_study(
        num_cells=cells, rows=rows, cache_path=cache_path
    )
    print(render(study))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(study, fh, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    check(study, require_speedup=args.check)
    return 0


def test_parallel_engine_contract(benchmark):
    """Pytest-benchmark entry: the reduced-size engine contract."""
    study = benchmark(
        lambda: run_parallel_study(num_cells=QUICK_CELLS, rows=QUICK_ROWS)
    )
    print()
    print(render(study))
    check(study, require_speedup=False)


if __name__ == "__main__":
    sys.exit(main())
