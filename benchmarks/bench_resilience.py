"""Experiment RESILIENCE: fault-rate -> degradation curves.

ALPINE-style fault sweeps over the resilience subsystem: accuracy and
throughput claims are re-measured under injected faults instead of the
happy path only.

- **IMC thrust**: stuck-at cell fraction swept into program-and-verify
  convergence and MLC level-error degradation (RRAM physics);
- **hetero thrust**: transient-storage fault rate swept into campaign
  completion (cells recovered by bounded retry vs. recorded failures)
  and retry overhead;
- **SPARTA thrust**: accelerator-lane dropout swept into task
  throughput (work remaps to surviving lanes, throughput degrades
  gracefully instead of the run dying).

Asserts the graceful-degradation contract: fault-free sweeps are
perfect, moderate fault rates complete with bounded retries, and the
degradation curves are monotone in the expected direction.

Run standalone to emit the JSON artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_resilience.py --quick \
        --out bench_resilience.json
"""

import argparse
import json
import sys

import numpy as np

from repro.core.tables import Table
from repro.hetero.campaign import run_resilient_campaign
from repro.hetero.workload import SegmentationWorkload
from repro.imc.devices import NVMDevice, RRAM_PARAMS
from repro.imc.program_verify import program_and_verify
from repro.resilience import (
    BackoffPolicy,
    FaultInjector,
    FaultModel,
    ResiliencePolicy,
)
from repro.sparta.kernels import streaming_tasks
from repro.sparta.simulator import simulate

IMC_STUCK_FRACTIONS = (0.0, 0.02, 0.05, 0.10, 0.20)
STORAGE_FAULT_RATES = (0.0, 0.1, 0.2, 0.4, 0.6)
LANE_DROPOUTS = (0.0, 0.25, 0.5)
QUICK_IMC_STUCK_FRACTIONS = (0.0, 0.05, 0.20)
QUICK_STORAGE_FAULT_RATES = (0.0, 0.2, 0.6)


def imc_degradation(fractions=IMC_STUCK_FRACTIONS):
    """Stuck-at fraction -> program-and-verify quality (RRAM)."""
    rng = np.random.default_rng(11)
    targets = rng.uniform(RRAM_PARAMS.g_min, RRAM_PARAMS.g_max, (48, 48))
    rows = []
    for fraction in fractions:
        device = NVMDevice(RRAM_PARAMS, (48, 48), seed=11)
        injector = FaultInjector(
            FaultModel(imc_stuck_fraction=fraction), seed=11
        )
        injector.inject_stuck_cells(device)
        result = program_and_verify(device, targets, tolerance=0.02)
        rows.append(
            (fraction, device.stuck_cell_count,
             result.converged_fraction, result.final_rms_error)
        )
    return rows


def hetero_degradation(rates=STORAGE_FAULT_RATES):
    """Transient-storage fault rate -> campaign completion/overhead."""
    workload = SegmentationWorkload(num_volumes=16, epochs=1)
    resilience = ResiliencePolicy(
        backoff=BackoffPolicy(max_attempts=4, base_delay_s=0.01)
    )
    rows = []
    for rate in rates:
        injector = FaultInjector(
            FaultModel(storage_transient_rate=rate), seed=11
        )
        report = run_resilient_campaign(
            workload, injector=injector, resilience=resilience
        )
        rows.append(
            (rate, len(report.cells), len(report.errors),
             report.total_attempts, report.total_backoff_s)
        )
    return rows


def sparta_degradation():
    """Lane dropout -> throughput on surviving lanes."""
    region = streaming_tasks(num_tasks=96, elements_per_task=8)
    rows = []
    for dropout in LANE_DROPOUTS:
        injector = FaultInjector(
            FaultModel(sparta_lane_dropout=dropout), seed=11
        )
        failed = injector.failed_lanes(4)
        stats = simulate(region, num_lanes=4, failed_lanes=failed)
        rows.append(
            (dropout, 4 - len(failed), stats.cycles,
             stats.tasks_per_kcycle)
        )
    return rows


def run_resilience_study(quick: bool = False):
    if quick:
        return {
            "imc": imc_degradation(QUICK_IMC_STUCK_FRACTIONS),
            "hetero": hetero_degradation(QUICK_STORAGE_FAULT_RATES),
            "sparta": sparta_degradation(),
        }
    return {
        "imc": imc_degradation(),
        "hetero": hetero_degradation(),
        "sparta": sparta_degradation(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep for CI smoke runs")
    parser.add_argument("--out", default=None,
                        help="write the study JSON here")
    args = parser.parse_args(argv)

    study = run_resilience_study(quick=args.quick)
    for thrust, rows in study.items():
        print(f"{thrust}:")
        for row in rows:
            print("  " + ", ".join(f"{v:g}" if isinstance(v, float)
                                   else str(v) for v in row))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(study, fh, indent=1, sort_keys=True, default=float)
        print(f"wrote {args.out}")
    return 0


def test_resilience_degradation(benchmark):
    study = benchmark(run_resilience_study)

    imc_table = Table(
        ["stuck fraction", "stuck cells", "converged", "final RMS"],
        title="IMC degradation -- stuck-at cells vs program-and-verify",
    )
    for fraction, stuck, converged, rms in study["imc"]:
        imc_table.add_row(
            [fraction, stuck, round(converged, 3), round(rms, 4)]
        )
    print()
    print(imc_table)

    hetero_table = Table(
        ["fault rate", "cells ok", "cells failed", "attempts",
         "backoff (s)"],
        title="Hetero degradation -- transient storage faults vs campaign",
    )
    for rate, ok, failed, attempts, backoff in study["hetero"]:
        hetero_table.add_row(
            [rate, ok, failed, attempts, round(backoff, 3)]
        )
    print(hetero_table)

    sparta_table = Table(
        ["lane dropout", "surviving lanes", "cycles", "tasks/kcycle"],
        title="SPARTA degradation -- lane dropout vs throughput",
    )
    for dropout, lanes, cycles, tpk in study["sparta"]:
        sparta_table.add_row([dropout, lanes, cycles, round(tpk, 3)])
    print(sparta_table)

    # IMC: no faults -> full convergence; convergence degrades
    # monotonically and roughly tracks the surviving-cell fraction.
    imc = study["imc"]
    assert imc[0][1] == 0 and imc[0][2] > 0.9
    converged = [row[2] for row in imc]
    assert all(a >= b - 1e-9 for a, b in zip(converged, converged[1:]))
    assert converged[-1] < converged[0]

    # Hetero: every cell is accounted for at every fault rate; the
    # fault-free sweep is perfect; retries stay within the bounded
    # policy budget (<= max_attempts per cell).
    for rate, ok, failed, attempts, backoff in study["hetero"]:
        assert ok + failed == 15
        assert attempts <= 15 * 4
    assert study["hetero"][0][2] == 0  # no faults -> no failures
    assert study["hetero"][0][3] == 15  # exactly one attempt per cell
    attempts_curve = [row[3] for row in study["hetero"]]
    assert attempts_curve[-1] > attempts_curve[0]

    # SPARTA: dropping lanes never aborts the run; full dropout request
    # still leaves >= 1 lane and throughput degrades, not dies.
    lanes = [row[1] for row in study["sparta"]]
    assert lanes[0] == 4 and min(lanes) >= 1
    cycles = [row[2] for row in study["sparta"]]
    assert all(c > 0 for c in cycles)
    assert cycles[-1] >= cycles[0]  # fewer lanes -> no faster


if __name__ == "__main__":
    sys.exit(main())
