"""Experiment HLS-DSE: the Sec. III toolchain claims.

Workload: the GEMM and FIR kernels swept through the HLS directive space
by four DSE explorers at equal budget; explorer quality is scored by
Pareto-front hypervolume.  Also regenerates the Bambu-vs-commercial
feature matrix and demonstrates the open tool's custom-pass advantage.
"""

from repro.core.tables import Table
from repro.dse.explorer import (
    ExhaustiveExplorer,
    NSGA2Explorer,
    RandomExplorer,
    SimulatedAnnealingExplorer,
)
from repro.dse.runner import DSERunner
from repro.hls.backends import BambuBackend, CommercialBackend
from repro.hls.directives import Directives
from repro.hls.kernels import make_kernel

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()

EXPLORERS = [
    ExhaustiveExplorer(),
    RandomExplorer(),
    SimulatedAnnealingExplorer(),
    NSGA2Explorer(population=16),
]
BUDGET = 120


def run_dse_study():
    scores = {}
    for kernel_name in ("gemm", "fir8"):
        runner = DSERunner(make_kernel(kernel_name, size=256))
        scores[kernel_name] = runner.compare(EXPLORERS, BUDGET, seed=0)
    features = [
        BambuBackend().feature_row(),
        CommercialBackend().feature_row(),
    ]
    # The custom-pass advantage: an open flow can force pipelining.
    bambu = BambuBackend()
    bambu.register_pass(
        lambda d: Directives(
            unroll=d.unroll, pipeline=True,
            array_partition=d.array_partition,
            mul_units=d.mul_units, add_units=d.add_units,
        )
    )
    nest = make_kernel("fir8", size=256)
    open_result = bambu.synthesize(nest, Directives())
    closed_result = CommercialBackend().synthesize(nest, Directives())
    return scores, features, open_result, closed_result


def test_hls_dse(benchmark):
    scores, features, open_result, closed_result = benchmark(run_dse_study)

    for kernel_name, kernel_scores in scores.items():
        table = Table(
            ["explorer", "hypervolume", "front size", "unique evals",
             "best latency (us)"],
            title=f"DSE explorer comparison -- {kernel_name}, "
                  f"budget {BUDGET}",
        )
        for name, s in kernel_scores.items():
            table.add_row(
                [name, s["hypervolume"], s["front_size"],
                 s["unique_evaluations"], s["best_latency_s"] * 1e6]
            )
        print()
        print(table)

    matrix = Table(
        ["tool", "C/C++", "compiler IR", "multi-vendor", "ASIC",
         "custom passes"],
        title="Sec. III -- HLS tool comparison",
    )
    for row in features:
        matrix.add_row(
            [row["tool"], row["c_cpp_input"], row["ir_input"],
             row["multi_vendor"], row["asic_target"],
             row["custom_passes"]]
        )
    print()
    print(matrix)
    print(
        f"custom-pass effect on fir8: open {open_result.total_cycles} "
        f"cycles vs closed {closed_result.total_cycles} cycles"
    )

    for kernel_scores in scores.values():
        heuristic_best = max(
            kernel_scores[name]["hypervolume"]
            for name in ("nsga2", "annealing", "random")
        )
        # Heuristics reach >=70% of the truncated-exhaustive baseline
        # quality (typically they beat it: lexicographic enumeration
        # wastes budget in one space corner).
        assert heuristic_best >= 0.7 * kernel_scores["exhaustive"][
            "hypervolume"
        ]
    bambu_row = next(r for r in features if r["tool"] == "Bambu")
    commercial_row = next(r for r in features if "Commercial" in r["tool"])
    assert bambu_row["ir_input"] and bambu_row["asic_target"]
    assert not commercial_row["ir_input"]
    assert open_result.total_cycles < closed_result.total_cycles
