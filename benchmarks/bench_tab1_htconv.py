"""Experiment FIG3/4+TAB1: regenerate Table I -- HTCONV vs FPGA SotA.

Workload: the HTCONV super-resolution engine (Fig. 4) modeled at its
published configuration (16-bit operands, 9x9 kernel, 5 lanes, 1080p ->
4K), compared against the published rows of [15] and [17].  The bench
prints the full Table I (published + modeled rows) plus bitwidth and
coverage ablations, and asserts the table's claims: higher Fmax and a
>2x energy-efficiency win over [15] with far fewer LUTs.
"""

from repro.axc.fpga_cost import (
    HTConvAcceleratorConfig,
    PUBLISHED_CHANG2020,
    PUBLISHED_HTCONV,
    estimate_htconv_accelerator,
    table_i_rows,
)
from repro.core.tables import Table

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()


def regenerate_table1():
    rows = table_i_rows()
    ablations = {
        "bitwidth": [
            estimate_htconv_accelerator(HTConvAcceleratorConfig(bitwidth=b))
            for b in (8, 12, 16)
        ],
        "coverage": [
            estimate_htconv_accelerator(
                HTConvAcceleratorConfig(foveal_coverage=c)
            )
            for c in (0.1, 0.25, 0.5, 1.0)
        ],
    }
    return rows, ablations


def _format_row(table, row):
    eff = row.energy_efficiency
    table.add_row(
        [
            row.method,
            f"{row.in_resolution} -> {row.out_resolution}",
            row.bitwidth,
            row.device,
            row.fmax_mhz,
            row.throughput_mpixels,
            f"{row.resources.luts} LUT / {row.resources.ffs} FF / "
            f"{row.resources.dsps} DSP",
            row.resources.bram_kb,
            "NA" if row.power_w is None else row.power_w,
            "NA" if eff is None else round(eff, 1),
        ]
    )


def test_table1_htconv(benchmark):
    rows, ablations = benchmark(regenerate_table1)

    table = Table(
        ["method", "resolution", "bits", "device", "Fmax (MHz)",
         "thr (Mpx/s)", "resources", "BRAM (kB)", "power (W)",
         "eff (Mpx/s/W)"],
        title="Table I -- comparison to FPGA-based SotA solutions",
    )
    for row in rows:
        _format_row(table, row)
    print()
    print(table)

    print("\nbitwidth ablation (8/12/16 bits):")
    for row in ablations["bitwidth"]:
        print(
            f"  {row.bitwidth}b: {row.fmax_mhz} MHz, "
            f"{row.resources.luts} LUTs, {row.power_w} W"
        )
    print("coverage ablation (foveal fraction 0.1/0.25/0.5/1.0):")
    for cov, row in zip((0.1, 0.25, 0.5, 1.0), ablations["coverage"]):
        print(
            f"  {cov:.2f}: {row.throughput_mpixels} Mpx/s, "
            f"{row.energy_efficiency:.1f} Mpx/s/W"
        )

    modeled = rows[-1]
    # Shape claims of Table I.
    assert modeled.fmax_mhz > PUBLISHED_CHANG2020.fmax_mhz
    assert modeled.resources.luts < PUBLISHED_CHANG2020.resources.luts / 4
    assert (
        modeled.energy_efficiency
        > 2 * PUBLISHED_CHANG2020.energy_efficiency
    )
    # Model-vs-published agreement for the 'New' row.
    assert abs(modeled.fmax_mhz - PUBLISHED_HTCONV.fmax_mhz) < 0.05 * (
        PUBLISHED_HTCONV.fmax_mhz
    )
    assert abs(
        modeled.throughput_mpixels - PUBLISHED_HTCONV.throughput_mpixels
    ) < 0.05 * PUBLISHED_HTCONV.throughput_mpixels
    # Ablation trends: wider operands cost Fmax; more coverage costs
    # throughput.
    widths = ablations["bitwidth"]
    assert widths[0].fmax_mhz > widths[-1].fmax_mhz
    coverages = ablations["coverage"]
    assert coverages[0].throughput_mpixels > coverages[-1].throughput_mpixels
