"""Experiment FIG6: regenerate Fig. 6 -- the DNA storage channel -- and
the Sec. VI accelerator figures ("about 90% computing efficiency ...
16.8 TCUPS ... 46 Mpair/Joule ... nearly 90% of FPGA basic-block
hardware resources").

Workload: a payload stored through the full pipeline (RS outer code ->
oligos -> noisy channel -> clustering -> consensus -> decode) with an
error-rate sweep; the clustering's DP cell-update ledger is then priced
on the Alveo U50 accelerator model versus a software baseline.
"""

import numpy as np

from repro.core.tables import Table
from repro.core.units import si_format
from repro.dna.channel import ChannelParams
from repro.dna.decoder import DNAStorageSystem
from repro.dna.encoding import OligoLayout
from repro.dna.fpga_accel import (
    EditDistanceAcceleratorModel,
    SoftwareBaselineModel,
)

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()

ERROR_RATES = (0.0, 0.01, 0.02, 0.04)


def run_pipeline_sweep():
    rng = np.random.default_rng(42)
    payload = bytes(rng.integers(0, 256, size=240, dtype=np.uint8))
    reports = {}
    for rate in ERROR_RATES:
        params = ChannelParams(
            substitution_rate=rate / 2,
            insertion_rate=rate / 4,
            deletion_rate=rate / 4,
            mean_coverage=8,
            coverage_sigma=0.3,
        )
        system = DNAStorageSystem(
            layout=OligoLayout(payload_bytes=10, index_bytes=1),
            rs_n=40,
            rs_k=30,
            channel_params=params,
            seed=7,
        )
        reports[rate] = (system.roundtrip(payload), payload)
    return reports


def test_fig6_dna_pipeline(benchmark):
    reports = benchmark(run_pipeline_sweep)

    table = Table(
        ["error rate", "reads", "clusters", "missing chunks",
         "cell updates", "recovered"],
        title="Fig. 6 -- DNA storage pipeline vs channel error rate",
    )
    for rate, (report, payload) in sorted(reports.items()):
        table.add_row(
            [rate, report.num_reads, report.num_clusters,
             report.missing_chunks, report.cell_updates,
             report.success and report.payload == payload]
        )
    print()
    print(table)

    # Clean and low-noise channels recover the payload exactly.
    for rate in (0.0, 0.01, 0.02):
        report, payload = reports[rate]
        assert report.success and report.payload == payload

    # Accelerator economics on the measured workload.
    fpga = EditDistanceAcceleratorModel()
    cpu = SoftwareBaselineModel()
    cells = reports[0.02][0].cell_updates
    speedup = cpu.time_for_cells(cells) / fpga.time_for_cells(cells)
    energy_ratio = cpu.energy_for_cells(cells) / fpga.energy_for_cells(
        cells
    )
    print(
        f"accelerator: {fpga.num_pes} PEs, "
        f"{100 * fpga.resource_utilization:.1f}% LUTs, "
        f"{si_format(fpga.sustained_cups, 'CUPS')}, "
        f"{fpga.pairs_per_joule(80, 80) / 1e6:.1f} Mpair/J @ 80x80"
    )
    print(f"decode workload: {cells} cells -> FPGA speedup x{speedup:.0f},"
          f" energy ratio x{energy_ratio:.0f}")

    # The published operating point (shape + rough magnitude).
    assert abs(fpga.sustained_cups / 1e12 - 16.8) < 0.6
    assert abs(fpga.resource_utilization - 0.90) < 0.02
    assert abs(fpga.computing_efficiency - 0.90) < 1e-9
    assert abs(fpga.pairs_per_joule(80, 80) / 1e6 - 46.0) < 5.0
    assert speedup > 1000
    assert energy_ratio > 1000
