"""Experiment SCALE: multi-core scaling of the process-backed cluster.

The scaling claim behind ``ShardCluster(backend="process")``: hosting
each shard in its own worker process buys real multi-core speedup
without giving up any serving guarantee.  The same workload stream is
served at 1, 2 and 4 shards; every run must stay **byte-identical**
(canonical form) to a serial baseline and complete **exactly once**
with zero supervised restarts, and on multi-core runners the 2- and
4-shard runs must beat the 1-shard run by a gated factor.  The
measured throughput, service-time p99 and efficiency curve then feed
:mod:`repro.serve.capacity`, so the emitted artifact doubles as the
input to ``repro capacity --from-report``.

Run standalone to emit the JSON artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_scale.py --quick \
        --out BENCH_scale.json

Acceptance targets (asserted with ``--check``, reported always):

- every shard count serves the full stream byte-identical to the
  serial baseline, exactly once, with zero restarts;
- scaling efficiency on hosts with >= 2 usable cores: speedup >= 1.6x
  at 2 shards and >= 2.5x at 4 shards (relaxed to 1.25x / 1.6x under
  ``--quick``); the gate is reported as skipped, not failed, when the
  host has fewer cores than shards;
- the embedded capacity report is sane: the lightest load is feasible,
  planned shard counts never decrease with load, costs are positive.
"""

import argparse
import json
import os
import sys
import time

from repro.core.api import get_workload
from repro.serve import generate_requests
from repro.serve.capacity import (
    CapacityModel,
    ShardCostModel,
    capacity_report,
)
from repro.serve.cluster import ShardCluster
from repro.serve.metrics import percentile

WORKLOAD = "imc-crossbar"
FULL_REQUESTS = 96
QUICK_REQUESTS = 48
FULL_POOL = 24
QUICK_POOL = 16
SEED = 11
SHARD_COUNTS = (1, 2, 4)
BATCH_SIZE = 4
#: speedup gates vs the 1-shard cluster run, keyed by shard count.
FULL_GATES = {2: 1.6, 4: 2.5}
QUICK_GATES = {2: 1.25, 4: 1.6}
TARGET_P99_FACTOR = 5.0
LOAD_MULTIPLES = (0.5, 1.0, 2.0, 4.0, 8.0)


def _requests(num_requests, pool_size):
    workload = get_workload(WORKLOAD)
    # skew=0: uniform pool draw, so shards get comparable work and the
    # scaling measurement is not dominated by one hot shard.
    return generate_requests(
        workload,
        num_requests,
        pool_size=pool_size,
        skew=0.0,
        seed=SEED,
    )


def run_serial_baseline(requests):
    """Direct single-threaded evaluation: the ground-truth canonical
    results and the per-request service-time distribution."""
    workload = get_workload(WORKLOAD)
    canonical = {}
    service_times = []
    start = time.perf_counter()
    for request in requests:
        step = time.perf_counter()
        result = workload.evaluate(request.config, seed=request.seed)
        service_times.append(time.perf_counter() - step)
        expected = canonical.setdefault(
            request.digest, result.canonical_json()
        )
        if expected != result.canonical_json():
            raise AssertionError(
                f"serial evaluation is not deterministic for "
                f"{request.digest}"
            )
    elapsed = time.perf_counter() - start
    return {
        "elapsed_s": elapsed,
        "throughput_rps": len(requests) / elapsed,
        "service_p50_s": percentile(service_times, 50),
        "service_p99_s": percentile(service_times, 99),
        "canonical": canonical,
    }


def run_cluster_point(requests, num_shards):
    """One scaling point: a process-backed cluster at *num_shards*,
    burst-fed the full stream.  Spawn/import cost is excluded from the
    timing via ``wait_ready`` -- the gate measures serving, not
    interpreter start-up."""
    cluster = ShardCluster(
        num_shards=num_shards,
        backend="process",
        batch_size=BATCH_SIZE,
        max_queue=len(requests) + 1,
    )
    try:
        cluster.wait_ready()
        start = time.perf_counter()
        futures = [
            cluster.submit_request(request, block=True)
            for request in requests
        ]
        results = [future.result(timeout=300) for future in futures]
        elapsed = time.perf_counter() - start
        snapshot = cluster.snapshot()
    finally:
        cluster.shutdown()
    matched = sum(1 for r in results if r.status == "ok")
    latencies = [r.wall_time_s for r in results]
    return {
        "shards": num_shards,
        "elapsed_s": elapsed,
        "throughput_rps": len(requests) / elapsed,
        "completed": len(results),
        "ok": matched,
        "restarts": snapshot["restarts"],
        "replayed": snapshot["replayed"],
        "latency_s": {
            "p50": percentile(latencies, 50),
            "p99": percentile(latencies, 99),
        },
        "results": results,
    }


def _identical(requests, results, canonical):
    matched = sum(
        1
        for request, result in zip(requests, results)
        if result is not None
        and result.canonical_json() == canonical[request.digest]
    )
    return matched == len(requests), matched


def run_scale_study(num_requests, pool_size, gates):
    requests = _requests(num_requests, pool_size)
    serial = run_serial_baseline(requests)
    usable_cpus = os.cpu_count() or 1

    points = []
    base_elapsed = None
    for num_shards in SHARD_COUNTS:
        point = run_cluster_point(requests, num_shards)
        results = point.pop("results")
        identical, matched = _identical(
            requests, results, serial["canonical"]
        )
        point["identical_to_serial"] = identical
        point["matched"] = matched
        if num_shards == 1:
            base_elapsed = point["elapsed_s"]
        point["speedup_vs_1shard"] = (
            base_elapsed / point["elapsed_s"] if base_elapsed else None
        )
        point["efficiency"] = (
            point["speedup_vs_1shard"] / num_shards
            if point["speedup_vs_1shard"]
            else None
        )
        gate = gates.get(num_shards)
        point["gate"] = {
            "required_speedup": gate,
            "usable_cpus": usable_cpus,
            # A host with fewer cores than shards cannot demonstrate
            # the full speedup; the gate is skipped there, never faked.
            "applicable": gate is not None
            and usable_cpus >= num_shards,
        }
        points.append(point)

    one_shard = points[0]
    efficiency = {
        p["shards"]: p["efficiency"]
        for p in points
        if p["efficiency"] and p["shards"] > 1
    }
    model = CapacityModel(
        one_shard["throughput_rps"],
        serial["service_p99_s"],
        efficiency=efficiency,
    )
    capacity = capacity_report(
        model,
        offered_rps=[
            one_shard["throughput_rps"] * mult
            for mult in LOAD_MULTIPLES
        ],
        target_p99_s=TARGET_P99_FACTOR * serial["service_p99_s"],
        cost=ShardCostModel(),
    )

    serial_entry = dict(serial)
    serial_entry.pop("canonical")
    return {
        "experiment": "SCALE",
        "workload": WORKLOAD,
        "num_requests": num_requests,
        "pool_size": pool_size,
        "usable_cpus": usable_cpus,
        "shard_counts": list(SHARD_COUNTS),
        "serial": serial_entry,
        "points": points,
        "capacity": capacity,
    }


def check(report):
    """Acceptance gates; returns (ok, messages)."""
    ok = True
    messages = []
    for point in report["points"]:
        label = f"{point['shards']}-shard"
        if (
            point["identical_to_serial"]
            and point["ok"] == report["num_requests"]
            and point["restarts"] == 0
        ):
            messages.append(
                f"ok: {label} run byte-identical to serial, "
                f"{point['ok']}/{report['num_requests']} exactly once, "
                f"0 restarts"
            )
        else:
            ok = False
            messages.append(
                f"FAIL: {label} run matched "
                f"{point['matched']}/{report['num_requests']}, "
                f"restarts {point['restarts']}"
            )
        gate = point["gate"]
        if not gate["applicable"]:
            if gate["required_speedup"] is not None:
                messages.append(
                    f"skip: {label} speedup gate "
                    f"(>= {gate['required_speedup']}x) needs multiple "
                    f"cores; host has {gate['usable_cpus']}"
                )
            continue
        if point["speedup_vs_1shard"] >= gate["required_speedup"]:
            messages.append(
                f"ok: {label} speedup "
                f"{point['speedup_vs_1shard']:.2f}x >= "
                f"{gate['required_speedup']}x"
            )
        else:
            ok = False
            messages.append(
                f"FAIL: {label} speedup "
                f"{point['speedup_vs_1shard']:.2f}x < "
                f"{gate['required_speedup']}x"
            )

    capacity = report["capacity"]
    plans = capacity["plans"]
    if plans and plans[0]["feasible"]:
        messages.append(
            f"ok: lightest load "
            f"({plans[0]['offered_rps']:.1f} rps) feasible with "
            f"{plans[0]['shards']} shard(s)"
        )
    else:
        ok = False
        messages.append("FAIL: lightest capacity load infeasible")
    shard_series = [p["shards"] for p in plans if p["feasible"]]
    if shard_series == sorted(shard_series):
        messages.append(
            "ok: planned shard counts non-decreasing with load "
            f"({shard_series})"
        )
    else:
        ok = False
        messages.append(
            f"FAIL: planned shard counts not monotone: {shard_series}"
        )
    if all(
        p["cost_per_hour"] > 0 and p["cost_per_million"] > 0
        for p in plans
        if p["feasible"]
    ):
        messages.append("ok: all feasible plans have positive costs")
    else:
        ok = False
        messages.append("FAIL: a feasible plan has non-positive cost")
    return ok, messages


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes and relaxed gates for CI")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if acceptance targets fail")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    num_requests = QUICK_REQUESTS if args.quick else FULL_REQUESTS
    pool_size = QUICK_POOL if args.quick else FULL_POOL
    gates = QUICK_GATES if args.quick else FULL_GATES
    report = run_scale_study(num_requests, pool_size, gates)
    ok, messages = check(report)
    report["check"] = {"passed": ok, "messages": messages}
    report["quick"] = args.quick

    serial = report["serial"]
    print(
        f"workload: {report['workload']}  requests: {num_requests}  "
        f"cpus: {report['usable_cpus']}"
    )
    print(
        f"  serial: {serial['elapsed_s']:.2f} s "
        f"({serial['throughput_rps']:.1f} rps, service p99 "
        f"{serial['service_p99_s'] * 1000:.1f} ms)"
    )
    for point in report["points"]:
        speedup = point["speedup_vs_1shard"]
        print(
            f"  {point['shards']} shard(s): {point['elapsed_s']:.2f} s "
            f"({point['throughput_rps']:.1f} rps, "
            f"speedup {speedup:.2f}x, "
            f"p99 {point['latency_s']['p99'] * 1000:.1f} ms, "
            f"identical={point['identical_to_serial']})"
        )
    for plan in report["capacity"]["plans"]:
        if plan["feasible"]:
            print(
                f"  capacity: {plan['offered_rps']:.1f} rps -> "
                f"{plan['shards']} shard(s), "
                f"${plan['cost_per_million']:.4f}/1M req"
            )
        else:
            print(
                f"  capacity: {plan['offered_rps']:.1f} rps -> "
                f"infeasible"
            )
    for message in messages:
        print(f"  {message}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    if args.check and not ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
