"""Experiment OBS: observability overhead and stitched-trace identity.

The ``repro.obs`` spine promises near-zero cost when disabled -- the
``@profiled`` wrapper on every hot kernel reduces to one hook check and
one ``enabled`` flag read, and the observability plane's newer layers
(flight recorder, SLO evaluator, cross-process trace stitching) must
not change that.  This bench measures the promise and gates it in CI:

- **kernel row**: tracing, metrics, ledger and the perf profiler all
  off (the default state of every library entry point).  Measured
  against the unwrapped kernel (``fn.__wrapped__``), the wrapper must
  cost at most ``--max-overhead`` (default 5%) at the bench size.
- **kernel+recorder row**: same measurement with a
  :class:`~repro.obs.recorder.FlightRecorder` armed (ledger watcher
  registered, sampler thread running) and an SLO evaluator constructed
  while the pillars stay disabled -- arming the plane must still cost
  at most the gate.
- **cluster rows** (``inproc`` and ``process`` backends): a 2-shard
  :class:`~repro.serve.cluster.ShardCluster` serving a fixed request
  set, measured disabled-plain vs disabled-armed (same gate), plus a
  fully-enabled pass that asserts the stitched-trace contract -- every
  request trace spans ``cluster.request -> request -> worker`` and the
  canonical trace encoding is byte-identical on a rerun and across the
  inproc/process backends.
- **enabled** numbers are reported for the record, never gated --
  recording spans is supposed to cost something.

Run standalone to emit the JSON artifact and a sample Chrome trace::

    PYTHONPATH=src python benchmarks/bench_obs.py --quick \
        --out BENCH_obs.json --trace-out BENCH_obs_trace.json

Acceptance targets (``--check`` fills ``study["check"]`` and makes the
exit code nonzero on failure):

- disabled/armed-mode overhead <= 5% on every gated row;
- the enabled kernel run records at least one span per call (the
  perf->span bridge actually fires);
- stitched cluster traces byte-identical across reruns and backends.
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from repro import obs
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.obs.trace import derive_trace_id
from repro.perf import get_profiler

FULL = {"rows": 128, "cols": 128, "batch": 8, "calls": 400,
        "cluster_requests": 96}
QUICK = {"rows": 64, "cols": 64, "batch": 4, "calls": 120,
         "cluster_requests": 48}

#: Span names every stitched cluster request trace must contain.
STITCHED_NAMES = ("cluster.request", "request", "worker")


def _make_workload(size):
    """A seeded crossbar and input batch; returns (call, unwrapped)."""
    xbar = AnalogCrossbar(
        CrossbarConfig(rows=size["rows"], cols=size["cols"]), seed=42
    )
    rng = np.random.default_rng(42)
    xbar.program_weights(rng.uniform(-1, 1, (size["rows"], size["cols"])))
    xs = rng.uniform(-1, 1, (size["batch"], size["rows"]))

    def call():
        return xbar.mvm_batch(xs)

    # ``@profiled`` uses functools.wraps, so the raw kernel is reachable
    # for an honest no-instrumentation baseline.
    raw = AnalogCrossbar.mvm_batch.__wrapped__

    def direct():
        return raw(xbar, xs)

    return call, direct


def _time_calls(fn, calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return time.perf_counter() - start


def _reset_all():
    obs.get_tracer().reset()
    obs.get_ledger().reset()
    obs.get_metrics().reset()


def _interleaved_times(baseline, candidate, calls, repeats: int):
    """Time *baseline* and *candidate* in adjacent pairs, `repeats`
    pairs total, so scheduler drift lands on both sides of each pair
    alike."""
    baseline_times = []
    candidate_times = []
    for _ in range(repeats):
        baseline_times.append(_time_calls(baseline, calls))
        candidate_times.append(_time_calls(candidate, calls))
    return baseline_times, candidate_times


def _pair_overhead(baseline_times, candidate_times) -> float:
    """Overhead of the best interleaved (baseline, candidate) pair.

    Each pair ran back to back, so noise largely cancels within it;
    the ratio of independent minima, by contrast, can compare a quiet
    baseline floor against a candidate pass that ate a descheduling
    blip and report phantom overhead.  One quiet pair out of `repeats`
    suffices for an honest reading."""
    return min(
        candidate / baseline
        for baseline, candidate in zip(baseline_times, candidate_times)
    ) - 1.0


def _measure_kernel(size, repeats: int):
    """One overhead row: direct vs wrapped-disabled vs wrapped-enabled."""
    call, direct = _make_workload(size)
    calls = size["calls"]

    obs.disable()
    get_profiler().disable()
    call()  # warm-up: imports, allocator, caches
    direct_times, disabled_times = _interleaved_times(
        direct, call, calls, repeats
    )
    direct_s = min(direct_times)
    disabled_s = min(disabled_times)
    disabled_overhead = _pair_overhead(direct_times, disabled_times)

    tracer = obs.enable_tracing()
    tracer.reset()
    ctx_id = derive_trace_id("bench-obs", 0)
    root = tracer.start_span("bench", trace_id=ctx_id, parent_id="")
    with tracer.activate(root.context):
        enabled_s = min(_time_calls(call, calls) for _ in range(repeats))
    tracer.end_span(root)
    spans = len(tracer.spans(ctx_id))
    obs.disable()

    return {
        "kind": "kernel",
        "kernel": "imc.mvm_batch",
        "size": {k: size[k] for k in ("rows", "cols", "batch")},
        "calls": calls,
        "direct_s": direct_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_s / direct_s - 1.0,
        "spans_recorded": spans,
        "gated": True,
    }


def _measure_kernel_armed(size, repeats: int):
    """The kernel row again with the recorder armed and an SLO
    evaluator constructed while every pillar stays disabled -- the
    arming itself must be free on the hot path."""
    from repro.obs.recorder import FlightRecorder
    from repro.obs.slo import SLOEvaluator, SLOSpec

    call, direct = _make_workload(size)
    calls = size["calls"]

    obs.disable()
    get_profiler().disable()
    call()
    recorder = FlightRecorder(interval_s=0.05)
    recorder.watch_ledger()
    recorder.start()
    evaluator = SLOEvaluator(
        [SLOSpec(name="p99", objective="p99_latency", target=0.5)]
    )
    try:
        direct_times, armed_times = _interleaved_times(
            direct, call, calls, repeats
        )
        evaluator.evaluate(recorder.samples())
    finally:
        recorder.stop()
    direct_s = min(direct_times)
    armed_s = min(armed_times)

    return {
        "kind": "kernel+recorder",
        "kernel": "imc.mvm_batch",
        "size": {k: size[k] for k in ("rows", "cols", "batch")},
        "calls": calls,
        "direct_s": direct_s,
        "disabled_s": armed_s,
        "enabled_s": None,
        "disabled_overhead": _pair_overhead(
            direct_times, armed_times
        ),
        "enabled_overhead": None,
        "samples_recorded": len(recorder.samples()),
        "gated": True,
    }


def _cluster_requests(size):
    from repro.serve import EvalRequest

    return [
        EvalRequest(
            workload="imc-crossbar",
            config={"rows": 32, "cols": 32},
            seed=seed,
        )
        for seed in range(size["cluster_requests"])
    ]


def _run_cluster(backend, size, recorder=None):
    """One pass of the fixed request set through a fresh 2-shard
    cluster; returns wall seconds (spawn/ready time excluded)."""
    from repro.serve import ShardCluster

    cluster = ShardCluster(
        num_shards=2,
        backend=backend,
        batch_size=4,
        batch_wait_s=0.001,
        max_queue=size["cluster_requests"],
        supervise=False,
    )
    cluster.wait_ready()
    if recorder is not None:
        recorder.attach_cluster(cluster)
    try:
        start = time.perf_counter()
        futures = [
            cluster.submit_request(request, block=True)
            for request in _cluster_requests(size)
        ]
        for future in futures:
            future.result()
        elapsed = time.perf_counter() - start
    finally:
        cluster.shutdown()
    return elapsed


def _measure_cluster(backend, size, repeats: int):
    """Cluster row: disabled-plain vs disabled-armed wall time (gated),
    one enabled pass asserting the stitched-trace contract, and a
    second enabled pass pinning canonical byte-identity."""
    from repro.obs.recorder import FlightRecorder
    from repro.obs.slo import SLOEvaluator, SLOSpec

    obs.disable()
    get_profiler().disable()
    _reset_all()
    _run_cluster(backend, size)  # warm-up (imports, spawn machinery)

    # Cluster wall times carry +-15% scheduler/IPC jitter per pass
    # (measured on an idle 4-core box); the pair-min gate needs one
    # quiet pair, so give it at least five chances.
    repeats = max(repeats, 5)

    # Interleave plain/armed passes so scheduler drift hits both sides
    # alike; the gate reads the best adjacent pair (below), which only
    # needs ONE quiet window out of `repeats` rather than quiet floors
    # on both sides independently.
    plain_times = []
    armed_times = []
    armed_samples = 0
    for _ in range(repeats):
        plain_times.append(_run_cluster(backend, size))
        recorder = FlightRecorder(interval_s=0.05)
        recorder.watch_ledger()
        recorder.start()
        evaluator = SLOEvaluator(
            [
                SLOSpec(
                    name="p99", objective="p99_latency", target=0.5,
                    workload="imc-crossbar",
                )
            ]
        )
        try:
            armed_times.append(_run_cluster(backend, size, recorder))
            evaluator.evaluate(recorder.samples())
        finally:
            recorder.stop()
        armed_samples = max(armed_samples, len(recorder.samples()))
    plain_s = min(plain_times)
    armed_s = min(armed_times)
    pair_overhead = _pair_overhead(plain_times, armed_times)

    def _enabled_pass():
        obs.enable()
        _reset_all()
        tracer = obs.get_tracer()
        elapsed = _run_cluster(backend, size)
        canonical = tracer.canonical_json()
        spans = tracer.spans()
        obs.disable()
        return elapsed, canonical, spans

    enabled_s, canonical, spans = _enabled_pass()
    _, canonical_rerun, _ = _enabled_pass()

    by_trace = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], set()).add(span["name"])
    stitched = sum(
        1
        for names in by_trace.values()
        if all(name in names for name in STITCHED_NAMES)
    )
    return {
        "kind": f"cluster[{backend}]",
        "kernel": "imc-crossbar serve",
        "backend": backend,
        "requests": size["cluster_requests"],
        "direct_s": plain_s,
        "disabled_s": armed_s,
        "enabled_s": enabled_s,
        "disabled_overhead": pair_overhead,
        "enabled_overhead": enabled_s / plain_s - 1.0,
        "recorder_samples": armed_samples,
        "stitched_traces": stitched,
        "rerun_identical": canonical == canonical_rerun,
        "canonical": canonical,
        "gated": True,
    }


def _sample_trace(quick: bool):
    """A small end-to-end serve run; returns Chrome trace JSON."""
    from repro.obs.ledger import get_ledger
    from repro.serve import EvalRequest, serve_requests

    obs.enable()
    tracer = obs.get_tracer()
    tracer.reset()
    get_ledger().reset()
    requests = [
        EvalRequest(
            workload="imc-crossbar",
            config={"rows": 32, "cols": 32, "batch": 4},
            seed=seed,
        )
        for seed in range(2 if quick else 4)
    ]
    serve_requests(requests, batch_size=4)
    trace = tracer.to_chrome()
    obs.disable()
    return trace


def run_obs_study(sizes, repeats: int = 3, clusters: bool = True):
    """Measure wrapper/recorder/stitching overhead; returns the
    JSON-able study."""
    rows = [
        _measure_kernel(sizes, repeats),
        _measure_kernel_armed(sizes, repeats),
    ]
    backends_identical = None
    if clusters:
        cluster_rows = [
            _measure_cluster("inproc", sizes, repeats),
            _measure_cluster("process", sizes, repeats),
        ]
        backends_identical = (
            cluster_rows[0].pop("canonical")
            == cluster_rows[1].pop("canonical")
        )
        rows.extend(cluster_rows)
    return {
        "hardware": {"cpu_count": os.cpu_count()},
        "repeats": repeats,
        "rows": rows,
        "stitched_backends_identical": backends_identical,
    }


def render(study) -> str:
    from repro.core.tables import Table

    table = Table(
        ["row", "work", "baseline (s)", "disabled (s)", "enabled (s)",
         "off ovh", "on ovh", "stitched"],
        title="bench_obs -- observability overhead "
        "(baseline: uninstrumented / plain-disabled)",
    )
    for row in study["rows"]:
        table.add_row(
            [
                row["kind"],
                row.get("calls") or row.get("requests"),
                round(row["direct_s"], 4),
                round(row["disabled_s"], 4),
                (
                    round(row["enabled_s"], 4)
                    if row.get("enabled_s") is not None
                    else "-"
                ),
                f"{row['disabled_overhead']:+.1%}",
                (
                    f"{row['enabled_overhead']:+.1%}"
                    if row.get("enabled_overhead") is not None
                    else "-"
                ),
                row.get("stitched_traces", "-"),
            ]
        )
    lines = [table.render()]
    if study.get("stitched_backends_identical") is not None:
        lines.append(
            "stitched canonical traces identical across "
            "inproc/process backends: "
            + ("yes" if study["stitched_backends_identical"] else "NO")
        )
    return "\n".join(lines)


def check(study, max_overhead: float = 0.05):
    """Evaluate the acceptance gates; returns (and stores on the
    study) the ``{"passed", "messages"}`` block summarize.py reads."""
    messages = []
    for row in study["rows"]:
        if row.get("gated"):
            over = row["disabled_overhead"] > max_overhead
            messages.append(
                f"FAIL {row['kind']}: disabled-mode observability "
                f"overhead {row['disabled_overhead']:+.1%} exceeds "
                f"the {max_overhead:.0%} gate"
                if over
                else f"ok overhead {row['kind']} "
                f"({row['disabled_overhead']:+.1%})"
            )
        if row["kind"] == "kernel":
            bridged = row["spans_recorded"] >= row["calls"]
            messages.append(
                f"ok spans {row['kind']} ({row['spans_recorded']})"
                if bridged
                else f"FAIL {row['kind']}: enabled run recorded "
                f"{row['spans_recorded']} spans for {row['calls']} "
                "calls (perf->span bridge did not fire)"
            )
        if row["kind"].startswith("cluster"):
            if row["stitched_traces"] < row["requests"]:
                messages.append(
                    f"FAIL {row['kind']}: only "
                    f"{row['stitched_traces']}/{row['requests']} "
                    "request traces span "
                    f"{' -> '.join(STITCHED_NAMES)}"
                )
            else:
                messages.append(
                    f"ok stitched {row['kind']} "
                    f"({row['stitched_traces']}/{row['requests']})"
                )
            if not row["rerun_identical"]:
                messages.append(
                    f"FAIL {row['kind']}: canonical stitched trace "
                    "differs across reruns"
                )
            else:
                messages.append(f"ok rerun identity {row['kind']}")
            if row["recorder_samples"] < 1:
                messages.append(
                    f"FAIL {row['kind']}: flight recorder captured "
                    "no samples during the armed pass"
                )
            else:
                messages.append(
                    f"ok flight samples {row['kind']} "
                    f"({row['recorder_samples']})"
                )
    if study.get("stitched_backends_identical") is False:
        messages.append(
            "FAIL stitching: canonical traces differ between the "
            "inproc and process backends"
        )
    elif study.get("stitched_backends_identical"):
        messages.append(
            "ok stitching identical across inproc/process backends"
        )
    result = {
        "passed": not any(m.startswith("FAIL") for m in messages),
        "messages": messages,
    }
    study["check"] = result
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per mode (min is kept)")
    parser.add_argument("--out", default=None,
                        help="write the study JSON here")
    parser.add_argument("--trace-out", default=None,
                        help="write a sample serve Chrome trace here")
    parser.add_argument("--check", action="store_true",
                        help="evaluate the <=5%% disabled-overhead and "
                        "stitched-identity gates")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="disabled-mode overhead gate (fraction)")
    parser.add_argument("--no-cluster", action="store_true",
                        help="skip the 2-shard cluster rows")
    args = parser.parse_args(argv)

    sizes = QUICK if args.quick else FULL
    study = run_obs_study(
        sizes, repeats=args.repeats, clusters=not args.no_cluster
    )
    study["quick"] = bool(args.quick)
    print(render(study))
    failed = False
    if args.check:
        result = check(study, max_overhead=args.max_overhead)
        for message in result["messages"]:
            print(message)
        if result["passed"]:
            print("bench_obs checks: PASS")
        else:
            failed = True
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(study, fh, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    if args.trace_out:
        trace = _sample_trace(quick=args.quick)
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=1, sort_keys=True)
        print(
            f"wrote {args.trace_out} "
            f"({len(trace['traceEvents'])} trace events)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
