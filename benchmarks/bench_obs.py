"""Experiment OBS: observability overhead on the profiled hot kernels.

The ``repro.obs`` spine promises near-zero cost when disabled -- the
``@profiled`` wrapper on every hot kernel reduces to one hook check and
one ``enabled`` flag read.  This bench measures that promise on the
kernel microbench workloads and gates it in CI:

- **disabled**: tracing, metrics, ledger and the perf profiler all off
  (the default state of every library entry point).  Measured against
  the unwrapped kernel (``fn.__wrapped__``), the wrapper must cost at
  most ``--max-overhead`` (default 5%) at the bench size.
- **enabled**: full tracing with span capture under an active trace
  context.  Reported for the record, never gated -- recording spans is
  supposed to cost something.

Run standalone to emit the JSON artifact and a sample Chrome trace::

    PYTHONPATH=src python benchmarks/bench_obs.py --quick \
        --out BENCH_obs.json --trace-out BENCH_obs_trace.json

Acceptance targets (asserted with ``--check``, reported always):

- disabled-mode overhead <= 5% on every measured kernel;
- the enabled-mode run records at least one span per kernel call
  (the bridge actually fires).
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from repro import obs
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.obs.trace import derive_trace_id
from repro.perf import get_profiler

FULL = {"rows": 128, "cols": 128, "batch": 8, "calls": 400}
QUICK = {"rows": 64, "cols": 64, "batch": 4, "calls": 120}


def _make_workload(size):
    """A seeded crossbar and input batch; returns (call, unwrapped)."""
    xbar = AnalogCrossbar(
        CrossbarConfig(rows=size["rows"], cols=size["cols"]), seed=42
    )
    rng = np.random.default_rng(42)
    xbar.program_weights(rng.uniform(-1, 1, (size["rows"], size["cols"])))
    xs = rng.uniform(-1, 1, (size["batch"], size["rows"]))

    def call():
        return xbar.mvm_batch(xs)

    # ``@profiled`` uses functools.wraps, so the raw kernel is reachable
    # for an honest no-instrumentation baseline.
    raw = AnalogCrossbar.mvm_batch.__wrapped__

    def direct():
        return raw(xbar, xs)

    return call, direct


def _time_calls(fn, calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return time.perf_counter() - start


def _measure(size, repeats: int):
    """One overhead row: direct vs wrapped-disabled vs wrapped-enabled."""
    call, direct = _make_workload(size)
    calls = size["calls"]

    obs.disable()
    get_profiler().disable()
    call()  # warm-up: imports, allocator, caches
    direct_s = min(_time_calls(direct, calls) for _ in range(repeats))
    disabled_s = min(_time_calls(call, calls) for _ in range(repeats))

    tracer = obs.enable_tracing()
    tracer.reset()
    ctx_id = derive_trace_id("bench-obs", 0)
    root = tracer.start_span("bench", trace_id=ctx_id, parent_id="")
    with tracer.activate(root.context):
        enabled_s = min(_time_calls(call, calls) for _ in range(repeats))
    tracer.end_span(root)
    spans = len(tracer.spans(ctx_id))
    obs.disable()

    return {
        "kernel": "imc.mvm_batch",
        "size": {k: size[k] for k in ("rows", "cols", "batch")},
        "calls": calls,
        "direct_s": direct_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "disabled_overhead": disabled_s / direct_s - 1.0,
        "enabled_overhead": enabled_s / direct_s - 1.0,
        "spans_recorded": spans,
    }


def _sample_trace(quick: bool):
    """A small end-to-end serve run; returns Chrome trace JSON."""
    from repro.obs.ledger import get_ledger
    from repro.serve import EvalRequest, serve_requests

    obs.enable()
    tracer = obs.get_tracer()
    tracer.reset()
    get_ledger().reset()
    requests = [
        EvalRequest(
            workload="imc-crossbar",
            config={"rows": 32, "cols": 32, "batch": 4},
            seed=seed,
        )
        for seed in range(2 if quick else 4)
    ]
    serve_requests(requests, batch_size=4)
    trace = tracer.to_chrome()
    obs.disable()
    return trace


def run_obs_study(sizes, repeats: int = 3):
    """Measure wrapper overhead; returns the JSON-able study."""
    return {
        "hardware": {"cpu_count": os.cpu_count()},
        "repeats": repeats,
        "rows": [_measure(sizes, repeats)],
    }


def render(study) -> str:
    from repro.core.tables import Table

    table = Table(
        ["kernel", "calls", "direct (s)", "disabled (s)", "enabled (s)",
         "off ovh", "on ovh", "spans"],
        title="bench_obs -- @profiled wrapper overhead per kernel batch",
    )
    for row in study["rows"]:
        table.add_row(
            [row["kernel"], row["calls"], round(row["direct_s"], 4),
             round(row["disabled_s"], 4), round(row["enabled_s"], 4),
             f"{row['disabled_overhead']:+.1%}",
             f"{row['enabled_overhead']:+.1%}",
             row["spans_recorded"]]
        )
    return table.render()


def check(study, max_overhead: float = 0.05) -> None:
    """Assert the disabled-mode overhead gate at the measured size."""
    for row in study["rows"]:
        assert row["disabled_overhead"] <= max_overhead, (
            f"{row['kernel']}: disabled-mode observability overhead "
            f"{row['disabled_overhead']:+.1%} exceeds the "
            f"{max_overhead:.0%} gate"
        )
        assert row["spans_recorded"] >= row["calls"], (
            f"{row['kernel']}: enabled run recorded "
            f"{row['spans_recorded']} spans for {row['calls']} calls "
            "(perf->span bridge did not fire)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per mode (min is kept)")
    parser.add_argument("--out", default=None,
                        help="write the study JSON here")
    parser.add_argument("--trace-out", default=None,
                        help="write a sample serve Chrome trace here")
    parser.add_argument("--check", action="store_true",
                        help="assert the <=5%% disabled-overhead gate")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="disabled-mode overhead gate (fraction)")
    args = parser.parse_args(argv)

    sizes = QUICK if args.quick else FULL
    study = run_obs_study(sizes, repeats=args.repeats)
    study["quick"] = bool(args.quick)
    print(render(study))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(study, fh, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    if args.trace_out:
        trace = _sample_trace(quick=args.quick)
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=1, sort_keys=True)
        print(
            f"wrote {args.trace_out} "
            f"({len(trace['traceEvents'])} trace events)"
        )
    if args.check:
        check(study, max_overhead=args.max_overhead)
    return 0


if __name__ == "__main__":
    sys.exit(main())
