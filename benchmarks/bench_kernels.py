"""Experiment KERNELS: scalar-vs-numpy regression baselines per kernel.

Every hot inner kernel in the suite ships two implementations -- a
scalar reference oracle and the production numpy path (selected with
``impl=``).  This bench times both on the same seeded workload, checks
the equivalence contract (bit-exact for the integer/discrete kernels
and the crossbar; ``rtol=atol=1e-12`` for the float-reduction HTCONV),
and emits the JSON artifact CI uploads, so a kernel that silently slows
down or diverges fails the build instead of a future campaign.

Run standalone to emit the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_kernels.py --quick \
        --out BENCH_kernels.json

Acceptance targets (asserted with ``--check``, reported always):

- scalar/numpy equivalence on every kernel (asserted unconditionally
  by ``--check`` at any size);
- no numpy kernel slower than ``0.8x`` its scalar reference at the
  bench size (the guard against vectorization that stops paying).

At the full (default) sizes the edit-distance, HTCONV, and SPARTA
kernels are expected to clear 5x; the crossbar MVM is bounded by the
shared RNG stream (the noise draw dominates both paths) and the list
scheduler by its sequential resource arbitration, so they are held to
the no-regression bar only.
"""

import argparse
import hashlib
import json
import os
import random
import sys
import time

import numpy as np

from repro.dna.ecc import ReedSolomonCodec
from repro.dna.editdistance import CellUpdateCounter, levenshtein_banded
from repro.axc.htconv import FovealRegion, htconv_x2
from repro.hls.ir import DataflowGraph, OpKind, Operation
from repro.hls.scheduling import schedule_list
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.sparta.kernels import bfs_tasks, random_graph
from repro.sparta.simulator import simulate

FULL = {
    "crossbar": {"rows": 128, "cols": 128, "batch": 192},
    "editdistance": {"length": 4000, "band": 128, "pairs": 2},
    "htconv": {"channels": 8, "height": 48, "width": 48, "kernel": 3},
    "sparta": {"nodes": 512, "memory_latency": 200},
    "hls": {"ops": 1500},
    "ecc": {"n": 255, "k": 223, "messages": 40},
}
QUICK = {
    "crossbar": {"rows": 32, "cols": 32, "batch": 24},
    "editdistance": {"length": 600, "band": 48, "pairs": 2},
    "htconv": {"channels": 4, "height": 20, "width": 20, "kernel": 3},
    "sparta": {"nodes": 128, "memory_latency": 200},
    "hls": {"ops": 300},
    "ecc": {"n": 255, "k": 223, "messages": 6},
}

EXACT = "exact"
HTCONV_POLICY = "rtol=1e-12,atol=1e-12"


def _digest(payload) -> str:
    """Short stable checksum of a result payload."""
    if isinstance(payload, np.ndarray):
        blob = payload.tobytes()
    else:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


# ------------------------------------------------------------------ kernels


def _run_crossbar(size, impl):
    xbar = AnalogCrossbar(
        CrossbarConfig(rows=size["rows"], cols=size["cols"]), seed=1234
    )
    rng = np.random.default_rng(1234)
    xbar.program_weights(
        rng.uniform(-1, 1, (size["rows"], size["cols"]))
    )
    xs = rng.uniform(-1, 1, (size["batch"], size["rows"]))
    start = time.perf_counter()
    out = xbar.mvm_batch(xs, impl=impl)
    return time.perf_counter() - start, out


def _random_sequence(rng, length):
    return "".join("ACGT"[i] for i in rng.integers(0, 4, length))


def _run_editdistance(size, impl):
    rng = np.random.default_rng(99)
    pairs = []
    for _ in range(size["pairs"]):
        a = _random_sequence(rng, size["length"])
        # A near-duplicate read: a few scattered substitutions.
        b = list(a)
        for pos in rng.integers(0, size["length"], 10):
            b[pos] = "ACGT"[rng.integers(0, 4)]
        pairs.append((a, "".join(b)))
        # And one unrelated read (exercises the early exit).
        pairs.append((a, _random_sequence(rng, size["length"])))
    counter = CellUpdateCounter()
    start = time.perf_counter()
    distances = [
        levenshtein_banded(a, b, band=size["band"], counter=counter,
                           impl=impl)
        for a, b in pairs
    ]
    elapsed = time.perf_counter() - start
    return elapsed, {"distances": distances, "cells": counter.cells}


def _run_htconv(size, impl):
    rng = np.random.default_rng(7)
    x = rng.normal(size=(size["channels"], size["height"], size["width"]))
    kernel = rng.normal(
        size=(size["channels"], size["kernel"], size["kernel"])
    )
    fovea = FovealRegion.centered(size["height"], size["width"], 0.25)
    start = time.perf_counter()
    out = htconv_x2(x, kernel, fovea, impl=impl)
    return time.perf_counter() - start, out


def _run_sparta(size, impl):
    region = bfs_tasks(random_graph(size["nodes"], seed=5), seed=5)
    start = time.perf_counter()
    stats = simulate(
        region,
        enable_cache=False,
        memory_latency=size["memory_latency"],
        impl=impl,
    )
    elapsed = time.perf_counter() - start
    import dataclasses

    return elapsed, dataclasses.asdict(stats)


def _hls_graph(num_ops):
    """Deterministic random-ish DAG in the shape of an unrolled body."""
    rng = random.Random(17)
    kinds = [
        OpKind.ADD, OpKind.MUL, OpKind.MAC, OpKind.LOAD, OpKind.STORE,
        OpKind.DIV, OpKind.CMP,
    ]
    graph = DataflowGraph(f"bench{num_ops}")
    for i in range(num_ops):
        deps = tuple(
            f"op{j}"
            for j in rng.sample(range(i), min(i, rng.randint(0, 3)))
        )
        graph.add(
            Operation(name=f"op{i}", kind=rng.choice(kinds), inputs=deps)
        )
    return graph


def _run_hls(size, impl):
    graph = _hls_graph(size["ops"])
    resources = {
        OpKind.MUL: 2,
        OpKind.MAC: 1,
        OpKind.DIV: 1,
        OpKind.LOAD: 2,
    }
    start = time.perf_counter()
    schedule = schedule_list(graph, resources, impl=impl)
    return time.perf_counter() - start, schedule.start_cycle


def _run_ecc(size, impl):
    codec = ReedSolomonCodec(size["n"], size["k"], impl=impl)
    rng = np.random.default_rng(21)
    messages = [
        bytes(int(v) for v in rng.integers(0, 256, size["k"]))
        for _ in range(size["messages"])
    ]
    corrupted = []
    for message in messages:
        codeword = bytearray(codec.encode(message))
        for pos in rng.integers(0, size["n"], 6):
            codeword[int(pos)] ^= int(rng.integers(1, 256))
        corrupted.append(bytes(codeword))
    start = time.perf_counter()
    encoded = [codec.encode(m) for m in messages]
    decoded = [codec.decode(c) for c in corrupted]
    elapsed = time.perf_counter() - start
    payload = {
        "encoded": [c.hex() for c in encoded],
        "decoded": [None if d is None else d.hex() for d in decoded],
    }
    return elapsed, payload


KERNELS = [
    ("crossbar_mvm", _run_crossbar, "crossbar", EXACT),
    ("editdistance_banded", _run_editdistance, "editdistance", EXACT),
    ("htconv_x2", _run_htconv, "htconv", HTCONV_POLICY),
    ("sparta_cycle_sim", _run_sparta, "sparta", EXACT),
    ("hls_list_schedule", _run_hls, "hls", EXACT),
    ("rs_codec", _run_ecc, "ecc", EXACT),
]


def _equivalent(policy, scalar_payload, numpy_payload) -> bool:
    if policy == EXACT:
        if isinstance(scalar_payload, np.ndarray):
            return bool(np.array_equal(scalar_payload, numpy_payload))
        return scalar_payload == numpy_payload
    return bool(
        np.allclose(scalar_payload, numpy_payload, rtol=1e-12, atol=1e-12)
    )


def run_kernel_study(sizes, repeats: int = 2):
    """Time scalar vs numpy per kernel; returns the JSON-able study."""
    kernels = []
    for name, runner, size_key, policy in KERNELS:
        size = sizes[size_key]
        runner(size, "numpy")  # warm-up: imports, allocator, caches
        scalar_s = min(
            runner(size, "scalar")[0] for _ in range(repeats)
        )
        numpy_s, numpy_payload = runner(size, "numpy")
        for _ in range(repeats - 1):
            numpy_s = min(numpy_s, runner(size, "numpy")[0])
        _, scalar_payload = runner(size, "scalar")
        kernels.append(
            {
                "name": name,
                "size": size,
                "scalar_s": scalar_s,
                "numpy_s": numpy_s,
                "speedup": scalar_s / numpy_s if numpy_s else float("inf"),
                "scalar_checksum": _digest(scalar_payload),
                "numpy_checksum": _digest(numpy_payload),
                "equivalence_policy": policy,
                "equivalent": _equivalent(
                    policy, scalar_payload, numpy_payload
                ),
            }
        )
    return {
        "hardware": {"cpu_count": os.cpu_count()},
        "repeats": repeats,
        "kernels": kernels,
    }


def render(study) -> str:
    from repro.core.tables import Table

    table = Table(
        ["kernel", "scalar (s)", "numpy (s)", "speedup", "equivalent",
         "policy"],
        title="bench_kernels -- scalar reference vs numpy kernels",
    )
    for row in study["kernels"]:
        table.add_row(
            [row["name"], round(row["scalar_s"], 4),
             round(row["numpy_s"], 4), round(row["speedup"], 2),
             row["equivalent"], row["equivalence_policy"]]
        )
    return table.render()


def check(study, min_speedup: float = 0.8) -> None:
    """Assert the regression contract at the measured size."""
    for row in study["kernels"]:
        assert row["equivalent"], (
            f"{row['name']}: scalar/numpy results diverged "
            f"({row['scalar_checksum']} vs {row['numpy_checksum']})"
        )
        assert row["speedup"] >= min_speedup, (
            f"{row['name']}: numpy kernel at {row['speedup']:.2f}x scalar "
            f"(< {min_speedup:.1f}x regression gate)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repetitions per implementation "
                        "(min is kept)")
    parser.add_argument("--out", default=None,
                        help="write the study JSON here")
    parser.add_argument("--check", action="store_true",
                        help="assert equivalence and the >=0.8x "
                        "no-regression gate on every kernel")
    args = parser.parse_args(argv)

    sizes = QUICK if args.quick else FULL
    study = run_kernel_study(sizes, repeats=args.repeats)
    study["quick"] = bool(args.quick)
    print(render(study))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(study, fh, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    if args.check:
        check(study)
    return 0


def test_kernel_bench_contract(benchmark):
    """Pytest-benchmark entry: quick sizes, equivalence always on."""
    study = benchmark(lambda: run_kernel_study(QUICK, repeats=1))
    print()
    print(render(study))
    for row in study["kernels"]:
        assert row["equivalent"], row["name"]


if __name__ == "__main__":
    sys.exit(main())
