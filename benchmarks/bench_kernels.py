"""Experiment KERNELS: scalar-vs-numpy regression baselines per kernel.

Every hot inner kernel in the suite ships two implementations -- a
scalar reference oracle and the production numpy path (selected with
``impl=``).  This bench times both on the same seeded workload, checks
the equivalence contract (bit-exact for the integer/discrete kernels
and the crossbar; ``rtol=atol=1e-12`` for the float-reduction HTCONV),
and emits the JSON artifact CI uploads, so a kernel that silently slows
down or diverges fails the build instead of a future campaign.

Run standalone to emit the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_kernels.py --quick \
        --out BENCH_kernels.json

Acceptance targets (asserted with ``--check``, reported always):

- scalar/numpy equivalence on every kernel (asserted unconditionally
  by ``--check`` at any size);
- no numpy kernel slower than ``0.8x`` its scalar reference at the
  bench size (the guard against vectorization that stops paying).

At the full (default) sizes the edit-distance, HTCONV, and SPARTA
kernels are expected to clear 5x; the crossbar MVM is bounded by the
shared RNG stream (the noise draw dominates both paths) and the list
scheduler by its sequential resource arbitration, so they are held to
the no-regression bar only.

Two further studies ride along:

- **jit tier**: the edit-distance band kernel and the SPARTA cycle
  loop also ship a numba-compiled ``impl="jit"``.  Equivalence against
  the scalar oracle is verified *always* (the ``@njit`` shim runs the
  kernels as plain Python when numba is absent); the >=2x-over-numpy
  speed gate is timed only when numba is installed and reported as a
  ``skip`` -- not a failure -- otherwise.
- **transport**: pickle vs zero-copy shared-memory
  (:mod:`repro.exec.shm`) for large-ndarray maps through
  :class:`~repro.exec.parallel.ParallelEvaluator`; the gate is shm
  >=2x faster than pickle at >=8 MB payloads on 4 workers, with
  results bit-identical to a serial reference.

The ``check`` block (``passed`` + prefixed ``messages``) lands in the
JSON artifact so ``benchmarks/summarize.py`` can render gate rows.
"""

import argparse
import hashlib
import json
import os
import random
import sys
import time

import numpy as np

from repro.core.jit import numba_available
from repro.dna.ecc import ReedSolomonCodec
from repro.dna.editdistance import CellUpdateCounter, levenshtein_banded
from repro.axc.htconv import FovealRegion, htconv_x2
from repro.exec.parallel import ParallelEvaluator
from repro.hls.ir import DataflowGraph, OpKind, Operation
from repro.hls.scheduling import schedule_list
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.sparta.kernels import bfs_tasks, random_graph
from repro.sparta.simulator import simulate

FULL = {
    "crossbar": {"rows": 128, "cols": 128, "batch": 192},
    "editdistance": {"length": 4000, "band": 128, "pairs": 2},
    "htconv": {"channels": 8, "height": 48, "width": 48, "kernel": 3},
    "sparta": {"nodes": 512, "memory_latency": 200},
    "hls": {"ops": 1500},
    "ecc": {"n": 255, "k": 223, "messages": 40},
    "transport": {"sizes_mb": (1, 8, 64), "tasks": 8, "workers": 4},
}
QUICK = {
    "crossbar": {"rows": 32, "cols": 32, "batch": 24},
    "editdistance": {"length": 600, "band": 48, "pairs": 2},
    "htconv": {"channels": 4, "height": 20, "width": 20, "kernel": 3},
    "sparta": {"nodes": 128, "memory_latency": 200},
    "hls": {"ops": 300},
    "ecc": {"n": 255, "k": 223, "messages": 6},
    "transport": {"sizes_mb": (1, 8), "tasks": 8, "workers": 4},
}

EXACT = "exact"
HTCONV_POLICY = "rtol=1e-12,atol=1e-12"


def _digest(payload) -> str:
    """Short stable checksum of a result payload."""
    if isinstance(payload, np.ndarray):
        blob = payload.tobytes()
    else:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


# ------------------------------------------------------------------ kernels


def _run_crossbar(size, impl):
    xbar = AnalogCrossbar(
        CrossbarConfig(rows=size["rows"], cols=size["cols"]), seed=1234
    )
    rng = np.random.default_rng(1234)
    xbar.program_weights(
        rng.uniform(-1, 1, (size["rows"], size["cols"]))
    )
    xs = rng.uniform(-1, 1, (size["batch"], size["rows"]))
    start = time.perf_counter()
    out = xbar.mvm_batch(xs, impl=impl)
    return time.perf_counter() - start, out


def _random_sequence(rng, length):
    return "".join("ACGT"[i] for i in rng.integers(0, 4, length))


def _editdistance_pairs(size):
    rng = np.random.default_rng(99)
    pairs = []
    for _ in range(size["pairs"]):
        a = _random_sequence(rng, size["length"])
        # A near-duplicate read: a few scattered substitutions.
        b = list(a)
        for pos in rng.integers(0, size["length"], 10):
            b[pos] = "ACGT"[rng.integers(0, 4)]
        pairs.append((a, "".join(b)))
        # And one unrelated read (exercises the early exit).
        pairs.append((a, _random_sequence(rng, size["length"])))
    return pairs


def _run_editdistance(size, impl):
    pairs = _editdistance_pairs(size)
    counter = CellUpdateCounter()
    start = time.perf_counter()
    distances = [
        levenshtein_banded(a, b, band=size["band"], counter=counter,
                           impl=impl)
        for a, b in pairs
    ]
    elapsed = time.perf_counter() - start
    return elapsed, {"distances": distances, "cells": counter.cells}


def _run_htconv(size, impl):
    rng = np.random.default_rng(7)
    x = rng.normal(size=(size["channels"], size["height"], size["width"]))
    kernel = rng.normal(
        size=(size["channels"], size["kernel"], size["kernel"])
    )
    fovea = FovealRegion.centered(size["height"], size["width"], 0.25)
    start = time.perf_counter()
    out = htconv_x2(x, kernel, fovea, impl=impl)
    return time.perf_counter() - start, out


def _run_sparta(size, impl):
    region = bfs_tasks(random_graph(size["nodes"], seed=5), seed=5)
    start = time.perf_counter()
    stats = simulate(
        region,
        enable_cache=False,
        memory_latency=size["memory_latency"],
        impl=impl,
    )
    elapsed = time.perf_counter() - start
    import dataclasses

    return elapsed, dataclasses.asdict(stats)


def _hls_graph(num_ops):
    """Deterministic random-ish DAG in the shape of an unrolled body."""
    rng = random.Random(17)
    kinds = [
        OpKind.ADD, OpKind.MUL, OpKind.MAC, OpKind.LOAD, OpKind.STORE,
        OpKind.DIV, OpKind.CMP,
    ]
    graph = DataflowGraph(f"bench{num_ops}")
    for i in range(num_ops):
        deps = tuple(
            f"op{j}"
            for j in rng.sample(range(i), min(i, rng.randint(0, 3)))
        )
        graph.add(
            Operation(name=f"op{i}", kind=rng.choice(kinds), inputs=deps)
        )
    return graph


def _run_hls(size, impl):
    graph = _hls_graph(size["ops"])
    resources = {
        OpKind.MUL: 2,
        OpKind.MAC: 1,
        OpKind.DIV: 1,
        OpKind.LOAD: 2,
    }
    start = time.perf_counter()
    schedule = schedule_list(graph, resources, impl=impl)
    return time.perf_counter() - start, schedule.start_cycle


def _run_ecc(size, impl):
    codec = ReedSolomonCodec(size["n"], size["k"], impl=impl)
    rng = np.random.default_rng(21)
    messages = [
        bytes(int(v) for v in rng.integers(0, 256, size["k"]))
        for _ in range(size["messages"])
    ]
    corrupted = []
    for message in messages:
        codeword = bytearray(codec.encode(message))
        for pos in rng.integers(0, size["n"], 6):
            codeword[int(pos)] ^= int(rng.integers(1, 256))
        corrupted.append(bytes(codeword))
    start = time.perf_counter()
    encoded = [codec.encode(m) for m in messages]
    decoded = [codec.decode(c) for c in corrupted]
    elapsed = time.perf_counter() - start
    payload = {
        "encoded": [c.hex() for c in encoded],
        "decoded": [None if d is None else d.hex() for d in decoded],
    }
    return elapsed, payload


KERNELS = [
    ("crossbar_mvm", _run_crossbar, "crossbar", EXACT),
    ("editdistance_banded", _run_editdistance, "editdistance", EXACT),
    ("htconv_x2", _run_htconv, "htconv", HTCONV_POLICY),
    ("sparta_cycle_sim", _run_sparta, "sparta", EXACT),
    ("hls_list_schedule", _run_hls, "hls", EXACT),
    ("rs_codec", _run_ecc, "ecc", EXACT),
]


# ------------------------------------------------------------- jit tier
#
# Going through the public impl="jit" API would silently test numpy on
# numba-free installs (resolve_impl degrades), so equivalence runs the
# compiled-tier kernels *directly*: the @njit shim executes them as
# plain Python when numba is absent, same code path, just uncompiled.


def _jit_editdistance_payload(size):
    from repro.dna.jitkernels import banded_kernel

    band = size["band"]
    distances = []
    cells = 0
    for a, b in _editdistance_pairs(size):
        # Mirror the levenshtein_banded pre-steps around the kernel.
        if abs(len(a) - len(b)) > band:
            distances.append(None)
            continue
        if len(a) < len(b):
            a, b = b, a
        a_codes = np.frombuffer(a.encode("utf-8"), dtype=np.uint8)
        b_codes = np.frombuffer(b.encode("utf-8"), dtype=np.uint8)
        distance, pair_cells = banded_kernel(a_codes, b_codes, band)
        cells += int(pair_cells)
        distances.append(None if distance < 0 else int(distance))
    return {"distances": distances, "cells": cells}


def _jit_sparta_payload(size):
    import dataclasses

    from repro.sparta.accelerator import LaneConfig
    from repro.sparta.jitsim import run_jit
    from repro.sparta.noc import NocConfig
    from repro.sparta.simulator import SpartaSystem

    region = bfs_tasks(random_graph(size["nodes"], seed=5), seed=5)
    # Same system simulate() builds for _run_sparta's arguments.
    system = SpartaSystem(
        num_lanes=4,
        lane_config=LaneConfig(num_contexts=4, switch_penalty=1),
        noc_config=NocConfig(
            num_channels=4,
            memory_latency=size["memory_latency"],
            enable_cache=False,
        ),
    )
    timed_out, now = run_jit(system, region, 5_000_000)
    assert not timed_out, "jit sparta bench run hit the cycle budget"
    return dataclasses.asdict(system._stats(region, now))


JIT_PAYLOADS = {
    "editdistance_banded": _jit_editdistance_payload,
    "sparta_cycle_sim": _jit_sparta_payload,
}


def _equivalent(policy, scalar_payload, numpy_payload) -> bool:
    if policy == EXACT:
        if isinstance(scalar_payload, np.ndarray):
            return bool(np.array_equal(scalar_payload, numpy_payload))
        return scalar_payload == numpy_payload
    return bool(
        np.allclose(scalar_payload, numpy_payload, rtol=1e-12, atol=1e-12)
    )


def run_kernel_study(sizes, repeats: int = 2):
    """Time scalar vs numpy per kernel; returns the JSON-able study."""
    kernels = []
    for name, runner, size_key, policy in KERNELS:
        size = sizes[size_key]
        runner(size, "numpy")  # warm-up: imports, allocator, caches
        scalar_s = min(
            runner(size, "scalar")[0] for _ in range(repeats)
        )
        numpy_s, numpy_payload = runner(size, "numpy")
        for _ in range(repeats - 1):
            numpy_s = min(numpy_s, runner(size, "numpy")[0])
        _, scalar_payload = runner(size, "scalar")
        row = {
            "name": name,
            "size": size,
            "scalar_s": scalar_s,
            "numpy_s": numpy_s,
            "speedup": scalar_s / numpy_s if numpy_s else float("inf"),
            "scalar_checksum": _digest(scalar_payload),
            "numpy_checksum": _digest(numpy_payload),
            "equivalence_policy": policy,
            "equivalent": _equivalent(
                policy, scalar_payload, numpy_payload
            ),
        }
        if name in JIT_PAYLOADS:
            jit_payload = JIT_PAYLOADS[name](size)
            row["jit_checksum"] = _digest(jit_payload)
            row["jit_equivalent"] = _equivalent(
                policy, scalar_payload, jit_payload
            )
            row["jit_s"] = None
            row["jit_speedup"] = None
            if numba_available():
                runner(size, "jit")  # warm-up: the numba compile
                jit_s = min(
                    runner(size, "jit")[0] for _ in range(repeats)
                )
                row["jit_s"] = jit_s
                row["jit_speedup"] = (
                    numpy_s / jit_s if jit_s else float("inf")
                )
        kernels.append(row)
    return {
        "hardware": {"cpu_count": os.cpu_count()},
        "repeats": repeats,
        "numba": numba_available(),
        "kernels": kernels,
    }


# ----------------------------------------------------------- transport


def _transport_probe(task):
    """Strided reduction over the shipped payload (module-level so the
    process pool can pickle it).  Cheap on purpose: the map's cost is
    then dominated by how the payload crossed the process boundary."""
    return float(task["payload"][::1024].sum())


def run_transport_study(spec, repeats: int = 2):
    """Time pickle vs shared-memory transport for large-ndarray maps.

    Every task of an 8-task map carries the same float64 payload; each
    timed map includes pool startup, which both transports pay
    identically.  Worker results must equal a serial in-process
    reference exactly -- the attached shm views alias the same bytes
    the pickle copies carry.
    """
    rows = []
    for payload_mb in spec["sizes_mb"]:
        payload = np.random.default_rng(4242).standard_normal(
            payload_mb * (1 << 20) // 8
        )
        tasks = [
            {"payload": payload, "cell": i} for i in range(spec["tasks"])
        ]
        expected = [_transport_probe(task) for task in tasks]
        row = {
            "payload_mb": payload_mb,
            "tasks": spec["tasks"],
            "workers": spec["workers"],
            "equivalent": True,
        }
        for transport in ("pickle", "shm"):
            evaluator = ParallelEvaluator(
                max_workers=spec["workers"],
                mode="process",
                transport=transport,
                shm_threshold_bytes=1 << 20,
            )
            best = float("inf")
            try:
                for _ in range(repeats):
                    start = time.perf_counter()
                    got = evaluator.map(_transport_probe, tasks)
                    best = min(best, time.perf_counter() - start)
                    row["equivalent"] = (
                        row["equivalent"] and got == expected
                    )
            finally:
                if evaluator._arena is not None:
                    evaluator._arena.close()
            row[f"{transport}_s"] = best
            if transport == "shm":
                row["shm_engaged"] = evaluator.last_transport == "shm"
        row["speedup_shm"] = (
            row["pickle_s"] / row["shm_s"]
            if row["shm_s"]
            else float("inf")
        )
        rows.append(row)
    return rows


def render(study) -> str:
    from repro.core.tables import Table

    table = Table(
        ["kernel", "scalar (s)", "numpy (s)", "speedup", "jit",
         "equivalent", "policy"],
        title="bench_kernels -- scalar reference vs numpy/jit kernels",
    )
    for row in study["kernels"]:
        jit = "-"
        if "jit_equivalent" in row:
            if row["jit_speedup"] is not None:
                jit = f"{row['jit_speedup']:.2f}x"
            else:
                jit = "eq-only" if row["jit_equivalent"] else "DIVERGED"
        table.add_row(
            [row["name"], round(row["scalar_s"], 4),
             round(row["numpy_s"], 4), round(row["speedup"], 2), jit,
             row["equivalent"], row["equivalence_policy"]]
        )
    return table.render()


def render_transport(study) -> str:
    from repro.core.tables import Table

    table = Table(
        ["payload", "tasks", "workers", "pickle (s)", "shm (s)",
         "speedup", "equivalent"],
        title="bench_kernels -- pickle vs shared-memory transport",
    )
    for row in study["transport"]:
        table.add_row(
            [f"{row['payload_mb']} MB", row["tasks"], row["workers"],
             round(row["pickle_s"], 4), round(row["shm_s"], 4),
             round(row["speedup_shm"], 2), row["equivalent"]]
        )
    return table.render()


def build_check(
    study,
    min_speedup: float = 0.8,
    jit_min_speedup: float = 2.0,
    shm_min_speedup: float = 2.0,
    shm_gate_mb: int = 8,
) -> dict:
    """Evaluate every gate into the JSON ``check`` block.

    ``messages`` follow the summarize.py convention: ``FAIL ...`` marks
    a failed gate, ``skip ...`` a gate that could not run here (e.g.
    jit timing without numba), anything else is informational.
    """
    messages = []
    failures = 0

    def gate(ok, fail_msg, ok_msg):
        nonlocal failures
        if not ok:
            failures += 1
        messages.append(ok_msg if ok else fail_msg)

    for row in study["kernels"]:
        name = row["name"]
        gate(
            row["equivalent"],
            f"FAIL equivalence {name}: scalar/numpy diverged "
            f"({row['scalar_checksum']} vs {row['numpy_checksum']})",
            f"ok equivalence {name}",
        )
        gate(
            row["speedup"] >= min_speedup,
            f"FAIL speed {name}: numpy at {row['speedup']:.2f}x scalar "
            f"(< {min_speedup:.1f}x no-regression gate)",
            f"ok speed {name} ({row['speedup']:.2f}x)",
        )
        if "jit_equivalent" in row:
            gate(
                row["jit_equivalent"],
                f"FAIL equivalence {name}: jit diverged from scalar "
                f"({row['jit_checksum']} vs {row['scalar_checksum']})",
                f"ok equivalence {name} jit",
            )
            if row["jit_s"] is not None:
                gate(
                    row["jit_speedup"] >= jit_min_speedup,
                    f"FAIL speed {name}: jit at {row['jit_speedup']:.2f}x"
                    f" numpy (< {jit_min_speedup:.1f}x compiled-tier "
                    "gate)",
                    f"ok speed {name} jit ({row['jit_speedup']:.2f}x)",
                )
            else:
                messages.append(
                    f"skip jit speed {name} (numba not installed)"
                )
    for row in study.get("transport", ()):
        mb = row["payload_mb"]
        gate(
            row["equivalent"] and row["shm_engaged"],
            f"FAIL transport {mb} MB: shm diverged from the serial "
            "reference or never engaged",
            f"ok transport {mb} MB equivalence",
        )
        if mb >= shm_gate_mb:
            gate(
                row["speedup_shm"] >= shm_min_speedup,
                f"FAIL transport {mb} MB: shm at "
                f"{row['speedup_shm']:.2f}x pickle "
                f"(< {shm_min_speedup:.1f}x zero-copy gate)",
                f"ok transport {mb} MB ({row['speedup_shm']:.2f}x)",
            )
        else:
            messages.append(
                f"skip transport gate {mb} MB (below the "
                f"{shm_gate_mb} MB gate size)"
            )
    return {"passed": failures == 0, "messages": messages}


def check(study, min_speedup: float = 0.8) -> None:
    """Assert the regression contract at the measured size."""
    block = study.get("check")
    if block is None:
        block = build_check(study, min_speedup=min_speedup)
    bad = [m for m in block["messages"] if m.startswith("FAIL")]
    assert not bad, "; ".join(bad)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repetitions per implementation "
                        "(min is kept)")
    parser.add_argument("--out", default=None,
                        help="write the study JSON here")
    parser.add_argument("--check", action="store_true",
                        help="assert equivalence, the >=0.8x numpy "
                        "no-regression gate, the >=2x jit gate (when "
                        "numba is installed), and the >=2x shm "
                        "transport gate at >=8 MB payloads")
    args = parser.parse_args(argv)

    sizes = QUICK if args.quick else FULL
    study = run_kernel_study(sizes, repeats=args.repeats)
    study["quick"] = bool(args.quick)
    study["transport"] = run_transport_study(
        sizes["transport"], repeats=args.repeats
    )
    study["check"] = build_check(study)
    print(render(study))
    print()
    print(render_transport(study))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(study, fh, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    if args.check:
        check(study)
    return 0


def test_kernel_bench_contract(benchmark):
    """Pytest-benchmark entry: quick sizes, equivalence always on (the
    pool-spawning transport study stays out -- it has its own tests)."""
    study = benchmark(lambda: run_kernel_study(QUICK, repeats=1))
    print()
    print(render(study))
    for row in study["kernels"]:
        assert row["equivalent"], row["name"]
        assert row.get("jit_equivalent", True), f"{row['name']} jit"


if __name__ == "__main__":
    sys.exit(main())
