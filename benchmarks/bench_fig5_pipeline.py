"""Experiment FIG5: regenerate Fig. 5 -- the end-to-end DL pipeline for
medical image segmentation, plus the Sec. VI I/O-path optimization
claims ("training time reduction of up to 10% and inference throughput
improvement of up to 10%").

Workload: the synthetic CT-segmentation workload on a GPU node with the
storage tiers swept (SATA baseline -> NVMe / persistent memory /
computational storage).  The bench prints the per-stage profile and the
improvement table, and asserts the 10% claims plus the device ranking.
"""

from repro.core.metrics import relative_change
from repro.core.tables import Table
from repro.hetero.devices import CPU_XEON, FPGA_ALVEO, GPU_A100
from repro.hetero.pipeline import simulate_inference, simulate_training
from repro.hetero.profiler import bottleneck_stage, io_share, profile
from repro.hetero.storage import (
    NVME_SSD,
    PERSISTENT_MEMORY,
    SATA_SSD,
    computational_storage,
)

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()

TIERS = [
    ("SATA SSD (baseline)", SATA_SSD),
    ("NVMe SSD", NVME_SSD),
    ("Persistent Memory", PERSISTENT_MEMORY),
    ("Computational Storage", computational_storage()),
]


def regenerate_fig5():
    training = {name: simulate_training(storage=s) for name, s in TIERS}
    inference = {name: simulate_inference(storage=s) for name, s in TIERS}
    devices = {
        device.name: simulate_inference(device=device)
        for device in (CPU_XEON, GPU_A100, FPGA_ALVEO)
    }
    return training, inference, devices


def test_fig5_pipeline(benchmark):
    training, inference, devices = benchmark(regenerate_fig5)

    base_name = TIERS[0][0]
    base_train = training[base_name]
    base_infer = inference[base_name]

    stage_table = Table(
        ["stage", "seconds", "share (%)"],
        title="Fig. 5 -- training stage profile (SATA baseline)",
    )
    for entry in profile(base_train):
        stage_table.add_row(
            [entry.stage, entry.seconds, 100 * entry.share]
        )
    print()
    print(stage_table)
    print(f"bottleneck: {bottleneck_stage(base_train).stage}, "
          f"I/O share {100 * io_share(base_train):.1f}%")

    improvement = Table(
        ["storage tier", "train time (s)", "train change (%)",
         "infer (vol/s)", "infer change (%)"],
        title="Sec. VI -- I/O-path optimization",
    )
    best_train_cut = 0.0
    best_infer_gain = 0.0
    for name, _ in TIERS:
        t = training[name]
        i = inference[name]
        t_change = 100 * relative_change(
            base_train.total_seconds, t.total_seconds
        )
        i_change = 100 * relative_change(
            base_infer.throughput_volumes_s, i.throughput_volumes_s
        )
        best_train_cut = max(best_train_cut, -t_change)
        best_infer_gain = max(best_infer_gain, i_change)
        improvement.add_row(
            [name, t.total_seconds, t_change,
             i.throughput_volumes_s, i_change]
        )
    print()
    print(improvement)

    device_table = Table(
        ["device", "inference throughput (vol/s)", "energy (kJ)"],
        title="device sweep (inference, SATA)",
    )
    for name, result in devices.items():
        device_table.add_row(
            [name, result.throughput_volumes_s, result.energy_j / 1e3]
        )
    print()
    print(device_table)

    # The paper's claims: gains cap out around 10%.
    assert 5.0 <= best_train_cut <= 15.0
    assert 5.0 <= best_infer_gain <= 15.0
    # GPU beats CPU end-to-end; the FPGA card is the efficiency point.
    assert (
        devices["A100 GPU"].throughput_volumes_s
        > devices["Xeon server CPU"].throughput_volumes_s
    )
    assert devices["Alveo FPGA"].energy_j < devices["A100 GPU"].energy_j
