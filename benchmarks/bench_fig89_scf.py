"""Experiment FIG8/9: the Scalable Compute Fabric and its Compute Unit.

Workload: a BF16 transformer encoder block.  The bench (i) checks the
modeled CU against the published Fig. 9 operating point (~150 GFLOPS,
~1.5 TFLOPS/W at 460 MHz / 0.55 V, 1.21 mm^2 in GF12), (ii) runs the
Fig. 8 scale-up study for 1..64 CUs under hierarchical-AXI and NoC
interconnects, (iii) places the block's GEMMs on the CU roofline, and
(iv) runs a small RV32IM control program on the functional core
simulator to exercise the RISC-V substrate.
"""

import pytest

from repro.core.tables import Table
from repro.core.units import GIGA, TERA
from repro.scf.cluster import ComputeUnit, ComputeUnitConfig
from repro.scf.fabric import ScalableComputeFabric
from repro.scf.interconnect import AXIHierarchy, NocMesh
from repro.scf.roofline import gemm_intensity, ridge_intensity, roofline_performance
from repro.scf.rv32 import assemble_and_run
from repro.scf.workloads import TransformerConfig, transformer_block_gemms

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()

CU_COUNTS = [1, 2, 4, 8, 16, 32, 64]


def run_scf_study():
    # (i) single-CU operating point on one encoder block.
    cu = ComputeUnit()
    workload = TransformerConfig()
    for _, m, n, k, count in transformer_block_gemms(workload):
        for _ in range(count):
            cu.run_gemm(m, n, k)
    cu_gflops = cu.achieved_flops() / GIGA
    cu_tflops_w = cu.achieved_efficiency_flops_per_w() / TERA

    # (ii) the scale-up study.
    big = TransformerConfig(seq_len=2048)
    scaling = {
        "NoC": ScalableComputeFabric(interconnect=NocMesh()).scaling_study(
            big, CU_COUNTS
        ),
        "AXI": ScalableComputeFabric(
            interconnect=AXIHierarchy()
        ).scaling_study(big, CU_COUNTS),
    }

    # (iv) a RISC-V control program on the functional simulator (the CVA6
    # host dispatching tiles: compute tile count for a 2048x512 workload).
    host_program = """
        li t0, 2048       # sequence length
        li t1, 256        # tile rows per CU slice
        divu a0, t0, t1   # number of tiles the host dispatches
        li a7, 93
        ecall
    """
    tiles = assemble_and_run(host_program).exit_code
    return cu_gflops, cu_tflops_w, scaling, tiles


def test_fig89_scf(benchmark):
    cu_gflops, cu_tflops_w, scaling, tiles = benchmark(run_scf_study)

    print()
    print(
        f"Fig. 9 CU (modeled): {cu_gflops:.1f} GFLOPS, "
        f"{cu_tflops_w:.2f} TFLOPS/W @ 460 MHz, 0.55 V, "
        f"{ComputeUnitConfig().area_mm2} mm^2 "
        "(published: 150 GFLOPS, 1.5 TFLOPS/W, 1.21 mm^2)"
    )
    table = Table(
        ["CUs", "NoC GFLOPS", "NoC eff", "AXI GFLOPS", "AXI eff"],
        title="Fig. 8 -- SCF scale-up (transformer block, seq 2048)",
    )
    for noc_pt, axi_pt in zip(scaling["NoC"], scaling["AXI"]):
        table.add_row(
            [noc_pt.num_cus, noc_pt.sustained_flops / GIGA,
             noc_pt.parallel_efficiency,
             axi_pt.sustained_flops / GIGA,
             axi_pt.parallel_efficiency]
        )
    print(table)

    cu = ComputeUnit()
    ridge = ridge_intensity(cu.peak_flops, 32 * GIGA)
    print(f"CU roofline ridge at {ridge:.1f} FLOP/byte "
          "(32 GB/s fabric port)")
    for name, m, n, k, _ in transformer_block_gemms(TransformerConfig()):
        intensity = gemm_intensity(m, n, k)
        point = roofline_performance(cu.peak_flops, 32 * GIGA, intensity,
                                     name)
        print(f"  {name}: {intensity:.1f} FLOP/B -> "
              f"{point.attainable_flops / GIGA:.0f} GFLOPS "
              f"({'compute' if point.compute_bound else 'memory'}-bound)")
    print(f"host RV32 program dispatched {tiles} tiles")

    # (i) Fig. 9 anchor within 10%.
    assert cu_gflops == pytest.approx(150.0, rel=0.10)
    assert cu_tflops_w == pytest.approx(1.5, rel=0.10)
    # (ii) NoC keeps >85% efficiency at 64 CUs; AXI collapses below 50%.
    noc64 = scaling["NoC"][-1]
    axi64 = scaling["AXI"][-1]
    assert noc64.parallel_efficiency > 0.85
    assert axi64.parallel_efficiency < 0.5
    assert noc64.sustained_flops > 2 * axi64.sustained_flops
    # Efficiencies never exceed 1 (sequence parallelism is sublinear).
    for points in scaling.values():
        assert all(p.parallel_efficiency <= 1.01 for p in points)
    # (iv) the RISC-V host program computed the right tile count.
    assert tiles == 8
