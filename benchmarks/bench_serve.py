"""Experiment SERVE: latency/throughput curves of the evaluation service.

The serving claim behind :mod:`repro.serve`: a micro-batched front
door over the workload registry sustains higher throughput than
request-at-a-time dispatch (in-batch dedup + amortized dispatch, the
NeuroScalar-style batched-serving effect), keeps latency bounded below
saturation, and turns warm reruns into content-addressed cache hits --
without ever changing a result.

Run standalone to emit the JSON artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick \
        --out BENCH_serve.json

Acceptance targets (asserted with ``--check``, reported always):

- p50/p95/p99 latency and achieved throughput at >= 3 offered-load
  levels (0.5x / 1x / 2x of estimated capacity);
- >= 2x throughput for the largest micro-batch vs batch-size-1 at the
  highest (burst) load on the same Zipf request stream;
- warm-cache replay served from the result cache at >= 95% hit rate,
  byte-identical (canonical form) to the cold run.
"""

import argparse
import json
import sys
import time

from repro.core.api import get_workload
from repro.exec import ResultCache
from repro.serve import EvaluationService, generate_requests, run_load

WORKLOAD = "imc-crossbar"
FULL_REQUESTS = 64
QUICK_REQUESTS = 24
FULL_BATCHES = (1, 2, 4, 8, 16)
QUICK_BATCHES = (1, 4, 8)
POOL_SIZE = 6
ZIPF_SKEW = 2.0
SEED = 7
LOAD_FACTORS = (0.5, 1.0, 2.0)


def _service(batch_size, num_requests, cache=None):
    return EvaluationService(
        batch_size=batch_size,
        batch_wait_s=0.002,
        max_queue=max(1, num_requests),
        cache=cache,
    )


def estimate_capacity_rps(requests):
    """Mean direct evaluation rate over the distinct configs of the
    stream -- the denominator for the offered-load factors."""
    seen = {}
    for request in requests:
        seen.setdefault(request.digest, request)
    workload = get_workload(WORKLOAD)
    start = time.perf_counter()
    for request in seen.values():
        workload.evaluate(request.config, seed=request.seed)
    elapsed = time.perf_counter() - start
    mean_s = elapsed / len(seen)
    return (1.0 / mean_s if mean_s > 0 else float("inf")), mean_s


def run_load_curve(requests, capacity_rps, batch_size=8):
    """Latency/throughput at paced offered loads below and above
    capacity (fresh uncached service per level: pure queueing)."""
    curve = []
    for factor in LOAD_FACTORS:
        rate = capacity_rps * factor
        service = _service(batch_size, len(requests))
        try:
            point = run_load(service, requests, rate_rps=rate)
            snapshot = service.snapshot()
        finally:
            service.shutdown()
        curve.append(
            {
                "load_factor": factor,
                "offered_rps": rate,
                "achieved_rps": point["achieved_rps"],
                "latency_s": {
                    k: point["latency_s"][k]
                    for k in ("p50", "p95", "p99", "mean", "max", "count")
                },
                "errors": point["errors"],
                "rejected": point["rejected"],
                "mean_batch_occupancy": (
                    snapshot["batches"]["mean_occupancy"]
                ),
                "queue_depth_max": snapshot["queue_depth"]["max"],
            }
        )
    return curve


def run_batch_curve(requests, batch_sizes):
    """Burst throughput vs micro-batch size on one Zipf stream.

    Caching is off, so the only levers are in-batch dedup and amortized
    dispatch -- the micro-batching effect itself.  Results are checked
    identical across batch sizes (canonical form).
    """
    curve = []
    reference = None
    for batch_size in batch_sizes:
        service = _service(batch_size, len(requests))
        try:
            point = run_load(service, requests, rate_rps=None)
            snapshot = service.snapshot()
        finally:
            service.shutdown()
        canon = [r.canonical_json() for r in point["results"]]
        if reference is None:
            reference = canon
        entry = {
            "batch_size": batch_size,
            "throughput_rps": point["achieved_rps"],
            "elapsed_s": point["elapsed_s"],
            "latency_s": {
                k: point["latency_s"][k] for k in ("p50", "p95", "p99")
            },
            "computed": snapshot["evaluations"]["computed"],
            "deduped": snapshot["evaluations"]["deduped"],
            "mean_batch_occupancy": snapshot["batches"]["mean_occupancy"],
            "identical_to_batch1": canon == reference,
        }
        curve.append(entry)
    base = curve[0]["throughput_rps"]
    for entry in curve:
        entry["speedup_vs_batch1"] = (
            entry["throughput_rps"] / base if base else float("inf")
        )
    return curve


def run_cache_study(requests, batch_size=8):
    """Cold-vs-warm replay through a shared result cache."""
    cache = ResultCache()
    outcomes = {}
    canonical = {}
    for label in ("cold", "warm"):
        service = _service(batch_size, len(requests), cache=cache)
        try:
            point = run_load(service, requests, rate_rps=None)
            snapshot = service.snapshot()
        finally:
            # close() on the shared in-memory cache only flushes, so the
            # warm pass still sees the cold pass's entries.
            service.shutdown()
        canonical[label] = [r.canonical_json() for r in point["results"]]
        evaluations = snapshot["evaluations"]
        served = (
            evaluations["computed"]
            + evaluations["cache_hits"]
            + evaluations["deduped"]
        )
        outcomes[label] = {
            "throughput_rps": point["achieved_rps"],
            "computed": evaluations["computed"],
            "cache_hits": evaluations["cache_hits"],
            "deduped": evaluations["deduped"],
            "hit_rate": (
                evaluations["cache_hits"] / served if served else 0.0
            ),
        }
    outcomes["identical_cold_warm"] = canonical["cold"] == canonical["warm"]
    return outcomes


def run_serve_study(num_requests, batch_sizes):
    workload = get_workload(WORKLOAD)
    requests = generate_requests(
        workload,
        num_requests,
        pool_size=POOL_SIZE,
        skew=ZIPF_SKEW,
        seed=SEED,
    )
    capacity_rps, mean_cell_s = estimate_capacity_rps(requests)
    return {
        "workload": WORKLOAD,
        "num_requests": num_requests,
        "pool_size": POOL_SIZE,
        "zipf_skew": ZIPF_SKEW,
        "seed": SEED,
        "estimated_capacity_rps": capacity_rps,
        "mean_cell_s": mean_cell_s,
        "load_curve": run_load_curve(requests, capacity_rps),
        "batch_curve": run_batch_curve(requests, batch_sizes),
        "cache": run_cache_study(requests),
    }


def check(report):
    """Gate the acceptance targets; returns (ok, messages)."""
    messages = []
    ok = True
    if len(report["load_curve"]) < 3:
        ok = False
        messages.append("FAIL: fewer than 3 offered-load levels")
    else:
        messages.append(
            f"ok: {len(report['load_curve'])} offered-load levels measured"
        )
    top = report["batch_curve"][-1]
    if top["speedup_vs_batch1"] < 2.0:
        ok = False
        messages.append(
            f"FAIL: batch={top['batch_size']} speedup "
            f"{top['speedup_vs_batch1']:.2f}x < 2.0x over batch-size-1"
        )
    else:
        messages.append(
            f"ok: batch={top['batch_size']} gives "
            f"{top['speedup_vs_batch1']:.2f}x over batch-size-1"
        )
    if not all(e["identical_to_batch1"] for e in report["batch_curve"]):
        ok = False
        messages.append("FAIL: batch sizes changed results")
    else:
        messages.append("ok: results identical across batch sizes")
    warm = report["cache"]["warm"]
    if warm["hit_rate"] < 0.95:
        ok = False
        messages.append(
            f"FAIL: warm hit rate {warm['hit_rate']:.2f} < 0.95"
        )
    else:
        messages.append(f"ok: warm hit rate {warm['hit_rate']:.2f}")
    if not report["cache"]["identical_cold_warm"]:
        ok = False
        messages.append("FAIL: warm results diverged from cold run")
    else:
        messages.append("ok: warm results identical to cold run")
    return ok, messages


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if acceptance targets fail")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    num_requests = QUICK_REQUESTS if args.quick else FULL_REQUESTS
    batch_sizes = QUICK_BATCHES if args.quick else FULL_BATCHES
    report = run_serve_study(num_requests, batch_sizes)
    ok, messages = check(report)
    report["check"] = {"passed": ok, "messages": messages}

    print(f"workload: {report['workload']}  requests: {num_requests}  "
          f"capacity ~{report['estimated_capacity_rps']:.1f} rps")
    for point in report["load_curve"]:
        latency = point["latency_s"]
        print(
            f"  load {point['load_factor']:.1f}x "
            f"({point['offered_rps']:.1f} rps offered): "
            f"achieved {point['achieved_rps']:.1f} rps, "
            f"p50 {latency['p50'] * 1000:.1f} ms, "
            f"p95 {latency['p95'] * 1000:.1f} ms, "
            f"p99 {latency['p99'] * 1000:.1f} ms"
        )
    for entry in report["batch_curve"]:
        print(
            f"  batch {entry['batch_size']:>2}: "
            f"{entry['throughput_rps']:.1f} rps "
            f"({entry['speedup_vs_batch1']:.2f}x), "
            f"computed {entry['computed']}, deduped {entry['deduped']}"
        )
    print(
        f"  cache: warm hit rate "
        f"{report['cache']['warm']['hit_rate']:.2f}, identical="
        f"{report['cache']['identical_cold_warm']}"
    )
    for message in messages:
        print(f"  {message}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    if args.check and not ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
