"""Design-choice ablations.

The paper motivates several architectural choices without quantifying
them in the overview; DESIGN.md commits to ablating them:

- **ADC resolution** (Sec. IV): "precise A/D converters" improve accuracy
  but converter energy doubles per bit -- where is the knee?
- **SPARTA context-switch penalty** (Sec. III): latency hiding pays as
  long as a switch costs less than the latency it hides.
- **DNA sequencing coverage** (Sec. VI): more reads per oligo buy
  recovery robustness at linear sequencing cost.
- **SCF operating voltage** (Sec. VII): the 0.55 V point trades peak
  performance for efficiency along the DVFS curve.
- **fixed-point bitwidth** (Sec. V): the paper quantizes FSRCNN to
  16 bits -- the PSNR-vs-width curve shows why 16 is safe and 8 is not.
"""

import numpy as np

from repro.core.tables import Table
from repro.dna.channel import ChannelParams
from repro.dna.decoder import DNAStorageSystem
from repro.dna.encoding import OligoLayout
from repro.imc.adc import ADCConfig
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.scf.power import CU_PUBLISHED, dvfs_scale
from repro.sparta import bfs_tasks, random_graph, simulate

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()

ADC_BITS = (4, 6, 8, 10)
SWITCH_PENALTIES = (0, 1, 4, 16, 64)
COVERAGES = (2, 4, 8)
VOLTAGES = (0.40, 0.55, 0.70, 0.90)


def run_ablations():
    rng = np.random.default_rng(0)

    # ADC resolution vs MVM error and converter energy.
    weights = rng.normal(0, 0.3, (32, 32))
    x = rng.uniform(-1, 1, 32)
    y_ref = weights.T @ x
    adc_rows = []
    for bits in ADC_BITS:
        config = CrossbarConfig(rows=32, cols=32, adc=ADCConfig(bits=bits))
        xbar = AnalogCrossbar(config, seed=1)
        xbar.program_weights(weights)
        errors = [
            float(np.linalg.norm(xbar.mvm(x) - y_ref) / np.linalg.norm(y_ref))
            for _ in range(5)
        ]
        adc_rows.append(
            (bits, float(np.mean(errors)),
             ADCConfig(bits=bits).energy_per_conversion_j)
        )

    # SPARTA switch penalty.
    region = bfs_tasks(random_graph(num_nodes=128, avg_degree=8, seed=2))
    sparta_rows = [
        (penalty,
         simulate(region, num_lanes=4, contexts_per_lane=8,
                  switch_penalty=penalty).cycles)
        for penalty in SWITCH_PENALTIES
    ]

    # DNA coverage.
    payload = bytes(rng.integers(0, 256, 120, dtype=np.uint8))
    dna_rows = []
    for coverage in COVERAGES:
        successes = 0
        trials = 3
        for trial in range(trials):
            system = DNAStorageSystem(
                layout=OligoLayout(payload_bytes=10, index_bytes=1),
                rs_n=40, rs_k=30,
                channel_params=ChannelParams(
                    substitution_rate=0.02, insertion_rate=0.01,
                    deletion_rate=0.01, mean_coverage=coverage,
                    coverage_sigma=0.4,
                ),
                seed=100 + trial,
            )
            report = system.roundtrip(payload)
            successes += int(report.success and report.payload == payload)
        dna_rows.append((coverage, successes / trials))

    # SCF DVFS.
    dvfs_rows = [
        (v, dvfs_scale(CU_PUBLISHED, v)) for v in VOLTAGES
    ]

    # Fixed-point bitwidth vs super-resolution PSNR (untrained model
    # with the bilinear deconv initialization -- the *relative* PSNR
    # across widths is what the ablation measures).
    from repro.axc.data import sr_pair
    from repro.axc.fsrcnn import FSRCNN, FSRCNN_25_5_1
    from repro.core.fixedpoint import FixedPointFormat
    from repro.core.metrics import psnr

    model = FSRCNN(FSRCNN_25_5_1, seed=0)
    lr_img, hr_img = sr_pair(64, 64, kind="mixed", seed=11)
    float_out = model.forward(lr_img)
    float_psnr = psnr(hr_img, float_out, peak=1.0)
    quant_rows = []
    for bits in (6, 8, 12, 16):
        fmt = FixedPointFormat(total_bits=bits, frac_bits=bits - 4)
        quant_out = model.forward(lr_img, quant_fmt=fmt)
        quant_rows.append((bits, psnr(hr_img, quant_out, peak=1.0)))
    return adc_rows, sparta_rows, dna_rows, dvfs_rows, quant_rows, float_psnr


def test_ablations(benchmark):
    (adc_rows, sparta_rows, dna_rows, dvfs_rows, quant_rows,
     float_psnr) = benchmark(run_ablations)

    adc_table = Table(
        ["ADC bits", "MVM rel. error", "energy/conversion (J)"],
        title="Ablation: ADC resolution (Sec. IV)",
    )
    for row in adc_rows:
        adc_table.add_row(row)
    print()
    print(adc_table)

    sparta_table = Table(
        ["switch penalty (cycles)", "BFS cycles"],
        title="Ablation: SPARTA context-switch penalty (Sec. III)",
    )
    for row in sparta_rows:
        sparta_table.add_row(row)
    print()
    print(sparta_table)

    dna_table = Table(
        ["mean coverage (reads/oligo)", "recovery rate"],
        title="Ablation: DNA sequencing coverage (Sec. VI)",
    )
    for row in dna_rows:
        dna_table.add_row(row)
    print()
    print(dna_table)

    dvfs_table = Table(
        ["voltage (V)", "clock (MHz)", "peak GFLOPS", "TFLOPS/W"],
        title="Ablation: CU operating voltage (Sec. VII)",
    )
    for v, op in dvfs_rows:
        dvfs_table.add_row(
            [v, op.clock_hz / 1e6, op.peak_flops / 1e9,
             op.efficiency_tflops_per_w]
        )
    print()
    print(dvfs_table)

    # ADC: coarse converters hurt accuracy; energy doubles per bit.
    errors = [err for _, err, _ in adc_rows]
    assert errors[0] > 1.5 * errors[-2]  # 4-bit much worse than 8-bit
    energies = [e for _, _, e in adc_rows]
    assert energies[-1] == 4 * energies[-2]  # 10-bit = 4x the 8-bit energy
    # SPARTA: cycles grow monotonically with the switch penalty, and
    # cheap switches (<= 4 cycles vs 100-cycle memory) stay within 2x of
    # free switching.
    cycles = [c for _, c in sparta_rows]
    assert all(a <= b for a, b in zip(cycles, cycles[1:]))
    assert cycles[2] < 2 * cycles[0]
    # DNA: recovery rate is non-decreasing in coverage and perfect at 8x.
    rates = [r for _, r in dna_rows]
    assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))
    assert rates[-1] == 1.0
    # DVFS: efficiency falls monotonically with voltage; performance rises.
    effs = [op.efficiency_tflops_per_w for _, op in dvfs_rows]
    flops = [op.peak_flops for _, op in dvfs_rows]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    assert all(a <= b for a, b in zip(flops, flops[1:]))

    quant_table = Table(
        ["bits", "PSNR (dB)"],
        title=f"Ablation: fixed-point width (float: {float_psnr:.2f} dB)",
    )
    for row in quant_rows:
        quant_table.add_row(row)
    print()
    print(quant_table)
    # 16-bit is transparent (the paper's choice); 6-bit visibly degrades.
    psnrs = dict(quant_rows)
    assert abs(psnrs[16] - float_psnr) < 0.3
    assert psnrs[6] < psnrs[16]
