"""Experiment TAB1-QUAL: the Sec. V quality claim -- ">80% of MACs saved,
PSNR reduction lower than 10%".

Workload: FSRCNN(25,5,1) trained on synthetic scenes, quantized to
16-bit fixed point, evaluated with the exact TCONV output layer versus
HTCONV at 25% foveal coverage, against the bigger FSRCNN(56,12,4)
baseline for the MAC comparison.  The bench prints per-scene PSNR and
the MAC ledger, and asserts both halves of the claim.
"""

import numpy as np

from repro.axc.data import evaluation_set
from repro.axc.fsrcnn import FSRCNN, FSRCNN_25_5_1, FSRCNN_56_12_4
from repro.axc.htconv import FovealRegion
from repro.axc.macs import MacCounter
from repro.axc.training import train_fsrcnn
from repro.core.fixedpoint import Q16
from repro.core.metrics import psnr
from repro.core.tables import Table

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()

_CACHE = {}


def _trained_model():
    if "model" not in _CACHE:
        model = FSRCNN(FSRCNN_25_5_1, seed=0)
        train_fsrcnn(model, steps=250, patch=24, seed=1)
        _CACHE["model"] = model
    return _CACHE["model"]


def evaluate_quality():
    model = _trained_model()
    pairs = evaluation_set(hr_size=64, count=6)
    rows = []
    exact_counter = MacCounter()
    hybrid_counter = MacCounter()
    for idx, (lr, hr) in enumerate(pairs):
        fovea = FovealRegion.centered(*lr.shape, 0.25)
        exact = model.forward(lr, quant_fmt=Q16, counter=exact_counter)
        hybrid = model.forward(
            lr, tconv_mode="htconv", fovea=fovea, quant_fmt=Q16,
            counter=hybrid_counter,
        )
        rows.append(
            (idx, psnr(hr, exact, peak=1.0), psnr(hr, hybrid, peak=1.0))
        )
    # Dense-baseline MAC count: the FSRCNN(56,12,4) reference model on
    # the same inputs.
    baseline_counter = MacCounter()
    baseline = FSRCNN(FSRCNN_56_12_4, seed=0)
    for lr, _ in pairs:
        baseline.forward(lr, counter=baseline_counter)
    return rows, exact_counter, hybrid_counter, baseline_counter


def test_mac_saving_and_psnr(benchmark):
    rows, exact_macs, hybrid_macs, baseline_macs = benchmark(
        evaluate_quality
    )

    table = Table(
        ["scene", "PSNR exact TCONV (dB)", "PSNR HTCONV (dB)",
         "drop (%)"],
        title="Sec. V quality -- FSRCNN(25,5,1) 16-bit, fovea 25%",
    )
    drops = []
    for idx, p_exact, p_hybrid in rows:
        drop = 100.0 * (1.0 - p_hybrid / p_exact)
        drops.append(drop)
        table.add_row([idx, p_exact, p_hybrid, drop])
    print()
    print(table)

    tconv_saving = hybrid_macs.saving_vs(exact_macs)
    model_saving = hybrid_macs.saving_vs(baseline_macs)
    print(f"HTCONV vs exact TCONV (same model): {100*tconv_saving:.1f}% "
          "of deconv+feature MACs saved")
    print(f"approx FSRCNN(25,5,1)+HTCONV vs FSRCNN(56,12,4): "
          f"{100*model_saving:.1f}% of MACs saved")
    print(f"interpolation adds charged: {hybrid_macs.total_interp_adds}")

    # ">80% of MACs" against the FSRCNN(56,12,4) baseline.
    assert model_saving > 0.80
    # HTCONV alone saves a large share within the same model too.
    assert tconv_saving > 0.30
    # "PSNR reduction lower than 10%" on every scene.
    assert max(drops) < 10.0
    # Sanity: reconstructions are meaningful (well above noise floor).
    assert min(p for _, p, _ in rows) > 14.0
