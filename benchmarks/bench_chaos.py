"""Experiment CHAOS: fault tolerance of the sharded serving cluster.

The robustness claim behind :mod:`repro.serve.cluster`: a supervised
shard cluster survives a seeded chaos schedule -- shard kills
mid-campaign, submission delays, queue-pressure bursts -- with
**exactly-once** results.  Every admitted request completes, nothing is
delivered twice, the surviving results are byte-identical (canonical
form) to an undisturbed serial run, and tail latency degrades by a
bounded factor rather than collapsing.  Circuit breakers shed load from
a workload that fails persistently instead of letting it poison every
micro-batch.

Run standalone to emit the JSON artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_chaos.py --quick \
        --out BENCH_chaos.json

Acceptance targets (asserted with ``--check``, reported always):

- kill-one-shard-mid-campaign on a 4-shard cluster: zero lost, zero
  duplicated, >= 1 supervised restart, results byte-identical to the
  serial baseline, and the run ledger records the failure/replay story;
- delay and burst schedules: exactly-once with results unperturbed;
- chaos p99 latency bounded by ``10x baseline p99 + 1 s``;
- a persistently failing workload trips its circuit breaker open and
  sheds at least one request.
"""

import argparse
import json
import sys

from repro.core.api import build_run_result, get_workload, register_workload
from repro.obs.ledger import get_ledger
from repro.resilience import ChaosPolicy, CircuitOpenError
from repro.serve import ShardRouter, generate_requests, run_chaos_campaign
from repro.serve.cluster import ShardCluster

WORKLOAD = "imc-crossbar"
FULL_REQUESTS = 48
QUICK_REQUESTS = 24
NUM_SHARDS = 4
POOL_SIZE = 6
ZIPF_SKEW = 2.0
SEED = 7
HEARTBEAT_S = 0.02
P99_FACTOR = 10.0
P99_SLACK_S = 1.0


class _AlwaysFailingWorkload:
    """Persistent failure: the breaker-trip scenario's fuel."""

    name = "chaos-always-fails"

    def space(self):
        return {"x": (1,)}

    def evaluate(self, config, *, seed=0, impl=None):
        raise RuntimeError("persistent failure (chaos bench)")


def _requests(num_requests):
    workload = get_workload(WORKLOAD)
    return generate_requests(
        workload,
        num_requests,
        pool_size=POOL_SIZE,
        skew=ZIPF_SKEW,
        seed=SEED,
    )


def serial_baseline(requests):
    """Canonical result per distinct digest from direct evaluation --
    the ground truth every chaos scenario is compared against."""
    workload = get_workload(WORKLOAD)
    canonical = {}
    for request in requests:
        if request.digest not in canonical:
            result = workload.evaluate(request.config, seed=request.seed)
            canonical[request.digest] = result.canonical_json()
    return canonical


def _campaign(requests, policy, **kwargs):
    kwargs.setdefault("num_shards", NUM_SHARDS)
    kwargs.setdefault("heartbeat_s", HEARTBEAT_S)
    return run_chaos_campaign(requests, policy, **kwargs)


def _scenario_entry(name, requests, baseline, report, results):
    matched = sum(
        1
        for request, result in zip(requests, results)
        if result is not None
        and result.canonical_json() == baseline[request.digest]
    )
    return {
        "scenario": name,
        "num_requests": report["num_requests"],
        "policy": report["policy"],
        "completed": report["completed"],
        "lost": report["lost"],
        "duplicate_results": report["duplicate_results"],
        "errors": report["errors"],
        "extras": report["extras"],
        "extra_lost": report["extra_lost"],
        "restarts": report["restarts"],
        "replayed": report["replayed"],
        "identical_to_serial": matched == len(requests),
        "matched": matched,
        "latency_s": report["latency_s"],
        "elapsed_s": report["elapsed_s"],
    }


def run_baseline(requests, baseline):
    """Undisturbed cluster run: the latency reference and the proof
    that sharding alone does not perturb results."""
    results, report = _campaign(requests, ChaosPolicy())
    return _scenario_entry("baseline", requests, baseline, report, results)


def run_kill_scenario(requests, baseline):
    """The flagship scenario: kill the shard owning the middle of the
    stream while its queue holds work; the supervisor must detect,
    restart and replay with exactly-once delivery.

    The run ledger is enabled so recovery goes through the
    ledger-replay path and the event stream can be audited afterwards.
    """
    at_request = len(requests) // 2
    router = ShardRouter(NUM_SHARDS)
    victim = router.route(requests[at_request - 1].digest)
    policy = ChaosPolicy.kill_shard(at_request=at_request, shard=victim)

    ledger = get_ledger()
    ledger.reset()
    ledger.enable()
    try:
        results, report = _campaign(requests, policy)
        events = {record["event"] for record in ledger.events()}
        replay_events = sum(
            1
            for record in ledger.events()
            if record["event"] == "cluster.replay"
        )
    finally:
        ledger.disable()
        ledger.reset()
    entry = _scenario_entry("kill_shard", requests, baseline, report, results)
    entry["victim_shard"] = victim
    entry["ledger"] = {
        "has_shard_down": "shard.down" in events,
        "has_shard_restarted": "shard.restarted" in events,
        "replay_events": replay_events,
        "replay_matches_report": replay_events == report["replayed"],
    }
    return entry


def run_delay_scenario(requests, baseline):
    """Seeded submission-path delays: tail latency must stay bounded
    and results untouched."""
    policy = ChaosPolicy.random(
        SEED, len(requests), NUM_SHARDS,
        kills=0, delays=3, bursts=0, max_delay_s=0.05,
    )
    results, report = _campaign(requests, policy)
    return _scenario_entry("delay", requests, baseline, report, results)


def run_burst_scenario(requests, baseline):
    """Queue-pressure bursts: duplicate copies slam the queue; dedup
    and admission control must absorb them without loss."""
    policy = ChaosPolicy.random(
        SEED, len(requests), NUM_SHARDS,
        kills=0, delays=0, bursts=2, burst_copies=8,
    )
    results, report = _campaign(requests, policy)
    return _scenario_entry("burst", requests, baseline, report, results)


def run_breaker_scenario(num_requests):
    """A workload that fails every attempt must trip its breaker open
    and start shedding instead of riding into every batch."""
    register_workload(_AlwaysFailingWorkload(), replace=True)
    threshold = 4
    cluster = ShardCluster(
        num_shards=2,
        batch_size=4,
        batch_wait_s=0.001,
        breaker_threshold=threshold,
        breaker_recovery_s=30.0,
        heartbeat_s=HEARTBEAT_S,
    )
    shed = 0
    failures = 0
    submitted = 0
    try:
        # Synchronous round trips: each failure lands before the next
        # admission decision, so the breaker's state transition is what
        # gates request threshold+1 onward.
        for index in range(num_requests):
            try:
                future = cluster.submit(
                    _AlwaysFailingWorkload.name,
                    {"x": 1},
                    seed=index,  # distinct digests: no dedup relief
                    block=True,
                )
            except CircuitOpenError:
                shed += 1
                continue
            submitted += 1
            if not future.result(timeout=60.0).ok:
                failures += 1
        breaker = cluster.breaker(_AlwaysFailingWorkload.name)
        snapshot = breaker.snapshot()
    finally:
        cluster.shutdown(drain=False)
    return {
        "scenario": "breaker_trip",
        "num_requests": num_requests,
        "threshold": threshold,
        "submitted": submitted,
        "failures": failures,
        "shed": shed,
        "breaker": snapshot,
        "tripped": snapshot["state"] == "open" and shed > 0,
    }


def run_chaos_study(num_requests):
    requests = _requests(num_requests)
    baseline = serial_baseline(requests)
    scenarios = [
        run_baseline(requests, baseline),
        run_kill_scenario(requests, baseline),
        run_delay_scenario(requests, baseline),
        run_burst_scenario(requests, baseline),
    ]
    return {
        "workload": WORKLOAD,
        "num_requests": num_requests,
        "num_shards": NUM_SHARDS,
        "pool_size": POOL_SIZE,
        "zipf_skew": ZIPF_SKEW,
        "seed": SEED,
        "scenarios": scenarios,
        "breaker": run_breaker_scenario(max(8, num_requests // 3)),
    }


def check(report):
    """Gate the acceptance targets; returns (ok, messages)."""
    messages = []
    ok = True
    by_name = {entry["scenario"]: entry for entry in report["scenarios"]}
    for name, entry in by_name.items():
        if (
            entry["lost"] == 0
            and entry["duplicate_results"] == 0
            and entry["extra_lost"] == 0
        ):
            messages.append(f"ok: {name}: exactly-once delivery")
        else:
            ok = False
            messages.append(
                f"FAIL: {name}: lost={entry['lost']} "
                f"duplicated={entry['duplicate_results']} "
                f"extra_lost={entry['extra_lost']}"
            )
        if entry["identical_to_serial"]:
            messages.append(f"ok: {name}: byte-identical to serial run")
        else:
            ok = False
            messages.append(
                f"FAIL: {name}: only {entry['matched']}/"
                f"{entry['num_requests']} results match the serial run"
            )
    kill = by_name["kill_shard"]
    if kill["restarts"] >= 1:
        messages.append(
            f"ok: kill_shard: {kill['restarts']} supervised restart(s), "
            f"{kill['replayed']} request(s) replayed"
        )
    else:
        ok = False
        messages.append("FAIL: kill_shard: supervisor never restarted")
    ledger_story = kill["ledger"]
    if (
        ledger_story["has_shard_down"]
        and ledger_story["has_shard_restarted"]
        and ledger_story["replay_matches_report"]
    ):
        messages.append("ok: kill_shard: ledger records down/restart/replay")
    else:
        ok = False
        messages.append(f"FAIL: kill_shard ledger story: {ledger_story}")
    base_p99 = by_name["baseline"]["latency_s"]["p99"]
    bound = base_p99 * P99_FACTOR + P99_SLACK_S
    for name in ("kill_shard", "delay", "burst"):
        p99 = by_name[name]["latency_s"]["p99"]
        if p99 <= bound:
            messages.append(
                f"ok: {name}: p99 {p99 * 1000:.1f} ms within bound "
                f"{bound * 1000:.1f} ms"
            )
        else:
            ok = False
            messages.append(
                f"FAIL: {name}: p99 {p99 * 1000:.1f} ms exceeds "
                f"{bound * 1000:.1f} ms "
                f"({P99_FACTOR:g}x baseline + {P99_SLACK_S:g} s)"
            )
    breaker = report["breaker"]
    if breaker["tripped"]:
        messages.append(
            f"ok: breaker tripped open after {breaker['threshold']} "
            f"failures; shed {breaker['shed']} request(s)"
        )
    else:
        ok = False
        messages.append(f"FAIL: breaker never tripped: {breaker['breaker']}")
    return ok, messages


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if acceptance targets fail")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    num_requests = QUICK_REQUESTS if args.quick else FULL_REQUESTS
    report = run_chaos_study(num_requests)
    ok, messages = check(report)
    report["check"] = {"passed": ok, "messages": messages}

    print(
        f"workload: {report['workload']}  requests: {num_requests}  "
        f"shards: {report['num_shards']}"
    )
    for entry in report["scenarios"]:
        latency = entry["latency_s"]
        print(
            f"  {entry['scenario']:>10}: lost {entry['lost']}, "
            f"dup {entry['duplicate_results']}, "
            f"restarts {entry['restarts']}, "
            f"replayed {entry['replayed']}, "
            f"p99 {latency['p99'] * 1000:.1f} ms, "
            f"identical={entry['identical_to_serial']}"
        )
    breaker = report["breaker"]
    print(
        f"  breaker: state {breaker['breaker']['state']}, "
        f"shed {breaker['shed']}/{breaker['num_requests']}"
    )
    for message in messages:
        print(f"  {message}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    if args.check and not ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
