"""Experiment FIG2: regenerate Fig. 2 -- processor-memory architectures.

Workload: one 512x512 8-bit MVM priced under the four organizations of
Fig. 2 (von Neumann, near-memory, SRAM-IMC, eNVM-IMC).  The bench prints
the energy breakdown table and asserts the figure's message: each step
from (a) to (d) removes data movement, IMC eliminates per-MVM weight
traffic entirely, and the eNVM variant additionally retains weights for
free during standby.
"""

from repro.core.tables import Table
from repro.imc.taxonomy import (
    ArchitectureKind,
    mvm_cost,
    standby_weight_energy_j,
    taxonomy_table,
)

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()

ROWS, COLS = 512, 512


def regenerate_fig2():
    table = taxonomy_table(ROWS, COLS)
    costs = {kind: mvm_cost(kind, ROWS, COLS) for kind in ArchitectureKind}
    standby = {
        kind: standby_weight_energy_j(kind, ROWS, COLS, 3600.0)
        for kind in ArchitectureKind
    }
    return table, costs, standby


def test_fig2_taxonomy(benchmark):
    rows, costs, standby = benchmark(regenerate_fig2)

    table = Table(
        ["architecture", "weights (pJ)", "activations (pJ)",
         "compute (pJ)", "total (pJ)", "movement share"],
        title=f"Fig. 2 -- {ROWS}x{COLS} MVM cost per organization",
    )
    for row in rows:
        table.add_row(
            [row["architecture"], row["weight_movement_pj"],
             row["activation_movement_pj"], row["compute_pj"],
             row["total_pj"], row["movement_fraction"]]
        )
    print()
    print(table)
    print("1-hour weight-retention energy (J):")
    for kind, energy in standby.items():
        print(f"  {kind.value}: {energy:.3g}")

    # (a) -> (d) strictly reduces total energy.
    totals = [costs[kind].total_energy_j for kind in ArchitectureKind]
    assert totals == sorted(totals, reverse=True)
    # Von Neumann is movement-dominated; IMC eliminates weight movement.
    assert costs[ArchitectureKind.VON_NEUMANN].movement_fraction > 0.9
    assert costs[ArchitectureKind.IMC_SRAM].weight_movement_j == 0.0
    assert costs[ArchitectureKind.IMC_ENVM].weight_movement_j == 0.0
    # The overall von-Neumann -> IMC gap is order(s) of magnitude.
    ratio = (
        costs[ArchitectureKind.VON_NEUMANN].total_energy_j
        / costs[ArchitectureKind.IMC_ENVM].total_energy_j
    )
    assert ratio > 10
    # Nonvolatility: eNVM standby is free, SRAM is not.
    assert standby[ArchitectureKind.IMC_ENVM] == 0.0
    assert standby[ArchitectureKind.IMC_SRAM] > 0.0
