"""Experiment IMC: the Sec. IV device/circuit/architecture claims.

Workloads:

- device level: program-and-verify [10] vs open-loop programming
  (RMS conductance error, MLC level error rate) under RRAM and PCM
  physics;
- circuit level: A/D conversion minimization via analog accumulation
  [11] (conversions and converter energy per workload), analog crossbar
  vs digital IMC energy;
- architecture level: MLP inference accuracy on mapped tiles across a
  drift-time sweep, with and without program-verify and digital drift
  compensation.
"""

import numpy as np

from repro.core.tables import Table
from repro.imc.adc import ADCConfig
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.imc.devices import NVMDevice, PCM_PARAMS, RRAM_PARAMS
from repro.imc.dimc import DIMCCostModel
from repro.imc.nn import IMCInferenceEngine, make_blobs, train_mlp
from repro.imc.program_verify import (
    mlc_level_error_rate,
    open_loop_program,
    program_and_verify,
)
from repro.imc.tiles import TileConfig

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()

DRIFT_TIMES = (1.0, 1e3, 1e6)


def run_imc_study():
    rng = np.random.default_rng(0)

    # Device level.
    device_rows = []
    for params in (RRAM_PARAMS, PCM_PARAMS):
        targets = rng.uniform(params.g_min, params.g_max, (48, 48))
        dev_ol = NVMDevice(params, (48, 48), seed=1)
        rms_ol = open_loop_program(dev_ol, targets)
        dev_pv = NVMDevice(params, (48, 48), seed=1)
        result = program_and_verify(dev_pv, targets)
        mlc_ol = mlc_level_error_rate(
            NVMDevice(params, (4, 96), seed=2), bits=2, cells_per_level=96,
            use_verify=False,
        )
        mlc_pv = mlc_level_error_rate(
            NVMDevice(params, (4, 96), seed=2), bits=2, cells_per_level=96,
            use_verify=True,
        )
        device_rows.append(
            (params.name, rms_ol, result.final_rms_error,
             result.iterations_used, mlc_ol, mlc_pv)
        )

    # Circuit level: analog accumulation (ADC minimization).
    config = CrossbarConfig(rows=32, cols=32, accumulation_depth=4)
    xbar_plain = AnalogCrossbar(config, seed=3)
    xbar_acc = AnalogCrossbar(config, seed=3)
    weights = rng.normal(0, 0.3, (32, 32))
    xbar_plain.program_weights(weights)
    xbar_acc.program_weights(weights)
    xs = rng.uniform(-0.2, 0.2, (4, 32))
    for x in xs:
        xbar_plain.mvm(x)
    xbar_acc.mvm_accumulated(xs)
    circuit = {
        "plain_conversions": xbar_plain.ledger.adc_conversions,
        "accumulated_conversions": xbar_acc.ledger.adc_conversions,
        "plain_energy": xbar_plain.ledger.adc_energy_j,
        "accumulated_energy": xbar_acc.ledger.adc_energy_j,
        "adc_energy_8b": ADCConfig(bits=8).energy_per_conversion_j,
        "dimc_mvm_energy": DIMCCostModel().mvm_energy_j(32, 32, 8, 8),
    }

    # Architecture level: accuracy vs drift.
    x, labels = make_blobs(n_samples=240, seed=5)
    model = train_mlp(x, labels, seed=5)
    float_acc = float(np.mean(model.predict(x) == labels))
    accuracy = {}
    for label, use_pv, compensate, params in (
        ("PCM+verify+comp", True, True, PCM_PARAMS),
        ("PCM open-loop no-comp", False, False, PCM_PARAMS),
        ("RRAM+verify+comp", True, True, RRAM_PARAMS),
    ):
        tile = TileConfig(
            crossbar=CrossbarConfig(
                rows=32, cols=32, device=params, use_program_verify=use_pv
            ),
            drift_compensation=compensate,
        )
        engine = IMCInferenceEngine(model, tile, seed=6)
        accuracy[label] = [
            engine.accuracy(x[:120], labels[:120], t_seconds=t)
            for t in DRIFT_TIMES
        ]
    return device_rows, circuit, accuracy, float_acc


def test_imc_stack(benchmark):
    device_rows, circuit, accuracy, float_acc = benchmark(run_imc_study)

    dev_table = Table(
        ["device", "open-loop RMS", "P&V RMS", "P&V iters",
         "MLC err open", "MLC err P&V"],
        title="Sec. IV device level -- program-and-verify [10]",
    )
    for row in device_rows:
        dev_table.add_row(row)
    print()
    print(dev_table)

    print(
        "\ncircuit level -- analog accumulation [11]: "
        f"{circuit['plain_conversions']} -> "
        f"{circuit['accumulated_conversions']} ADC conversions, "
        f"{circuit['plain_energy']:.3g} J -> "
        f"{circuit['accumulated_energy']:.3g} J"
    )
    print(
        f"digital IMC 32x32x8b MVM energy: "
        f"{circuit['dimc_mvm_energy']:.3g} J"
    )

    acc_table = Table(
        ["configuration"] + [f"t={t:g}s" for t in DRIFT_TIMES],
        title=f"Sec. IV architecture level -- accuracy vs drift "
              f"(float acc {float_acc:.2f})",
    )
    for label, accs in accuracy.items():
        acc_table.add_row([label] + list(accs))
    print()
    print(acc_table)

    # Device level: P&V beats open loop on both technologies.
    for name, rms_ol, rms_pv, _, mlc_ol, mlc_pv in device_rows:
        assert rms_pv < rms_ol / 2, name
        assert mlc_pv <= mlc_ol, name
    # Circuit level: accumulation divides conversions (and energy) by 4.
    assert (
        circuit["accumulated_conversions"]
        == circuit["plain_conversions"] // 4
    )
    assert circuit["accumulated_energy"] < circuit["plain_energy"] / 3
    # Architecture level: the full mitigation stack holds accuracy near
    # float even after drift; the unmitigated PCM stack degrades.
    assert accuracy["PCM+verify+comp"][-1] > float_acc - 0.10
    assert accuracy["RRAM+verify+comp"][-1] > float_acc - 0.05
    assert (
        accuracy["PCM open-loop no-comp"][-1]
        <= accuracy["PCM+verify+comp"][-1]
    )
