"""Experiment SPARTA: the Sec. III SPARTA claims on irregular kernels.

Workload: BFS / SpMV / PageRank task graphs over synthetic graphs run on
the cycle-level SPARTA system.  Sweeps: hardware contexts per lane
(latency hiding), memory channels (the custom NoC), memory-side cache
on/off.  Asserts the architecture's three mechanisms each pay off on
irregular workloads.
"""

from repro.core.tables import Table
from repro.sparta import (
    bfs_tasks,
    pagerank_tasks,
    random_graph,
    simulate,
    spmv_tasks,
)

if __name__ == "__main__":  # executed top-to-bottom; args must be empty
    import argparse

    # This bench takes no options: running everything at import time IS
    # the benchmark.  Reject unknown/typo'd CLI args loudly instead of
    # silently ignoring them (argparse exits 2 on anything unexpected).
    argparse.ArgumentParser(description=__doc__).parse_args()

CONTEXT_SWEEP = (1, 2, 4, 8)


def run_sparta_study():
    graph = random_graph(num_nodes=192, avg_degree=8, seed=0)
    regions = {
        "bfs": bfs_tasks(graph),
        "spmv": spmv_tasks(num_rows=192, avg_nnz=8, seed=1),
        "pagerank": pagerank_tasks(graph),
    }
    context_sweep = {
        name: [
            simulate(region, num_lanes=4, contexts_per_lane=c)
            for c in CONTEXT_SWEEP
        ]
        for name, region in regions.items()
    }
    bfs = regions["bfs"]
    # The channel ablation needs enough in-flight requests to contend a
    # single channel's 1-request/cycle issue port: 8 lanes x 16 contexts
    # against a 100-cycle memory keeps ~1.3 requests/cycle in flight.
    ablations = {
        "no_cache": simulate(bfs, num_lanes=4, contexts_per_lane=4,
                             enable_cache=False),
        "one_channel": simulate(bfs, num_lanes=8, contexts_per_lane=16,
                                num_channels=1, enable_cache=False),
        "four_channels": simulate(bfs, num_lanes=8, contexts_per_lane=16,
                                  num_channels=4, enable_cache=False),
    }
    return context_sweep, ablations


def test_sparta_latency_hiding(benchmark):
    context_sweep, ablations = benchmark(run_sparta_study)

    table = Table(
        ["kernel"] + [f"ctx={c} cycles" for c in CONTEXT_SWEEP]
        + ["speedup 1->8", "util @8"],
        title="SPARTA -- context switching on irregular kernels "
              "(4 lanes, 4 channels)",
    )
    for name, stats in context_sweep.items():
        cycles = [s.cycles for s in stats]
        table.add_row(
            [name] + cycles
            + [cycles[0] / cycles[-1], stats[-1].utilization]
        )
    print()
    print(table)
    print(
        "ablations (bfs): cache on 4ctx="
        f"{context_sweep['bfs'][2].cycles} vs off="
        f"{ablations['no_cache'].cycles}; channels 1="
        f"{ablations['one_channel'].cycles} vs 4="
        f"{ablations['four_channels'].cycles}"
    )

    for name, stats in context_sweep.items():
        cycles = [s.cycles for s in stats]
        # Latency hiding: monotone improvement, >2x from 1 to 8 contexts.
        assert all(a >= b for a, b in zip(cycles, cycles[1:])), name
        assert cycles[0] / cycles[-1] > 2.0, name
        # Utilization rises with contexts.
        assert stats[-1].utilization > stats[0].utilization, name
        # All tasks completed in every configuration.
        assert all(
            s.tasks_completed == stats[0].tasks_completed for s in stats
        )
    # Memory-side cache pays off.
    assert context_sweep["bfs"][2].cycles < ablations["no_cache"].cycles
    # Multiple memory channels pay off under contention.
    assert (
        ablations["four_channels"].cycles < ablations["one_channel"].cycles
    )
