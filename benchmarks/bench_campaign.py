"""Experiment CAMPAIGN: graph-runner overhead and wrapper identity.

The declarative campaign DAG (:mod:`repro.campaign`) re-expresses the
bespoke sweep/campaign loops as Eval/Reduce graphs executed by
:class:`~repro.campaign.GraphRunner`.  That refactor is only free if
(a) the graph machinery adds negligible overhead to a serial sweep and
(b) the thin wrappers stay byte-identical to the loops they replaced.
This bench measures both, plus the batching upside: independent eval
nodes in one layer dispatch as a single ``ParallelEvaluator`` batch.

Acceptance targets (asserted with ``--check``, reported always):

- **overhead**: a graph-backed serial ``crossbar_sweep`` stays within
  5% of the inline ``evaluate_crossbar_spec`` loop (best-of-N, warm);
- **identity**: ``crossbar_sweep`` and ``run_campaign`` wrappers return
  exactly what inline reproductions of the legacy loops return, and a
  pooled graph run is byte-identical to the serial run;
- **composite**: the worked DSE -> hetero -> Pareto graph runs end to
  end and its Pareto reduction is non-empty.

The batching speedup is reported (serial vs pooled wall time) but not
gated: it depends on the runner's core count, which CI does not pin.

Run standalone to emit the JSON artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_campaign.py --quick --check \
        --out BENCH_campaign.json
"""

import argparse
import json
import os
import sys
import time

from repro.campaign import GraphRunner, composite_campaign_graph
from repro.hetero.campaign import (
    CampaignCell,
    DEFAULT_DEVICES,
    DEFAULT_STORAGE,
    _campaign_cell_task,
    _scheduled_cells,
    run_campaign,
)
from repro.hetero.workload import SegmentationWorkload
from repro.imc.sweep import (
    CrossbarSweepSpec,
    crossbar_sweep,
    evaluate_crossbar_spec,
)

OVERHEAD_GATE_PCT = 5.0
FULL_SPECS, FULL_REPEATS = 16, 12
QUICK_SPECS, QUICK_REPEATS = 8, 10
POOL_WORKERS = 2


def _specs(count):
    return [
        CrossbarSweepSpec(rows=96, cols=96, num_inputs=8, seed=seed)
        for seed in range(count)
    ]


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _paired_best(fn_a, fn_b, repeats):
    """Interleaved best-of-N for two timings, so both minimums come
    from comparable load windows on a noisy shared runner."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def overhead_study(num_specs, repeats):
    """Serial graph-backed sweep vs the inline legacy loop."""
    specs = _specs(num_specs)
    crossbar_sweep(specs[:1])  # warm imports and caches out of the timing
    bespoke_s, graph_s = _paired_best(
        lambda: [evaluate_crossbar_spec(spec) for spec in specs],
        lambda: crossbar_sweep(specs),
        repeats,
    )
    return {
        "num_specs": num_specs,
        "repeats": repeats,
        "bespoke_s": bespoke_s,
        "graph_s": graph_s,
        "overhead_pct": (graph_s / bespoke_s - 1.0) * 100.0,
        "identical": crossbar_sweep(specs)
        == [evaluate_crossbar_spec(spec) for spec in specs],
    }


def batching_study(num_specs, repeats):
    """One layer of independent eval nodes: serial vs one pooled batch."""
    specs = _specs(num_specs)
    serial_rows = crossbar_sweep(specs)
    pooled_rows = crossbar_sweep(specs, parallel=POOL_WORKERS)
    timing_repeats = max(3, repeats // 2)
    serial_s = _best_of(lambda: crossbar_sweep(specs), timing_repeats)
    pooled_s = _best_of(
        lambda: crossbar_sweep(specs, parallel=POOL_WORKERS),
        timing_repeats,
    )
    return {
        "num_specs": num_specs,
        "workers": POOL_WORKERS,
        "cpu_count": os.cpu_count(),
        "serial_s": serial_s,
        "pooled_s": pooled_s,
        "speedup": serial_s / pooled_s,
        "identical": pooled_rows == serial_rows,
    }


def wrapper_identity_study():
    """The thin wrappers vs inline reproductions of the legacy loops."""
    workload = SegmentationWorkload(num_volumes=8, epochs=1)
    legacy_cells = [
        CampaignCell.from_record(
            _campaign_cell_task((workload, device, storage, phase))
        )
        for device, storage, phase in _scheduled_cells(
            DEFAULT_DEVICES, DEFAULT_STORAGE
        )
    ]
    campaign_identical = run_campaign(workload) == legacy_cells

    report = GraphRunner().run(composite_campaign_graph(dse_budget=8))
    front = report.value("pareto") if report.ok else []
    return {
        "run_campaign_identical": campaign_identical,
        "campaign_cells": len(legacy_cells),
        "composite_ok": report.ok,
        "composite_nodes": len(report.results),
        "composite_front_size": len(front),
    }


def run_campaign_study(quick=False):
    num_specs = QUICK_SPECS if quick else FULL_SPECS
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    return {
        "overhead": overhead_study(num_specs, repeats),
        "batching": batching_study(num_specs, repeats),
        "wrappers": wrapper_identity_study(),
    }


def check(report):
    """Gate the acceptance targets; returns (ok, messages)."""
    messages = []
    ok = True

    overhead = report["overhead"]
    if overhead["overhead_pct"] <= OVERHEAD_GATE_PCT:
        messages.append(
            f"ok: graph overhead {overhead['overhead_pct']:+.2f}% within "
            f"{OVERHEAD_GATE_PCT:g}% of the inline loop"
        )
    else:
        ok = False
        messages.append(
            f"FAIL: graph overhead {overhead['overhead_pct']:+.2f}% "
            f"exceeds {OVERHEAD_GATE_PCT:g}%"
        )
    if overhead["identical"]:
        messages.append("ok: crossbar_sweep byte-identical to inline loop")
    else:
        ok = False
        messages.append("FAIL: crossbar_sweep diverged from inline loop")

    batching = report["batching"]
    if batching["identical"]:
        messages.append("ok: pooled graph run byte-identical to serial")
    else:
        ok = False
        messages.append("FAIL: pooled graph run diverged from serial")
    messages.append(
        f"ok: batching speedup {batching['speedup']:.2f}x at "
        f"{batching['workers']} workers on {batching['cpu_count']} cores "
        "(report-only)"
    )

    wrappers = report["wrappers"]
    if wrappers["run_campaign_identical"]:
        messages.append(
            f"ok: run_campaign identical to legacy loop "
            f"({wrappers['campaign_cells']} cells)"
        )
    else:
        ok = False
        messages.append("FAIL: run_campaign diverged from legacy loop")
    if wrappers["composite_ok"] and wrappers["composite_front_size"] >= 1:
        messages.append(
            f"ok: composite DSE->hetero->Pareto graph ran "
            f"({wrappers['composite_nodes']} nodes, front size "
            f"{wrappers['composite_front_size']})"
        )
    else:
        ok = False
        messages.append(
            f"FAIL: composite graph ok={wrappers['composite_ok']} "
            f"front={wrappers['composite_front_size']}"
        )
    return ok, messages


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if acceptance targets fail")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run_campaign_study(quick=args.quick)
    ok, messages = check(report)
    report["check"] = {"passed": ok, "messages": messages}

    overhead, batching = report["overhead"], report["batching"]
    print(
        f"overhead: bespoke {overhead['bespoke_s'] * 1000:.1f} ms, "
        f"graph {overhead['graph_s'] * 1000:.1f} ms "
        f"({overhead['overhead_pct']:+.2f}% over {overhead['num_specs']} "
        f"specs, best of {overhead['repeats']})"
    )
    print(
        f"batching: serial {batching['serial_s'] * 1000:.1f} ms, "
        f"pooled {batching['pooled_s'] * 1000:.1f} ms "
        f"({batching['speedup']:.2f}x at {batching['workers']} workers)"
    )
    for message in messages:
        print(f"  {message}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    if args.check and not ok:
        return 1
    return 0


def test_campaign_overhead(benchmark):
    study = benchmark(lambda: run_campaign_study(quick=True))
    ok, messages = check(study)
    for message in messages:
        print(message)
    assert ok, "campaign acceptance targets failed"


if __name__ == "__main__":
    sys.exit(main())
