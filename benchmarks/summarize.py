"""Summarize BENCH_*.json artifacts into one markdown table.

CI's ``bench-summary`` job downloads every benchmark artifact the
matrixed ``bench`` job uploaded and pipes this script's output into
``$GITHUB_STEP_SUMMARY``, so a PR shows one table -- per-bench gate
verdict, best measured speedup, worst p99 -- instead of seven JSON
blobs to click through::

    python benchmarks/summarize.py BENCH_*.json >> "$GITHUB_STEP_SUMMARY"

The extraction is deliberately structural, not per-bench: gate
verdicts come from the shared ``report["check"]`` convention, speedup
and p99 figures from a recursive walk over the report.  A bench that
gates via plain asserts (no ``check`` block) is shown as ``asserted``
-- its job failing is the verdict.  Unreadable files are reported as
rows, never crashes: the summary must render even when a bench broke.
"""

import argparse
import json
import sys


def _walk(node):
    """Yield every (key, value) pair in a nested JSON structure."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield key, value
            yield from _walk(value)
    elif isinstance(node, list):
        for item in node:
            yield from _walk(item)


def _numbers(report, match):
    """All finite numeric values under keys selected by *match*."""
    out = []
    for key, value in _walk(report):
        if not match(key):
            continue
        if isinstance(value, (int, float)) and value == value:
            if value not in (float("inf"), float("-inf")):
                out.append(float(value))
    return out


def extract_row(name, report):
    """One summary-table row (a dict) from a parsed bench report."""
    check = report.get("check")
    if isinstance(check, dict) and "passed" in check:
        verdict = "PASS" if check.get("passed") else "**FAIL**"
        messages = check.get("messages") or []
        fails = [m for m in messages if str(m).startswith("FAIL")]
        skips = [m for m in messages if str(m).startswith("skip")]
        if fails:
            note = str(fails[0])
        else:
            gates = len(messages) - len(skips)
            note = f"{gates} gate(s) ok"
            if skips:
                note += f", {len(skips)} skipped"
    else:
        verdict = "asserted"
        note = "gates asserted at run time"

    speedups = _numbers(
        report, lambda k: isinstance(k, str) and k.startswith("speedup")
    )
    p99s = _numbers(report, lambda k: k == "p99")
    return {
        "bench": name,
        "verdict": verdict,
        "best_speedup": max(speedups) if speedups else None,
        "worst_p99_ms": max(p99s) * 1000 if p99s else None,
        "note": note,
    }


def load_report(path):
    """(name, report-or-None, error-or-None) for one artifact file."""
    name = path.rsplit("/", 1)[-1]
    for prefix in ("BENCH_", "bench_"):
        if name.startswith(prefix):
            name = name[len(prefix):]
    if name.endswith(".json"):
        name = name[: -len(".json")]
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return name, json.load(fh), None
    except (OSError, ValueError) as exc:
        return name, None, str(exc)


def summarize(paths):
    """Markdown summary table over the given artifact paths."""
    rows = []
    for path in sorted(paths):
        name, report, error = load_report(path)
        if report is None:
            rows.append({
                "bench": name,
                "verdict": "**unreadable**",
                "best_speedup": None,
                "worst_p99_ms": None,
                "note": error,
            })
        elif isinstance(report, dict):
            rows.append(extract_row(name, report))
        else:
            # e.g. BENCH_obs_trace.json is a span list, not a report.
            rows.append({
                "bench": name,
                "verdict": "artifact",
                "best_speedup": None,
                "worst_p99_ms": None,
                "note": f"non-report JSON ({type(report).__name__})",
            })

    lines = [
        "## Benchmark summary",
        "",
        "| bench | gates | best speedup | worst p99 (ms) | notes |",
        "| --- | --- | --- | --- | --- |",
    ]
    for row in rows:
        speedup = (
            f"{row['best_speedup']:.2f}x"
            if row["best_speedup"] is not None
            else "-"
        )
        p99 = (
            f"{row['worst_p99_ms']:.1f}"
            if row["worst_p99_ms"] is not None
            else "-"
        )
        note = str(row["note"]).replace("|", "\\|")
        lines.append(
            f"| {row['bench']} | {row['verdict']} | {speedup} "
            f"| {p99} | {note} |"
        )
    if not rows:
        lines.append("| (no artifacts found) | - | - | - | - |")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths", nargs="+",
        help="BENCH_*.json artifact files to summarize",
    )
    parser.add_argument(
        "--out", default=None,
        help="also write the markdown here (always printed to stdout)",
    )
    args = parser.parse_args(argv)
    table = summarize(args.paths)
    print(table)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
