"""Golden + property-based equivalence of the scalar/numpy kernel pairs.

Every hot kernel ships a scalar reference oracle and a vectorized numpy
path behind ``impl=``.  The equivalence contract pinned here:

- **bit-exact** for the integer/discrete kernels (banded edit distance
  including its cell-update charges and early-exit behavior, the SPARTA
  cycle simulator's full statistics, the HLS list schedule, the RS codec
  bytes) *and* for the crossbar MVM (the batched draw consumes the same
  RNG stream and the batched contraction is bitwise-equal to the per-
  vector gemv on every platform numpy supports);
- ``rtol = atol = 1e-12`` for HTCONV only, whose einsum reduction order
  differs from the per-pixel loop (float addition is not associative).

Property-based sections drive the edit-distance and crossbar kernels
over seeded random sizes well beyond the golden cases.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.axc.htconv import FovealRegion, htconv_x2
from repro.dna.ecc import ReedSolomonCodec
from repro.dna.editdistance import (
    CellUpdateCounter,
    levenshtein_banded,
    levenshtein_reference,
)
from repro.hls.ir import DataflowGraph, OpKind, Operation
from repro.hls.scheduling import schedule_list
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.sparta.kernels import (
    bfs_tasks,
    pagerank_tasks,
    random_graph,
    spmv_tasks,
    streaming_tasks,
)
from repro.sparta.simulator import simulate


def _crossbar(rows, cols, seed):
    xbar = AnalogCrossbar(CrossbarConfig(rows=rows, cols=cols), seed=seed)
    rng = np.random.default_rng(seed)
    xbar.program_weights(rng.uniform(-1, 1, (rows, cols)))
    return xbar


class TestCrossbarEquivalence:
    def test_batch_matches_scalar_bitwise(self):
        for seed in (0, 7):
            xs = np.random.default_rng(seed).uniform(-1, 1, (9, 24))
            scalar = _crossbar(24, 16, seed).mvm_batch(xs, impl="scalar")
            vector = _crossbar(24, 16, seed).mvm_batch(xs, impl="numpy")
            assert np.array_equal(scalar, vector)

    def test_ledger_charges_identical(self):
        xs = np.random.default_rng(3).uniform(-1, 1, (5, 16))
        a = _crossbar(16, 8, 3)
        b = _crossbar(16, 8, 3)
        a.mvm_batch(xs, impl="scalar")
        b.mvm_batch(xs, impl="numpy")
        assert a.ledger.adc_conversions == b.ledger.adc_conversions
        assert a.ledger.dac_conversions == b.ledger.dac_conversions
        assert a.ledger.total_energy_j == b.ledger.total_energy_j

    def test_rng_stream_position_identical(self):
        """After a batch, both impls leave the shared stream at the same
        point: a subsequent scalar mvm must agree bitwise."""
        xs = np.random.default_rng(11).uniform(-1, 1, (4, 12))
        probe = np.random.default_rng(12).uniform(-1, 1, 12)
        a = _crossbar(12, 10, 11)
        b = _crossbar(12, 10, 11)
        a.mvm_batch(xs, impl="scalar")
        b.mvm_batch(xs, impl="numpy")
        assert np.array_equal(a.mvm(probe), b.mvm(probe))

    def test_drift_time_respected(self):
        xs = np.random.default_rng(4).uniform(-1, 1, (3, 8))
        scalar = _crossbar(8, 8, 4).mvm_batch(
            xs, t_seconds=1e4, impl="scalar"
        )
        vector = _crossbar(8, 8, 4).mvm_batch(
            xs, t_seconds=1e4, impl="numpy"
        )
        assert np.array_equal(scalar, vector)

    def test_invalid_impl_rejected(self):
        xbar = _crossbar(8, 8, 0)
        with pytest.raises(ValueError, match="impl"):
            xbar.mvm_batch(np.zeros((1, 8)), impl="fortran")

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(min_value=2, max_value=40),
        cols=st.integers(min_value=1, max_value=24),
        batch=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_batch_bitwise(self, rows, cols, batch, seed):
        xs = np.random.default_rng(seed).uniform(-1, 1, (batch, rows))
        scalar = _crossbar(rows, cols, seed).mvm_batch(xs, impl="scalar")
        vector = _crossbar(rows, cols, seed).mvm_batch(xs, impl="numpy")
        assert np.array_equal(scalar, vector)


_DNA = st.text(alphabet="ACGT", max_size=160)


class TestEditDistanceEquivalence:
    def test_golden_cases(self):
        cases = [
            ("", "", 0),
            ("ACGT", "ACGT", 0),
            ("ACGT", "AGGT", 1),
            ("AAAA", "TTTT", 4),
            ("ACGTACGT", "CGTACGTA", 2),
        ]
        for a, b, expected in cases:
            for band in (0, 1, 4, 8):
                scalar = levenshtein_banded(a, b, band, impl="scalar")
                vector = levenshtein_banded(a, b, band, impl="numpy")
                assert scalar == vector
                if expected <= band:
                    assert vector == expected
                else:
                    assert vector is None

    def test_counter_charges_identical(self):
        rng = np.random.default_rng(0)
        a = "".join("ACGT"[i] for i in rng.integers(0, 4, 300))
        b = "".join("ACGT"[i] for i in rng.integers(0, 4, 290))
        for band in (10, 40, 120):
            cs, cv = CellUpdateCounter(), CellUpdateCounter()
            ds = levenshtein_banded(a, b, band, counter=cs, impl="scalar")
            dv = levenshtein_banded(a, b, band, counter=cv, impl="numpy")
            assert ds == dv
            assert cs.cells == cv.cells

    def test_non_ascii_falls_back(self):
        # The vector kernel compares byte codes; multi-byte characters
        # must take the scalar path and still be correct.
        assert levenshtein_banded("naïve", "naive", 2) == 1
        assert levenshtein_banded("αβγ", "αβδ", 2, impl="numpy") == 1

    def test_invalid_impl_rejected(self):
        with pytest.raises(ValueError, match="impl"):
            levenshtein_banded("AC", "AG", 2, impl="simd")

    @settings(max_examples=120, deadline=None)
    @given(a=_DNA, b=_DNA, band=st.integers(min_value=0, max_value=24))
    def test_property_scalar_numpy_agree(self, a, b, band):
        cs, cv = CellUpdateCounter(), CellUpdateCounter()
        scalar = levenshtein_banded(a, b, band, counter=cs, impl="scalar")
        vector = levenshtein_banded(a, b, band, counter=cv, impl="numpy")
        assert scalar == vector
        assert cs.cells == cv.cells
        reference = levenshtein_reference(a, b)
        if reference <= band:
            assert vector == reference
        else:
            assert vector is None


class TestHtconvEquivalence:
    def test_scalar_matches_numpy_within_policy(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 10, 12))
        kernel = rng.normal(size=(3, 3, 3))
        for fovea in (
            FovealRegion.centered(10, 12, 0.3),
            FovealRegion.everything(),
            FovealRegion.nothing(),
        ):
            scalar = htconv_x2(x, kernel, fovea, impl="scalar")
            vector = htconv_x2(x, kernel, fovea, impl="numpy")
            assert np.allclose(scalar, vector, rtol=1e-12, atol=1e-12)

    def test_mac_charges_identical(self):
        from repro.axc.macs import MacCounter

        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 8, 8))
        kernel = rng.normal(size=(2, 3, 3))
        fovea = FovealRegion.centered(8, 8, 0.4)
        cs, cv = MacCounter(), MacCounter()
        htconv_x2(x, kernel, fovea, counter=cs, impl="scalar")
        htconv_x2(x, kernel, fovea, counter=cv, impl="numpy")
        assert cs.report() == cv.report()

    def test_invalid_impl_rejected(self):
        with pytest.raises(ValueError, match="impl"):
            htconv_x2(
                np.zeros((1, 4, 4)),
                np.zeros((1, 3, 3)),
                FovealRegion.everything(),
                impl="loop",
            )


class TestSpartaEquivalence:
    @pytest.mark.parametrize(
        "region_factory",
        [
            lambda: bfs_tasks(random_graph(96, seed=1), seed=1),
            lambda: spmv_tasks(num_rows=80, seed=2),
            lambda: pagerank_tasks(random_graph(60, seed=3), seed=3),
            lambda: streaming_tasks(num_tasks=100),
        ],
    )
    @pytest.mark.parametrize(
        "config",
        [
            {},
            {"enable_cache": False, "memory_latency": 200},
            {"num_lanes": 2, "memory_latency": 300, "switch_penalty": 2},
        ],
    )
    def test_stats_identical(self, region_factory, config):
        region = region_factory()
        scalar = simulate(region, impl="scalar", **config)
        vector = simulate(region, impl="numpy", **config)
        assert dataclasses.asdict(scalar) == dataclasses.asdict(vector)

    def test_invalid_impl_rejected(self):
        from repro.core.errors import ValidationError

        with pytest.raises(ValidationError, match="impl"):
            simulate(streaming_tasks(num_tasks=2), impl="verilog")


def _hls_graph(num_ops, seed):
    import random

    rng = random.Random(seed)
    kinds = list(OpKind)
    graph = DataflowGraph(f"g{seed}")
    for i in range(num_ops):
        deps = tuple(
            f"op{j}"
            for j in rng.sample(range(i), min(i, rng.randint(0, 3)))
        )
        graph.add(
            Operation(name=f"op{i}", kind=rng.choice(kinds), inputs=deps)
        )
    return graph


class TestHlsEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "resources",
        [
            {},
            {OpKind.MUL: 1, OpKind.ADD: 1},
            {kind: 1 for kind in OpKind},
            {OpKind.DIV: 1, OpKind.LOAD: 2, OpKind.MAC: 2},
        ],
    )
    def test_schedules_identical(self, seed, resources):
        graph = _hls_graph(120, seed)
        scalar = schedule_list(graph, resources, impl="scalar")
        vector = schedule_list(graph, resources, impl="numpy")
        assert scalar.start_cycle == vector.start_cycle
        assert scalar.makespan == vector.makespan

    def test_kernel_bodies_identical(self):
        from repro.hls.kernels import _fir_body, _gemm_body

        for body in (_fir_body(12), _gemm_body(8)):
            for resources in ({}, {OpKind.MUL: 2, OpKind.ADD: 1}):
                scalar = schedule_list(body, resources, impl="scalar")
                vector = schedule_list(body, resources, impl="numpy")
                assert scalar.start_cycle == vector.start_cycle

    def test_invalid_impl_rejected(self):
        with pytest.raises(ValueError, match="impl"):
            schedule_list(_hls_graph(4, 0), {}, impl="ilp")


class TestEccEquivalence:
    def test_roundtrip_identical(self):
        rng = np.random.default_rng(5)
        for n, k in [(255, 223), (63, 39), (20, 12)]:
            scalar = ReedSolomonCodec(n, k, impl="scalar")
            vector = ReedSolomonCodec(n, k, impl="numpy")
            for _ in range(10):
                message = bytes(int(v) for v in rng.integers(0, 256, k))
                cs, cv = scalar.encode(message), vector.encode(message)
                assert cs == cv
                corrupted = bytearray(cs)
                for pos in rng.integers(0, n, scalar.t + 1):
                    corrupted[int(pos)] ^= int(rng.integers(1, 256))
                assert scalar.decode(bytes(corrupted)) == vector.decode(
                    bytes(corrupted)
                )

    def test_correction_capability_preserved(self):
        codec = ReedSolomonCodec(63, 39, impl="numpy")
        message = bytes(range(39))
        codeword = bytearray(codec.encode(message))
        for pos in range(codec.t):
            codeword[pos * 3] ^= 0x5A
        assert codec.decode(bytes(codeword)) == message

    def test_invalid_impl_rejected(self):
        with pytest.raises(ValueError, match="impl"):
            ReedSolomonCodec(10, 8, impl="gpu")
