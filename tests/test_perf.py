"""Tests for the :mod:`repro.perf` profiling layer and its wiring."""

import json
import threading
import time

import pytest

from repro.perf import (
    Profiler,
    TimerStat,
    disable_profiling,
    enable_profiling,
    get_profiler,
    profiled,
)


class TestTimerStat:
    def test_accumulates(self):
        stat = TimerStat()
        stat.record(0.5)
        stat.record(1.5)
        assert stat.calls == 2
        assert stat.total_s == 2.0
        assert stat.mean_s == 1.0
        assert stat.min_s == 0.5
        assert stat.max_s == 1.5

    def test_empty_as_dict_is_finite(self):
        snapshot = TimerStat().as_dict()
        assert snapshot["calls"] == 0
        assert snapshot["min_s"] == 0.0
        assert snapshot["mean_s"] == 0.0


class TestProfiler:
    def test_timer_records(self):
        profiler = Profiler("t")
        with profiler.timer("work"):
            time.sleep(0.001)
        snapshot = profiler.as_dict()
        assert snapshot["timers"]["work"]["calls"] == 1
        assert snapshot["timers"]["work"]["total_s"] > 0

    def test_nested_paths(self):
        profiler = Profiler("t")
        with profiler.timer("outer"):
            with profiler.timer("inner"):
                pass
        timers = profiler.as_dict()["timers"]
        assert set(timers) == {"outer", "outer/inner"}

    def test_disabled_costs_nothing_and_records_nothing(self):
        profiler = Profiler("t", enabled=False)
        with profiler.timer("work"):
            pass
        profiler.count("events")
        profiler.record("late", 1.0)
        snapshot = profiler.as_dict()
        assert snapshot["timers"] == {}
        assert snapshot["counters"] == {}

    def test_counters(self):
        profiler = Profiler("t")
        profiler.count("hits")
        profiler.count("hits", 4)
        assert profiler.as_dict()["counters"]["hits"] == 5

    def test_record_respects_nesting(self):
        profiler = Profiler("t")
        with profiler.timer("outer"):
            profiler.record("measured", 0.25)
        timers = profiler.as_dict()["timers"]
        assert timers["outer/measured"]["total_s"] == 0.25

    def test_reset_keeps_enabled_state(self):
        profiler = Profiler("t")
        with profiler.timer("work"):
            pass
        profiler.reset()
        assert profiler.as_dict()["timers"] == {}
        assert profiler.enabled

    def test_as_json_round_trips(self):
        profiler = Profiler("t")
        with profiler.timer("work"):
            pass
        payload = json.loads(profiler.as_json())
        assert payload["name"] == "t"
        assert "work" in payload["timers"]

    def test_render_table_indents_and_lists_counters(self):
        profiler = Profiler("demo")
        with profiler.timer("outer"):
            with profiler.timer("inner"):
                pass
        profiler.count("cache.hits", 3)
        text = profiler.render_table()
        assert "profile: demo" in text
        assert "outer" in text
        assert "  inner" in text
        assert "cache.hits: 3" in text

    def test_thread_local_nesting(self):
        profiler = Profiler("t")
        seen = []

        def worker():
            with profiler.timer("child"):
                pass
            seen.append(True)

        with profiler.timer("parent"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        timers = profiler.as_dict()["timers"]
        # The other thread has its own stack: no parent/child path.
        assert "child" in timers
        assert "parent/child" not in timers
        assert seen == [True]


class TestRegistry:
    def test_default_profiler_starts_disabled(self):
        assert not get_profiler("fresh-default-check").enabled

    def test_named_singletons(self):
        assert get_profiler("alpha") is get_profiler("alpha")
        assert get_profiler("alpha") is not get_profiler("beta")

    def test_enable_disable_helpers(self):
        profiler = enable_profiling("toggled")
        assert profiler.enabled
        assert disable_profiling("toggled") is profiler
        assert not profiler.enabled

    def test_concurrent_get_profiler_is_a_singleton(self):
        """Racing first-access from many threads must not mint two
        profilers for one name (the double-checked registry lock)."""
        name = "concurrent-registry-check"
        barrier = threading.Barrier(8)
        seen = []

        def grab():
            barrier.wait()
            seen.append(get_profiler(name))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == 8
        assert all(p is seen[0] for p in seen)

    def test_concurrent_recording_is_consistent(self):
        profiler = enable_profiling("concurrent-recording")
        profiler.reset()
        try:
            def work():
                for _ in range(50):
                    with profiler.timer("op"):
                        pass
                    profiler.count("ops", 1)

            threads = [
                threading.Thread(target=work) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snap = profiler.as_dict()
            assert snap["timers"]["op"]["calls"] == 200
            assert snap["counters"]["ops"] == 200
        finally:
            disable_profiling("concurrent-recording")


class TestSpanHook:
    def test_profiled_emits_spans_even_when_profiler_disabled(self):
        """The perf->span bridge fires on the hook alone, so kernel
        spans appear in traces without enabling the profiler."""
        from repro import obs
        from repro.obs.trace import derive_trace_id, get_tracer

        profiler = Profiler("hook-test", enabled=False)

        @profiled("hooked.kernel", profiler=profiler)
        def sample():
            return 7

        tracer = obs.enable_tracing()
        tracer.reset()
        try:
            tid = derive_trace_id("hook-test", 0)
            root = tracer.start_span("r", trace_id=tid, parent_id="")
            with tracer.activate(root.context):
                assert sample() == 7
            tracer.end_span(root)
            names = [s["name"] for s in tracer.spans()]
            assert "hooked.kernel" in names
            assert profiler.as_dict()["timers"] == {}
        finally:
            obs.disable_tracing()
            get_tracer().reset()

    def test_hook_and_profiler_record_together(self):
        from repro import obs
        from repro.obs.trace import derive_trace_id, get_tracer

        profiler = Profiler("hook-both", enabled=True)

        @profiled("both.kernel", profiler=profiler)
        def sample():
            return 7

        tracer = obs.enable_tracing()
        tracer.reset()
        try:
            tid = derive_trace_id("hook-both", 0)
            root = tracer.start_span("r", trace_id=tid, parent_id="")
            with tracer.activate(root.context):
                sample()
            tracer.end_span(root)
            assert "both.kernel" in [
                s["name"] for s in tracer.spans()
            ]
            assert (
                profiler.as_dict()["timers"]["both.kernel"]["calls"] == 1
            )
        finally:
            obs.disable_tracing()
            get_tracer().reset()


class TestProfiledDecorator:
    def test_records_under_default_label(self):
        profiler = Profiler("t")

        @profiled(profiler=profiler)
        def sample():
            return 42

        assert sample() == 42
        label = sample.__profiled_name__
        assert label.endswith("sample")
        assert profiler.as_dict()["timers"][label]["calls"] == 1

    def test_explicit_label(self):
        profiler = Profiler("t")

        @profiled("custom.label", profiler=profiler)
        def sample():
            return 1

        sample()
        assert "custom.label" in profiler.as_dict()["timers"]

    def test_disabled_passthrough(self):
        profiler = Profiler("t", enabled=False)

        @profiled("x", profiler=profiler)
        def sample():
            return "ok"

        assert sample() == "ok"
        assert profiler.as_dict()["timers"] == {}

    def test_default_registry_resolved_at_call_time(self):
        name = "call-time-resolution"

        @profiled(name)
        def sample():
            return None

        sample()  # default profiler disabled: nothing recorded
        assert name not in get_profiler().as_dict()["timers"]
        enable_profiling()
        try:
            sample()
            assert get_profiler().as_dict()["timers"][name]["calls"] == 1
        finally:
            disable_profiling()
            get_profiler().reset()


class TestKernelInstrumentation:
    def test_kernels_report_when_enabled(self):
        import numpy as np

        from repro.dna.editdistance import levenshtein_banded
        from repro.hls.ir import OpKind
        from repro.hls.kernels import _dot_body
        from repro.hls.scheduling import schedule_list

        profiler = enable_profiling()
        profiler.reset()
        try:
            levenshtein_banded("ACGT", "ACGA", band=2)
            schedule_list(_dot_body(), {OpKind.MUL: 1})
            timers = profiler.as_dict()["timers"]
            assert timers["dna.levenshtein_banded"]["calls"] == 1
            assert timers["hls.schedule_list"]["calls"] == 1
            assert np is not None
        finally:
            disable_profiling()
            profiler.reset()

    def test_cache_hit_miss_timers(self):
        from repro.exec import ResultCache

        profiler = enable_profiling()
        profiler.reset()
        try:
            cache = ResultCache()
            cache.put("k", {"v": 1})
            assert cache.get("k") == {"v": 1}
            assert cache.get("absent") is None
            timers = profiler.as_dict()["timers"]
            assert timers["cache.put"]["calls"] == 1
            assert timers["cache.get.hit"]["calls"] == 1
            assert timers["cache.get.miss"]["calls"] == 1
        finally:
            disable_profiling()
            profiler.reset()

    def test_evaluator_map_nests_cache_timers(self):
        from repro.exec import ParallelEvaluator, ResultCache

        profiler = enable_profiling()
        profiler.reset()
        try:
            engine = ParallelEvaluator(
                max_workers=1, mode="serial", cache=ResultCache()
            )
            engine.map(lambda x: x * 2, [1, 2], keys=["a", "b"])
            timers = profiler.as_dict()["timers"]
            assert timers["exec.map"]["calls"] == 1
            assert timers["exec.map/cache.get.miss"]["calls"] == 2
            assert timers["exec.map/cache.put"]["calls"] == 2
        finally:
            disable_profiling()
            profiler.reset()


class TestDigestMemo:
    def test_memo_hits_and_time_saved(self):
        from dataclasses import dataclass

        from repro.exec import ResultCache, config_digest

        @dataclass(frozen=True)
        class Spec:
            value: int

        cache = ResultCache()
        spec = Spec(3)
        first = cache.digest(spec)
        second = cache.digest(spec)
        assert first == second == config_digest(spec)
        stats = cache.stats()
        assert stats["digest_memo_hits"] == 1
        assert stats["digest_time_saved_s"] > 0

    def test_mutable_objects_bypass_memo(self):
        from repro.exec import ResultCache, config_digest

        cache = ResultCache()
        payload = {"a": 1}
        assert cache.digest(payload) == config_digest(payload)
        payload["a"] = 2
        assert cache.digest(payload) == config_digest(payload)
        assert cache.stats()["digest_memo_hits"] == 0

    def test_memo_capacity_bounded(self):
        from dataclasses import dataclass

        from repro.exec import ResultCache

        @dataclass(frozen=True)
        class Spec:
            value: int

        cache = ResultCache(digest_memo_size=2)
        specs = [Spec(i) for i in range(5)]
        for spec in specs:
            cache.digest(spec)
        assert len(cache._digest_memo) == 2

    def test_bad_capacity_rejected(self):
        from repro.core.errors import ValidationError
        from repro.exec import ResultCache

        with pytest.raises(ValidationError):
            ResultCache(digest_memo_size=0)


class TestProfileCli:
    def test_profile_all_demos(self, capsys):
        from repro.cli import main

        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "profile: repro" in out
        for label in (
            "imc.mvm_batch",
            "dna.levenshtein_banded",
            "axc.htconv_x2",
            "sparta.run",
            "hls.schedule_list",
            "cache.get.hit",
        ):
            assert label in out

    def test_profile_single_demo(self, capsys):
        from repro.cli import main

        assert main(["profile", "hls"]) == 0
        out = capsys.readouterr().out
        assert "hls.schedule_list" in out
        assert "sparta.run" not in out

    def test_profile_leaves_profiler_disabled(self, capsys):
        from repro.cli import main

        main(["profile", "hls"])
        capsys.readouterr()
        assert not get_profiler().enabled

    def test_demo_requires_profile(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fig1", "hls"])

    def test_unknown_demo_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["profile", "nope"])
