"""Tests for the resilience subsystem: typed errors, fault injection,
bounded retry, deadlines, checkpoints, and resilient campaign/DSE runs."""

import json

import numpy as np
import pytest

from repro.core.errors import (
    CampaignCellError,
    DeviceFault,
    ReproError,
    SimulationTimeout,
    StateError,
    TransientFault,
    ValidationError,
)
from repro.dse.explorer import RandomExplorer
from repro.dse.runner import DSERunner
from repro.hetero.campaign import (
    CampaignCell,
    run_campaign,
    run_resilient_campaign,
)
from repro.hetero.storage import NVME_SSD, SATA_SSD
from repro.hetero.workload import SegmentationWorkload
from repro.hls.kernels import make_kernel
from repro.imc.devices import NVMDevice, RRAM_PARAMS
from repro.imc.program_verify import program_and_verify
from repro.resilience import (
    BackoffPolicy,
    CheckpointStore,
    Deadline,
    FaultInjector,
    FaultModel,
    FaultyStorage,
    resilient_run,
)
from repro.sparta.noc import NocConfig
from repro.sparta.simulator import SpartaSystem, simulate
from repro.sparta.kernels import streaming_tasks

WORKLOAD = SegmentationWorkload(num_volumes=8, epochs=1)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc_type in (
            ValidationError,
            StateError,
            SimulationTimeout,
            DeviceFault,
            TransientFault,
        ):
            assert issubclass(exc_type, ReproError)

    def test_legacy_compatibility(self):
        # Legacy ``except ValueError`` / ``except RuntimeError`` callers
        # keep working after the typed-error migration.
        assert issubclass(ValidationError, ValueError)
        assert issubclass(SimulationTimeout, RuntimeError)
        assert issubclass(DeviceFault, RuntimeError)
        assert issubclass(StateError, RuntimeError)

    def test_transient_is_device_fault(self):
        assert issubclass(TransientFault, DeviceFault)

    def test_campaign_cell_error_roundtrip(self):
        error = CampaignCellError(
            "boom", device="GPU", storage="SATA", phase="training",
            attempts=3,
        )
        assert error.key == "GPU|SATA|training"
        restored = CampaignCellError.from_record(error.to_record())
        assert restored.key == error.key
        assert restored.attempts == 3
        assert str(restored) == "boom"


class TestBackoffPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValidationError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValidationError):
            BackoffPolicy(base_delay_s=-1)

    def test_exponential_growth_and_cap(self):
        policy = BackoffPolicy(
            base_delay_s=1.0, factor=2.0, max_delay_s=5.0, jitter=0.0
        )
        assert policy.delay_s(1) == 1.0
        assert policy.delay_s(2) == 2.0
        assert policy.delay_s(3) == 4.0
        assert policy.delay_s(4) == 5.0  # capped

    def test_jitter_bounds(self):
        policy = BackoffPolicy(
            base_delay_s=1.0, factor=1.0, jitter=0.25
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay_s(1, rng=rng) for _ in range(200)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert max(delays) > 1.0 > min(delays)


class TestResilientRun:
    def test_success_first_try(self):
        outcome = resilient_run(lambda: 42)
        assert outcome.value == 42
        assert outcome.attempts == 1
        assert outcome.backoff_s == 0.0
        assert not outcome.retried

    def test_retries_transient_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFault("hiccup")
            return "ok"

        outcome = resilient_run(
            flaky, policy=BackoffPolicy(max_attempts=4, jitter=0.0)
        )
        assert outcome.value == "ok"
        assert outcome.attempts == 3
        assert outcome.backoff_s > 0

    def test_attempts_bounded_by_policy(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise TransientFault("hiccup")

        with pytest.raises(TransientFault):
            resilient_run(
                always_fails, policy=BackoffPolicy(max_attempts=3)
            )
        assert len(calls) == 3

    def test_permanent_fault_not_retried(self):
        calls = []

        def permanent():
            calls.append(1)
            raise DeviceFault("dead")

        with pytest.raises(DeviceFault):
            resilient_run(permanent)
        assert len(calls) == 1

    def test_virtual_backoff_accumulates(self):
        slept = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFault("hiccup")
            return 1

        policy = BackoffPolicy(
            max_attempts=4, base_delay_s=1.0, factor=2.0, jitter=0.0
        )
        outcome = resilient_run(flaky, policy=policy, sleep=slept.append)
        assert slept == [1.0, 2.0]
        assert outcome.backoff_s == 3.0

    def test_deadline_stops_retry_storm(self):
        clock = iter([0.0, 0.0, 10.0, 10.0, 10.0]).__next__
        deadline = Deadline(wall_clock_s=5.0, clock=clock)

        def always_fails():
            raise TransientFault("hiccup")

        with pytest.raises(SimulationTimeout):
            resilient_run(
                always_fails,
                policy=BackoffPolicy(max_attempts=100),
                deadline=deadline,
            )


class TestDeadline:
    def test_cycle_budget(self):
        deadline = Deadline(max_cycles=100)
        deadline.check(cycles=99)
        with pytest.raises(SimulationTimeout) as excinfo:
            deadline.check(cycles=100, partial_stats={"done": 7})
        assert excinfo.value.partial_stats == {"done": 7}
        assert excinfo.value.cycles == 100

    def test_wall_clock_budget(self):
        times = iter([0.0, 1.0, 6.0])
        deadline = Deadline(wall_clock_s=5.0, clock=times.__next__)
        deadline.check()  # at t=1
        with pytest.raises(SimulationTimeout) as excinfo:
            deadline.check()  # at t=6
        assert excinfo.value.elapsed_s == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            Deadline(wall_clock_s=0)
        with pytest.raises(ValidationError):
            Deadline(max_cycles=0)


class TestCheckpointStore:
    def test_save_and_resume(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = CheckpointStore(path)
        store.save("a", {"value": 1})
        store.save("b", {"value": 2})
        resumed = CheckpointStore(path)
        assert "a" in resumed and "b" in resumed
        assert resumed.get("a") == {"value": 1}
        assert resumed.completed_keys() == ["a", "b"]
        assert len(resumed) == 2

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "ckpt.json"
        CheckpointStore(path).save("k", {"x": 1.5})
        with open(path) as fh:
            assert json.load(fh) == {"k": {"x": 1.5}}

    def test_flush_every_batches_writes(self, tmp_path):
        path = tmp_path / "ckpt.json"
        with CheckpointStore(path, flush_every=10) as store:
            store.save("a", {})
            assert not path.exists()  # batched, not yet flushed
        assert path.exists()  # context exit flushes

    def test_clear(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = CheckpointStore(path)
        store.save("a", {})
        store.clear()
        assert not path.exists()
        assert len(CheckpointStore(path)) == 0

    def test_non_object_file_recovers_empty(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        store = CheckpointStore(path)
        assert store.recovered
        assert len(store) == 0

    def test_torn_file_recovers_instead_of_raising(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"half": ')  # torn mid-write
        store = CheckpointStore(path)
        assert store.recovered
        assert store.salvaged == 0
        assert len(store) == 0

    def test_truncated_store_salvages_complete_records(self, tmp_path):
        path = tmp_path / "ckpt.json"
        with CheckpointStore(path) as store:
            store.save("a", {"value": 1})
            store.save("b", {"value": 2, "nested": {"deep": True}})
            store.save("c", {"value": 3})
        text = path.read_text()
        # Tear the file mid-way through the last record.
        path.write_text(text[: text.rfind('"value": 3') + 4])
        store = CheckpointStore(path)
        assert store.recovered
        assert store.salvaged == 2
        assert store.get("a") == {"value": 1}
        assert store.get("b") == {"value": 2, "nested": {"deep": True}}
        assert "c" not in store

    def test_recovery_logs_ledger_event(self, tmp_path):
        from repro.obs.ledger import get_ledger

        path = tmp_path / "torn.json"
        path.write_text('{"half": {"x": 1}, "torn": {"y"')
        ledger = get_ledger()
        ledger.enable()
        ledger.reset()
        try:
            store = CheckpointStore(path)
        finally:
            events = ledger.events()
            ledger.disable()
            ledger.reset()
        assert store.salvaged == 1
        recovered = [
            e for e in events if e["event"] == "checkpoint.recovered"
        ]
        assert len(recovered) == 1
        assert recovered[0]["salvaged"] == 1
        assert recovered[0]["error_type"] == "JSONDecodeError"


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValidationError):
            FaultModel(storage_transient_rate=1.5)
        with pytest.raises(ValidationError):
            FaultModel(imc_stuck_fraction=-0.1)
        with pytest.raises(ValidationError):
            FaultModel(imc_drift_acceleration=0.5)
        with pytest.raises(ValidationError):
            FaultModel(noc_latency_multiplier=0.0)

    def test_defaults_are_fault_free(self):
        model = FaultModel()
        assert model.imc_stuck_fraction == 0.0
        assert model.storage_transient_rate == 0.0


class TestFaultInjector:
    def test_same_seed_same_faults(self):
        model = FaultModel(sparta_lane_dropout=0.5)
        a = FaultInjector(model, seed=3).failed_lanes(8)
        b = FaultInjector(model, seed=3).failed_lanes(8)
        c = FaultInjector(model, seed=4).failed_lanes(8)
        assert a == b
        assert any(
            FaultInjector(model, seed=s).failed_lanes(8) != a
            for s in range(5, 15)
        ) or a != c

    def test_key_addressed_streams_are_independent(self):
        injector = FaultInjector(
            FaultModel(storage_transient_rate=0.5), seed=0
        )
        draws_a = injector.derive_rng("site-a").uniform(size=8)
        draws_a2 = injector.derive_rng("site-a").uniform(size=8)
        draws_b = injector.derive_rng("site-b").uniform(size=8)
        assert np.array_equal(draws_a, draws_a2)
        assert not np.array_equal(draws_a, draws_b)

    def test_stuck_cells_survive_programming(self):
        device = NVMDevice(RRAM_PARAMS, (32, 32), seed=0)
        injector = FaultInjector(
            FaultModel(imc_stuck_fraction=0.1), seed=0
        )
        mask = injector.inject_stuck_cells(device)
        assert 0 < device.stuck_cell_count < 32 * 32
        pinned = device.conductances[mask]
        device.program_pulse(
            np.full((32, 32), RRAM_PARAMS.g_max * 0.5)
        )
        assert np.array_equal(device.conductances[mask], pinned)
        # Unstuck cells did reprogram.
        assert not np.array_equal(
            device.conductances[~mask],
            np.full((~mask).sum(), RRAM_PARAMS.g_min),
        )

    def test_stuck_cells_degrade_program_verify(self):
        rng = np.random.default_rng(0)
        targets = rng.uniform(
            RRAM_PARAMS.g_min, RRAM_PARAMS.g_max, (32, 32)
        )
        healthy = NVMDevice(RRAM_PARAMS, (32, 32), seed=1)
        faulty = NVMDevice(RRAM_PARAMS, (32, 32), seed=1)
        FaultInjector(
            FaultModel(imc_stuck_fraction=0.2), seed=1
        ).inject_stuck_cells(faulty)
        good = program_and_verify(healthy, targets)
        bad = program_and_verify(faulty, targets)
        assert bad.converged_fraction < good.converged_fraction
        assert bad.final_rms_error > good.final_rms_error

    def test_accelerated_drift(self):
        injector = FaultInjector(
            FaultModel(imc_drift_acceleration=3.0), seed=0
        )
        params = injector.accelerated_drift(RRAM_PARAMS)
        assert params.drift_nu == pytest.approx(
            3.0 * RRAM_PARAMS.drift_nu
        )
        assert params.g_min == RRAM_PARAMS.g_min

    def test_lane_dropout_keeps_a_survivor(self):
        injector = FaultInjector(
            FaultModel(sparta_lane_dropout=1.0), seed=0
        )
        failed = injector.failed_lanes(4)
        assert len(failed) == 3

    def test_degraded_noc(self):
        injector = FaultInjector(
            FaultModel(noc_latency_multiplier=2.0), seed=0
        )
        config = injector.degraded_noc(NocConfig())
        assert config.memory_latency == 200
        assert config.hop_latency == 8

    def test_throttled_storage(self):
        injector = FaultInjector(
            FaultModel(storage_throttle_fraction=0.5), seed=0
        )
        throttled = injector.throttled_storage(NVME_SSD)
        assert throttled.bandwidth_bytes_s == pytest.approx(
            NVME_SSD.bandwidth_bytes_s / 2
        )
        assert throttled.name == NVME_SSD.name

    def test_faulty_storage_raises_transient(self):
        storage = FaultyStorage(SATA_SSD, rate=1.0, rng=0)
        with pytest.raises(TransientFault):
            storage.read_time_s(1024)
        assert storage.faults_raised == 1
        clean = FaultyStorage(SATA_SSD, rate=0.0, rng=0)
        assert clean.read_time_s(1024) == SATA_SSD.read_time_s(1024)
        assert clean.name == SATA_SSD.name  # delegation

    def test_surviving_cus(self):
        injector = FaultInjector(FaultModel(scf_cu_dropout=1.0), seed=0)
        assert injector.surviving_cus(16) == 1
        none_lost = FaultInjector(FaultModel(), seed=0)
        assert none_lost.surviving_cus(16) == 16

    def test_failed_devices_keep_a_survivor(self):
        injector = FaultInjector(FaultModel(device_dropout=1.0), seed=0)
        names = ["a", "b", "c"]
        failed = injector.failed_devices(names)
        assert len(failed) == 2


class TestSpartaResilience:
    def test_lane_dropout_remaps_work(self):
        region = streaming_tasks(num_tasks=32, elements_per_task=4)
        full = simulate(region, num_lanes=4)
        degraded = simulate(region, num_lanes=4, failed_lanes=(1, 3))
        assert degraded.tasks_completed == full.tasks_completed
        assert degraded.num_lanes == 2
        assert degraded.cycles > full.cycles

    def test_all_lanes_failed_rejected(self):
        with pytest.raises(ValidationError):
            SpartaSystem(num_lanes=2, failed_lanes=(0, 1))
        with pytest.raises(ValidationError):
            SpartaSystem(num_lanes=2, failed_lanes=(5,))


class TestScfResilience:
    def test_cu_dropout_degrades_not_dies(self):
        from repro.scf.fabric import ScalableComputeFabric
        from repro.scf.workloads import TransformerConfig

        injector = FaultInjector(FaultModel(scf_cu_dropout=0.5), seed=2)
        survivors = injector.surviving_cus(16)
        assert 1 <= survivors < 16
        fabric = ScalableComputeFabric()
        workload = TransformerConfig(seq_len=128)
        full = fabric.run_block(workload, 16)
        degraded = fabric.run_block(workload, survivors)
        assert degraded.seconds_per_block >= full.seconds_per_block
        assert degraded.sustained_flops > 0


class TestResilientCampaign:
    def test_fault_free_matches_plain_campaign(self):
        report = run_resilient_campaign(WORKLOAD)
        plain = run_campaign(WORKLOAD)
        assert len(report.cells) == len(plain)
        assert not report.errors
        assert report.total_backoff_s == 0.0
        by_key = {c.key: c for c in report.cells}
        for cell in plain:
            match = by_key[cell.key]
            assert match.total_seconds == pytest.approx(
                cell.total_seconds
            )
            assert match.attempts == 1
            assert match.executed_on is None

    def test_twenty_percent_faults_complete_without_raising(self):
        # Acceptance criterion: 20% transient storage faults, every
        # cell reported, retries bounded, seeded rerun identical.
        policy = BackoffPolicy(max_attempts=4)

        def run():
            injector = FaultInjector(
                FaultModel(storage_transient_rate=0.2), seed=42
            )
            return run_resilient_campaign(
                WORKLOAD, injector=injector, policy=policy
            )

        report = run()
        baseline = run_campaign(WORKLOAD)
        assert report.total_cells == len(baseline)
        assert sorted(report.keys()) == sorted(c.key for c in baseline)
        assert all(
            c.attempts <= policy.max_attempts for c in report.cells
        )
        assert all(
            e.attempts <= policy.max_attempts for e in report.errors
        )
        # Faults were actually injected and retried.
        assert report.total_attempts > len(baseline)

        rerun = run()
        assert rerun.keys() == report.keys()
        assert [c.to_record() for c in rerun.cells] == [
            c.to_record() for c in report.cells
        ]
        assert [e.to_record() for e in rerun.errors] == [
            e.to_record() for e in report.errors
        ]

    def test_failed_cells_are_recorded_not_raised(self):
        injector = FaultInjector(
            FaultModel(storage_transient_rate=1.0), seed=0
        )
        policy = BackoffPolicy(max_attempts=2)
        report = run_resilient_campaign(
            WORKLOAD, injector=injector, policy=policy
        )
        assert not report.cells
        assert report.failure_rate == 1.0
        for error in report.errors:
            assert isinstance(error, CampaignCellError)
            assert error.attempts == 2
            assert "attempts" in str(error)

    def test_device_dropout_remaps_to_survivor(self):
        injector = FaultInjector(
            FaultModel(device_dropout=1.0), seed=0
        )
        report = run_resilient_campaign(WORKLOAD, injector=injector)
        remapped = [c for c in report.cells if c.executed_on]
        assert remapped  # some cells ran on a survivor
        survivors = {c.executed_on for c in remapped}
        assert len(survivors) == 1
        # The matrix is still fully reported.
        assert report.total_cells == len(run_campaign(WORKLOAD))

    def test_checkpoint_resume_reproduces_outcome(self, tmp_path):
        policy = BackoffPolicy(max_attempts=4)

        def injector():
            return FaultInjector(
                FaultModel(storage_transient_rate=0.3), seed=9
            )

        full = run_resilient_campaign(
            WORKLOAD, injector=injector(), policy=policy
        )

        # Simulate a crash: persist only the first half of the cells.
        half = CheckpointStore(tmp_path / "half.json")
        keys = full.keys()
        for cell in full.cells:
            if keys.index(cell.key) < len(keys) // 2:
                half.save(cell.key, cell.to_record())
        for error in full.errors:
            if keys.index(error.key) < len(keys) // 2:
                half.save(error.key, error.to_record())

        resumed = run_resilient_campaign(
            WORKLOAD, injector=injector(), policy=policy,
            checkpoint=half,
        )
        assert resumed.keys() == full.keys()
        assert sorted(
            c.to_record().items() for c in resumed.cells
        ) == sorted(c.to_record().items() for c in full.cells)
        # Every cell is now checkpointed for the next resume.
        assert len(half) == full.total_cells


class TestDSEGracefulDegradation:
    def _runner(self):
        from tests.test_dse import tiny_space

        return DSERunner(make_kernel("gemm", size=64), space=tiny_space())

    def test_failing_explorer_recorded_not_raised(self):
        class BrokenExplorer:
            name = "broken"

            def explore(self, evaluator, budget, seed=0):
                raise DeviceFault("engine dropped out")

        runner = self._runner()
        scores = runner.compare(
            [RandomExplorer(), BrokenExplorer()], budget=6, seed=0
        )
        assert "hypervolume" in scores["random"]
        assert scores["broken"] == {"error": "engine dropped out"}

    def test_transient_explorer_retried(self):
        calls = []

        class FlakyExplorer(RandomExplorer):
            name = "flaky"

            def explore(self, evaluator, budget, seed=0):
                calls.append(1)
                if len(calls) < 3:
                    raise TransientFault("hiccup")
                return super().explore(evaluator, budget, seed=seed)

        runner = self._runner()
        scores = runner.compare(
            [FlakyExplorer()], budget=6, seed=0,
            policy=BackoffPolicy(max_attempts=4),
        )
        assert len(calls) == 3
        assert "hypervolume" in scores["flaky"]

    def test_checkpoint_skips_completed_explorers(self, tmp_path):
        runner = self._runner()
        store = CheckpointStore(tmp_path / "dse.json")
        first = runner.compare(
            [RandomExplorer()], budget=6, seed=0, checkpoint=store
        )
        calls = []

        class CountingExplorer(RandomExplorer):
            def explore(self, evaluator, budget, seed=0):
                calls.append(1)
                return super().explore(evaluator, budget, seed=seed)

        resumed = runner.compare(
            [CountingExplorer()], budget=6, seed=0,
            checkpoint=CheckpointStore(tmp_path / "dse.json"),
        )
        assert not calls  # resumed from checkpoint, no re-exploration
        assert resumed["random"] == pytest.approx(first["random"])
