"""Tests for SPARTA scratchpad staging and the RV32 program library."""

import pytest

from repro.scf import programs
from repro.scf.rv32 import RV32Simulator, Assembler, assemble_and_run
from repro.sparta import bfs_tasks, random_graph, simulate
from repro.sparta.openmp import ParallelForRegion, Task, compute, load, store
from repro.sparta.scratchpad import (
    profile_accesses,
    stage_hot_addresses,
)


class TestScratchpadStaging:
    def _skewed_region(self):
        """A region where one address dominates the traffic."""
        hot = 1 << 20
        tasks = []
        for t in range(32):
            steps = [load(hot), compute(1), load((1 << 21) + t),
                     compute(1), store((1 << 22) + t)]
            tasks.append(Task(task_id=t, steps=steps))
        return ParallelForRegion("skewed", tasks), hot

    def test_profile_counts(self):
        region, hot = self._skewed_region()
        counts = profile_accesses(region)
        assert counts[hot] == 32
        assert counts.most_common(1)[0][0] == hot

    def test_staging_remaps_hot_address(self):
        region, hot = self._skewed_region()
        staged, plan = stage_hot_addresses(region, budget_words=1)
        assert hot in plan.staged_addresses
        assert plan.staged_addresses[hot] == 0
        # ~1/3 of accesses hit the hot address.
        assert 0.25 < plan.staged_access_fraction < 0.45
        # The rewritten tasks use the scratchpad slot.
        first_loads = [t.steps[0] for t in staged.tasks]
        assert all(step == ("load", 0) for step in first_loads)

    def test_staging_speeds_up_skewed_region(self):
        region, _ = self._skewed_region()
        staged, _ = stage_hot_addresses(region, budget_words=1)
        base = simulate(region, num_lanes=2, contexts_per_lane=2,
                        enable_cache=False)
        fast = simulate(staged, num_lanes=2, contexts_per_lane=2,
                        enable_cache=False)
        assert fast.cycles < base.cycles
        assert fast.memory_requests < base.memory_requests

    def test_staging_bfs_graph(self):
        region = bfs_tasks(random_graph(num_nodes=128, avg_degree=8,
                                        seed=0))
        staged, plan = stage_hot_addresses(region, budget_words=64)
        assert plan.words_used == 64
        assert plan.staged_access_fraction > 0.1
        stats = simulate(staged, num_lanes=2, contexts_per_lane=4)
        assert stats.tasks_completed == len(region.tasks)

    def test_zero_budget_is_identity(self):
        region, _ = self._skewed_region()
        staged, plan = stage_hot_addresses(region, budget_words=0)
        assert plan.words_used == 0
        assert [t.steps for t in staged.tasks] == [
            t.steps for t in region.tasks
        ]

    def test_negative_budget_rejected(self):
        region, _ = self._skewed_region()
        with pytest.raises(ValueError):
            stage_hot_addresses(region, budget_words=-1)


class TestProgramLibrary:
    def test_sum_array(self):
        src = programs.fill_template(programs.SUM_ARRAY, count=6)
        sim = RV32Simulator()
        sim.write_words(0x1000, [3, 1, 4, 1, 5, 9])
        assert sim.run(Assembler().assemble(src)) == 23

    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 1), (2, 1),
                                            (10, 55), (20, 6765)])
    def test_fibonacci(self, n, expected):
        src = programs.fill_template(programs.FIBONACCI, n=n)
        assert assemble_and_run(src).exit_code == expected

    @pytest.mark.parametrize("a,b,expected", [(48, 36, 12), (17, 5, 1),
                                              (100, 100, 100), (7, 0, 7)])
    def test_gcd(self, a, b, expected):
        src = programs.fill_template(programs.GCD, a=a, b=b)
        assert assemble_and_run(src).exit_code == expected

    @pytest.mark.parametrize("value,expected", [(0, 0), (1, 1),
                                                (0xFF, 8), (0b1011_0101, 5)])
    def test_popcount(self, value, expected):
        sim = RV32Simulator()
        sim.write_words(0x1000, [value])
        assert sim.run(Assembler().assemble(programs.POPCOUNT)) == expected

    def test_bubble_sort(self):
        values = [5, 2, 9, 1, 7, 3]
        src = programs.fill_template(programs.BUBBLE_SORT,
                                     count=len(values))
        sim = RV32Simulator()
        sim.write_words(0x1000, values)
        passes = sim.run(Assembler().assemble(src),
                         max_instructions=100_000)
        assert sim.read_words(0x1000, len(values)) == sorted(values)
        assert passes >= 2

    def test_strlen(self):
        text = b"flagship2\x00"
        sim = RV32Simulator()
        sim.memory[0x1000 : 0x1000 + len(text)] = text
        assert sim.run(Assembler().assemble(programs.STRLEN)) == 9

    def test_fill_template_validates(self):
        with pytest.raises(ValueError):
            programs.fill_template(programs.FIBONACCI, n="ten")
