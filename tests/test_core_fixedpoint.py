"""Tests for repro.core.fixedpoint."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import fixedpoint as fp


class TestFormatProperties:
    def test_q16_range(self):
        fmt = fp.FixedPointFormat(16, 12)
        assert fmt.min_int == -32768
        assert fmt.max_int == 32767
        assert fmt.lsb == pytest.approx(2**-12)
        assert fmt.max_value == pytest.approx(32767 / 4096)

    def test_unsigned_range(self):
        fmt = fp.FixedPointFormat(8, 8, signed=False)
        assert fmt.min_int == 0
        assert fmt.max_int == 255
        assert fmt.max_value == pytest.approx(255 / 256)

    def test_rejects_negative_int_bits(self):
        with pytest.raises(ValueError):
            fp.FixedPointFormat(8, 8, signed=True)

    def test_rejects_zero_total_bits(self):
        with pytest.raises(ValueError):
            fp.FixedPointFormat(0, 0)

    def test_describe_mentions_format(self):
        assert "Q16.12" in fp.Q16.describe()


class TestQuantize:
    def test_exact_values_pass_through(self):
        fmt = fp.FixedPointFormat(8, 4)
        values = np.array([0.0, 0.25, -1.5, 2.0])
        assert np.array_equal(fp.quantize(values, fmt), values)

    def test_saturation_high(self):
        fmt = fp.FixedPointFormat(8, 4)
        assert fp.quantize(np.array([100.0]), fmt)[0] == pytest.approx(
            fmt.max_value
        )

    def test_saturation_low(self):
        fmt = fp.FixedPointFormat(8, 4)
        assert fp.quantize(np.array([-100.0]), fmt)[0] == pytest.approx(
            fmt.min_value
        )

    def test_rounding_to_nearest(self):
        fmt = fp.FixedPointFormat(8, 2)  # lsb = 0.25
        assert fp.quantize(np.array([0.30]), fmt)[0] == pytest.approx(0.25)
        assert fp.quantize(np.array([0.40]), fmt)[0] == pytest.approx(0.5)

    def test_int_codes_dtype(self):
        codes = fp.quantize_int(np.array([0.5]), fp.Q16)
        assert codes.dtype == np.int64

    @given(
        st.lists(
            st.floats(min_value=-7.9, max_value=7.9, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_quantization_error_bounded_by_half_lsb(self, values):
        fmt = fp.FixedPointFormat(16, 12)
        arr = np.array(values)
        err = np.abs(arr - fp.quantize(arr, fmt))
        assert np.all(err <= fmt.lsb / 2 + 1e-12)

    @given(
        st.lists(
            st.floats(min_value=-7.9, max_value=7.9, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_quantize_is_idempotent(self, values):
        arr = np.array(values)
        once = fp.quantize(arr, fp.Q16)
        twice = fp.quantize(once, fp.Q16)
        assert np.array_equal(once, twice)


class TestHelpers:
    def test_quantization_error_nonnegative(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(size=100)
        assert fp.quantization_error(vals, fp.Q16) >= 0

    def test_quantization_error_decreases_with_bits(self):
        rng = np.random.default_rng(0)
        vals = rng.uniform(-1, 1, size=1000)
        coarse = fp.quantization_error(vals, fp.FixedPointFormat(8, 6))
        fine = fp.quantization_error(vals, fp.FixedPointFormat(16, 14))
        assert fine < coarse

    def test_required_frac_bits(self):
        bits = fp.required_frac_bits(0.01)
        assert 2.0**-bits / 2 <= 0.01
        assert 2.0 ** -(bits - 1) / 2 > 0.01

    def test_required_frac_bits_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fp.required_frac_bits(0.0)
