"""Tests for the Fig. 4 streaming hardware model of HTCONV."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.axc.htconv import FovealRegion, htconv_x2
from repro.axc.htconv_hw import HTConvStreamingEngine, _LineBuffer


class TestLineBuffer:
    def test_push_and_read(self):
        buffer = _LineBuffer(capacity_rows=2, name="test")
        buffer.push(0, np.array([1.0]))
        buffer.push(1, np.array([2.0]))
        assert buffer.read(1)[0] == 2.0

    def test_eviction(self):
        buffer = _LineBuffer(capacity_rows=2, name="test")
        for i in range(3):
            buffer.push(i, np.array([float(i)]))
        assert 0 not in buffer
        with pytest.raises(RuntimeError):
            buffer.read(0)

    def test_peak_occupancy(self):
        buffer = _LineBuffer(capacity_rows=3, name="test")
        for i in range(5):
            buffer.push(i, np.zeros(1))
        assert buffer.peak_occupancy == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            _LineBuffer(capacity_rows=0, name="x")


class TestStreamingEquivalence:
    """The hardware dataflow must reproduce the functional HTCONV."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=10),
        st.integers(min_value=4, max_value=10),
        st.sampled_from([3, 5, 9]),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_matches_functional_htconv(self, h, w, t, channels, seed):
        rng = np.random.default_rng(seed)
        image = rng.uniform(0, 1, (channels, h, w))
        kernel = rng.normal(0, 1, (channels, t, t))
        fovea = FovealRegion(
            center=(rng.uniform(0, h), rng.uniform(0, w)),
            radius=rng.uniform(0, max(h, w)),
        )
        functional = htconv_x2(image, kernel, fovea)
        engine = HTConvStreamingEngine(kernel, fovea)
        streamed = engine.process(image)
        assert np.allclose(streamed, functional)

    def test_full_and_empty_fovea(self):
        rng = np.random.default_rng(0)
        image = rng.uniform(0, 1, (2, 8, 8))
        kernel = rng.normal(0, 1, (2, 5, 5))
        for fovea in (FovealRegion.everything(), FovealRegion.nothing()):
            assert np.allclose(
                HTConvStreamingEngine(kernel, fovea).process(image),
                htconv_x2(image, kernel, fovea),
            )


class TestHardwareBudget:
    def test_line_buffer_sizing(self):
        # The Fig. 4 / Table I premise: (t//2 + 1) input rows suffice.
        rng = np.random.default_rng(1)
        image = rng.uniform(0, 1, (1, 12, 16))
        kernel = rng.normal(0, 1, (1, 9, 9))
        engine = HTConvStreamingEngine(kernel, FovealRegion.nothing())
        engine.process(image)
        stats = engine.stats(12, 16)
        assert stats.input_buffer_rows <= 9 // 2 + 1
        assert stats.output_buffer_rows <= 2

    def test_op_accounting(self):
        rng = np.random.default_rng(2)
        image = rng.uniform(0, 1, (1, 6, 6))
        kernel = rng.normal(0, 1, (1, 3, 3))
        engine = HTConvStreamingEngine(kernel, FovealRegion.nothing())
        engine.process(image)
        stats = engine.stats(6, 6)
        # The MAC array computes all four variants for every pixel (the
        # foveal mux selects); interpolation charges 5 adds per
        # peripheral pixel.
        assert stats.mac_ops == 6 * (4 * 6 * 9 * 1)
        assert stats.interp_ops == 36 * 5

    def test_input_validation(self):
        kernel = np.zeros((1, 3, 3))
        engine = HTConvStreamingEngine(kernel, FovealRegion.nothing())
        with pytest.raises(ValueError):
            engine.process(np.zeros((2, 4, 4)))
        with pytest.raises(ValueError):
            HTConvStreamingEngine(np.zeros((1, 3, 5)),
                                  FovealRegion.nothing())
