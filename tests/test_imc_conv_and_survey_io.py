"""Tests for the IMC convolution mapper and survey CSV I/O."""

import numpy as np
import pytest

from repro.imc.conv_mapper import map_conv_layer
from repro.imc.crossbar import CrossbarConfig
from repro.imc.tiles import TileConfig
from repro.survey.dataset import load_dataset
from repro.survey.io import from_csv, to_csv


def tile_config(rows=32, cols=32):
    return TileConfig(crossbar=CrossbarConfig(rows=rows, cols=cols))


class TestConvMapper:
    def test_mapping_shape(self):
        w = np.random.default_rng(0).normal(0, 0.3, (8, 3, 3, 3))
        mapping = map_conv_layer(w, tile_config(), seed=0)
        assert mapping.in_channels == 3
        assert mapping.out_channels == 8
        assert mapping.linear.in_features == 27
        assert mapping.linear.out_features == 8

    def test_conv_close_to_exact(self):
        from repro.axc.layers import conv2d

        rng = np.random.default_rng(1)
        w = rng.normal(0, 0.3, (4, 2, 3, 3))
        x = rng.uniform(-1, 1, (2, 8, 8))
        mapping = map_conv_layer(w, tile_config(), seed=1)
        analog = mapping.compute(x)
        exact = conv2d(x, w)
        assert analog.shape == exact.shape
        rel = np.linalg.norm(analog - exact) / np.linalg.norm(exact)
        assert rel < 0.25

    def test_large_kernel_partitions_tiles(self):
        w = np.zeros((8, 8, 3, 3))  # 72 input rows > 32-row tile
        mapping = map_conv_layer(w, tile_config(), seed=0)
        assert mapping.num_tiles >= 3

    def test_zero_input_handled(self):
        w = np.random.default_rng(2).normal(0, 0.3, (2, 1, 3, 3))
        mapping = map_conv_layer(w, tile_config(16, 16), seed=2)
        out = mapping.compute(np.zeros((1, 5, 5)))
        assert np.allclose(out, 0.0)

    def test_energy_accounted(self):
        w = np.random.default_rng(3).normal(0, 0.3, (2, 1, 3, 3))
        mapping = map_conv_layer(w, tile_config(16, 16), seed=3)
        mapping.compute(np.random.default_rng(4).uniform(-1, 1, (1, 5, 5)))
        assert mapping.total_energy_j > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            map_conv_layer(np.zeros((2, 1, 3, 5)), tile_config())
        with pytest.raises(ValueError):
            map_conv_layer(np.zeros((2, 1, 3, 3)), tile_config(),
                           padding=-1)
        w = np.zeros((2, 1, 3, 3))
        mapping = map_conv_layer(w, tile_config(16, 16), seed=0)
        with pytest.raises(ValueError):
            mapping.compute(np.zeros((2, 5, 5)))  # wrong channel count
        big = map_conv_layer(
            np.zeros((2, 1, 5, 5)), tile_config(32, 32), padding=0, seed=0
        )
        with pytest.raises(ValueError):
            big.compute(np.zeros((1, 3, 3)))  # kernel larger than input


class TestSurveyCsv:
    def test_round_trip(self):
        records = load_dataset()
        text = to_csv(records)
        recovered = from_csv(text)
        assert recovered == records

    def test_header_present(self):
        text = to_csv(load_dataset()[:1])
        header = text.splitlines()[0]
        assert "name" in header and "peak_tops" in header

    def test_tags_preserved(self):
        records = [r for r in load_dataset() if r.tags]
        assert records  # dataset has tagged entries
        recovered = from_csv(to_csv(records))
        assert recovered[0].tags == records[0].tags

    def test_missing_columns_rejected(self):
        with pytest.raises(ValueError):
            from_csv("name,year\nfoo,2020\n")

    def test_malformed_row_reports_line(self):
        text = to_csv(load_dataset()[:1])
        broken = text.replace("2021", "not-a-year", 1)
        header_ok = "not-a-year" in broken
        if header_ok:
            with pytest.raises(ValueError):
                from_csv(broken)

    def test_bad_platform_rejected(self):
        good = to_csv(load_dataset()[:1])
        bad = good.replace("CPU", "QPU").replace("GPU", "QPU")
        lines = bad.splitlines()
        if "QPU" in lines[1]:
            with pytest.raises(ValueError):
                from_csv(bad)
