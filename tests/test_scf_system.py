"""Tests for the SCF engines, Compute Unit, interconnects, fabric,
power model and roofline."""

import pytest

from repro.core.units import GIGA, TERA
from repro.scf.cluster import ComputeUnit, ComputeUnitConfig
from repro.scf.engines import EngineConfig, TensorEngine, VectorEngine
from repro.scf.fabric import ScalableComputeFabric
from repro.scf.interconnect import AXIHierarchy, NocMesh
from repro.scf.power import CU_PUBLISHED, OperatingPoint, dvfs_scale
from repro.scf.roofline import (
    gemm_intensity,
    ridge_intensity,
    roofline_performance,
)
from repro.scf.workloads import (
    TransformerConfig,
    block_gemm_flops,
    block_weight_bytes,
    sequence_parallel_gemms,
    transformer_block_gemms,
)


class TestEngines:
    def test_peak_flops_per_cycle(self):
        assert EngineConfig().peak_flops_per_cycle == 2 * 12 * 16

    def test_perfect_tiles_hit_cap(self):
        engine = TensorEngine()
        eff = engine.tiling_efficiency(120, 160, 512)
        assert eff > 0.7

    def test_ragged_tiles_lose_efficiency(self):
        engine = TensorEngine()
        aligned = engine.tiling_efficiency(12, 16, 256)
        ragged = engine.tiling_efficiency(13, 17, 256)
        assert ragged < aligned

    def test_short_k_pays_fill(self):
        engine = TensorEngine()
        assert engine.tiling_efficiency(
            48, 64, 8
        ) < engine.tiling_efficiency(48, 64, 512)

    def test_gemm_cycles_lower_bound(self):
        engine = TensorEngine()
        cycles = engine.gemm_cycles(48, 64, 128)
        ideal = 2 * 48 * 64 * 128 / EngineConfig().peak_flops_per_cycle
        assert cycles >= ideal

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(array_rows=0)
        with pytest.raises(ValueError):
            EngineConfig(efficiency_cap=0)
        with pytest.raises(ValueError):
            TensorEngine().tiling_efficiency(0, 4, 4)
        with pytest.raises(ValueError):
            TensorEngine().sustained_flops(4, 4, 4, 0)
        with pytest.raises(ValueError):
            VectorEngine(lanes=0)
        with pytest.raises(ValueError):
            VectorEngine().elementwise_cycles(0, 1.0)


class TestComputeUnit:
    def test_reproduces_published_operating_point(self):
        # Fig. 9: "up to 150 GFLOPS and 1.5 TFLOPS/W at 460 MHz, 0.55 V".
        cu = ComputeUnit()
        for _, m, n, k, count in transformer_block_gemms(
            TransformerConfig()
        ):
            for _ in range(count):
                cu.run_gemm(m, n, k)
        gflops = cu.achieved_flops() / GIGA
        tflops_w = cu.achieved_efficiency_flops_per_w() / TERA
        assert gflops == pytest.approx(150.0, rel=0.10)
        assert tflops_w == pytest.approx(1.5, rel=0.10)

    def test_peak_above_published_sustained(self):
        cu = ComputeUnit()
        assert cu.peak_flops > CU_PUBLISHED.peak_flops

    def test_area_anchor(self):
        assert ComputeUnitConfig().area_mm2 == pytest.approx(1.21)

    def test_l1_fit_check(self):
        cu = ComputeUnit()
        assert cu.fits_in_l1(64, 64, 64)
        assert not cu.fits_in_l1(4096, 4096, 4096)

    def test_starved_l1_port_becomes_movement_bound(self):
        cu = ComputeUnit(ComputeUnitConfig(l1_bandwidth_bytes_cycle=1))
        execution = cu.run_gemm(128, 128, 128)
        assert not execution.compute_bound

    def test_elementwise_uses_vector_unit(self):
        cu = ComputeUnit()
        cycles = cu.run_elementwise(10_000)
        assert cycles > 0
        assert cu.busy_cycles == cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeUnitConfig(num_cores=0)
        with pytest.raises(ValueError):
            ComputeUnit().run_gemm(0, 4, 4)


class TestWorkloads:
    def test_gemm_list_structure(self):
        gemms = transformer_block_gemms(TransformerConfig())
        names = [g[0] for g in gemms]
        assert names == [
            "qkv_proj", "attn_scores", "attn_context",
            "out_proj", "ffn_up", "ffn_down",
        ]

    def test_flops_positive_and_scaling(self):
        small = block_gemm_flops(TransformerConfig(seq_len=128))
        large = block_gemm_flops(TransformerConfig(seq_len=256))
        assert large > small > 0

    def test_sequence_parallel_attention_keeps_full_seq(self):
        config = TransformerConfig(seq_len=256)
        sliced = sequence_parallel_gemms(config, slice_len=64)
        scores = next(g for g in sliced if g[0] == "attn_scores")
        assert scores[1] == 64  # query rows sliced
        assert scores[2] == 256  # keys stay global

    def test_sequence_parallel_work_adds_up(self):
        config = TransformerConfig(seq_len=256)

        def flops(gemms):
            return sum(2.0 * m * n * k * c for _, m, n, k, c in gemms)

        full = flops(transformer_block_gemms(config))
        quarters = 4 * flops(sequence_parallel_gemms(config, 64))
        assert quarters == pytest.approx(full)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig(seq_len=0)
        with pytest.raises(ValueError):
            TransformerConfig(d_model=100, num_heads=3)
        with pytest.raises(ValueError):
            sequence_parallel_gemms(TransformerConfig(), 0)

    def test_weight_bytes(self):
        config = TransformerConfig(d_model=512, d_ff=2048)
        expected = (4 * 512 * 512 + 2 * 512 * 2048) * 2
        assert block_weight_bytes(config) == expected


class TestInterconnects:
    def test_axi_root_bottleneck(self):
        axi = AXIHierarchy()
        assert axi.per_cu_bandwidth(64) == pytest.approx(
            axi.per_cu_bandwidth(1) / 64
        )

    def test_noc_scales_more_gently(self):
        axi, noc = AXIHierarchy(), NocMesh()
        axi_drop = axi.per_cu_bandwidth(64) / axi.per_cu_bandwidth(4)
        noc_drop = noc.per_cu_bandwidth(64) / noc.per_cu_bandwidth(4)
        assert noc_drop > axi_drop

    def test_latency_grows_with_size(self):
        noc = NocMesh()
        assert noc.access_latency_s(64) > noc.access_latency_s(4)
        axi = AXIHierarchy()
        assert axi.access_latency_s(64) > axi.access_latency_s(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            AXIHierarchy(fanout=1)
        with pytest.raises(ValueError):
            NocMesh(link_bandwidth_bytes_s=0)
        with pytest.raises(ValueError):
            NocMesh().per_cu_bandwidth(0)


class TestFabric:
    def test_scaling_efficiency_bounded(self):
        fabric = ScalableComputeFabric()
        points = fabric.scaling_study(
            TransformerConfig(seq_len=1024), [1, 4, 16]
        )
        assert all(0 < p.parallel_efficiency <= 1.01 for p in points)

    def test_noc_outscales_axi_at_64(self):
        workload = TransformerConfig(seq_len=2048)
        noc = ScalableComputeFabric(interconnect=NocMesh()).run_block(
            workload, 64
        )
        axi = ScalableComputeFabric(
            interconnect=AXIHierarchy()
        ).run_block(workload, 64)
        assert noc.sustained_flops > 2 * axi.sustained_flops
        assert noc.compute_bound and not axi.compute_bound

    def test_throughput_monotone_while_compute_bound(self):
        fabric = ScalableComputeFabric()
        points = fabric.scaling_study(
            TransformerConfig(seq_len=2048), [1, 4, 16, 64]
        )
        flops = [p.sustained_flops for p in points]
        assert flops == sorted(flops)

    def test_validation(self):
        fabric = ScalableComputeFabric()
        with pytest.raises(ValueError):
            fabric.run_block(TransformerConfig(), 0)
        with pytest.raises(ValueError):
            fabric.scaling_study(TransformerConfig(), [])


class TestPower:
    def test_published_point_efficiency(self):
        assert CU_PUBLISHED.efficiency_tflops_per_w == pytest.approx(1.5)

    def test_dvfs_identity_at_anchor(self):
        scaled = dvfs_scale(CU_PUBLISHED, CU_PUBLISHED.voltage_v)
        assert scaled.clock_hz == pytest.approx(CU_PUBLISHED.clock_hz)
        assert scaled.power_w == pytest.approx(CU_PUBLISHED.power_w)

    def test_lower_voltage_more_efficient(self):
        low = dvfs_scale(CU_PUBLISHED, 0.45)
        assert low.clock_hz < CU_PUBLISHED.clock_hz
        assert (
            low.efficiency_flops_per_w
            > CU_PUBLISHED.efficiency_flops_per_w
        )

    def test_higher_voltage_faster_less_efficient(self):
        high = dvfs_scale(CU_PUBLISHED, 0.8)
        assert high.peak_flops > CU_PUBLISHED.peak_flops
        assert (
            high.efficiency_flops_per_w
            < CU_PUBLISHED.efficiency_flops_per_w
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            dvfs_scale(CU_PUBLISHED, 0.2)
        with pytest.raises(ValueError):
            OperatingPoint(0, 1, 1, 1)


class TestRoofline:
    def test_compute_bound_at_high_intensity(self):
        point = roofline_performance(1e12, 1e10, 1000.0)
        assert point.compute_bound
        assert point.attainable_flops == pytest.approx(1e12)

    def test_memory_bound_at_low_intensity(self):
        point = roofline_performance(1e12, 1e10, 1.0)
        assert not point.compute_bound
        assert point.attainable_flops == pytest.approx(1e10)

    def test_ridge(self):
        assert ridge_intensity(1e12, 1e10) == pytest.approx(100.0)

    def test_gemm_intensity_grows_with_size(self):
        assert gemm_intensity(256, 256, 256) > gemm_intensity(16, 16, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            roofline_performance(0, 1, 1)
        with pytest.raises(ValueError):
            roofline_performance(1, 1, 0)
        with pytest.raises(ValueError):
            ridge_intensity(0, 1)
        with pytest.raises(ValueError):
            gemm_intensity(0, 1, 1)
