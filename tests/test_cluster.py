"""Tests for fault-tolerant sharded serving.

The load-bearing guarantee is **exactly-once under failure**: every
request admitted by a :class:`ShardCluster` resolves exactly once with
a result byte-identical (canonical form) to a direct evaluation, even
when the shard that owned it is killed mid-flight and its work is
recovered by supervisor restart + ledger replay.  Around that sit the
mechanics: consistent-hash routing (determinism, balance, stability),
the circuit-breaker state machine under an injectable clock, seeded
chaos schedules, and the pure ledger-replay function.
"""

import time
from concurrent.futures import Future

import pytest

from repro.core.api import build_run_result, get_workload, register_workload
from repro.core.errors import ValidationError
from repro.obs.ledger import get_ledger
from repro.resilience import (
    ChaosEvent,
    ChaosPolicy,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.serve import (
    AdmissionRejected,
    EvalRequest,
    ShardCluster,
    ShardRouter,
    incomplete_from_ledger,
    run_chaos_campaign,
)

class _NapWorkload:
    """Sleeps long enough that a kill reliably strands queued work."""

    name = "test-cluster-nap"

    def space(self):
        return {"x": tuple(range(1, 9))}

    def evaluate(self, config, *, seed=0, impl=None):
        time.sleep(0.03)
        return build_run_result(
            self.name, {"x": config["x"], "seed_used": seed},
            config=dict(config), seed=seed, impl=impl,
        )


@pytest.fixture(autouse=True)
def _register():
    register_workload(_NapWorkload(), replace=True)


def _nap_requests(count):
    return [
        EvalRequest(workload=_NapWorkload.name, config={"x": 1 + (i % 8)},
                    seed=i)
        for i in range(count)
    ]


def _cluster(**kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("batch_wait_s", 0.001)
    kwargs.setdefault("supervise", False)
    return ShardCluster(**kwargs)


class TestShardRouter:
    def test_deterministic_across_instances(self):
        digests = [f"digest-{i}" for i in range(64)]
        a = ShardRouter(4)
        b = ShardRouter(4)
        assert [a.route(d) for d in digests] == [b.route(d) for d in digests]

    def test_balance(self):
        router = ShardRouter(4, replicas=128)
        counts = {
            shard: len(keys)
            for shard, keys in router.assignments(
                [f"digest-{i}" for i in range(400)]
            ).items()
        }
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) >= 400 * 0.05

    def test_stability_only_dead_shards_keys_move(self):
        router = ShardRouter(4)
        digests = [f"digest-{i}" for i in range(200)]
        before = {d: router.route(d) for d in digests}
        after = {d: router.route(d, alive={0, 1, 3}) for d in digests}
        for digest in digests:
            if before[digest] != 2:
                assert after[digest] == before[digest]
            else:
                assert after[digest] != 2

    def test_no_alive_shard_routes_none(self):
        router = ShardRouter(3)
        assert router.route("digest", alive=set()) is None

    def test_single_shard(self):
        router = ShardRouter(1)
        assert router.route("anything") == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardRouter(0)
        with pytest.raises(ValidationError):
            ShardRouter(2, replicas=0)


class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("recovery_time_s", 10.0)
        return CircuitBreaker("test-key", clock=clock, **kwargs)

    def test_opens_after_consecutive_failures(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check()
        assert excinfo.value.key == "test-key"
        assert excinfo.value.retry_after_s == pytest.approx(10.0)

    def test_success_resets_consecutive_count(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_then_close_on_success(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.0
        assert breaker.state == "half_open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        now[0] = 15.0
        assert breaker.state == "open"  # window restarted at reopen
        now[0] = 20.0
        assert breaker.state == "half_open"

    def test_half_open_bounds_trial_count(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0], half_open_max=2)
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()
        assert breaker.snapshot()["shed"] >= 1

    def test_transitions_land_in_ledger(self):
        ledger = get_ledger()
        ledger.reset()
        ledger.enable()
        try:
            now = [0.0]
            breaker = self._breaker(lambda: now[0])
            for _ in range(3):
                breaker.record_failure()
            events = [
                e for e in ledger.events() if e["event"] == "breaker.open"
            ]
        finally:
            ledger.disable()
            ledger.reset()
        assert len(events) == 1
        assert events[0]["key"] == "test-key"

    def test_validation(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(recovery_time_s=-1)
        with pytest.raises(ValidationError):
            CircuitBreaker(half_open_max=0)


class TestChaosPolicy:
    def test_event_validation(self):
        with pytest.raises(ValidationError):
            ChaosEvent(-1, "kill")
        with pytest.raises(ValidationError):
            ChaosEvent(0, "explode")
        with pytest.raises(ValidationError):
            ChaosEvent(0, "delay")  # needs delay_s > 0
        with pytest.raises(ValidationError):
            ChaosEvent(0, "burst", copies=0)

    def test_actions_at_and_kill_count(self):
        policy = ChaosPolicy(events=(
            ChaosEvent(3, "kill", shard=1),
            ChaosEvent(3, "delay", delay_s=0.01),
            ChaosEvent(5, "burst", copies=4),
        ))
        assert [e.action for e in policy.actions_at(3)] == ["kill", "delay"]
        assert policy.actions_at(4) == []
        assert policy.kill_count == 1

    def test_random_is_seed_deterministic(self):
        a = ChaosPolicy.random(11, 40, 4)
        b = ChaosPolicy.random(11, 40, 4)
        c = ChaosPolicy.random(12, 40, 4)
        assert a.to_json() == b.to_json()
        assert a.to_json() != c.to_json()

    def test_random_respects_span_and_counts(self):
        policy = ChaosPolicy.random(
            5, 50, 4, kills=2, delays=3, bursts=1
        )
        actions = [e.action for e in policy.events]
        assert actions.count("kill") == 2
        assert actions.count("delay") == 3
        assert actions.count("burst") == 1
        for event in policy.events:
            assert 5 <= event.at_request < 45
            if event.action == "kill":
                assert 0 <= event.shard < 4

    def test_kill_shard_constructor(self):
        policy = ChaosPolicy.kill_shard(at_request=7, shard=2)
        assert policy.kill_count == 1
        assert policy.actions_at(7)[0].shard == 2


class TestIncompleteFromLedger:
    def _submit(self, rid, shard):
        return {"event": "cluster.submit", "rid": rid, "shard": shard}

    def _done(self, rid):
        return {"event": "cluster.done", "rid": rid}

    def test_open_stories_only(self):
        events = [
            self._submit(1, 0), self._submit(2, 0), self._submit(3, 1),
            self._done(1),
        ]
        assert incomplete_from_ledger(events) == [2, 3]
        assert incomplete_from_ledger(events, shard=0) == [2]
        assert incomplete_from_ledger(events, shard=1) == [3]

    def test_resubmission_moves_responsibility(self):
        events = [
            self._submit(1, 0),
            self._submit(1, 1),  # replayed onto shard 1
        ]
        assert incomplete_from_ledger(events, shard=0) == []
        assert incomplete_from_ledger(events, shard=1) == [1]

    def test_error_closes_story(self):
        events = [
            self._submit(1, 0),
            {"event": "cluster.error", "rid": 1},
        ]
        assert incomplete_from_ledger(events) == []

    def test_ignores_unrelated_events(self):
        events = [
            {"event": "request.admitted", "trace_id": "t"},
            self._submit(4, 2),
        ]
        assert incomplete_from_ledger(events) == [4]


class TestShardCluster:
    def test_results_identical_to_direct_evaluation(self):
        requests = _nap_requests(10)
        workload = get_workload(_NapWorkload.name)
        expected = [
            workload.evaluate(r.config, seed=r.seed).canonical_json()
            for r in requests
        ]
        with _cluster() as cluster:
            futures = [
                cluster.submit_request(r, block=True) for r in requests
            ]
            results = [f.result(timeout=30.0) for f in futures]
        assert [r.canonical_json() for r in results] == expected

    def test_same_digest_routes_to_same_shard(self):
        with _cluster(num_shards=3) as cluster:
            request = _nap_requests(1)[0]
            owner = cluster.router.route(request.digest)
            for _ in range(3):
                future = cluster.submit_request(request)
                future.result(timeout=30.0)
            snapshot = cluster.snapshot()
        submitted = [
            s["requests"]["submitted"] for s in snapshot["per_shard"]
        ]
        assert submitted[owner] == 3
        assert sum(submitted) == 3

    def test_kill_and_replay_exactly_once(self):
        requests = _nap_requests(12)
        workload = get_workload(_NapWorkload.name)
        expected = [
            workload.evaluate(r.config, seed=r.seed).canonical_json()
            for r in requests
        ]
        ledger = get_ledger()
        ledger.reset()
        ledger.enable()
        try:
            with _cluster() as cluster:
                futures = [
                    cluster.submit_request(r, block=True) for r in requests
                ]
                cluster.kill_shard(0)
                restarted = cluster.check_shards()
                results = [f.result(timeout=30.0) for f in futures]
                replayed = cluster.replayed
            events = ledger.events()
        finally:
            ledger.disable()
            ledger.reset()
        assert restarted == [0]
        assert replayed >= 1  # the nap keeps shard-0 work in flight
        # Exactly once, bytes identical, despite the crash.
        assert [r.canonical_json() for r in results] == expected
        # One cluster.done per request id: nothing delivered twice.
        done = [e["rid"] for e in events if e["event"] == "cluster.done"]
        assert len(done) == len(set(done)) == len(requests)
        names = {e["event"] for e in events}
        assert {"shard.killed", "shard.restarted", "cluster.replay"} <= names

    def test_supervisor_restarts_dead_shard(self):
        requests = _nap_requests(10)
        cluster = ShardCluster(
            num_shards=2, batch_size=4, batch_wait_s=0.001,
            supervise=True, heartbeat_s=0.01,
        )
        try:
            futures = [
                cluster.submit_request(r, block=True) for r in requests
            ]
            cluster.kill_shard(1)
            results = [f.result(timeout=30.0) for f in futures]
        finally:
            cluster.shutdown()
        assert all(r.ok for r in results)
        assert cluster.restarts == 1
        assert cluster._slots[1].incarnation == 1

    def test_deadline_detects_wedged_shard(self):
        class _StuckService:
            """Reports alive but never completes anything."""

            def __init__(self):
                self.alive = True
                self.killed = False

            def submit_request(self, request, block=False):
                return Future()  # dangles forever

            def kill(self):
                self.killed = True
                self.alive = False

            def shutdown(self, **kwargs):
                pass

        cluster = _cluster(num_shards=1)
        stuck = _StuckService()
        try:
            cluster._slots[0].service = stuck
            future = cluster.submit_request(_nap_requests(1)[0])
            time.sleep(0.03)
            restarted = cluster.check_shards(stall_timeout_s=0.02)
            result = future.result(timeout=30.0)
        finally:
            cluster.shutdown()
        assert restarted == [0]
        assert stuck.killed
        assert result.ok

    def test_breaker_opens_and_sheds_through_cluster(self):
        class _Exploding:
            name = "test-cluster-exploding"

            def space(self):
                return {"x": (1,)}

            def evaluate(self, config, *, seed=0, impl=None):
                raise RuntimeError("always fails")

        register_workload(_Exploding(), replace=True)
        shed = 0
        with _cluster(breaker_threshold=2,
                      breaker_recovery_s=60.0) as cluster:
            for index in range(5):
                try:
                    future = cluster.submit(
                        _Exploding.name, {"x": 1}, seed=index, block=True
                    )
                except CircuitOpenError:
                    shed += 1
                    continue
                assert not future.result(timeout=30.0).ok
            snapshot = cluster.snapshot()
        breaker = snapshot["breakers"][_Exploding.name]
        assert breaker["state"] == "open"
        assert shed == 3

    def test_stopped_cluster_rejects(self):
        cluster = _cluster()
        cluster.shutdown()
        with pytest.raises(AdmissionRejected):
            cluster.submit_request(_nap_requests(1)[0])

    def test_duplicate_burst_resolves_every_copy(self):
        request = _nap_requests(1)[0]
        with _cluster() as cluster:
            futures = [
                cluster.submit_request(request, block=True)
                for _ in range(10)
            ]
            results = [f.result(timeout=30.0) for f in futures]
            snapshot = cluster.snapshot()
        canonical = {r.canonical_json() for r in results}
        assert len(results) == 10
        assert len(canonical) == 1
        # In-batch dedup absorbed most of the pressure.
        assert snapshot["evaluations"]["computed"] < 10

    def test_snapshot_shape(self):
        with _cluster() as cluster:
            cluster.submit_request(
                _nap_requests(1)[0], block=True
            ).result(timeout=30.0)
            snapshot = cluster.snapshot()
        assert snapshot["shards"] == 2
        assert snapshot["requests"]["submitted"] == 1
        assert snapshot["batches"]["count"] >= 1
        assert "computed" in snapshot["evaluations"]
        assert len(snapshot["per_shard"]) == 2


class TestRunChaosCampaign:
    def test_kill_campaign_exactly_once(self):
        requests = _nap_requests(10)
        workload = get_workload(_NapWorkload.name)
        expected = [
            workload.evaluate(r.config, seed=r.seed).canonical_json()
            for r in requests
        ]
        policy = ChaosPolicy.kill_shard(at_request=4, shard=0)
        results, report = run_chaos_campaign(
            requests, policy, num_shards=2, heartbeat_s=0.01,
        )
        assert report["lost"] == 0
        assert report["errors"] == 0
        assert report["restarts"] == 1
        assert [r.canonical_json() for r in results] == expected

    def test_burst_and_delay_campaign(self):
        requests = _nap_requests(8)
        policy = ChaosPolicy(events=(
            ChaosEvent(2, "delay", delay_s=0.01),
            ChaosEvent(4, "burst", copies=3),
        ))
        results, report = run_chaos_campaign(
            requests, policy, num_shards=2, heartbeat_s=0.01,
        )
        assert report["lost"] == 0
        assert report["extras"] == 3
        assert report["extra_lost"] == 0
        assert all(r.ok for r in results)
        assert report["latency_s"]["count"] == len(requests) + 3
