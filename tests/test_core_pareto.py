"""Tests for repro.core.pareto."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import pareto


class TestDominates:
    def test_strict_dominance(self):
        assert pareto.dominates([1, 1], [2, 2])

    def test_partial_improvement(self):
        assert pareto.dominates([1, 2], [2, 2])

    def test_equal_points_do_not_dominate(self):
        assert not pareto.dominates([1, 1], [1, 1])

    def test_tradeoff_points(self):
        assert not pareto.dominates([1, 3], [2, 2])
        assert not pareto.dominates([2, 2], [1, 3])

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            pareto.dominates([1], [1, 2])


class TestParetoFront:
    def test_simple_front(self):
        pts = np.array([[1, 4], [2, 2], [4, 1], [3, 3], [4, 4]])
        front = pareto.pareto_front(pts)
        assert front.tolist() == [[1, 4], [2, 2], [4, 1]]

    def test_single_point(self):
        assert pareto.pareto_front(np.array([[5.0, 5.0]])).tolist() == [[5, 5]]

    def test_duplicates_kept(self):
        pts = np.array([[1, 1], [1, 1], [2, 2]])
        assert len(pareto.pareto_indices(pts)) == 2

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_front_points_mutually_nondominated(self, points):
        pts = np.array(points)
        front = pareto.pareto_front(pts)
        for i in range(len(front)):
            for j in range(len(front)):
                if i != j:
                    assert not pareto.dominates(front[i], front[j])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_every_point_dominated_or_on_front(self, points):
        pts = np.array(points)
        idx = set(pareto.pareto_indices(pts).tolist())
        for i, p in enumerate(pts):
            if i not in idx:
                assert any(pareto.dominates(pts[j], p) for j in idx)


class TestHypervolume:
    def test_single_point(self):
        hv = pareto.hypervolume_2d(np.array([[1.0, 1.0]]), [3.0, 3.0])
        assert hv == pytest.approx(4.0)

    def test_staircase(self):
        front = np.array([[1.0, 2.0], [2.0, 1.0]])
        hv = pareto.hypervolume_2d(front, [3.0, 3.0])
        # Union of 2x1 and 1x2 rectangles overlapping in 1x1.
        assert hv == pytest.approx(3.0)

    def test_dominated_point_ignored(self):
        with_dominated = np.array([[1.0, 2.0], [2.0, 1.0], [2.5, 2.5]])
        clean = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert pareto.hypervolume_2d(with_dominated, [3, 3]) == pytest.approx(
            pareto.hypervolume_2d(clean, [3, 3])
        )

    def test_reference_must_dominate(self):
        with pytest.raises(ValueError):
            pareto.hypervolume_2d(np.array([[5.0, 5.0]]), [3.0, 3.0])

    def test_bigger_front_bigger_volume(self):
        small = np.array([[2.0, 2.0]])
        large = np.array([[1.0, 1.0]])
        ref = [4.0, 4.0]
        assert pareto.hypervolume_2d(large, ref) > pareto.hypervolume_2d(
            small, ref
        )

    def test_requires_two_objectives(self):
        with pytest.raises(ValueError):
            pareto.hypervolume_2d(np.array([[1.0, 1.0, 1.0]]), [2, 2, 2])


class TestCrowdingDistance:
    def test_boundaries_infinite(self):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        dist = pareto.crowding_distance(pts)
        assert np.isinf(dist[0])
        assert np.isinf(dist[3])
        assert np.isfinite(dist[1])
        assert np.isfinite(dist[2])

    def test_small_sets_all_infinite(self):
        assert np.all(np.isinf(pareto.crowding_distance(np.array([[1, 2]]))))

    def test_crowded_point_smaller_distance(self):
        # Middle point at index 1 is much closer to its neighbors.
        pts = np.array([[0.0, 10.0], [0.5, 9.5], [5.0, 5.0], [10.0, 0.0]])
        dist = pareto.crowding_distance(pts)
        assert dist[1] < dist[2]
