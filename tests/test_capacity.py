"""Tests for the capacity/TCO planning model.

The model is pure arithmetic over measured numbers, so these tests pin
exact hand-computed outcomes: a 100 rps / 50 ms-p99 shard asked to
serve 250 rps under a 100 ms target needs exactly 5 shards (rho = 0.5
doubles the tail to precisely the target), and the cost chain follows
mechanically.  Anything fuzzier would let a silently changed formula
ship plausible-looking nonsense.
"""

import math

import pytest

from repro.core.errors import ValidationError
from repro.serve import CapacityModel, ShardCostModel, capacity_report


def _model(**kwargs):
    kwargs.setdefault("per_shard_rps", 100.0)
    kwargs.setdefault("service_p99_s", 0.05)
    return CapacityModel(**kwargs)


class TestPlanHandComputed:
    def test_five_shards_at_250rps_under_100ms(self):
        # rho = 250 / (100 * n) must satisfy 0.05 / (1 - rho) <= 0.1,
        # i.e. rho <= 0.5, i.e. n >= 5.  At n = 5 the modeled p99 is
        # exactly the target.
        plan = _model().plan(
            250.0,
            0.1,
            cost=ShardCostModel(
                shard_cost_per_hour=0.50, cluster_overhead_per_hour=0.0
            ),
        )
        assert plan.feasible
        assert plan.shards == 5
        assert plan.utilization == pytest.approx(0.5)
        assert plan.modeled_p99_s == pytest.approx(0.1)
        assert plan.cost_per_hour == pytest.approx(2.5)
        # 250 rps * 3600 s = 0.9M requests/hour; $2.50 / 0.9M.
        assert plan.cost_per_million == pytest.approx(2.5 / 0.9)

    def test_overhead_lands_in_cost(self):
        plan = _model().plan(
            250.0,
            0.1,
            cost=ShardCostModel(
                shard_cost_per_hour=0.50, cluster_overhead_per_hour=0.20
            ),
        )
        assert plan.cost_per_hour == pytest.approx(2.7)

    def test_infeasible_target_below_service_p99(self):
        plan = _model().plan(100.0, 0.04)
        assert not plan.feasible
        assert plan.shards is None
        assert "below the measured service-time p99" in plan.reason

    def test_infeasible_when_max_shards_exhausted(self):
        plan = _model().plan(1e6, 0.1, max_shards=4)
        assert not plan.feasible
        assert "up to 4" in plan.reason

    def test_utilization_cap_forces_extra_shard(self):
        # 96 rps on one 100 rps shard is rho = 0.96 > 0.95 cap, even
        # though a generous p99 target would tolerate it.
        plan = _model().plan(96.0, 10.0)
        assert plan.shards == 2


class TestEfficiencyCurve:
    def test_interpolates_on_log2_axis(self):
        model = _model(efficiency={4: 0.8})
        # Midpoint of log2(1)..log2(4) is 2 shards: halfway between
        # 1.0 and 0.8.
        assert model.efficiency_at(2) == pytest.approx(0.9)

    def test_holds_flat_beyond_measured(self):
        model = _model(efficiency={2: 0.9, 4: 0.8})
        assert model.efficiency_at(8) == pytest.approx(0.8)
        assert model.efficiency_at(1024) == pytest.approx(0.8)

    def test_effective_rps_discounts_by_efficiency(self):
        model = _model(efficiency={4: 0.8})
        assert model.effective_rps(4) == pytest.approx(320.0)

    def test_saturated_load_models_infinite_p99(self):
        assert math.isinf(_model().modeled_p99_s(1, 100.0))

    def test_validation(self):
        with pytest.raises(ValidationError):
            CapacityModel(0.0, 0.05)
        with pytest.raises(ValidationError):
            CapacityModel(100.0, -1.0)
        with pytest.raises(ValidationError):
            _model(efficiency={0: 1.0})
        with pytest.raises(ValidationError):
            _model(efficiency={2: 0.0})
        with pytest.raises(ValidationError):
            _model(max_utilization=1.5)
        with pytest.raises(ValidationError):
            ShardCostModel(shard_cost_per_hour=-0.1)
        with pytest.raises(ValidationError):
            _model().plan(-1.0, 0.1)


class TestFromMetricsAndReport:
    def test_from_metrics_splits_throughput_across_shards(self):
        snapshot = {"throughput_rps": 200.0, "latency_s": {"p99": 0.05}}
        model = CapacityModel.from_metrics(snapshot, num_shards=2)
        assert model.per_shard_rps == pytest.approx(100.0)
        assert model.service_p99_s == pytest.approx(0.05)

    def test_from_metrics_rejects_empty_snapshot(self):
        with pytest.raises(ValidationError):
            CapacityModel.from_metrics({"throughput_rps": 0.0})

    def test_report_shape_and_roundtrip(self):
        report = capacity_report(
            _model(efficiency={2: 0.9}),
            offered_rps=[50.0, 250.0],
            target_p99_s=0.1,
        )
        assert set(report) == {"model", "cost", "target_p99_s", "plans"}
        assert len(report["plans"]) == 2
        assert report["plans"][0]["feasible"]
        assert report["model"]["efficiency"] == {"1": 1.0, "2": 0.9}
        # The JSON model block reconstructs the same planner.
        rebuilt = CapacityModel(
            report["model"]["per_shard_rps"],
            report["model"]["service_p99_s"],
            efficiency={
                int(k): v
                for k, v in report["model"]["efficiency"].items()
            },
            max_utilization=report["model"]["max_utilization"],
        )
        assert (
            rebuilt.plan(250.0, 0.1).to_json()
            == report["plans"][1]
        )
