"""Tests for the SPARTA simulator: tasks, memory system, lanes,
end-to-end latency hiding."""

import pytest

from repro.core.errors import SimulationTimeout
from repro.sparta.accelerator import AcceleratorLane, LaneConfig
from repro.sparta.cache import MemorySideCache
from repro.sparta.kernels import (
    bfs_tasks,
    pagerank_tasks,
    random_graph,
    spmv_tasks,
    streaming_tasks,
)
from repro.sparta.memory import MemoryChannel
from repro.sparta.noc import CrossbarNoc, NocConfig
from repro.sparta.openmp import (
    ParallelForRegion,
    Task,
    compute,
    load,
    store,
)
from repro.sparta.simulator import SpartaSystem, simulate


class TestTasks:
    def test_step_constructors_validate(self):
        with pytest.raises(ValueError):
            compute(0)
        with pytest.raises(ValueError):
            load(-1)
        with pytest.raises(ValueError):
            store(-5)

    def test_task_metrics(self):
        task = Task(0, [load(100), compute(3), load(200), store(300)])
        assert task.num_loads == 2
        assert task.compute_cycles == 3

    def test_task_rejects_bad_step(self):
        with pytest.raises(ValueError):
            Task(0, [("jump", 1)])

    def test_region_validation(self):
        with pytest.raises(ValueError):
            ParallelForRegion("x", [])
        with pytest.raises(ValueError):
            ParallelForRegion("x", [Task(0, []), Task(0, [])])

    def test_memory_intensity(self):
        region = ParallelForRegion(
            "x", [Task(0, [load(100), compute(10)])]
        )
        assert region.memory_intensity == pytest.approx(0.1)


class TestMemoryChannel:
    def test_fixed_latency(self):
        channel = MemoryChannel(latency=50)
        assert channel.issue(10) == 60

    def test_issue_port_serializes(self):
        channel = MemoryChannel(latency=50)
        first = channel.issue(0)
        second = channel.issue(0)
        assert first == 50
        assert second == 51  # pipelined, one issue per cycle

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryChannel(latency=0)
        with pytest.raises(ValueError):
            MemoryChannel().issue(-1)


class TestCache:
    def test_miss_then_hit(self):
        cache = MemorySideCache()
        assert not cache.access(100)
        assert cache.access(100)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_spatial_locality_within_line(self):
        cache = MemorySideCache(line_words=8)
        cache.access(0)
        assert cache.access(7)
        assert not cache.access(8)

    def test_lru_eviction(self):
        cache = MemorySideCache(num_sets=1, associativity=2, line_words=1)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 0 is now MRU
        cache.access(2)  # evicts 1
        assert cache.access(0)
        assert not cache.access(1)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            MemorySideCache(num_sets=0)
        with pytest.raises(ValueError):
            MemorySideCache(line_words=3)
        with pytest.raises(ValueError):
            MemorySideCache().access(-1)

    def test_reset_stats(self):
        cache = MemorySideCache()
        cache.access(0)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0


class TestNoc:
    def test_interleaving_spreads_lines(self):
        noc = CrossbarNoc(NocConfig(num_channels=4, cache_line_words=8))
        channels = {noc.channel_of(addr * 8) for addr in range(8)}
        assert channels == {0, 1, 2, 3}

    def test_same_line_same_channel(self):
        noc = CrossbarNoc(NocConfig(num_channels=4, cache_line_words=8))
        assert noc.channel_of(0) == noc.channel_of(7)

    def test_cache_hit_faster_than_miss(self):
        noc = CrossbarNoc(NocConfig(memory_latency=100, hop_latency=4))
        miss_done = noc.request(1000, now=0)
        hit_done = noc.request(1000, now=miss_done)
        assert miss_done - 0 > 100
        assert hit_done - miss_done < 20

    def test_cache_disable(self):
        noc = CrossbarNoc(NocConfig(enable_cache=False))
        noc.request(0, 0)
        noc.request(0, 200)
        assert noc.total_hits == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NocConfig(num_channels=0)
        with pytest.raises(ValueError):
            NocConfig(memory_latency=0)
        noc = CrossbarNoc()
        with pytest.raises(ValueError):
            noc.channel_of(-1)


class TestLane:
    def test_lane_config_validation(self):
        with pytest.raises(ValueError):
            LaneConfig(num_contexts=0)
        with pytest.raises(ValueError):
            LaneConfig(switch_penalty=-1)

    def test_scratchpad_accesses_bypass_noc(self):
        requests = []

        def request_fn(addr, now):
            requests.append(addr)
            return now + 100

        lane = AcceleratorLane(0, LaneConfig(scratchpad_words=1024),
                               request_fn)
        ctx = lane.idle_context()
        ctx.assign(Task(0, [load(10), compute(1)]), 0)
        for cycle in range(10):
            lane.step(cycle)
        assert requests == []  # address 10 is scratchpad-resident

    def test_external_load_goes_to_noc(self):
        requests = []

        def request_fn(addr, now):
            requests.append(addr)
            return now + 100

        lane = AcceleratorLane(0, LaneConfig(), request_fn)
        ctx = lane.idle_context()
        ctx.assign(Task(0, [load(1 << 20), compute(1)]), 0)
        for cycle in range(5):
            lane.step(cycle)
        assert requests == [1 << 20]


class TestEndToEnd:
    def _bfs_region(self):
        return bfs_tasks(random_graph(num_nodes=96, avg_degree=6, seed=0))

    def test_all_tasks_complete(self):
        region = self._bfs_region()
        stats = simulate(region, num_lanes=2, contexts_per_lane=2)
        assert stats.tasks_completed == len(region.tasks)

    def test_context_switching_hides_latency(self):
        # The central SPARTA claim: more contexts -> fewer cycles and
        # higher utilization on irregular kernels.
        region = self._bfs_region()
        one = simulate(region, num_lanes=2, contexts_per_lane=1)
        eight = simulate(region, num_lanes=2, contexts_per_lane=8)
        assert eight.cycles < one.cycles / 2
        assert eight.utilization > 2 * one.utilization

    def test_more_lanes_speed_up(self):
        region = spmv_tasks(num_rows=96, avg_nnz=6, seed=1)
        narrow = simulate(region, num_lanes=1, contexts_per_lane=4)
        wide = simulate(region, num_lanes=4, contexts_per_lane=4)
        assert wide.cycles < narrow.cycles

    def test_cache_helps_irregular_kernels(self):
        region = self._bfs_region()
        cached = simulate(region, num_lanes=2, contexts_per_lane=4)
        uncached = simulate(
            region, num_lanes=2, contexts_per_lane=4, enable_cache=False
        )
        assert cached.cycles < uncached.cycles
        assert cached.cache_hit_rate > 0.3

    def test_more_channels_help_under_contention(self):
        region = spmv_tasks(num_rows=128, avg_nnz=8, seed=2)
        one_ch = simulate(
            region, num_lanes=8, contexts_per_lane=8, num_channels=1,
            enable_cache=False,
        )
        four_ch = simulate(
            region, num_lanes=8, contexts_per_lane=8, num_channels=4,
            enable_cache=False,
        )
        assert four_ch.cycles < one_ch.cycles

    def test_switch_penalty_costs_cycles(self):
        region = self._bfs_region()
        free = simulate(region, num_lanes=2, contexts_per_lane=8,
                        switch_penalty=0)
        costly = simulate(region, num_lanes=2, contexts_per_lane=8,
                          switch_penalty=4)
        assert costly.cycles > free.cycles

    def test_kernel_generators_validate(self):
        with pytest.raises(ValueError):
            random_graph(num_nodes=1)
        with pytest.raises(ValueError):
            random_graph(avg_degree=0)
        with pytest.raises(ValueError):
            spmv_tasks(num_rows=0)
        with pytest.raises(ValueError):
            streaming_tasks(num_tasks=0)

    def test_pagerank_region_structure(self):
        region = pagerank_tasks(random_graph(num_nodes=32, seed=3))
        assert region.name == "pagerank"
        assert len(region.tasks) == 32
        assert region.memory_intensity > 0.3

    def test_system_validation(self):
        with pytest.raises(ValueError):
            SpartaSystem(num_lanes=0)

    def test_runaway_simulation_guarded(self):
        region = ParallelForRegion("tiny", [Task(0, [compute(10)])])
        with pytest.raises(RuntimeError):
            SpartaSystem(num_lanes=1).run(region, max_cycles=3)

    def test_timeout_is_structured_with_partial_stats(self):
        region = ParallelForRegion(
            "tiny", [Task(0, [compute(10)]), Task(1, [compute(10)])]
        )
        with pytest.raises(SimulationTimeout) as excinfo:
            SpartaSystem(num_lanes=1).run(region, max_cycles=3)
        assert "simulation exceeded 3 cycles" in str(excinfo.value)
        stats = excinfo.value.partial_stats
        assert stats is not None
        assert stats.region == "tiny"
        assert stats.cycles == 3
        assert excinfo.value.cycles == 3
        # Partial progress was captured: cycles elapsed but the region
        # had not completed all its tasks.
        assert stats.tasks_completed < 2
        assert stats.busy_cycles > 0
