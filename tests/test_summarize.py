"""Tests for the CI benchmark summarizer.

``benchmarks/summarize.py`` is the last step of the CI bench matrix --
if it crashes, the step summary silently vanishes -- so it must render
a table for every input shape it can meet: passing and failing check
blocks, assert-gated reports with no check block, non-report JSON
artifacts, and unreadable files.
"""

import importlib.util
import json
import sys
from pathlib import Path

SCRIPT = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "summarize.py"
)


def _load():
    spec = importlib.util.spec_from_file_location("bench_summarize", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestSummarize:
    def test_pass_fail_and_assert_rows(self, tmp_path):
        mod = _load()
        paths = [
            _write(tmp_path, "BENCH_good.json", {
                "check": {"passed": True, "messages": ["ok: fine"]},
                "points": [{"speedup_vs_1shard": 1.7,
                            "latency_s": {"p99": 0.25}}],
            }),
            _write(tmp_path, "BENCH_bad.json", {
                "check": {"passed": False,
                          "messages": ["FAIL: broke"]},
            }),
            _write(tmp_path, "BENCH_asserted.json", {
                "results": [{"speedup": 3.0}],
            }),
        ]
        table = mod.summarize(paths)
        lines = table.splitlines()
        assert lines[0].startswith("## Benchmark summary")
        assert "| asserted | asserted |" in table
        assert "3.00x" in table
        assert "| bad | **FAIL** |" in table
        assert "FAIL: broke" in table
        assert "| good | PASS |" in table
        assert "1.70x" in table
        assert "250.0" in table

    def test_skipped_gates_counted(self, tmp_path):
        mod = _load()
        row = mod.extract_row("scale", {
            "check": {
                "passed": True,
                "messages": ["ok: a", "ok: b", "skip: no cores"],
            },
        })
        assert row["verdict"] == "PASS"
        assert "2 gate(s) ok, 1 skipped" in row["note"]

    def test_unreadable_and_non_report_inputs(self, tmp_path):
        mod = _load()
        bad = tmp_path / "BENCH_corrupt.json"
        bad.write_text("{not json", encoding="utf-8")
        trace = _write(tmp_path, "BENCH_obs_trace.json", [{"span": 1}])
        table = mod.summarize(
            [str(bad), trace, str(tmp_path / "BENCH_missing.json")]
        )
        assert "**unreadable**" in table
        assert "non-report JSON (list)" in table
        assert "missing" in table
        # Still a well-formed markdown table: every row has 6 pipes.
        for line in table.splitlines()[2:]:
            assert line.count("|") == 6

    def test_main_writes_out_file(self, tmp_path, capsys):
        mod = _load()
        path = _write(tmp_path, "BENCH_x.json", {
            "check": {"passed": True, "messages": []},
        })
        out = tmp_path / "summary.md"
        assert mod.main([path, "--out", str(out)]) == 0
        assert "Benchmark summary" in capsys.readouterr().out
        assert "| x | PASS |" in out.read_text(encoding="utf-8")
