"""Tests for the DSE engine: spaces, evaluator, explorers, runner."""

import numpy as np
import pytest

from repro.dse.explorer import (
    ExhaustiveExplorer,
    NSGA2Explorer,
    RandomExplorer,
    SimulatedAnnealingExplorer,
    best_tradeoff,
)
from repro.dse.objectives import HLSEvaluator
from repro.dse.runner import DSERunner
from repro.dse.space import DesignSpace, Parameter, hls_directive_space
from repro.hls.kernels import make_kernel


def tiny_space():
    return DesignSpace(
        [
            Parameter("unroll", (1, 2, 4)),
            Parameter("pipeline", (False, True)),
            Parameter("array_partition", (1, 2)),
            Parameter("mul_units", (2, 4)),
            Parameter("add_units", (2, 4)),
        ]
    )


class TestSpace:
    def test_size(self):
        assert tiny_space().size == 3 * 2 * 2 * 2 * 2

    def test_enumerate_covers_space(self):
        space = tiny_space()
        configs = list(space.enumerate())
        assert len(configs) == space.size
        keys = {space.key(c) for c in configs}
        assert len(keys) == space.size

    def test_sample_valid(self):
        space = tiny_space()
        for seed in range(10):
            space.validate(space.sample(seed))

    def test_mutate_changes_one_parameter(self):
        space = tiny_space()
        config = space.sample(0)
        mutated = space.mutate(config, 1)
        space.validate(mutated)
        diffs = [k for k in config if config[k] != mutated[k]]
        assert len(diffs) <= 1

    def test_crossover_mixes_parents(self):
        space = tiny_space()
        a = {p.name: p.values[0] for p in space.parameters}
        b = {p.name: p.values[-1] for p in space.parameters}
        child = space.crossover(a, b, 0)
        space.validate(child)
        for key in child:
            assert child[key] in (a[key], b[key])

    def test_validate_rejects_bad_config(self):
        space = tiny_space()
        with pytest.raises(ValueError):
            space.validate({"unroll": 3})
        with pytest.raises(ValueError):
            space.validate({})

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Parameter("x", ())
        with pytest.raises(ValueError):
            Parameter("x", (1, 1))
        with pytest.raises(ValueError):
            Parameter("", (1,))

    def test_space_validation(self):
        with pytest.raises(ValueError):
            DesignSpace([])
        with pytest.raises(ValueError):
            DesignSpace([Parameter("a", (1,)), Parameter("a", (2,))])

    def test_standard_space_powers_of_two(self):
        space = hls_directive_space(max_unroll=8)
        unroll = next(p for p in space.parameters if p.name == "unroll")
        assert unroll.values == (1, 2, 4, 8)


class TestEvaluator:
    def test_caching(self):
        evaluator = HLSEvaluator(make_kernel("dot", size=32), tiny_space())
        config = evaluator.space.sample(0)
        p1 = evaluator.evaluate(config)
        p2 = evaluator.evaluate(config)
        assert p1 is p2
        assert evaluator.unique_evaluations == 1

    def test_objectives_positive(self):
        evaluator = HLSEvaluator(make_kernel("dot", size=32), tiny_space())
        point = evaluator.evaluate(evaluator.space.sample(1))
        assert point.latency_s > 0
        assert point.area > 0


class TestExplorers:
    def _runner(self):
        return DSERunner(make_kernel("gemm", size=64), space=tiny_space())

    def test_exhaustive_covers_small_space(self):
        runner = self._runner()
        result = runner.run(ExhaustiveExplorer(), budget=100)
        assert result.unique_evaluations == tiny_space().size

    def test_random_respects_budget(self):
        runner = self._runner()
        result = runner.run(RandomExplorer(), budget=10, seed=0)
        assert len(result.evaluated) <= 10

    def test_front_is_nondominated(self):
        from repro.core.pareto import dominates

        runner = self._runner()
        result = runner.run(ExhaustiveExplorer(), budget=100)
        front = result.front
        for i, p in enumerate(front):
            for j, q in enumerate(front):
                if i != j:
                    assert not dominates(q.objectives, p.objectives)

    def test_front_dominates_all_points(self):
        from repro.core.pareto import dominates

        runner = self._runner()
        result = runner.run(ExhaustiveExplorer(), budget=100)
        for point in result.evaluated:
            on_front = any(
                point.objectives == f.objectives for f in result.front
            )
            dominated = any(
                dominates(f.objectives, point.objectives)
                for f in result.front
            )
            assert on_front or dominated

    def test_heuristics_approach_exhaustive_front(self):
        runner = self._runner()
        scores = runner.compare(
            [ExhaustiveExplorer(), NSGA2Explorer(population=8),
             SimulatedAnnealingExplorer(restarts=2)],
            budget=48,
            seed=1,
        )
        exhaustive_hv = scores["exhaustive"]["hypervolume"]
        assert scores["nsga2"]["hypervolume"] >= 0.5 * exhaustive_hv
        assert scores["annealing"]["hypervolume"] >= 0.5 * exhaustive_hv

    def test_explorer_budget_validation(self):
        runner = self._runner()
        evaluator = HLSEvaluator(runner.nest, runner.space)
        with pytest.raises(ValueError):
            ExhaustiveExplorer().explore(evaluator, 0)
        with pytest.raises(ValueError):
            RandomExplorer().explore(evaluator, 0)
        with pytest.raises(ValueError):
            NSGA2Explorer(population=8).explore(evaluator, 4)

    def test_explorer_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingExplorer(restarts=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingExplorer(cooling=1.5)
        with pytest.raises(ValueError):
            NSGA2Explorer(population=2)
        with pytest.raises(ValueError):
            NSGA2Explorer(mutation_rate=2.0)

    def test_best_tradeoff_on_front(self):
        runner = self._runner()
        result = runner.run(ExhaustiveExplorer(), budget=100)
        knee = best_tradeoff(result.evaluated)
        objs = np.array([p.objectives for p in result.front])
        assert any(
            np.allclose(knee.objectives, row) for row in objs
        )

    def test_best_tradeoff_empty(self):
        with pytest.raises(ValueError):
            best_tradeoff([])

    def test_results_deterministic_given_seed(self):
        runner = self._runner()
        a = runner.run(RandomExplorer(), budget=12, seed=7)
        b = runner.run(RandomExplorer(), budget=12, seed=7)
        assert [p.objectives for p in a.evaluated] == [
            p.objectives for p in b.evaluated
        ]
