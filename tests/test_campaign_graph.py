"""The declarative campaign DAG layer (repro.campaign).

Covers graph construction and validation (topology, cycles, refs,
JSON round-trips), gate-driven backtracking under ResiliencePolicy,
checkpoint/resume mid-graph, byte-identity across serial / pooled /
served execution, the legacy thin wrappers' equivalence with inline
reproductions of the bespoke loops they replaced, and the composite
DSE -> hetero -> Pareto campaign riding a live EvaluationService.
"""

import json

import pytest

from repro import obs
from repro.campaign import (
    CampaignGraph,
    Gate,
    GraphRunner,
    ReduceNode,
    ResultRef,
    composite_campaign_graph,
)
from repro.campaign.runner import _TRACE_OCCURRENCES
from repro.core.api import build_run_result, register_workload
from repro.core.errors import ValidationError
from repro.imc.sweep import CrossbarSweepSpec
from repro.obs.ledger import get_ledger
from repro.obs.trace import canonical_spans, get_tracer
from repro.resilience import (
    BackoffPolicy,
    CheckpointStore,
    ResiliencePolicy,
    coerce_resilience,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    get_tracer().reset()
    get_ledger().reset()
    yield
    obs.disable()
    get_tracer().reset()
    get_ledger().reset()


class _SeedGatedWorkload:
    """``value`` equals the seed; ``impl_used`` echoes the impl -- the
    deterministic knob gate-backtracking tests turn."""

    name = "test-campaign-seedy"

    def space(self):
        return {"target": (2, 3)}

    def evaluate(self, config, *, seed=0, impl=None):
        return build_run_result(
            self.name,
            {"value": float(seed), "impl_used": impl or "base"},
            config=dict(config),
            seed=seed,
            impl=impl,
        )


register_workload(_SeedGatedWorkload(), replace=True)


def _tiny_specs(n=3):
    return [
        CrossbarSweepSpec(rows=16, cols=16, num_inputs=2, seed=s)
        for s in range(n)
    ]


def _crossbar_graph(n=3):
    graph = CampaignGraph(name="modes")
    for index, spec in enumerate(_tiny_specs(n)):
        graph.evaluate(
            f"cell-{index}",
            "imc-crossbar",
            config={
                "rows": spec.rows,
                "cols": spec.cols,
                "device": spec.device,
                "wire_resistance_ohm": spec.wire_resistance_ohm,
                "use_program_verify": spec.use_program_verify,
                "num_inputs": spec.num_inputs,
                "t_seconds": spec.t_seconds,
            },
            seed=spec.seed,
        )
    graph.reduce(
        "front",
        op="pareto",
        params={"metrics": ["rms_error", "energy_j"]},
        deps=tuple(f"cell-{i}" for i in range(n)),
    )
    return graph


# ------------------------------------------------------------- topology


class TestTopology:
    def test_layers_follow_dependencies_and_insertion_order(self):
        graph = CampaignGraph()
        graph.task("b", fn=lambda p: "b")
        graph.task("a", fn=lambda p: "a")
        graph.task("c", fn=lambda p: "c", deps=("a", "b"))
        graph.task("d", fn=lambda p: "d", deps=("a",))
        graph.reduce("r", fn=lambda deps: len(deps), deps=("c", "d"))
        assert graph.schedule() == [["b", "a"], ["c", "d"], ["r"]]

    def test_duplicate_node_rejected(self):
        graph = CampaignGraph()
        graph.task("a", fn=lambda p: 1)
        with pytest.raises(ValidationError, match="duplicate"):
            graph.task("a", fn=lambda p: 2)

    def test_unknown_dependency_rejected(self):
        graph = CampaignGraph()
        graph.task("a", fn=lambda p: 1, deps=("ghost",))
        with pytest.raises(ValidationError, match="unknown node 'ghost'"):
            graph.schedule()

    def test_cycle_rejected(self):
        graph = CampaignGraph()
        graph.task("a", fn=lambda p: 1, deps=("b",))
        graph.task("b", fn=lambda p: 2, deps=("a",))
        graph.task("root", fn=lambda p: 0)
        with pytest.raises(ValidationError, match="cycle"):
            graph.schedule()

    def test_result_ref_is_an_implicit_dependency(self):
        graph = CampaignGraph()
        graph.evaluate("up", "test-campaign-seedy", seed=3)
        graph.evaluate(
            "down",
            "test-campaign-seedy",
            config={"target": ResultRef("up", "metrics.value")},
        )
        assert graph.schedule() == [["up"], ["down"]]

    def test_result_ref_dotted_path_errors_are_structured(self):
        ref = ResultRef("up", "metrics.missing")
        result = build_run_result("w", {"value": 1.0}, config={}, seed=0)
        with pytest.raises(ValidationError, match="no key 'missing'"):
            ref.resolve(result)

    def test_reduce_needs_exactly_one_of_fn_or_op(self):
        with pytest.raises(ValidationError, match="exactly one"):
            ReduceNode(name="r")
        with pytest.raises(ValidationError, match="unknown reduce op"):
            ReduceNode(name="r", op="median")


class TestSerialization:
    def test_eval_reduce_graph_round_trips_through_json(self):
        graph = composite_campaign_graph(dse_budget=8)
        payload = json.loads(json.dumps(graph.to_json()))
        clone = CampaignGraph.from_json(payload)
        assert clone.to_json() == graph.to_json()
        assert clone.schedule() == graph.schedule()

    def test_refs_and_gates_round_trip(self):
        graph = CampaignGraph(name="g")
        graph.evaluate("up", "test-campaign-seedy", seed=2)
        graph.evaluate(
            "down",
            "test-campaign-seedy",
            config={"target": ResultRef("up", "metrics.value")},
            gate=Gate(
                expect_metrics=("value",),
                predicates=(("value", ">=", 0.0),),
            ),
            resilience=ResiliencePolicy(max_backtracks=2, seed_step=3),
        )
        clone = CampaignGraph.from_json(graph.to_json())
        node = clone.node("down")
        assert node.config["target"] == ResultRef("up", "metrics.value")
        assert node.gate.predicates == (("value", ">=", 0.0),)
        assert node.resilience.max_backtracks == 2
        assert node.resilience.seed_step == 3

    def test_task_nodes_and_callables_cannot_serialize(self):
        graph = CampaignGraph()
        graph.task("t", fn=lambda p: 1)
        with pytest.raises(ValidationError, match="cannot be serialized"):
            graph.to_json()
        graph2 = CampaignGraph()
        graph2.evaluate("e", "test-campaign-seedy")
        graph2.reduce("r", fn=lambda deps: 1, deps=("e",))
        with pytest.raises(ValidationError, match="cannot be serialized"):
            graph2.to_json()
        with pytest.raises(ValidationError, match="cannot be serialized"):
            Gate(check=lambda v: None).to_json()


# ---------------------------------------------------- gates / backtracking


class TestGates:
    def test_unknown_predicate_op_rejected(self):
        with pytest.raises(ValidationError, match="unknown gate op"):
            Gate(predicates=(("value", "~", 1),))

    def test_gate_failure_without_budget_fails_node_and_skips_downstream(
        self,
    ):
        graph = CampaignGraph()
        graph.evaluate(
            "n",
            "test-campaign-seedy",
            seed=0,
            gate=Gate(predicates=(("value", ">=", 99.0),)),
        )
        graph.reduce("r", op="collect", deps=("n",))
        report = GraphRunner().run(graph)
        assert report.results["n"].status == "error"
        assert report.results["n"].error_type == "GateFailure"
        assert "violates" in report.results["n"].error
        assert report.results["r"].status == "skipped"
        with pytest.raises(ValidationError, match="is error"):
            report.value("n")

    def test_backtracking_advances_seed_until_gate_passes(self):
        graph = CampaignGraph()
        graph.evaluate(
            "n",
            "test-campaign-seedy",
            seed=0,
            gate=Gate(predicates=(("value", ">=", 2.0),)),
            resilience=ResiliencePolicy(max_backtracks=3),
        )
        report = GraphRunner().run(graph)
        outcome = report.results["n"]
        assert outcome.ok
        assert outcome.backtracks == 2
        assert report.value("n").metrics["value"] == 2.0
        assert report.counts()["backtracks"] == 2

    def test_fallback_impl_used_on_final_backtrack(self):
        graph = CampaignGraph()
        graph.evaluate(
            "n",
            "test-campaign-seedy",
            seed=0,
            gate=Gate(
                check=lambda v: None
                if v.metrics["impl_used"] == "alt"
                else "needs the alt impl"
            ),
            resilience=ResiliencePolicy(
                max_backtracks=1, fallback_impl="alt"
            ),
        )
        report = GraphRunner().run(graph)
        assert report.results["n"].ok
        assert report.results["n"].backtracks == 1
        assert report.value("n").metrics["impl_used"] == "alt"

    def test_exhausted_backtracks_report_gate_failures(self):
        graph = CampaignGraph()
        graph.evaluate(
            "n",
            "test-campaign-seedy",
            seed=0,
            gate=Gate(predicates=(("value", ">=", 99.0),)),
            resilience=ResiliencePolicy(max_backtracks=2),
        )
        report = GraphRunner().run(graph)
        outcome = report.results["n"]
        assert outcome.status == "error"
        assert outcome.backtracks == 2
        assert outcome.gate_failures

    def test_runner_default_resilience_applies_to_bare_nodes(self):
        graph = CampaignGraph()
        graph.evaluate(
            "n",
            "test-campaign-seedy",
            seed=0,
            gate=Gate(predicates=(("value", ">=", 1.0),)),
        )
        runner = GraphRunner(
            resilience=ResiliencePolicy(max_backtracks=1)
        )
        assert runner.run(graph).results["n"].ok


class TestResiliencePolicy:
    def test_validation_and_json_round_trip(self):
        with pytest.raises(ValidationError):
            ResiliencePolicy(max_backtracks=-1)
        policy = ResiliencePolicy(
            backoff=BackoffPolicy(max_attempts=2),
            max_backtracks=1,
            fallback_impl="numpy",
        )
        assert ResiliencePolicy.from_json(policy.to_json()) == policy

    def test_coerce_rejects_both_spellings(self):
        with pytest.raises(ValidationError, match="not both"):
            coerce_resilience(
                ResiliencePolicy(), BackoffPolicy(), caller="f"
            )

    def test_coerce_warns_on_deprecated_policy(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            resolved = coerce_resilience(
                None, BackoffPolicy(max_attempts=7), caller="f"
            )
        assert resolved.backoff.max_attempts == 7


# ------------------------------------------------------ checkpoint/resume


class TestCheckpointResume:
    def test_mid_graph_resume_restores_upstream_and_reruns_failure(
        self, tmp_path
    ):
        calls = {"a": 0}

        def build(fail):
            graph = CampaignGraph(name="resume")
            graph.evaluate("a", "test-campaign-seedy", seed=4)

            def task(payload):
                calls["a"] += 1
                if fail:
                    raise RuntimeError("boom")
                return {"doubled": 2 * payload["value"]}

            graph.task(
                "b",
                fn=task,
                payload={"value": ResultRef("a", "metrics.value")},
                local=True,
            )
            graph.reduce("r", op="collect", deps=("b",))
            return graph

        store = CheckpointStore(tmp_path / "campaign.json")
        first = GraphRunner(checkpoint=store).run(build(fail=True))
        assert first.results["a"].ok and not first.results["a"].resumed
        assert first.results["b"].status == "error"
        assert first.results["r"].status == "skipped"

        resumed_store = CheckpointStore(tmp_path / "campaign.json")
        second = GraphRunner(checkpoint=resumed_store).run(
            build(fail=False)
        )
        assert second.results["a"].resumed
        assert not second.results["b"].resumed
        assert second.value("b") == {"doubled": 8.0}
        assert second.value("r") == [{"doubled": 8.0}]
        assert calls["a"] == 2  # failed once, re-ran once
        assert (
            second.value("a").canonical_json()
            == first.value("a").canonical_json()
        )

        third = GraphRunner(
            checkpoint=CheckpointStore(tmp_path / "campaign.json")
        ).run(build(fail=False))
        assert third.results["a"].resumed
        assert third.results["b"].resumed
        assert third.value("b") == {"doubled": 8.0}

    def test_eval_checkpoint_keys_are_content_addressed(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        graph = CampaignGraph(name="content")
        graph.evaluate("n", "test-campaign-seedy", seed=1)
        GraphRunner(checkpoint=store).run(graph)

        changed = CampaignGraph(name="content")
        changed.evaluate("n", "test-campaign-seedy", seed=2)
        report = GraphRunner(
            checkpoint=CheckpointStore(tmp_path / "ck.json")
        ).run(changed)
        # Same node name, different request -> not resumed.
        assert not report.results["n"].resumed
        assert report.value("n").metrics["value"] == 2.0

    def test_cross_mode_resume(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        serial = GraphRunner(checkpoint=store).run(_crossbar_graph())
        pooled = GraphRunner(
            parallel=2,
            checkpoint=CheckpointStore(tmp_path / "ck.json"),
        ).run(_crossbar_graph())
        for name in ("cell-0", "cell-1", "cell-2"):
            assert pooled.results[name].resumed
            assert (
                pooled.value(name).canonical_json()
                == serial.value(name).canonical_json()
            )


# ------------------------------------------------------- execution modes


class TestExecutionModes:
    def test_serial_pool_and_served_runs_are_byte_identical(self):
        from repro.serve import EvaluationService

        serial = GraphRunner().run(_crossbar_graph())
        pooled = GraphRunner(parallel=2).run(_crossbar_graph())
        service = EvaluationService(batch_size=4, batch_wait_s=0.001)
        try:
            served = GraphRunner(service=service).run(_crossbar_graph())
        finally:
            service.shutdown()

        for name in ("cell-0", "cell-1", "cell-2"):
            canonical = serial.value(name).canonical_json()
            assert pooled.value(name).canonical_json() == canonical
            assert served.value(name).canonical_json() == canonical
        front = [r.canonical_json() for r in serial.value("front")]
        assert [
            r.canonical_json() for r in pooled.value("front")
        ] == front
        assert [
            r.canonical_json() for r in served.value("front")
        ] == front

    def test_trace_structure_is_deterministic_across_runs(self):
        def trace_once():
            _TRACE_OCCURRENCES.clear()
            tracer = obs.enable_tracing()
            tracer.reset()
            GraphRunner().run(_crossbar_graph(2))
            spans = canonical_spans(tracer.spans())
            tracer.reset()
            obs.disable()
            return spans

        first = trace_once()
        second = trace_once()
        assert first == second
        names = [s["name"] for s in first]
        assert names[0] == "campaign"
        assert names.count("campaign.layer") == 2  # evals + reduce

    def test_campaign_ledger_stream(self):
        obs.enable_ledger()
        get_ledger().reset()
        GraphRunner().run(_crossbar_graph(2))
        names = [e["event"] for e in get_ledger().events()]
        assert names[0] == "campaign.started"
        assert names[-1] == "campaign.finished"
        assert names.count("node.done") == 3

    def test_error_capture_and_skip_propagation(self):
        graph = CampaignGraph()
        graph.evaluate(
            "bad", "imc-crossbar", config={"rows": 16, "device": "bogus"}
        )
        graph.evaluate("good", "test-campaign-seedy", seed=1)
        graph.reduce("r", op="collect", deps=("bad", "good"))
        graph.reduce(
            "tolerant",
            op="collect",
            deps=("bad", "good"),
            allow_failed_deps=True,
        )
        report = GraphRunner().run(graph)
        assert report.results["bad"].status == "error"
        assert report.results["bad"].error_type == "ValidationError"
        assert report.results["r"].status == "skipped"
        assert len(report.value("tolerant")) == 1  # ok values only
        assert not report.ok
        assert report.counts()["error"] == 1


# -------------------------------------------------- wrapper equivalence


class TestWrapperEquivalence:
    def test_crossbar_sweep_matches_inline_loop(self):
        from repro.imc.sweep import crossbar_sweep, evaluate_crossbar_spec

        specs = _tiny_specs(4)
        legacy = [evaluate_crossbar_spec(spec) for spec in specs]
        assert crossbar_sweep(specs) == legacy
        assert crossbar_sweep(specs, parallel=2) == legacy

    def test_sweep_row_round_trip(self):
        from repro.imc.sweep import (
            evaluate_crossbar_spec,
            sweep_row_from_run_result,
            sweep_row_to_run_result,
        )

        row = evaluate_crossbar_spec(_tiny_specs(1)[0])
        result = sweep_row_to_run_result(row)
        assert result.workload == "imc-crossbar"
        assert result.seed == row["seed"]
        assert sweep_row_from_run_result(result) == row

    def test_run_campaign_matches_inline_loop(self):
        from repro.hetero.campaign import (
            CampaignCell,
            DEFAULT_DEVICES,
            DEFAULT_STORAGE,
            _campaign_cell_task,
            _scheduled_cells,
            run_campaign,
        )
        from repro.hetero.workload import SegmentationWorkload

        workload = SegmentationWorkload(num_volumes=8, epochs=1)
        legacy = [
            CampaignCell.from_record(
                _campaign_cell_task((workload, device, storage, phase))
            )
            for device, storage, phase in _scheduled_cells(
                DEFAULT_DEVICES, DEFAULT_STORAGE
            )
        ]
        assert run_campaign(workload) == legacy
        assert run_campaign(workload, parallel=2) == legacy

    def test_campaign_cell_run_result_round_trip(self):
        from repro.hetero.campaign import CampaignCell

        cell = CampaignCell(
            device="gpu",
            storage="nvme",
            phase="inference",
            total_seconds=1.5,
            throughput_volumes_s=2.0,
            energy_j=3.0,
            bottleneck="compute",
            attempts=2,
            executed_on="cpu",
        )
        assert CampaignCell.from_run_result(cell.to_run_result()) == cell

    def test_resilient_campaign_policy_shim(self):
        from repro.hetero.campaign import run_resilient_campaign
        from repro.hetero.workload import SegmentationWorkload
        from repro.resilience import FaultInjector, FaultModel

        workload = SegmentationWorkload(num_volumes=8, epochs=1)
        backoff = BackoffPolicy(max_attempts=3, base_delay_s=0.001)

        def fresh_injector():
            return FaultInjector(
                FaultModel(storage_transient_rate=0.3), seed=7
            )

        new = run_resilient_campaign(
            workload,
            injector=fresh_injector(),
            resilience=ResiliencePolicy(backoff=backoff),
        )
        with pytest.warns(DeprecationWarning, match="deprecated"):
            old = run_resilient_campaign(
                workload, injector=fresh_injector(), policy=backoff
            )
        assert old.cells == new.cells
        assert [str(e) for e in old.errors] == [str(e) for e in new.errors]
        assert old.total_backoff_s == new.total_backoff_s
        with pytest.raises(ValidationError, match="not both"):
            run_resilient_campaign(
                workload,
                injector=fresh_injector(),
                policy=backoff,
                resilience=ResiliencePolicy(backoff=backoff),
            )

    def test_dse_compare_matches_inline_scoring(self):
        import numpy as np

        from repro.dse.explorer import (
            RandomExplorer,
            SimulatedAnnealingExplorer,
        )
        from repro.dse.runner import DSERunner
        from repro.hls.kernels import make_kernel

        runner = DSERunner(make_kernel("gemm", 16))
        explorers = [RandomExplorer(), SimulatedAnnealingExplorer()]
        scores = runner.compare(explorers, budget=8, seed=0)

        results = {
            e.name: runner.run(e, 8, seed=0) for e in explorers
        }
        all_objs = np.vstack(
            [
                np.array([p.objectives for p in res.evaluated])
                for res in results.values()
            ]
        )
        reference = all_objs.max(axis=0) * 1.1
        assert list(scores) == [e.name for e in explorers]
        for name, res in results.items():
            expected = {
                "hypervolume": res.hypervolume(reference),
                "front_size": float(len(res.front)),
                "evaluations": float(len(res.evaluated)),
                "unique_evaluations": float(res.unique_evaluations),
                "best_latency_s": res.best_latency.latency_s,
                "best_area": res.best_area.area,
            }
            measured = dict(scores[name])
            assert measured.pop("wall_time_s") >= 0.0
            assert measured == expected

    def test_dse_run_still_explores(self):
        from repro.dse.explorer import RandomExplorer
        from repro.dse.runner import DSERunner, ExplorationResult
        from repro.hls.kernels import make_kernel

        runner = DSERunner(make_kernel("dot", 8))
        result = runner.run(RandomExplorer(), 6, seed=1)
        assert result.front and result.evaluated
        rebuilt = ExplorationResult.from_run_result(
            result.to_run_result()
        )
        assert (
            rebuilt.to_run_result().metrics
            == result.to_run_result().metrics
        )


# ------------------------------------------------- composite acceptance


class TestCompositeCampaign:
    def test_composite_graph_on_service_with_checkpoint_and_trace(
        self, tmp_path
    ):
        from repro.serve import EvaluationService

        tracer = obs.enable_tracing()
        obs.enable_ledger()
        tracer.reset()
        get_ledger().reset()

        graph = composite_campaign_graph(dse_budget=8)
        store = CheckpointStore(tmp_path / "composite.json")
        service = EvaluationService(batch_size=4, batch_wait_s=0.001)
        try:
            report = GraphRunner(service=service, checkpoint=store).run(
                graph
            )
        finally:
            service.shutdown()
        assert report.ok
        assert len(report.layers) == 3
        front = report.value("pareto")
        assert front  # time/energy frontier over the hetero cells
        # DSE front size flowed into every hetero cell's request: the
        # result digests match a request rebuilt with the ref resolved.
        from repro.core.api import request_digest

        dse_front = report.value("dse").metrics["front_size"]
        for name in graph.node("pareto").deps:
            node = graph.node(name)
            resolved = dict(node.config)
            resolved["num_volumes"] = dse_front
            assert report.value(name).config_digest == request_digest(
                node.workload, resolved, seed=node.seed, impl=node.impl
            )

        span_names = [s["name"] for s in tracer.spans()]
        assert "campaign" in span_names
        assert "campaign.layer" in span_names
        event_names = [e["event"] for e in get_ledger().events()]
        assert "campaign.started" in event_names
        assert "campaign.finished" in event_names
        assert event_names.count("checkpoint.saved") == len(
            report.results
        ) - 1  # every node but the recomputed reduce

        # Resume from the checkpoint without the service: every eval
        # node restores byte-identically, the reduce recomputes equal.
        resumed = GraphRunner(
            checkpoint=CheckpointStore(tmp_path / "composite.json")
        ).run(composite_campaign_graph(dse_budget=8))
        assert resumed.ok
        for name, result in resumed.results.items():
            if result.kind == "eval":
                assert result.resumed, name
                assert (
                    result.value.canonical_json()
                    == report.value(name).canonical_json()
                )
        assert [r.canonical_json() for r in resumed.value("pareto")] == [
            r.canonical_json() for r in front
        ]


# ----------------------------------------------------------------- CLI


class TestCampaignCLI:
    def _spec(self, tmp_path):
        graph = CampaignGraph(name="cli-demo")
        for index, spec in enumerate(_tiny_specs(2)):
            graph.evaluate(
                f"cell-{index}",
                "imc-crossbar",
                config={
                    "rows": spec.rows,
                    "cols": spec.cols,
                    "num_inputs": spec.num_inputs,
                },
                seed=spec.seed,
            )
        graph.reduce(
            "best",
            op="argmin",
            params={"metric": "rms_error"},
            deps=("cell-0", "cell-1"),
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(graph.to_json()))
        return str(path)

    def test_run_status_resume(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._spec(tmp_path)
        checkpoint = str(tmp_path / "ck.json")
        out = str(tmp_path / "report.json")
        assert (
            main(
                ["campaign", "run", spec, "--checkpoint", checkpoint,
                 "--out", out]
            )
            == 0
        )
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["ok"] and report["counts"]["nodes"] == 3

        assert (
            main(["campaign", "status", spec, "--checkpoint", checkpoint])
            == 0
        )
        assert "2/3 nodes checkpointed" in capsys.readouterr().out

        assert (
            main(
                ["campaign", "resume", spec, "--checkpoint", checkpoint,
                 "--out", out]
            )
            == 0
        )
        resumed = json.loads((tmp_path / "report.json").read_text())
        assert resumed["counts"]["resumed"] == 2

    def test_example_spec_is_loadable(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "example.json")
        assert main(["campaign", "example", "--out", out]) == 0
        graph = CampaignGraph.from_json(
            json.loads((tmp_path / "example.json").read_text())
        )
        assert "dse" in graph and "pareto" in graph
        assert len(graph.schedule()) == 3

    def test_py_spec_loading(self, tmp_path):
        from repro.cli import _load_campaign_graph

        path = tmp_path / "spec.py"
        path.write_text(
            "from repro.campaign import CampaignGraph\n"
            "def build():\n"
            "    g = CampaignGraph(name='py-spec')\n"
            "    g.evaluate('n', 'test-campaign-seedy', seed=1)\n"
            "    return g\n"
        )
        graph = _load_campaign_graph(str(path))
        assert graph.name == "py-spec"
        with pytest.raises(ValidationError, match="must define"):
            bad = tmp_path / "bad.py"
            bad.write_text("x = 1\n")
            _load_campaign_graph(str(bad))
