"""Tests for the RV32IM assembler and functional simulator."""

import pytest

from repro.scf.rv32 import (
    Assembler,
    AssemblyError,
    RV32Simulator,
    assemble_and_run,
)


def run(src, **kwargs):
    return assemble_and_run(src, **kwargs)


EXIT = "\n    li a7, 93\n    ecall\n"


class TestAssembler:
    def test_labels_and_comments(self):
        program = Assembler().assemble(
            "start:  addi x1, x0, 5  # five\n    j start\n"
        )
        assert len(program) == 2
        assert program[1].mnemonic == "jal"
        assert program[1].imm == 0

    def test_li_expansion_small(self):
        program = Assembler().assemble("li a0, 42")
        assert len(program) == 1
        assert program[0].mnemonic == "addi"

    def test_li_expansion_large(self):
        program = Assembler().assemble("li a0, 0x12345")
        assert len(program) == 2
        assert program[0].mnemonic == "lui"

    def test_li_expansion_keeps_labels_aligned(self):
        src = """
            li t0, 0x10000
            j end
        end:
            li a7, 93
            ecall
        """
        sim = run(src)
        assert sim.exit_code == 0

    def test_abi_and_numeric_registers(self):
        program = Assembler().assemble("add sp, x2, t6")
        assert program[0].rd == 2
        assert program[0].rs1 == 2
        assert program[0].rs2 == 31

    def test_errors(self):
        asm = Assembler()
        with pytest.raises(AssemblyError):
            asm.assemble("frobnicate x1, x2")
        with pytest.raises(AssemblyError):
            asm.assemble("add x1, x2")
        with pytest.raises(AssemblyError):
            asm.assemble("addi x1, x99, 0")
        with pytest.raises(AssemblyError):
            asm.assemble("addi x1, x2, notanumber")
        with pytest.raises(AssemblyError):
            asm.assemble("dup: nop\ndup: nop")
        with pytest.raises(AssemblyError):
            asm.assemble("lw x1, x2")  # missing imm(reg) form


class TestArithmetic:
    def test_sum_loop(self):
        src = """
            li a0, 0
            li t0, 1
            li t1, 11
        loop:
            beq t0, t1, done
            add a0, a0, t0
            addi t0, t0, 1
            j loop
        done:
        """ + EXIT
        assert run(src).exit_code == 55

    def test_factorial_mul(self):
        src = """
            li a0, 1
            li t0, 7
        fact:
            beq t0, x0, end
            mul a0, a0, t0
            addi t0, t0, -1
            j fact
        end:
        """ + EXIT
        assert run(src).exit_code == 5040

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("li a0, 20\n li t0, 6\n div a0, a0, t0", 3),
            ("li a0, -20\n li t0, 6\n div a0, a0, t0", -3),
            ("li a0, -17\n li t0, 5\n rem a0, a0, t0", -2),
            ("li a0, 17\n li t0, -5\n rem a0, a0, t0", 2),
            ("li a0, 7\n li t0, 0\n div a0, a0, t0", -1),
            ("li a0, 7\n li t0, 0\n rem a0, a0, t0", 7),
            ("li a0, 5\n slli a0, a0, 3", 40),
            ("li a0, -8\n srai a0, a0, 2", -2),
            ("li a0, -8\n srli a0, a0, 28", 15),
            ("li a0, 12\n andi a0, a0, 10", 8),
            ("li a0, 12\n ori a0, a0, 3", 15),
            ("li a0, 12\n xori a0, a0, 10", 6),
            ("li a0, -5\n li t0, 3\n slt a0, a0, t0", 1),
            ("li a0, -5\n li t0, 3\n sltu a0, a0, t0", 0),
            ("li a0, 100\n li t0, 42\n sub a0, a0, t0", 58),
        ],
    )
    def test_alu_ops(self, expr, expected):
        assert run(expr + EXIT).exit_code == expected

    def test_mulh_variants(self):
        src = """
            li a0, 0x40000
            li t0, 0x40000
            mulhu a0, a0, t0
        """ + EXIT
        # 2^18 * 2^18 = 2^36 -> high word = 16.
        assert run(src).exit_code == 16

    def test_x0_hardwired(self):
        src = "li t0, 99\n add x0, t0, t0\n mv a0, x0" + EXIT
        assert run(src).exit_code == 0

    def test_lui_auipc(self):
        src = "lui a0, 1\n srli a0, a0, 12" + EXIT
        assert run(src).exit_code == 1


class TestMemoryAndControl:
    def test_dot_product(self):
        src = """
            li t0, 0x1000
            li t1, 0x2000
            li t2, 5
            li a0, 0
        loop:
            beq t2, x0, done
            lw t3, 0(t0)
            lw t4, 0(t1)
            mul t5, t3, t4
            add a0, a0, t5
            addi t0, t0, 4
            addi t1, t1, 4
            addi t2, t2, -1
            j loop
        done:
        """ + EXIT
        sim = run(src, data={0x1000: [1, 2, 3, 4, 5],
                             0x2000: [10, 20, 30, 40, 50]})
        assert sim.exit_code == 550

    def test_byte_and_half_access(self):
        src = """
            li t0, 0x100
            li t1, -1
            sb t1, 0(t0)
            lbu a0, 0(t0)
        """ + EXIT
        assert run(src).exit_code == 255
        src2 = """
            li t0, 0x100
            li t1, -1
            sb t1, 0(t0)
            lb a0, 0(t0)
        """ + EXIT
        assert run(src2).exit_code == -1

    def test_halfword_sign_extension(self):
        src = """
            li t0, 0x100
            li t1, 0x8000
            sh t1, 0(t0)
            lh a0, 0(t0)
        """ + EXIT
        assert run(src).exit_code == -32768

    def test_function_call_ret(self):
        src = """
            li a0, 21
            jal ra, double
        """ + EXIT + """
        double:
            add a0, a0, a0
            ret
        """
        assert run(src).exit_code == 42

    def test_memcpy_program(self):
        src = """
            li t0, 0x1000
            li t1, 0x3000
            li t2, 4
        copy:
            beq t2, x0, check
            lw t3, 0(t0)
            sw t3, 0(t1)
            addi t0, t0, 4
            addi t1, t1, 4
            addi t2, t2, -1
            j copy
        check:
            li t1, 0x3000
            lw a0, 12(t1)
        """ + EXIT
        sim = run(src, data={0x1000: [11, 22, 33, 44]})
        assert sim.exit_code == 44
        assert sim.read_words(0x3000, 4) == [11, 22, 33, 44]

    def test_branch_variants(self):
        src = """
            li a0, 0
            li t0, -1
            li t1, 1
            bltu t0, t1, no
            addi a0, a0, 1
        no:
            blt t0, t1, yes
            j end
        yes:
            addi a0, a0, 2
        end:
        """ + EXIT
        # bltu: 0xFFFFFFFF < 1 unsigned is false -> a0 += 1;
        # blt: -1 < 1 signed is true -> a0 += 2.
        assert run(src).exit_code == 3


class TestSimulatorMechanics:
    def test_cycle_model_charges_extra_for_loads(self):
        base = run("li a0, 0" + EXIT).cycles
        with_load = run(
            "li t0, 0x100\n lw a0, 0(t0)" + EXIT
        ).cycles
        assert with_load > base + 1

    def test_instruction_budget(self):
        src = "loop: j loop"
        with pytest.raises(RuntimeError):
            assemble_and_run(src, max_instructions=100)

    def test_memory_bounds_checked(self):
        sim = RV32Simulator(memory_bytes=64)
        with pytest.raises(IndexError):
            sim.load_word(64)
        with pytest.raises(IndexError):
            sim.store_word(-4, 0)

    def test_pc_out_of_program(self):
        program = Assembler().assemble("nop")
        with pytest.raises(IndexError):
            RV32Simulator().run(program)

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            RV32Simulator().run([])

    def test_write_read_words(self):
        sim = RV32Simulator()
        sim.write_words(0x40, [1, 2, 3])
        assert sim.read_words(0x40, 3) == [1, 2, 3]

    def test_small_memory_rejected(self):
        with pytest.raises(ValueError):
            RV32Simulator(memory_bytes=2)
