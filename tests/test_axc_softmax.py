"""Tests for the approximate SoftMax of repro.axc.softmax."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.axc import softmax as sm


class TestExactSoftmax:
    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        out = sm.softmax_exact(rng.normal(size=(8, 16)))
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_invariant_to_shift(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(sm.softmax_exact(x), sm.softmax_exact(x + 100))

    def test_large_logits_stable(self):
        out = sm.softmax_exact(np.array([1000.0, 999.0]))
        assert np.isfinite(out).all()

    def test_known_values(self):
        out = sm.softmax_exact(np.array([0.0, 0.0]))
        assert np.allclose(out, 0.5)


class TestPow2Approximations:
    def test_piecewise_linear_exact_at_integers(self):
        s = np.array([-3.0, -1.0, 0.0, 2.0])
        assert np.allclose(sm._pow2_piecewise_linear(s), np.exp2(s))

    def test_piecewise_linear_max_error(self):
        s = np.linspace(-4, 4, 1001)
        rel = np.abs(sm._pow2_piecewise_linear(s) - np.exp2(s)) / np.exp2(s)
        assert rel.max() < 0.0625

    def test_truncated_is_lower_bound_scale(self):
        s = np.linspace(-4, 4, 101)
        assert np.all(sm._pow2_truncated(s) <= np.exp2(s) + 1e-12)


class TestApproximateSoftmax:
    def test_moderate_close_to_exact(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(32, 10))
        err = sm.max_absolute_error(
            logits, fractional_correction=True, shift_normalization=False
        )
        assert err < 0.05

    def test_aggressive_worse_than_moderate(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(64, 10))
        moderate = sm.max_absolute_error(logits, fractional_correction=True)
        aggressive = sm.max_absolute_error(logits, fractional_correction=False)
        assert aggressive >= moderate

    def test_outputs_nonnegative_and_bounded(self):
        rng = np.random.default_rng(3)
        out = sm.softmax_approximate(rng.normal(size=(16, 8)))
        assert (out >= 0).all()
        assert (out <= 1.0 + 1e-9).all()

    def test_shift_normalization_sum_within_factor_two(self):
        # Shifting by ceil(log2 D) divides by at most 2x the true
        # denominator, so row sums land in (0.5, 1].
        rng = np.random.default_rng(4)
        out = sm.softmax_approximate(
            rng.normal(size=(64, 12)), shift_normalization=True
        )
        sums = out.sum(axis=-1)
        assert (sums > 0.5 - 1e-9).all()
        assert (sums <= 1.0 + 1e-9).all()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-8, max_value=8, allow_nan=False),
            min_size=2,
            max_size=16,
        )
    )
    def test_argmax_preserved_with_margin(self, logits):
        # When the top logit leads by a clear margin the approximation
        # cannot flip the argmax (worst-case relative error ~6% each side).
        arr = np.array(logits)
        arr[0] = arr.max() + 1.0
        assert sm.argmax_agreement(arr[None, :]) == 1.0

    def test_argmax_agreement_high_on_random(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(0, 3, size=(500, 10))
        assert sm.argmax_agreement(logits) > 0.95
        assert sm.argmax_agreement(logits, fractional_correction=False) > 0.85


class TestCostModel:
    def test_savings_ordering(self):
        cost = sm.softmax_cost_model(64)
        assert cost["aggressive_saving"] > cost["moderate_saving"] > 0.8

    def test_scales_with_length(self):
        small = sm.softmax_cost_model(8)
        large = sm.softmax_cost_model(80)
        assert (
            large["exact_adder_equivalents"]
            == 10 * small["exact_adder_equivalents"]
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sm.softmax_cost_model(0)
