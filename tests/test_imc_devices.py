"""Tests for NVM device models and program-and-verify."""

import numpy as np
import pytest

from repro.imc.devices import (
    DeviceParams,
    NVMDevice,
    PCM_PARAMS,
    RRAM_PARAMS,
    relative_programming_error,
)
from repro.imc.program_verify import (
    mlc_level_error_rate,
    mlc_levels,
    open_loop_program,
    program_and_verify,
)


class TestDeviceParams:
    def test_dynamic_range(self):
        assert RRAM_PARAMS.dynamic_range == pytest.approx(100.0)

    def test_pcm_drifts_more_than_rram(self):
        assert PCM_PARAMS.drift_nu > RRAM_PARAMS.drift_nu

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceParams("x", g_min=0, g_max=1e-6, program_sigma=0.1,
                         drift_nu=0.01, read_noise_fraction=0.01)
        with pytest.raises(ValueError):
            DeviceParams("x", g_min=2e-6, g_max=1e-6, program_sigma=0.1,
                         drift_nu=0.01, read_noise_fraction=0.01)
        with pytest.raises(ValueError):
            DeviceParams("x", g_min=1e-6, g_max=1e-5, program_sigma=-0.1,
                         drift_nu=0.01, read_noise_fraction=0.01)


class TestNVMDevice:
    def test_initial_state_at_gmin(self):
        dev = NVMDevice(RRAM_PARAMS, (4, 4), seed=0)
        assert np.allclose(dev.conductances, RRAM_PARAMS.g_min)

    def test_program_pulse_lands_near_target(self):
        dev = NVMDevice(RRAM_PARAMS, (200, 200), seed=0)
        target = 50e-6
        achieved = dev.program_pulse(np.full((200, 200), target))
        rel = relative_programming_error(achieved, np.full((200, 200), target))
        # Log-normal sigma=0.08 -> RMS error near 8%.
        assert 0.04 < np.sqrt(np.mean(rel**2)) < 0.15

    def test_program_clips_to_window(self):
        dev = NVMDevice(RRAM_PARAMS, (8, 8), seed=0)
        achieved = dev.program_pulse(np.full((8, 8), 1.0))  # way above g_max
        assert np.all(achieved <= RRAM_PARAMS.g_max)

    def test_program_rejects_negative(self):
        dev = NVMDevice(RRAM_PARAMS, (2, 2), seed=0)
        with pytest.raises(ValueError):
            dev.program_pulse(np.full((2, 2), -1e-6))

    def test_drift_is_power_law(self):
        dev = NVMDevice(PCM_PARAMS, (4, 4), seed=0)
        dev.program_pulse(np.full((4, 4), 20e-6))
        g1 = dev.drifted(1.0)
        g1000 = dev.drifted(1000.0)
        expected = g1 * 1000.0 ** (-PCM_PARAMS.drift_nu)
        assert np.allclose(g1000, expected)

    def test_drift_rejects_early_times(self):
        dev = NVMDevice(PCM_PARAMS, (2, 2), seed=0)
        with pytest.raises(ValueError):
            dev.drifted(0.5)

    def test_read_noise_zero_mean(self):
        dev = NVMDevice(RRAM_PARAMS, (100, 100), seed=0)
        dev.program_pulse(np.full((100, 100), 50e-6))
        reads = dev.read()
        assert np.mean(reads) == pytest.approx(np.mean(dev.conductances),
                                               rel=0.02)

    def test_reads_are_stochastic(self):
        dev = NVMDevice(RRAM_PARAMS, (8, 8), seed=0)
        dev.program_pulse(np.full((8, 8), 50e-6))
        assert not np.array_equal(dev.read(), dev.read())

    def test_conductances_returns_copy(self):
        dev = NVMDevice(RRAM_PARAMS, (2, 2), seed=0)
        g = dev.conductances
        g[:] = 0
        assert np.all(dev.conductances > 0)

    def test_correction_rejects_negative_sigma(self):
        dev = NVMDevice(RRAM_PARAMS, (2, 2), seed=0)
        dev.program_pulse(np.full((2, 2), 10e-6))
        with pytest.raises(ValueError):
            dev.program_correction(np.zeros((2, 2)), pulse_sigma=-1.0)

    def test_relative_error_rejects_nonpositive_targets(self):
        with pytest.raises(ValueError):
            relative_programming_error(np.ones(3), np.zeros(3))


class TestProgramVerify:
    def _targets(self, shape, seed=0):
        rng = np.random.default_rng(seed)
        return rng.uniform(RRAM_PARAMS.g_min, RRAM_PARAMS.g_max, shape)

    def test_beats_open_loop(self):
        targets = self._targets((64, 64))
        dev_ol = NVMDevice(RRAM_PARAMS, (64, 64), seed=1)
        rms_ol = open_loop_program(dev_ol, targets)
        dev_pv = NVMDevice(RRAM_PARAMS, (64, 64), seed=1)
        result = program_and_verify(dev_pv, targets)
        assert result.final_rms_error < rms_ol / 2
        assert result.converged_fraction > 0.9

    def test_error_trace_decreases(self):
        targets = self._targets((32, 32), seed=2)
        dev = NVMDevice(RRAM_PARAMS, (32, 32), seed=2)
        result = program_and_verify(dev, targets)
        assert result.rms_error_trace[-1] < result.rms_error_trace[0]

    def test_loose_tolerance_converges_fully(self):
        targets = self._targets((32, 32), seed=3)
        dev = NVMDevice(RRAM_PARAMS, (32, 32), seed=3)
        result = program_and_verify(dev, targets, tolerance=0.25)
        assert result.converged
        assert result.iterations_used <= 8

    def test_pulse_accounting(self):
        dev = NVMDevice(RRAM_PARAMS, (16, 16), seed=4)
        result = program_and_verify(dev, self._targets((16, 16), seed=4))
        assert result.total_pulses >= 16 * 16

    def test_parameter_validation(self):
        dev = NVMDevice(RRAM_PARAMS, (4, 4), seed=0)
        with pytest.raises(ValueError):
            program_and_verify(dev, np.full((4, 4), 1e-5), tolerance=0)
        with pytest.raises(ValueError):
            program_and_verify(dev, np.full((4, 4), 1e-5), max_iterations=0)


class TestMLC:
    def test_levels_span_window(self):
        levels = mlc_levels(1e-6, 100e-6, bits=2)
        assert levels.size == 4
        assert levels[0] == pytest.approx(1e-6)
        assert levels[-1] == pytest.approx(100e-6)

    def test_levels_validation(self):
        with pytest.raises(ValueError):
            mlc_levels(1e-6, 100e-6, bits=0)
        with pytest.raises(ValueError):
            mlc_levels(1e-5, 1e-6, bits=2)

    def test_verify_reduces_level_errors(self):
        dev_pv = NVMDevice(PCM_PARAMS, (4, 128), seed=5)
        err_pv = mlc_level_error_rate(dev_pv, bits=2, cells_per_level=128)
        dev_ol = NVMDevice(PCM_PARAMS, (4, 128), seed=5)
        err_ol = mlc_level_error_rate(
            dev_ol, bits=2, cells_per_level=128, use_verify=False
        )
        assert err_pv <= err_ol

    def test_drift_degrades_levels(self):
        dev_now = NVMDevice(PCM_PARAMS, (8, 64), seed=6)
        err_now = mlc_level_error_rate(dev_now, bits=3, cells_per_level=64)
        dev_later = NVMDevice(PCM_PARAMS, (8, 64), seed=6)
        err_later = mlc_level_error_rate(
            dev_later, bits=3, cells_per_level=64, read_time_s=1e6
        )
        assert err_later > err_now

    def test_more_bits_more_errors(self):
        dev2 = NVMDevice(PCM_PARAMS, (4, 64), seed=7)
        err2 = mlc_level_error_rate(dev2, bits=2, read_time_s=100.0)
        dev4 = NVMDevice(PCM_PARAMS, (16, 64), seed=7)
        err4 = mlc_level_error_rate(dev4, bits=4, read_time_s=100.0)
        assert err4 >= err2

    def test_shape_mismatch_rejected(self):
        dev = NVMDevice(PCM_PARAMS, (3, 64), seed=0)
        with pytest.raises(ValueError):
            mlc_level_error_rate(dev, bits=2)


class TestProgramVerifyDeterminism:
    """Same seed => bit-identical trace; different seed => different
    stochastic pulse history (the suite's reproducibility contract)."""

    def _run(self, seed):
        rng = np.random.default_rng(0)  # targets fixed across runs
        targets = rng.uniform(
            RRAM_PARAMS.g_min, RRAM_PARAMS.g_max, (24, 24)
        )
        device = NVMDevice(RRAM_PARAMS, (24, 24), seed=seed)
        return program_and_verify(device, targets, tolerance=0.02)

    def test_same_seed_identical_result(self):
        a = self._run(seed=123)
        b = self._run(seed=123)
        assert a.iterations_used == b.iterations_used
        assert a.total_pulses == b.total_pulses
        assert a.converged_fraction == b.converged_fraction
        assert a.rms_error_trace == b.rms_error_trace
        assert a.final_rms_error == b.final_rms_error

    def test_different_seed_differs(self):
        a = self._run(seed=123)
        results = [self._run(seed=s) for s in (124, 125, 126)]
        assert any(
            r.total_pulses != a.total_pulses
            or r.rms_error_trace != a.rms_error_trace
            for r in results
        )
