"""Tests for FSRCNN models, synthetic data and the training loop."""

import numpy as np
import pytest

from repro.axc.data import (
    downsample_x2,
    edge_scene,
    evaluation_set,
    mixed_scene,
    smooth_texture,
    sr_pair,
)
from repro.axc.fsrcnn import FSRCNN, FSRCNN_25_5_1, FSRCNN_56_12_4, FSRCNNConfig
from repro.axc.htconv import FovealRegion
from repro.axc.macs import MacCounter
from repro.axc.training import (
    TrainResult,
    model_backward,
    model_forward_with_cache,
    train_fsrcnn,
)
from repro.core.fixedpoint import Q16


class TestData:
    def test_images_in_unit_range(self):
        for gen in (smooth_texture, edge_scene, mixed_scene):
            img = gen(32, 48, seed=0)
            assert img.shape == (32, 48)
            assert img.min() >= 0.0 and img.max() <= 1.0

    def test_deterministic_given_seed(self):
        assert np.array_equal(
            smooth_texture(16, 16, seed=7), smooth_texture(16, 16, seed=7)
        )

    def test_downsample_shape_and_mean(self):
        img = np.arange(16.0).reshape(4, 4)
        ds = downsample_x2(img)
        assert ds.shape == (2, 2)
        assert ds[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_downsample_rejects_odd(self):
        with pytest.raises(ValueError):
            downsample_x2(np.zeros((3, 4)))

    def test_sr_pair_shapes(self):
        lr, hr = sr_pair(32, 48, seed=0)
        assert hr.shape == (32, 48)
        assert lr.shape == (16, 24)

    def test_sr_pair_unknown_kind(self):
        with pytest.raises(ValueError):
            sr_pair(16, 16, kind="nope")

    def test_evaluation_set(self):
        pairs = evaluation_set(hr_size=32, count=5)
        assert len(pairs) == 5
        assert all(hr.shape == (32, 32) for _, hr in pairs)


class TestFSRCNNModel:
    def test_config_name(self):
        assert FSRCNN_25_5_1.name == "FSRCNN(25,5,1)"
        assert FSRCNN_56_12_4.name == "FSRCNN(56,12,4)"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FSRCNNConfig(d=0, s=1, m=1)
        with pytest.raises(ValueError):
            FSRCNNConfig(d=4, s=2, m=1, deconv_kernel=4)

    def test_forward_shape(self):
        model = FSRCNN(FSRCNN_25_5_1, seed=0)
        out = model.forward(np.zeros((12, 14)))
        assert out.shape == (24, 28)

    def test_output_clipped(self):
        model = FSRCNN(FSRCNN_25_5_1, seed=0)
        out = model.forward(np.random.default_rng(0).uniform(size=(10, 10)))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_bigger_model_has_more_parameters(self):
        small = FSRCNN(FSRCNN_25_5_1, seed=0)
        big = FSRCNN(FSRCNN_56_12_4, seed=0)
        assert big.num_parameters() > 3 * small.num_parameters()

    def test_htconv_mode_requires_fovea(self):
        model = FSRCNN(FSRCNN_25_5_1, seed=0)
        with pytest.raises(ValueError):
            model.forward(np.zeros((8, 8)), tconv_mode="htconv")

    def test_unknown_mode(self):
        model = FSRCNN(FSRCNN_25_5_1, seed=0)
        with pytest.raises(ValueError):
            model.forward(np.zeros((8, 8)), tconv_mode="magic")

    def test_rejects_non_2d_input(self):
        model = FSRCNN(FSRCNN_25_5_1, seed=0)
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 8, 8)))

    def test_htconv_full_fovea_matches_exact(self):
        model = FSRCNN(FSRCNN_25_5_1, seed=1)
        lr = smooth_texture(10, 10, seed=2)
        exact = model.forward(lr)
        hybrid = model.forward(
            lr, tconv_mode="htconv", fovea=FovealRegion.everything()
        )
        assert np.allclose(exact, hybrid)

    def test_mac_accounting_splits_layers(self):
        model = FSRCNN(FSRCNN_25_5_1, seed=0)
        counter = MacCounter()
        model.forward(np.zeros((8, 8)), counter=counter)
        assert {"feature", "shrink", "map0", "expand", "tconv"} <= set(
            counter.macs
        )

    def test_quantized_forward_close_to_float(self):
        model = FSRCNN(FSRCNN_25_5_1, seed=0)
        lr = smooth_texture(12, 12, seed=3)
        float_out = model.forward(lr)
        quant_out = model.forward(lr, quant_fmt=Q16)
        assert np.abs(float_out - quant_out).max() < 0.05


class TestTraining:
    def test_gradients_match_finite_differences(self):
        model = FSRCNN(FSRCNNConfig(d=3, s=2, m=1), seed=0)
        lr_img = smooth_texture(6, 6, seed=1)
        target = smooth_texture(12, 12, seed=2)

        out, caches = model_forward_with_cache(model, lr_img)
        err = out - target
        grads = model_backward(model, 2.0 * err / err.size, caches)

        def loss():
            out2, _ = model_forward_with_cache(model, lr_img)
            return float(np.mean((out2 - target) ** 2))

        eps = 1e-6
        for key, array in [
            ("feature.weight", model.conv_weights[0]),
            ("deconv.kernel", model.deconv_kernel),
            ("shrink.prelu", model.prelu_slopes[1]),
            ("map0.bias", model.conv_biases[2]),
        ]:
            flat = array.ravel()
            idx = flat.size // 2
            orig = flat[idx]
            flat[idx] = orig + eps
            up = loss()
            flat[idx] = orig - eps
            down = loss()
            flat[idx] = orig
            numeric = (up - down) / (2 * eps)
            analytic = grads[key].ravel()[idx]
            assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-7), key

    def test_training_reduces_loss(self):
        model = FSRCNN(FSRCNNConfig(d=6, s=3, m=1), seed=0)
        result = train_fsrcnn(model, steps=60, patch=12, seed=0)
        assert isinstance(result, TrainResult)
        early = np.mean(result.losses[:10])
        late = np.mean(result.losses[-10:])
        assert late < early

    def test_training_validation(self):
        model = FSRCNN(FSRCNNConfig(d=2, s=2, m=0), seed=0)
        with pytest.raises(ValueError):
            train_fsrcnn(model, steps=0)
        with pytest.raises(ValueError):
            train_fsrcnn(model, steps=1, patch=9)
