"""Tests for RV32IM binary encoding/decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scf.rv32 import Assembler, Instruction, RV32Simulator
from repro.scf.rv32_encoding import (
    EncodingError,
    decode,
    decode_program,
    disassemble,
    encode,
    encode_program,
)

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)
shamt = st.integers(min_value=0, max_value=31)
imm20 = st.integers(min_value=0, max_value=(1 << 20) - 1)


class TestKnownEncodings:
    def test_addi_golden(self):
        # addi x1, x2, 5 -> 0x00510093
        word = encode(Instruction("addi", rd=1, rs1=2, imm=5))
        assert word == 0x00510093

    def test_add_golden(self):
        # add x3, x1, x2 -> 0x002081B3
        word = encode(Instruction("add", rd=3, rs1=1, rs2=2))
        assert word == 0x002081B3

    def test_lw_golden(self):
        # lw x5, 8(x10) -> 0x00852283
        word = encode(Instruction("lw", rd=5, rs1=10, imm=8))
        assert word == 0x00852283

    def test_sw_golden(self):
        # sw x5, 12(x10) -> 0x00552623
        word = encode(Instruction("sw", rs2=5, rs1=10, imm=12))
        assert word == 0x00552623

    def test_lui_golden(self):
        # lui x1, 0x12345 -> 0x123450B7
        word = encode(Instruction("lui", rd=1, imm=0x12345))
        assert word == 0x123450B7

    def test_mul_golden(self):
        # mul x5, x6, x7 -> funct7=1 -> 0x027302B3
        word = encode(Instruction("mul", rd=5, rs1=6, rs2=7))
        assert word == 0x027302B3

    def test_ecall(self):
        assert encode(Instruction("ecall")) == 0x00000073
        assert decode(0x00000073).mnemonic == "ecall"

    def test_beq_backward_branch(self):
        # beq at slot 2 targeting slot 0: offset -8 bytes.
        ins = Instruction("beq", rs1=1, rs2=2, imm=0)
        word = encode(ins, slot=2)
        back = decode(word, slot=2)
        assert back.imm == 0


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(regs, regs, regs)
    def test_r_type(self, rd, rs1, rs2):
        for m in ("add", "sub", "xor", "mul", "divu", "sra", "sltu"):
            ins = Instruction(m, rd=rd, rs1=rs1, rs2=rs2)
            assert decode(encode(ins)) == ins

    @settings(max_examples=60, deadline=None)
    @given(regs, regs, imm12)
    def test_i_type(self, rd, rs1, imm):
        for m in ("addi", "andi", "ori", "xori", "slti", "sltiu"):
            ins = Instruction(m, rd=rd, rs1=rs1, imm=imm)
            assert decode(encode(ins)) == ins

    @settings(max_examples=40, deadline=None)
    @given(regs, regs, shamt)
    def test_shifts(self, rd, rs1, amount):
        for m in ("slli", "srli", "srai"):
            ins = Instruction(m, rd=rd, rs1=rs1, imm=amount)
            assert decode(encode(ins)) == ins

    @settings(max_examples=40, deadline=None)
    @given(regs, regs, imm12)
    def test_loads_stores(self, r1, r2, imm):
        load = Instruction("lw", rd=r1, rs1=r2, imm=imm)
        assert decode(encode(load)) == load
        store = Instruction("sh", rs1=r1, rs2=r2, imm=imm)
        assert decode(encode(store)) == store

    @settings(max_examples=40, deadline=None)
    @given(regs, imm20)
    def test_u_type(self, rd, imm):
        for m in ("lui", "auipc"):
            ins = Instruction(m, rd=rd, imm=imm)
            assert decode(encode(ins)) == ins

    @settings(max_examples=40, deadline=None)
    @given(
        regs,
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    def test_jal_with_slots(self, rd, slot, target):
        ins = Instruction("jal", rd=rd, imm=target)
        assert decode(encode(ins, slot=slot), slot=slot) == ins

    @settings(max_examples=40, deadline=None)
    @given(
        regs, regs,
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    def test_branches_with_slots(self, rs1, rs2, slot, target):
        for m in ("beq", "bne", "blt", "bgeu"):
            ins = Instruction(m, rs1=rs1, rs2=rs2, imm=target)
            assert decode(encode(ins, slot=slot), slot=slot) == ins


class TestProgramLevel:
    SOURCE = """
        li a0, 0
        li t0, 1
        li t1, 11
    loop:
        beq t0, t1, done
        add a0, a0, t0
        addi t0, t0, 1
        j loop
    done:
        li a7, 93
        ecall
    """

    def test_assemble_encode_decode_execute(self):
        program = Assembler().assemble(self.SOURCE)
        code = encode_program(program)
        assert len(code) == 4 * len(program)
        recovered = decode_program(code)
        # The decoded program executes identically.
        sim = RV32Simulator()
        assert sim.run(recovered) == 55

    def test_decoded_equals_original(self):
        program = Assembler().assemble(self.SOURCE)
        recovered = decode_program(encode_program(program))
        for a, b in zip(program, recovered):
            assert a.mnemonic == b.mnemonic
            assert (a.rd, a.rs1, a.rs2, a.imm) == (b.rd, b.rs1, b.rs2, b.imm)

    def test_disassemble(self):
        program = Assembler().assemble("addi x1, x0, 7\necall")
        lines = disassemble(encode_program(program))
        assert len(lines) == 2
        assert "addi" in lines[0]
        assert "ecall" in lines[1]


class TestErrors:
    def test_out_of_range_immediates(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=0, imm=5000))
        with pytest.raises(EncodingError):
            encode(Instruction("lui", rd=1, imm=1 << 20))
        with pytest.raises(EncodingError):
            encode(Instruction("slli", rd=1, rs1=0, imm=40))

    def test_bad_word(self):
        with pytest.raises(EncodingError):
            decode(0xFFFFFFFF + 1)
        with pytest.raises(EncodingError):
            decode(0b1011011)  # unused opcode

    def test_bad_code_length(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x00\x00\x00")
