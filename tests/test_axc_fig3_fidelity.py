"""Fidelity test: the vectorized HTCONV against a literal, line-by-line
transcription of the paper's Fig. 3 pseudo-code.

Fig. 3 operates on a single-channel image; the transcription below keeps
its exact loop structure and index arithmetic (lines numbered as in the
figure).  The vectorized production implementation must agree everywhere
the pseudo-code's reads are defined; at the bottom/right border the
pseudo-code reads uncomputed outputs ``O(2i+2, .)`` -- the production
code clamps there (documented behaviour), so the comparison excludes the
last input row/column.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.axc.htconv import FovealRegion, htconv_x2


def fig3_reference(image, kernel, foveal_mask):
    """Literal transcription of Fig. 3 (single channel).

    INPUT: low-resolution image I (H x W), filter kernel K (t x t).
    OUTPUT: high-resolution image O (2H x 2W).
    """
    height, width = image.shape                       # line 1
    t = kernel.shape[0]
    # line 3: initialize up and O to zero
    up = np.zeros((2 * height + t, 2 * width + t))
    out = np.zeros((2 * height, 2 * width))
    # line 4: copy I(i, j) to up(2i, 2j)
    for i in range(height):
        for j in range(width):
            up[2 * i, 2 * j] = image[i, j]
    for i in range(height):                           # line 5
        for j in range(width):                        # line 6
            if foveal_mask[i, j]:                     # line 7
                for u in range(t):                    # line 8
                    for v in range(t):                # line 9
                        out[2 * i, 2 * j] += (        # line 10
                            kernel[u, v] * up[2 * i + u, 2 * j + v]
                        )
                        out[2 * i + 1, 2 * j] += (    # line 11
                            kernel[u, v] * up[2 * i + 1 + u, 2 * j + v]
                        )
                        out[2 * i, 2 * j + 1] += (    # line 12
                            kernel[u, v] * up[2 * i + u, 2 * j + 1 + v]
                        )
                        out[2 * i + 1, 2 * j + 1] += (  # lines 13-14
                            kernel[u, v]
                            * up[2 * i + 1 + u, 2 * j + 1 + v]
                        )
            else:                                     # line 15
                for u in range(t):                    # line 16
                    for v in range(t):                # line 17
                        out[2 * i, 2 * j] += (        # line 18
                            kernel[u, v] * up[2 * i + u, 2 * j + v]
                        )
    # Lines 19-21 average already-computed even-even outputs; they need
    # the full even-even grid, so the reference applies them in a second
    # sweep (the hardware's line buffer achieves the same ordering).
    for i in range(height):
        for j in range(width):
            if not foveal_mask[i, j]:
                south = out[2 * i + 2, 2 * j] if i + 1 < height else None
                east = out[2 * i, 2 * j + 2] if j + 1 < width else None
                if south is not None:                 # line 19
                    out[2 * i + 1, 2 * j] = (
                        out[2 * i, 2 * j] + south
                    ) / 2
                if east is not None:                  # line 20
                    out[2 * i, 2 * j + 1] = (
                        out[2 * i, 2 * j] + east
                    ) / 2
                if south is not None and east is not None:  # line 21
                    out[2 * i + 1, 2 * j + 1] = (
                        out[2 * i, 2 * j]
                        + east
                        + south
                        + out[2 * i + 2, 2 * j + 2]
                    ) / 4
    return out


def _interior(h, w):
    """Output region where the pseudo-code's reads are all defined."""
    return slice(0, 2 * (h - 1)), slice(0, 2 * (w - 1))


class TestFig3Fidelity:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=8),
        st.integers(min_value=4, max_value=8),
        st.sampled_from([3, 5]),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_matches_literal_pseudocode(self, h, w, t, seed):
        rng = np.random.default_rng(seed)
        image = rng.uniform(0, 1, (h, w))
        kernel = rng.normal(0, 1, (t, t))
        fovea = FovealRegion(
            center=(rng.uniform(0, h), rng.uniform(0, w)),
            radius=rng.uniform(0, max(h, w)),
        )
        mask = fovea.mask(h, w)
        reference = fig3_reference(image, kernel, mask)
        production = htconv_x2(
            image[None, :, :], kernel[None, :, :], fovea
        )
        rows, cols = _interior(h, w)
        assert np.allclose(production[rows, cols], reference[rows, cols])

    def test_full_fovea_matches_everywhere(self):
        # With a full fovea no interpolation happens, so even the border
        # agrees exactly.
        rng = np.random.default_rng(0)
        image = rng.uniform(0, 1, (6, 7))
        kernel = rng.normal(0, 1, (3, 3))
        mask = np.ones((6, 7), dtype=bool)
        reference = fig3_reference(image, kernel, mask)
        production = htconv_x2(
            image[None, :, :], kernel[None, :, :],
            FovealRegion.everything(),
        )
        assert np.allclose(production, reference)

    def test_empty_fovea_interior_matches(self):
        rng = np.random.default_rng(1)
        image = rng.uniform(0, 1, (8, 8))
        kernel = rng.normal(0, 1, (5, 5))
        mask = np.zeros((8, 8), dtype=bool)
        reference = fig3_reference(image, kernel, mask)
        production = htconv_x2(
            image[None, :, :], kernel[None, :, :], FovealRegion.nothing()
        )
        rows, cols = _interior(8, 8)
        assert np.allclose(production[rows, cols], reference[rows, cols])
