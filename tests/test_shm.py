"""Tests for the zero-copy shared-memory transport.

The transport's contract has three legs: descriptors round-trip any
shippable ndarray bit-exactly (property-tested), the owning arena never
leaks a segment -- not even when a worker is SIGKILLed mid-chunk -- and
:class:`~repro.exec.parallel.ParallelEvaluator` results are
byte-identical whether payloads ride pickle or shared memory (with the
thread/serial backends bypassing the transport entirely).
"""

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import StateError, ValidationError
from repro.exec import ParallelEvaluator, ResultCache
from repro.exec.shm import (
    DEFAULT_THRESHOLD_BYTES,
    ShmArena,
    ShmDescriptor,
    ShmFunction,
    array_digest,
    decode_payload,
    detach_all,
    payload_bytes,
)


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name.lstrip('/')}")


def _sum_payload(task):
    """Module-level map target: reduce the shipped array (picklable)."""
    return float(task["payload"].sum())


def _crash_once_then_sum(task):
    """Kill the worker process on first sight of the sentinel file, then
    behave; models an environmental death with shm leases in flight."""
    if not os.path.exists(task["sentinel"]):
        with open(task["sentinel"], "w", encoding="utf-8"):
            pass
        os._exit(13)
    return float(task["payload"].sum())


_DTYPES = st.sampled_from(
    [np.uint8, np.int32, np.int64, np.float32, np.float64]
)


class TestDescriptorRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        dtype=_DTYPES,
        shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=8),
    )
    def test_register_pickle_attach_is_bit_exact(self, data, dtype, shape):
        arr = data.draw(hnp.arrays(dtype=dtype, shape=shape))
        if arr.nbytes == 0:
            return
        with ShmArena(cache_segments=0) as arena:
            descriptor = arena.register(arr)
            try:
                # The wire hop is pickle of the descriptor, never the data.
                wire = pickle.loads(pickle.dumps(descriptor))
                assert isinstance(wire, ShmDescriptor)
                view = wire.attach()
                assert view.dtype == arr.dtype
                assert view.shape == arr.shape
                assert np.array_equal(view, arr, equal_nan=True)
                assert not view.flags.writeable
            finally:
                detach_all()
                arena.release(descriptor.digest)

    def test_attach_is_zero_copy(self):
        arr = np.arange(64, dtype=np.float64)
        with ShmArena() as arena:
            descriptor = arena.register(arr)
            first = descriptor.attach()
            second = descriptor.attach()
            # Same memoized mapping, not a fresh copy per attach.
            assert first.base is second.base or (
                first.__array_interface__["data"][0]
                == second.__array_interface__["data"][0]
            )
            detach_all()
            arena.release(descriptor.digest)


class TestShmArena:
    def test_content_addressing_dedups_equal_payloads(self):
        arr = np.arange(256, dtype=np.int64)
        clone = arr.copy()  # equal bytes, different object
        with ShmArena() as arena:
            d1 = arena.register(arr)
            d2 = arena.register(clone)
            assert d1 == d2
            stats = arena.stats()
            assert stats["segments_created"] == 1
            assert stats["segments_reused"] == 1
            assert array_digest(arr) == d1.digest
            arena.release_all([d1.digest, d2.digest])

    def test_release_parks_idle_segment_for_reuse(self):
        arr = np.arange(128, dtype=np.float64)
        with ShmArena(cache_segments=2) as arena:
            descriptor = arena.register(arr)
            name = descriptor.name
            arena.release(descriptor.digest)
            assert arena.active_digests() == []
            # Parked, not unlinked: the segment file is still there...
            assert name in arena.active_segment_names()
            assert _segment_exists(name)
            # ...so re-registering the same content skips the copy-in.
            again = arena.register(arr)
            assert again.name == name
            assert arena.stats()["segments_reused"] == 1
            arena.release(again.digest)
        assert not _segment_exists(name)

    def test_zero_cache_unlinks_at_last_release(self):
        arr = np.arange(128, dtype=np.float64)
        arena = ShmArena(cache_segments=0)
        descriptor = arena.register(arr)
        name = descriptor.name
        assert _segment_exists(name)
        arena.release(descriptor.digest)
        assert not _segment_exists(name)
        assert arena.stats()["segments_unlinked"] == 1
        arena.close()

    def test_refcount_outlives_intermediate_release(self):
        arr = np.arange(512, dtype=np.int32)
        with ShmArena(cache_segments=0) as arena:
            d1 = arena.register(arr)
            d2 = arena.register(arr)
            arena.release(d1.digest)
            assert _segment_exists(d1.name)  # second lease still holds
            arena.release(d2.digest)
            assert not _segment_exists(d1.name)

    def test_digest_memo_hits_on_same_object(self):
        arr = np.arange(1024, dtype=np.float64)
        with ShmArena() as arena:
            d1 = arena.register(arr)
            d2 = arena.register(arr)
            assert arena.stats()["digest_memo_hits"] >= 1
            arena.release_all([d1.digest, d2.digest])

    def test_rejects_non_shippable_payloads(self):
        with ShmArena() as arena:
            with pytest.raises(ValidationError):
                arena.register([1, 2, 3])
            with pytest.raises(ValidationError):
                arena.register(np.empty(0))
            with pytest.raises(ValidationError):
                arena.register(np.array([object()]))

    def test_closed_arena_rejects_registration(self):
        arena = ShmArena()
        arena.close()
        arena.close()  # idempotent
        with pytest.raises(StateError):
            arena.register(np.arange(8, dtype=np.int64))

    def test_close_unlinks_everything_even_leased(self):
        arr = np.arange(4096, dtype=np.float64)
        arena = ShmArena()
        descriptor = arena.register(arr)
        name = descriptor.name
        arena.close()
        assert not _segment_exists(name)


class TestEncodeDecode:
    def test_nested_payload_round_trip(self):
        big = np.arange(4096, dtype=np.float64)
        small = np.arange(4, dtype=np.float64)
        task = {"big": big, "small": small, "label": "cell",
                "nest": [{"also_big": big}, (1, 2)]}
        with ShmArena() as arena:
            encoded, leases = arena.encode(task, threshold=1024)
            assert isinstance(encoded["big"], ShmDescriptor)
            assert encoded["small"] is small  # below threshold: untouched
            assert isinstance(encoded["nest"][0]["also_big"], ShmDescriptor)
            # One content digest leased twice (big appears twice).
            assert len(leases) == 2
            assert len(set(leases)) == 1
            decoded = decode_payload(encoded)
            assert np.array_equal(decoded["big"], big)
            assert np.array_equal(decoded["nest"][0]["also_big"], big)
            assert decoded["small"] is small
            assert decoded["label"] == "cell"
            detach_all()
            arena.release_all(leases)

    def test_encode_without_large_arrays_is_identity(self):
        task = {"x": np.arange(4, dtype=np.int64), "y": 7}
        with ShmArena() as arena:
            encoded, leases = arena.encode(task, threshold=1 << 20)
            assert encoded is task
            assert leases == []

    def test_payload_bytes_counts_only_shippable(self):
        big = np.zeros(2048, dtype=np.float64)
        task = {"a": big, "b": np.zeros(2, dtype=np.float64), "c": "x",
                "d": [big]}
        threshold = 1024
        assert payload_bytes(task, threshold) == 2 * big.nbytes
        assert payload_bytes({"only": "strings"}, threshold) == 0

    def test_shm_function_decodes_before_call(self):
        arr = np.arange(2048, dtype=np.float64)
        with ShmArena() as arena:
            encoded, leases = arena.encode({"payload": arr}, threshold=1024)
            wrapped = pickle.loads(pickle.dumps(ShmFunction(_sum_payload)))
            assert wrapped(encoded) == float(arr.sum())
            detach_all()
            arena.release_all(leases)


class TestEvaluatorTransport:
    def _payload_tasks(self, count=6, words=1 << 18):
        payload = np.random.default_rng(7).standard_normal(words)
        return [
            {"payload": payload, "sentinel": "", "cell": i}
            for i in range(count)
        ]

    def test_shm_results_byte_identical_to_pickle_and_serial(self):
        tasks = self._payload_tasks()
        serial = [_sum_payload(task) for task in tasks]
        shm_engine = ParallelEvaluator(
            max_workers=2, mode="process", transport="shm",
            shm_threshold_bytes=1 << 10,
        )
        pickle_engine = ParallelEvaluator(
            max_workers=2, mode="process", transport="pickle",
        )
        try:
            assert shm_engine.map(_sum_payload, tasks) == serial
            assert pickle_engine.map(_sum_payload, tasks) == serial
            assert shm_engine.last_transport == "shm"
            assert shm_engine.shm_maps == 1
            assert shm_engine.shm_tasks == len(tasks)
            assert pickle_engine.last_transport == "pickle"
            # Leases drained: nothing left leased after the map.
            assert shm_engine.arena.active_digests() == []
        finally:
            shm_engine.arena.close()

    def test_auto_threshold_switches_transport(self):
        small = [{"payload": np.arange(8, dtype=np.float64),
                  "sentinel": "", "cell": i} for i in range(4)]
        engine = ParallelEvaluator(
            max_workers=2, mode="process", transport="auto",
            shm_threshold_bytes=1 << 12,
        )
        engine.map(_sum_payload, small)
        assert engine.last_transport == "pickle"
        assert engine.shm_maps == 0
        large = self._payload_tasks(count=4, words=1 << 12)
        try:
            engine.map(_sum_payload, large)
            assert engine.last_transport == "shm"
            assert engine.shm_maps == 1
        finally:
            if engine._arena is not None:
                engine._arena.close()

    @pytest.mark.parametrize("mode", ["thread", "serial"])
    def test_thread_and_serial_modes_bypass_shm(self, mode):
        tasks = self._payload_tasks(count=3)
        engine = ParallelEvaluator(
            max_workers=1 if mode == "serial" else 2, mode=mode,
            transport="shm", shm_threshold_bytes=1,
        )
        assert engine.map(_sum_payload, tasks) == [
            _sum_payload(task) for task in tasks
        ]
        assert engine.last_transport == "pickle"
        assert engine.shm_maps == 0
        assert engine._arena is None  # never even built an arena

    def test_sigkill_mid_chunk_orphans_no_segments(self, tmp_path):
        """A worker killed with leases in flight must not leak: the
        parent owns every segment, crash recovery re-dispatches the
        encoded descriptors, and the final release drains the arena."""
        sentinel = str(tmp_path / "crash-once")
        payload = np.random.default_rng(11).standard_normal(1 << 14)
        tasks = [
            {"payload": payload, "sentinel": sentinel, "cell": i}
            for i in range(4)
        ]
        expected = [float(payload.sum())] * len(tasks)
        engine = ParallelEvaluator(
            max_workers=2, mode="process", transport="shm",
            shm_threshold_bytes=1 << 10, crash_retries=2,
        )
        try:
            assert engine.map(_crash_once_then_sum, tasks) == expected
            assert engine.worker_crashes >= 1
            assert engine.arena.active_digests() == []
            names = engine.arena.active_segment_names()
        finally:
            engine.arena.close()
        for name in names:  # idle-parked segments die with the arena
            assert not _segment_exists(name)


class TestResultCacheNdarrayMemo:
    def test_repeated_array_payload_hits_identity_memo(self):
        cache = ResultCache()
        payload = np.arange(1 << 12, dtype=np.float64)
        first = cache.digest(payload)
        second = cache.digest(payload)
        assert first == second
        assert cache.stats()["ndarray_memo_hits"] >= 1
        assert cache.stats()["digest_time_saved_s"] >= 0.0

    def test_equal_content_fresh_object_redigests_consistently(self):
        cache = ResultCache()
        a = np.arange(64, dtype=np.float64)
        b = a.copy()  # different id: memo miss, same canonical digest
        assert cache.digest(a) == cache.digest(b)
        assert cache.stats()["ndarray_memo_hits"] == 0

    def test_different_arrays_digest_differently(self):
        cache = ResultCache()
        a = np.arange(64, dtype=np.float64)
        b = np.arange(1, 65, dtype=np.float64)
        assert cache.digest(a) != cache.digest(b)
