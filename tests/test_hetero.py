"""Tests for the heterogeneous-platform pipeline (Fig. 5) package."""

import numpy as np
import pytest

from repro.core.metrics import dice_coefficient, relative_change
from repro.hetero.devices import (
    CPU_XEON,
    ComputeDevice,
    DeviceKind,
    FPGA_ALVEO,
    GPU_A100,
)
from repro.hetero.pipeline import simulate_inference, simulate_training
from repro.hetero.profiler import bottleneck_stage, io_share, profile, profile_table
from repro.hetero.storage import (
    NVME_SSD,
    PERSISTENT_MEMORY,
    SATA_SSD,
    StorageDevice,
    computational_storage,
)
from repro.hetero.workload import (
    SegmentationWorkload,
    ct_phantom,
    threshold_segmenter,
)


class TestDevices:
    def test_presets_sane(self):
        assert GPU_A100.train_flops > CPU_XEON.train_flops
        assert FPGA_ALVEO.power_w < GPU_A100.power_w

    def test_compute_time(self):
        assert GPU_A100.compute_time_s(
            GPU_A100.train_flops, training=True
        ) == pytest.approx(1.0)

    def test_fpga_training_rejected(self):
        with pytest.raises(ValueError):
            FPGA_ALVEO.compute_time_s(1e12, training=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeDevice("x", DeviceKind.CPU, 0, 1, 1, 1)
        with pytest.raises(ValueError):
            GPU_A100.compute_time_s(-1, training=False)
        with pytest.raises(ValueError):
            GPU_A100.transfer_time_s(-1)


class TestStorage:
    def test_tier_ordering(self):
        size = 1e9
        assert (
            PERSISTENT_MEMORY.read_time_s(size)
            < NVME_SSD.read_time_s(size)
            < SATA_SSD.read_time_s(size)
        )

    def test_computational_storage_reduces_data(self):
        comp = computational_storage(NVME_SSD, data_reduction=2.0)
        assert comp.read_time_s(1e9) < NVME_SSD.read_time_s(1e9)
        assert comp.is_computational
        assert not NVME_SSD.is_computational

    def test_access_latency_charged_per_request(self):
        t1 = SATA_SSD.read_time_s(1e6, accesses=1)
        t10 = SATA_SSD.read_time_s(1e6, accesses=10)
        assert t10 > t1

    def test_validation(self):
        with pytest.raises(ValueError):
            StorageDevice("x", bandwidth_bytes_s=0, access_latency_s=0)
        with pytest.raises(ValueError):
            StorageDevice("x", 1e9, 0, data_reduction=0.5)
        with pytest.raises(ValueError):
            SATA_SSD.read_time_s(-1)


class TestWorkload:
    def test_dataset_bytes(self):
        w = SegmentationWorkload(num_volumes=10)
        assert w.dataset_bytes == 10 * w.bytes_per_volume

    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentationWorkload(num_volumes=0)
        with pytest.raises(ValueError):
            SegmentationWorkload(bytes_per_volume=0)

    def test_phantom_shapes_and_range(self):
        volume, mask = ct_phantom(shape=(8, 24, 24), seed=0)
        assert volume.shape == (8, 24, 24)
        assert mask.shape == (8, 24, 24)
        assert 0.0 <= volume.min() and volume.max() <= 1.0
        assert mask.any()

    def test_phantom_deterministic(self):
        v1, m1 = ct_phantom(shape=(6, 16, 16), seed=3)
        v2, m2 = ct_phantom(shape=(6, 16, 16), seed=3)
        assert np.array_equal(v1, v2)
        assert np.array_equal(m1, m2)

    def test_threshold_segmenter_finds_lesions(self):
        volume, mask = ct_phantom(shape=(12, 32, 32), seed=1)
        predicted = threshold_segmenter(volume)
        assert dice_coefficient(predicted, mask) > 0.6

    def test_segmenter_validation(self):
        with pytest.raises(ValueError):
            threshold_segmenter(np.zeros((2, 2, 2)), threshold=1.5)


class TestPipeline:
    def test_training_scales_with_epochs(self):
        one = simulate_training(SegmentationWorkload(epochs=1))
        three = simulate_training(SegmentationWorkload(epochs=3))
        assert three.total_seconds == pytest.approx(3 * one.total_seconds)

    def test_gpu_much_faster_than_cpu(self):
        gpu = simulate_training(device=GPU_A100)
        cpu = simulate_training(device=CPU_XEON)
        assert cpu.total_seconds > 3 * gpu.total_seconds

    def test_overlap_never_slower(self):
        base = simulate_training(overlap_io=False)
        overlapped = simulate_training(overlap_io=True)
        assert overlapped.total_seconds <= base.total_seconds

    def test_stage_breakdown_covers_pipeline(self):
        result = simulate_training()
        assert set(result.stage_seconds) == {
            "storage_read", "preprocess", "transfer_in",
            "compute", "transfer_out", "postprocess",
        }

    def test_paper_claim_training_reduction_up_to_10_percent(self):
        # "We obtained a training time reduction of up to 10%."
        base = simulate_training(storage=SATA_SSD)
        best = min(
            simulate_training(storage=s).total_seconds
            for s in (NVME_SSD, PERSISTENT_MEMORY, computational_storage())
        )
        reduction = -relative_change(base.total_seconds, best)
        assert 0.05 <= reduction <= 0.15

    def test_paper_claim_inference_improvement_up_to_10_percent(self):
        # "...and inference throughput improvement of up to 10%."
        base = simulate_inference(storage=SATA_SSD)
        best = max(
            simulate_inference(storage=s).throughput_volumes_s
            for s in (NVME_SSD, PERSISTENT_MEMORY, computational_storage())
        )
        gain = relative_change(base.throughput_volumes_s, best)
        assert 0.05 <= gain <= 0.15

    def test_inference_faster_than_training(self):
        train = simulate_training(SegmentationWorkload(epochs=1))
        infer = simulate_inference()
        assert infer.total_seconds < train.total_seconds

    def test_energy_positive(self):
        assert simulate_training().energy_j > 0


class TestProfiler:
    def test_profile_sorted_and_normalized(self):
        result = simulate_training()
        profiles = profile(result)
        assert profiles == sorted(profiles, key=lambda p: -p.seconds)
        assert sum(p.share for p in profiles) == pytest.approx(1.0)

    def test_bottleneck_is_compute_or_io(self):
        result = simulate_training(storage=SATA_SSD)
        assert bottleneck_stage(result).stage in ("compute", "preprocess",
                                                  "storage_read")

    def test_io_share_decreases_with_better_storage(self):
        slow = io_share(simulate_training(storage=SATA_SSD))
        fast = io_share(simulate_training(storage=PERSISTENT_MEMORY))
        assert fast < slow

    def test_profile_table_renders(self):
        table = profile_table(simulate_training(), title="Fig. 5")
        text = table.render()
        assert "Fig. 5" in text and "compute" in text


class TestPipelineResultGuards:
    def test_zero_total_seconds_throughput(self):
        from repro.hetero.pipeline import PipelineResult

        result = PipelineResult(
            stage_seconds={}, total_seconds=0.0, energy_j=0.0,
            volumes_processed=10,
        )
        assert result.throughput_volumes_s == 0.0  # no ZeroDivisionError
        assert result.stage_share("compute") == 0.0


class TestErrorPaths:
    """The documented ValueError messages of the hetero models.

    All of them are now typed :class:`ValidationError`s (a ValueError
    subclass), so both the legacy and the structured contract hold.
    """

    @pytest.mark.parametrize(
        "trigger, message",
        [
            (lambda: ComputeDevice("x", DeviceKind.CPU, 0, 1, 1, 1),
             "throughput must be positive"),
            (lambda: ComputeDevice("x", DeviceKind.CPU, 1, 1, 0, 1),
             "bandwidth and power must be positive"),
            (lambda: ComputeDevice("x", DeviceKind.CPU, 1, 1, 1, 0),
             "bandwidth and power must be positive"),
            (lambda: GPU_A100.compute_time_s(-1, training=False),
             "flops must be non-negative"),
            (lambda: FPGA_ALVEO.compute_time_s(1e9, training=True),
             "does not support training"),
            (lambda: GPU_A100.transfer_time_s(-1),
             "bytes must be non-negative"),
        ],
        ids=["zero-throughput", "zero-bandwidth", "zero-power",
             "negative-flops", "fpga-training", "negative-bytes"],
    )
    def test_device_errors(self, trigger, message):
        with pytest.raises(ValueError, match=message):
            trigger()

    @pytest.mark.parametrize(
        "trigger, message",
        [
            (lambda: StorageDevice("x", 0, 0),
             "bandwidth must be positive"),
            (lambda: StorageDevice("x", 1, -1),
             "latency must be non-negative"),
            (lambda: StorageDevice("x", 1, 0, offload_fraction=1.5),
             r"offload fraction must be in \[0, 1\]"),
            (lambda: StorageDevice("x", 1, 0, data_reduction=0.5),
             "data reduction factor must be >= 1"),
            (lambda: SATA_SSD.read_time_s(-1),
             "invalid read parameters"),
            (lambda: SATA_SSD.read_time_s(1024, accesses=0),
             "invalid read parameters"),
        ],
        ids=["zero-bandwidth", "negative-latency", "bad-offload",
             "bad-reduction", "negative-bytes", "zero-accesses"],
    )
    def test_storage_errors(self, trigger, message):
        with pytest.raises(ValueError, match=message):
            trigger()

    @pytest.mark.parametrize(
        "trigger, message",
        [
            (lambda: SegmentationWorkload(num_volumes=0),
             "num_volumes and epochs must be >= 1"),
            (lambda: SegmentationWorkload(epochs=0),
             "num_volumes and epochs must be >= 1"),
            (lambda: SegmentationWorkload(bytes_per_volume=0),
             "per-volume costs must be positive"),
            (lambda: SegmentationWorkload(preprocess_cpu_s_per_volume=-1),
             "CPU stage times must be non-negative"),
            (lambda: ct_phantom(num_lesions=-1),
             "num_lesions must be non-negative"),
            (lambda: threshold_segmenter(np.zeros((2, 2, 2)), threshold=1.5),
             r"threshold must be in \(0, 1\)"),
        ],
        ids=["zero-volumes", "zero-epochs", "zero-bytes",
             "negative-preprocess", "negative-lesions", "bad-threshold"],
    )
    def test_workload_errors(self, trigger, message):
        with pytest.raises(ValueError, match=message):
            trigger()

    def test_errors_are_typed(self):
        from repro.core.errors import ValidationError

        with pytest.raises(ValidationError):
            StorageDevice("x", 0, 0)
        with pytest.raises(ValidationError):
            SegmentationWorkload(num_volumes=0)
        with pytest.raises(ValidationError):
            GPU_A100.transfer_time_s(-1)
