"""Tests for approximate attention (repro.axc.attention)."""

import numpy as np
import pytest

from repro.axc.attention import (
    attention_quality,
    multi_head_attention,
    scaled_dot_product_attention,
)


class TestExactAttention:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        out = scaled_dot_product_attention(
            rng.normal(size=(6, 8)), rng.normal(size=(10, 8)),
            rng.normal(size=(10, 4)),
        )
        assert out.shape == (6, 4)

    def test_uniform_scores_average_values(self):
        q = np.zeros((3, 4))
        k = np.zeros((5, 4))
        v = np.arange(10.0).reshape(5, 2)
        out = scaled_dot_product_attention(q, k, v)
        assert np.allclose(out, v.mean(axis=0))

    def test_peaked_scores_select_value(self):
        q = np.array([[10.0, 0.0]])
        k = np.array([[10.0, 0.0], [-10.0, 0.0]])
        v = np.array([[1.0], [2.0]])
        out = scaled_dot_product_attention(q, k, v)
        assert out[0, 0] == pytest.approx(1.0, abs=1e-4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            scaled_dot_product_attention(
                np.zeros((2, 3)), np.zeros((4, 5)), np.zeros((4, 2))
            )
        with pytest.raises(ValueError):
            scaled_dot_product_attention(
                np.zeros((2, 3)), np.zeros((4, 3)), np.zeros((5, 2))
            )
        with pytest.raises(ValueError):
            scaled_dot_product_attention(
                np.zeros(3), np.zeros((4, 3)), np.zeros((4, 2))
            )


class TestApproximateAttention:
    def test_close_to_exact(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(16, 8))
        k = rng.normal(size=(16, 8))
        v = rng.normal(size=(16, 8))
        exact = scaled_dot_product_attention(q, k, v)
        approx = scaled_dot_product_attention(q, k, v, approximate=True)
        rel = np.linalg.norm(exact - approx) / np.linalg.norm(exact)
        assert rel < 0.10

    def test_aggressive_worse_but_bounded(self):
        rng = np.random.default_rng(2)
        q = rng.normal(size=(16, 8))
        k = rng.normal(size=(16, 8))
        v = rng.normal(size=(16, 8))
        exact = scaled_dot_product_attention(q, k, v)
        moderate = scaled_dot_product_attention(
            q, k, v, approximate=True, fractional_correction=True
        )
        aggressive = scaled_dot_product_attention(
            q, k, v, approximate=True, fractional_correction=False
        )
        err_mod = np.linalg.norm(exact - moderate)
        err_agg = np.linalg.norm(exact - aggressive)
        assert err_mod <= err_agg
        assert err_agg / np.linalg.norm(exact) < 0.5


class TestMultiHead:
    def test_output_shape(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(12, 16))
        w = rng.normal(size=(16, 48))
        out = multi_head_attention(x, w, num_heads=4)
        assert out.shape == (12, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_head_attention(np.zeros((4, 8)), np.zeros((8, 16)), 2)
        with pytest.raises(ValueError):
            multi_head_attention(np.zeros((4, 8)), np.zeros((8, 24)), 3)
        with pytest.raises(ValueError):
            multi_head_attention(np.zeros(8), np.zeros((8, 24)), 2)

    def test_approximate_close_to_exact(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(20, 16))
        w = rng.normal(0, 0.25, size=(16, 48))
        exact = multi_head_attention(x, w, 4, approximate=False)
        approx = multi_head_attention(x, w, 4, approximate=True)
        rel = np.linalg.norm(exact - approx) / np.linalg.norm(exact)
        assert rel < 0.15


class TestQualityReport:
    def test_metrics_in_range(self):
        report = attention_quality(seq_len=48, d_model=32, num_heads=4,
                                   seed=0)
        assert 0 <= report["output_relative_error"] < 0.2
        assert report["top1_agreement"] > 0.9
        assert report["softmax_cost_saving"] > 0.8
