"""Tests for the compiled kernel tier (``impl="jit"``).

numba is a *soft* dependency: on installs without it the ``@njit`` shim
leaves the kernels as plain Python, so every equivalence test here runs
the genuine jit code path -- uncompiled -- against the scalar oracles.
The tier-switch plumbing (probe, fallback resolution, compile-time
accounting) is tested with the probe state pinned both ways.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import jit as jitmod
from repro.core.errors import SimulationTimeout
from repro.core.jit import njit, numba_available, resolve_impl, timed_first_call
from repro.dna.clustering import cluster_reads
from repro.dna.editdistance import CellUpdateCounter, levenshtein_banded
from repro.dna.jitkernels import banded_kernel
from repro.perf import get_profiler
from repro.sparta.accelerator import LaneConfig
from repro.sparta.jitsim import run_jit
from repro.sparta.kernels import bfs_tasks, random_graph, streaming_tasks
from repro.sparta.noc import NocConfig
from repro.sparta.simulator import SpartaSystem, simulate


@pytest.fixture
def numba_absent():
    """Pin the probe to 'numba is not installed' for one test."""
    original = (jitmod._NUMBA, jitmod._PROBED)
    jitmod._force_numba_state(None)
    yield
    jitmod._NUMBA, jitmod._PROBED = original


@pytest.fixture
def numba_present():
    """Pin the probe to 'some numba exists' (availability checks only --
    nothing may actually compile under this fixture)."""
    original = (jitmod._NUMBA, jitmod._PROBED)
    jitmod._force_numba_state(object())
    yield
    jitmod._NUMBA, jitmod._PROBED = original


class TestTierSwitch:
    def test_probe_is_stable(self):
        assert numba_available() == numba_available()

    def test_njit_degrades_to_identity(self, numba_absent):
        def plain(x):
            return x + 1

        assert njit(plain) is plain  # bare form
        assert njit(cache=True)(plain) is plain  # parameterized form

    def test_resolve_impl_passthrough(self):
        assert resolve_impl("scalar") == "scalar"
        assert resolve_impl("numpy") == "numpy"

    def test_resolve_impl_falls_back_and_counts(self, numba_absent):
        profiler = get_profiler()
        profiler.enable()
        profiler.reset()
        try:
            assert resolve_impl("jit") == "numpy"
            assert resolve_impl("jit", fallback="scalar") == "scalar"
            assert profiler.as_dict()["counters"]["jit.fallback"] == 2
        finally:
            profiler.disable()

    def test_resolve_impl_keeps_jit_when_available(self, numba_present):
        assert resolve_impl("jit") == "jit"

    def test_timed_first_call_charges_compile_timer(self):
        profiler = get_profiler()
        profiler.enable()
        profiler.reset()
        try:
            calls = []

            @timed_first_call("test-kernel")
            def kernel(x):
                calls.append(x)
                return x * 2

            assert kernel(3) == 6
            assert kernel(4) == 8
            timers = profiler.as_dict()["timers"]
            assert timers["jit.compile/test-kernel"]["calls"] == 1
            assert calls == [3, 4]
        finally:
            profiler.disable()


def _kernel_banded(a: str, b: str, band: int, counter: CellUpdateCounter):
    """The levenshtein_banded pre-steps around a direct kernel call --
    the path that exercises the jit code even on numba-free installs."""
    if abs(len(a) - len(b)) > band:
        return None
    if len(a) < len(b):
        a, b = b, a
    distance, cells = banded_kernel(
        np.frombuffer(a.encode("utf-8"), dtype=np.uint8),
        np.frombuffer(b.encode("utf-8"), dtype=np.uint8),
        band,
    )
    counter.charge(int(cells))
    return None if distance < 0 else int(distance)


_SEQ = st.text(alphabet="ACGT", min_size=0, max_size=48)


class TestBandedKernel:
    @settings(max_examples=150, deadline=None)
    @given(a=_SEQ, b=_SEQ, band=st.integers(min_value=0, max_value=10))
    def test_matches_scalar_oracle_exactly(self, a, b, band):
        scalar_counter = CellUpdateCounter()
        jit_counter = CellUpdateCounter()
        expected = levenshtein_banded(
            a, b, band=band, counter=scalar_counter, impl="scalar"
        )
        got = _kernel_banded(a, b, band, jit_counter)
        assert got == expected
        assert jit_counter.cells == scalar_counter.cells

    def test_public_jit_impl_matches_numpy(self):
        rng = np.random.default_rng(3)
        reads = [
            "".join("ACGT"[i] for i in rng.integers(0, 4, 120))
            for _ in range(12)
        ]
        for a in reads[:6]:
            for b in reads[6:]:
                assert levenshtein_banded(
                    a, b, band=16, impl="jit"
                ) == levenshtein_banded(a, b, band=16, impl="numpy")

    def test_clustering_accepts_jit_impl(self):
        reads = ["ACGTACGT", "ACGTACGA", "TTTTGGGG", "TTTTGGGC"]
        jit_result = cluster_reads(reads, distance_threshold=2, impl="jit")
        numpy_result = cluster_reads(reads, distance_threshold=2)
        assert jit_result.num_clusters == numpy_result.num_clusters == 2
        assert jit_result.comparisons == numpy_result.comparisons
        assert jit_result.cell_updates == numpy_result.cell_updates


def _fresh_system(**overrides):
    params = {
        "num_lanes": 2,
        "contexts": 2,
        "channels": 2,
        "latency": 60,
        "cache": True,
        "failed": None,
    }
    params.update(overrides)
    return SpartaSystem(
        num_lanes=params["num_lanes"],
        lane_config=LaneConfig(num_contexts=params["contexts"]),
        noc_config=NocConfig(
            num_channels=params["channels"],
            memory_latency=params["latency"],
            enable_cache=params["cache"],
        ),
        failed_lanes=params["failed"],
    )


def _stats_dict(system, region, now):
    return dataclasses.asdict(system._stats(region, now))


class TestSpartaJitEquivalence:
    def test_run_jit_matches_scalar_bit_exactly(self):
        region = bfs_tasks(random_graph(48, seed=3), seed=3)
        scalar = _fresh_system()
        expected = dataclasses.asdict(scalar.run(region, impl="scalar"))
        jit_system = _fresh_system()
        timed_out, now = run_jit(jit_system, region, 5_000_000)
        assert not timed_out
        assert _stats_dict(jit_system, region, now) == expected

    def test_reused_system_accumulates_identically(self):
        """Warm caches and lane counters must carry across regions the
        same way they do in the object-graph simulator."""
        regions = [
            bfs_tasks(random_graph(32, seed=s), seed=s) for s in (1, 2)
        ]
        scalar = _fresh_system()
        jit_system = _fresh_system()
        for region in regions:
            expected = dataclasses.asdict(scalar.run(region, impl="scalar"))
            timed_out, now = run_jit(jit_system, region, 5_000_000)
            assert not timed_out
            assert _stats_dict(jit_system, region, now) == expected

    def test_timeout_parity_with_scalar(self):
        region = streaming_tasks(num_tasks=12, elements_per_task=64)
        scalar = _fresh_system(latency=150)
        with pytest.raises(SimulationTimeout) as excinfo:
            scalar.run(region, max_cycles=40, impl="scalar")
        jit_system = _fresh_system(latency=150)
        timed_out, now = run_jit(jit_system, region, 40)
        assert timed_out
        assert now == excinfo.value.cycles
        assert _stats_dict(jit_system, region, now) == dataclasses.asdict(
            excinfo.value.partial_stats
        )

    def test_simulate_accepts_jit_impl(self):
        region = bfs_tasks(random_graph(40, seed=7), seed=7)
        expected = simulate(region, num_lanes=2, contexts_per_lane=2,
                            memory_latency=80, impl="scalar")
        got = simulate(region, num_lanes=2, contexts_per_lane=2,
                       memory_latency=80, impl="jit")
        assert dataclasses.asdict(got) == dataclasses.asdict(expected)

    def test_failed_lanes_survive_jit_tier(self):
        region = bfs_tasks(random_graph(40, seed=9), seed=9)
        expected = simulate(region, num_lanes=4, failed_lanes=[1, 2],
                            impl="scalar")
        got = simulate(region, num_lanes=4, failed_lanes=[1, 2],
                       impl="jit")
        assert dataclasses.asdict(got) == dataclasses.asdict(expected)

    def test_non_idle_system_degrades_instead_of_guessing(self):
        """A rerun after a timeout holds mid-flight context state the
        flattened kernel has no task mapping for; ``run(impl='jit')``
        must fall back to the object tiers and stay correct."""
        region = streaming_tasks(num_tasks=12, elements_per_task=64)
        reference = _fresh_system(latency=150)
        with pytest.raises(SimulationTimeout):
            reference.run(region, max_cycles=40, impl="scalar")
        reference_stats = dataclasses.asdict(reference.run(region))

        system = _fresh_system(latency=150)
        with pytest.raises(SimulationTimeout):
            system.run(region, max_cycles=40, impl="scalar")
        assert not all(lane.fully_idle for lane in system.lanes)
        resumed = dataclasses.asdict(system.run(region, impl="jit"))
        assert resumed == reference_stats


class TestWorkloadImplPlumbing:
    def test_sparta_workload_accepts_jit(self):
        from repro.sparta.workload import SpartaWorkload

        config = {"num_nodes": 48, "num_lanes": 2, "contexts_per_lane": 2}
        jit_result = SpartaWorkload().evaluate(config, seed=1, impl="jit")
        ref_result = SpartaWorkload().evaluate(config, seed=1,
                                               impl="scalar")
        assert jit_result.metrics["cycles"] == ref_result.metrics["cycles"]
        assert jit_result.status == "ok"

    def test_dna_workload_accepts_jit(self):
        from repro.dna.workload import DNAPipelineWorkload

        config = {"payload_bytes": 32, "rs_n": 63, "rs_k": 47,
                  "mean_coverage": 6.0}
        result = DNAPipelineWorkload().evaluate(config, seed=1, impl="jit")
        assert result.status == "ok"
        assert result.metrics["payload_match"] is True
