"""Tests for the :mod:`repro.obs` observability spine.

The load-bearing guarantees: trace identity is *deterministic* (the
same request stream yields byte-identical canonical traces whether it
runs serially or across a process pool), the disabled path records
nothing, and every surface that summarizes a latency distribution goes
through the one shared percentile implementation in
:mod:`repro.obs.stats`.
"""

import json

import pytest

from repro import obs
from repro.core.errors import SimulationTimeout, ValidationError
from repro.exec import ParallelEvaluator
from repro.obs.ledger import get_ledger
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    render_summary,
    render_trace,
    select_trace,
    summarize_spans,
)
from repro.obs.stats import bucket_percentile, percentile, summary
from repro.obs.trace import (
    Tracer,
    canonical_spans,
    derive_span_id,
    derive_trace_id,
    get_tracer,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with the spine off and empty."""
    obs.disable()
    get_tracer().reset()
    get_ledger().reset()
    obs.get_metrics().reset()
    yield
    obs.disable()
    get_tracer().reset()
    get_ledger().reset()
    obs.get_metrics().reset()


# ------------------------------------------------------------ identities


class TestIdentity:
    def test_trace_ids_deterministic(self):
        assert derive_trace_id("digest", 0) == derive_trace_id("digest", 0)
        assert derive_trace_id("digest", 0) != derive_trace_id("digest", 1)
        assert derive_trace_id("digest", 0) != derive_trace_id("other", 0)
        assert len(derive_trace_id("digest", 0)) == 16

    def test_span_ids_deterministic(self):
        a = derive_span_id("t", "p", "work", 0)
        assert a == derive_span_id("t", "p", "work", 0)
        assert a != derive_span_id("t", "p", "work", 1)
        assert a != derive_span_id("t", "p", "other", 0)
        assert len(a) == 16


# ------------------------------------------------------------ shared stats


class TestStats:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_percentile_edge_cases(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValidationError):
            percentile([1.0], 101)

    def test_summary_shape(self):
        stats = summary([1.0, 3.0])
        assert stats["count"] == 2
        assert stats["mean"] == 2.0
        assert stats["max"] == 3.0
        assert stats["p50"] == 2.0
        assert summary([]) == {
            "count": 0, "mean": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_bucket_percentile_interpolates_within_bucket(self):
        bounds = (1.0, 2.0, 4.0)
        counts = [0, 4, 0, 0]  # all mass in (1, 2]
        assert bucket_percentile(bounds, counts, 0) == pytest.approx(1.0)
        assert bucket_percentile(bounds, counts, 100) == pytest.approx(2.0)
        assert bucket_percentile(bounds, counts, 50) == pytest.approx(1.5)

    def test_bucket_percentile_overflow_and_empty(self):
        bounds = (1.0, 2.0)
        assert bucket_percentile(bounds, [0, 0, 3], 99) == 2.0
        assert bucket_percentile(bounds, [0, 0, 0], 50) == 0.0
        with pytest.raises(ValidationError):
            bucket_percentile(bounds, [1, 2], 50)

    def test_serve_metrics_use_the_shared_percentile(self):
        """Regression: one percentile implementation, not three."""
        from repro.obs import stats
        from repro.serve import metrics as serve_metrics
        from repro.serve import percentile as serve_percentile

        assert serve_percentile is stats.percentile
        assert serve_metrics._summary is stats.summary

    def test_serve_snapshot_matches_shared_summary(self):
        from repro.serve.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        samples = [0.010, 0.020, 0.030, 0.090]
        for latency in samples:
            metrics.record_done(latency_s=latency, queue_wait_s=0.0,
                                ok=True)
        snap = metrics.snapshot()
        assert snap["latency_s"] == summary(samples)


# ---------------------------------------------------------------- tracer


class TestTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer()
        assert tracer.start_span("work", trace_id="t") is None
        with tracer.span("work") as span:
            assert span is None
        assert tracer.spans() == []

    def test_no_context_means_no_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("floating") as span:
            assert span is None
        assert tracer.spans() == []

    def test_nesting_and_deterministic_ids(self):
        def build():
            tracer = Tracer(enabled=True)
            tid = derive_trace_id("digest", 0)
            root = tracer.start_span("request", trace_id=tid,
                                     parent_id="")
            with tracer.activate(root.context):
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        pass
                with tracer.span("outer"):
                    pass
            tracer.end_span(root)
            return tracer

        first, second = build(), build()
        assert first.canonical_json() == second.canonical_json()
        spans = {s["name"]: s for s in first.spans()}
        outers = sorted(
            (s for s in first.spans() if s["name"] == "outer"),
            key=lambda s: s["order"],
        )
        assert spans["inner"]["parent_id"] == outers[0]["span_id"]
        assert all(
            s["parent_id"] == spans["request"]["span_id"] for s in outers
        )
        # The two "outer" siblings differ by order, hence by id.
        assert len({s["span_id"] for s in outers}) == 2
        assert [s["order"] for s in outers] == [0, 1]

    def test_span_marks_error_status_on_exception(self):
        tracer = Tracer(enabled=True)
        root = tracer.start_span("r", trace_id="t", parent_id="")
        with tracer.activate(root.context):
            with pytest.raises(RuntimeError):
                with tracer.span("broken"):
                    raise RuntimeError("boom")
        record = tracer.spans()[0]
        assert record["name"] == "broken"
        assert record["status"] == "error"

    def test_sink_captures_instead_of_global_list(self):
        tracer = Tracer(enabled=True)
        root = tracer.start_span("r", trace_id="t", parent_id="")
        captured = []
        with tracer.activate(root.context, sink=captured):
            with tracer.span("shipped"):
                pass
        assert [s["name"] for s in captured] == ["shipped"]
        assert tracer.spans() == []

    def test_max_spans_drops_and_counts(self):
        tracer = Tracer(enabled=True, max_spans=2)
        root = tracer.start_span("r", trace_id="t", parent_id="")
        with tracer.activate(root.context):
            for _ in range(4):
                with tracer.span("w"):
                    pass
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 2

    def test_canonical_spans_strip_volatile_fields(self):
        tracer = Tracer(enabled=True)
        root = tracer.start_span(
            "r", trace_id="t", parent_id="",
            volatile={"batch_size": 3},
        )
        tracer.end_span(root)
        (record,) = canonical_spans(tracer.spans())
        assert "start_s" not in record
        assert "duration_s" not in record
        assert "volatile" not in record
        assert record["name"] == "r"

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        root = tracer.start_span("r", trace_id="t", parent_id="")
        tracer.end_span(root)
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 1
        assert obs.load_trace_jsonl(path) == tracer.spans()

    def test_chrome_trace_shape(self):
        tracer = Tracer(enabled=True)
        root = tracer.start_span("r", trace_id="t", parent_id="",
                                 start_s=1.0)
        tracer.end_span(root, end_s=1.5)
        doc = tracer.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        meta, event = doc["traceEvents"]
        assert meta["ph"] == "M"
        assert event["ph"] == "X"
        assert event["name"] == "r"
        assert event["dur"] == pytest.approx(0.5e6)


# ---------------------------------------------------------------- ledger


class TestLedger:
    def test_disabled_records_nothing(self):
        ledger = get_ledger()
        assert ledger.event("run.started") is None
        assert ledger.events() == []

    def test_trace_id_comes_from_active_context(self):
        tracer = obs.enable_tracing()
        ledger = obs.enable_ledger()
        tid = derive_trace_id("digest", 0)
        root = tracer.start_span("r", trace_id=tid, parent_id="")
        with tracer.activate(root.context):
            ledger.event("cache.hit")
        ledger.event("run.finished")
        hit, finished = ledger.events()
        assert hit["trace_id"] == tid
        assert finished["trace_id"] == ""

    def test_capture_and_extend_round_trip(self):
        ledger = obs.enable_ledger()
        buffer = []
        with ledger.capture(buffer):
            ledger.event("fault.injected", component="ssd")
        assert ledger.events() == []
        ledger.extend(buffer)
        (record,) = ledger.events()
        assert record["event"] == "fault.injected"
        assert record["component"] == "ssd"
        assert record["seq"] == 0

    def test_extend_forwards_through_outer_capture(self):
        ledger = obs.enable_ledger()
        outer, inner = [], []
        with ledger.capture(inner):
            ledger.event("retry", attempt=1)
        with ledger.capture(outer):
            ledger.extend(inner)
        assert [r["event"] for r in outer] == ["retry"]
        assert ledger.events() == []

    def test_canonical_json_groups_and_strips_volatile(self):
        ledger = obs.enable_ledger()
        ledger.event("b.event", trace_id="t2", delay_s=0.5)
        ledger.event("a.event", trace_id="t1")
        grouped = json.loads(ledger.canonical_json())
        assert [g["trace_id"] for g in grouped] == ["t1", "t2"]
        (b_event,) = grouped[1]["events"]
        assert b_event["event"] == "b.event"
        assert "ts" not in b_event
        assert "delay_s" not in b_event


# --------------------------------------------------------------- metrics


class TestMetrics:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("requests", 2)
        registry.inc("requests")
        assert registry.snapshot()["counters"]["requests"] == 3.0
        with pytest.raises(ValidationError):
            registry.counter("requests").inc(-1)

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry()
        registry.inc("requests")
        registry.set_gauge("depth", 4)
        registry.observe("latency", 0.1)
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_histogram_percentiles_from_buckets(self):
        hist = Histogram("latency", bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.002, 0.003, 0.05):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 0.0005
        assert snap["max"] == 0.05
        assert snap["counts"] == [1, 2, 1, 0]
        assert 0.001 <= snap["p50"] <= 0.01

    def test_histogram_merge_is_count_addition(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.5):
            a.observe(value)
        for value in (1.7, 5.0):
            b.observe(value)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counts"] == [1, 2, 1]
        assert snap["count"] == 4
        assert snap["min"] == 0.5
        assert snap["max"] == 5.0

    def test_histogram_merge_rejects_different_bounds(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 4.0))
        with pytest.raises(ValidationError):
            a.merge(b.snapshot())
        with pytest.raises(ValidationError):
            Histogram("bad", bounds=(2.0, 1.0))

    def test_merge_snapshot_folds_worker_metrics(self):
        worker = MetricsRegistry(enabled=True)
        worker.inc("cache.hits", 3)
        worker.set_gauge("depth", 7)
        worker.observe("latency", 0.02)
        parent = MetricsRegistry(enabled=True)
        parent.inc("cache.hits", 1)
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["cache.hits"] == 4.0
        assert snap["gauges"]["depth"] == 7.0
        assert snap["histograms"]["latency"]["count"] == 1

    def test_absorb_profiler_and_cache(self):
        from repro.exec import ResultCache
        from repro.perf import Profiler

        profiler = Profiler("absorb-test", enabled=True)
        with profiler.timer("kernel"):
            pass
        profiler.count("cells", 5)
        cache = ResultCache()
        cache.get("missing")
        registry = MetricsRegistry(enabled=True)
        registry.absorb_profiler(profiler)
        registry.absorb_cache(cache)
        counters = registry.snapshot()["counters"]
        assert counters["perf.kernel.calls"] == 1.0
        assert counters["perf.cells"] == 5.0
        assert counters["cache.misses"] == 1.0

    def test_to_json_is_sorted_and_parseable(self):
        registry = MetricsRegistry(enabled=True)
        registry.observe("latency", 0.5)
        snap = json.loads(registry.to_json())
        assert list(snap["histograms"]["latency"]["bounds"]) == list(
            DEFAULT_BOUNDS
        )


# ------------------------------------------------- context propagation


def _span_task(x):
    """Module-level (picklable) task that opens a span per call."""
    with get_tracer().span("inner", attributes={"x": x}):
        return x * x


def _run_exec_traced(workers):
    """Map :func:`_span_task` under a root span; returns the results
    plus the canonical trace."""
    tracer = obs.enable_tracing()
    tracer.reset()
    get_ledger().reset()
    tid = derive_trace_id("exec-test", 0)
    root = tracer.start_span("driver", trace_id=tid, parent_id="")
    with tracer.activate(root.context):
        engine = ParallelEvaluator(max_workers=workers)
        results = engine.map(_span_task, list(range(6)))
    tracer.end_span(root)
    return results, tracer.canonical_json(), tracer.spans()


class TestContextPropagation:
    def test_worker_spans_parent_under_task_spans(self):
        _, _, spans = _run_exec_traced(workers=1)
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["exec.task"]) == 6
        assert len(by_name["inner"]) == 6
        (root,) = by_name["driver"]
        # The engine's own profiled "exec.map" timer bridges to a span
        # under the driver; the per-task spans nest below it.
        (map_span,) = by_name["exec.map"]
        assert map_span["parent_id"] == root["span_id"]
        task_ids = {s["span_id"] for s in by_name["exec.task"]}
        assert all(
            s["parent_id"] == map_span["span_id"]
            for s in by_name["exec.task"]
        )
        assert all(s["parent_id"] in task_ids for s in by_name["inner"])
        # Task order is the original task index, so the tree is stable.
        assert sorted(s["order"] for s in by_name["exec.task"]) == list(
            range(6)
        )

    def test_process_pool_trace_is_byte_identical_to_serial(self):
        serial_results, serial_trace, _ = _run_exec_traced(workers=1)
        pool_results, pool_trace, _ = _run_exec_traced(workers=4)
        assert pool_results == serial_results == [
            x * x for x in range(6)
        ]
        assert pool_trace == serial_trace

    def test_untraced_map_returns_plain_results(self):
        engine = ParallelEvaluator(max_workers=1)
        assert engine.map(_span_task, [2, 3]) == [4, 9]
        assert get_tracer().spans() == []


# ------------------------------------------------------- serve tracing


def _serve_traced(workers, *, seeds=(0, 1, 2)):
    """Serve a small imc-crossbar stream with full observability on."""
    from repro.serve import EvalRequest, serve_requests

    tracer = obs.enable_tracing()
    obs.enable_ledger()
    tracer.reset()
    get_ledger().reset()
    requests = [
        EvalRequest(
            workload="imc-crossbar",
            config={"rows": 16, "cols": 16, "num_inputs": 2},
            seed=seed,
        )
        for seed in seeds
    ]
    parallel = (
        ParallelEvaluator(max_workers=workers) if workers > 1 else None
    )
    results, _ = serve_requests(requests, batch_size=4, parallel=parallel)
    return (
        requests,
        results,
        tracer.canonical_json(),
        get_ledger().canonical_json(),
        tracer.spans(),
    )


class TestServeTracing:
    def test_request_trace_has_the_full_hierarchy(self):
        requests, results, _, _, spans = _serve_traced(workers=1)
        trace_ids = {s["trace_id"] for s in spans}
        assert len(trace_ids) == len(requests)
        for request, result in zip(requests, results):
            per_trace = [
                s for s in spans if s["trace_id"] == result.trace_id
            ]
            by_name = {}
            for span in per_trace:
                by_name.setdefault(span["name"], []).append(span)
            (root,) = by_name["request"]
            assert root["parent_id"] == ""
            assert root["attributes"]["digest"] == request.digest
            (wait,) = by_name["queue.wait"]
            (batch,) = by_name["batch"]
            assert wait["parent_id"] == root["span_id"]
            assert batch["parent_id"] == root["span_id"]
            (worker,) = by_name["worker"]
            assert worker["parent_id"] == batch["span_id"]
            kernel_spans = by_name["imc.mvm"]
            assert kernel_spans
            assert all(
                s["parent_id"] == worker["span_id"] for s in kernel_spans
            )

    def test_serial_and_process_pool_traces_byte_identical(self):
        _, serial_results, serial_trace, serial_ledger, _ = _serve_traced(
            workers=1
        )
        _, pool_results, pool_trace, pool_ledger, _ = _serve_traced(
            workers=4
        )
        assert serial_trace == pool_trace
        assert serial_ledger == pool_ledger
        assert [r.canonical_json() for r in serial_results] == [
            r.canonical_json() for r in pool_results
        ]

    def test_rerun_reproduces_trace_ids(self):
        _, first_results, first_trace, _, _ = _serve_traced(workers=1)
        _, second_results, second_trace, _, _ = _serve_traced(workers=1)
        assert first_trace == second_trace
        assert [r.trace_id for r in first_results] == [
            r.trace_id for r in second_results
        ]

    def test_duplicate_requests_share_evaluation_not_trace(self):
        _, results, _, _, spans = _serve_traced(workers=1, seeds=(5, 5))
        assert len({r.trace_id for r in results}) == 2
        # Only one worker evaluation happened; the second trace records
        # a dedup event instead of worker spans.
        workers = [s for s in spans if s["name"] == "worker"]
        assert len(workers) == 1
        events = get_ledger().events()
        deduped = [
            e for e in events if e["event"] == "evaluation.deduped"
        ]
        assert len(deduped) == 1
        assert deduped[0]["source_trace"] == workers[0]["trace_id"]

    def test_tracing_off_serves_identically(self):
        from repro.serve import EvalRequest, serve_requests

        request = EvalRequest(
            workload="imc-crossbar",
            config={"rows": 16, "cols": 16, "num_inputs": 2},
            seed=3,
        )
        results, _ = serve_requests([request])
        assert results[0].ok
        assert results[0].trace_id is None
        assert get_tracer().spans() == []


class _ObsBrokenWorkload:
    name = "test-obs-broken"

    def space(self):
        return {"x": (1,)}

    def evaluate(self, config, *, seed=0, impl=None):
        raise RuntimeError("obs test explosion")


class TestErrorPathTraceIds:
    def test_error_result_carries_trace_id(self):
        from repro.core.api import register_workload
        from repro.serve import EvaluationService

        register_workload(_ObsBrokenWorkload(), replace=True)
        obs.enable_tracing()
        obs.enable_ledger()
        get_tracer().reset()
        get_ledger().reset()
        with EvaluationService(batch_wait_s=0.001) as service:
            result = service.evaluate("test-obs-broken")
        assert result.status == "error"
        assert result.trace_id in get_tracer().trace_ids()
        root = [
            s
            for s in get_tracer().spans(result.trace_id)
            if s["name"] == "request"
        ][0]
        assert root["status"] == "error"
        events = {
            e["event"]: e
            for e in get_ledger().events(result.trace_id)
        }
        assert events["request.error"]["error_type"] == "RuntimeError"
        assert events["request.done"]["status"] == "error"

    def test_trace_id_excluded_from_canonical_result(self):
        from repro.core.api import VOLATILE_FIELDS, build_run_result

        assert "trace_id" in VOLATILE_FIELDS
        traced = build_run_result(
            "w", {"m": 1}, config={}, seed=0, trace_id="abc"
        )
        plain = build_run_result("w", {"m": 1}, config={}, seed=0)
        assert traced.canonical_json() == plain.canonical_json()

    def test_simulation_timeout_picks_up_active_trace(self):
        tracer = obs.enable_tracing()
        tid = derive_trace_id("timeout-test", 0)
        root = tracer.start_span("r", trace_id=tid, parent_id="")
        with tracer.activate(root.context):
            exc = SimulationTimeout("too slow")
        assert exc.trace_id == tid

    def test_simulation_timeout_without_trace_has_none(self):
        assert SimulationTimeout("too slow").trace_id is None
        assert SimulationTimeout(
            "too slow", trace_id="explicit"
        ).trace_id == "explicit"


# ---------------------------------------------------------- resilience


class TestResilienceLedger:
    def test_retries_and_exhaustion_logged(self):
        from repro.core.errors import TransientFault
        from repro.resilience import BackoffPolicy, resilient_run

        obs.enable_ledger()
        get_ledger().reset()
        policy = BackoffPolicy(
            max_attempts=2, base_delay_s=0.0, jitter=0.0
        )

        def always_fails():
            raise TransientFault("flaky")

        with pytest.raises(TransientFault):
            resilient_run(
                always_fails, policy=policy, retry_on=(TransientFault,)
            )
        names = [e["event"] for e in get_ledger().events()]
        assert names == ["retry", "retries.exhausted"]

    def test_fault_injection_logged(self):
        from repro.resilience.faults import FaultyStorage

        class _Tier:
            name = "ssd"

            def read_time_s(self, num_bytes, accesses=1):
                return 0.0

        obs.enable_ledger()
        get_ledger().reset()
        from repro.core.errors import TransientFault

        storage = FaultyStorage(_Tier(), rate=1.0, rng=0)
        with pytest.raises(TransientFault):
            storage.read_time_s(1024)
        (event,) = get_ledger().events()
        assert event["event"] == "fault.injected"
        assert event["component"] == "ssd"


# ------------------------------------------------------------- reports


def _sample_spans():
    tracer = Tracer(enabled=True)
    tid = derive_trace_id("report-test", 0)
    root = tracer.start_span(
        "request", trace_id=tid, parent_id="", start_s=1.0,
        attributes={"workload": "hls"},
    )
    with tracer.activate(root.context):
        child = tracer.start_span("batch", start_s=1.1)
        tracer.end_span(child, end_s=1.2, status="error")
    tracer.end_span(root, end_s=1.5)
    return tid, tracer.spans()


class TestReports:
    def test_render_trace_indents_children(self):
        _, spans = _sample_spans()
        text = render_trace(spans)
        lines = text.splitlines()
        assert lines[0].startswith("- request")
        assert "[workload=hls]" in lines[0]
        assert lines[1].startswith("  - batch")
        assert "!error" in lines[1]

    def test_render_trace_includes_events(self):
        _, spans = _sample_spans()
        text = render_trace(
            spans, [{"event": "cache.hit", "trace_id": "t", "ts": 0.0}]
        )
        assert "events:" in text
        assert "* cache.hit" in text

    def test_render_trace_handles_empty(self):
        assert render_trace([]) == "(no spans)"

    def test_summarize_spans_uses_shared_summary(self):
        _, spans = _sample_spans()
        table = summarize_spans(spans)
        durations = [
            s["duration_s"] for s in spans if s["name"] == "request"
        ]
        assert table["request"] == summary(durations)

    def test_render_summary_counts(self):
        _, spans = _sample_spans()
        text = render_summary(
            spans, [{"event": "cache.hit", "trace_id": "t", "ts": 0.0}]
        )
        assert "traces: 1" in text
        assert "spans: 2" in text
        assert "event cache.hit: 1" in text

    def test_select_trace_accepts_unique_prefix(self):
        tid, spans = _sample_spans()
        assert select_trace(spans, tid) == spans_for(spans, tid)
        assert select_trace(spans, tid[:6]) == spans_for(spans, tid)
        assert select_trace(spans, "zz") == []


def spans_for(spans, tid):
    return [dict(s) for s in spans if s["trace_id"] == tid]


# ----------------------------------------------------------------- CLI


class TestObsCli:
    def _serve_with_trace_dir(self, trace_dir, capsys):
        from repro.cli import main

        assert main([
            "serve", "--workload", "hls", "--num-requests", "6",
            "--batch-size", "4", "--seed", "1",
            "--trace-dir", trace_dir,
        ]) == 0
        return capsys.readouterr().out

    def test_serve_writes_trace_artifacts(self, tmp_path, capsys):
        import os

        trace_dir = str(tmp_path / "obs")
        out = self._serve_with_trace_dir(trace_dir, capsys)
        assert "trace:" in out
        for name in ("trace.jsonl", "ledger.jsonl", "trace.chrome.json"):
            assert os.path.exists(os.path.join(trace_dir, name))
        doc = json.loads(
            (tmp_path / "obs" / "trace.chrome.json").read_text()
        )
        assert doc["traceEvents"]
        # The CLI leaves the spine off for the rest of the process.
        assert not get_tracer().enabled
        assert not get_ledger().enabled

    def test_obs_summary_and_show(self, tmp_path, capsys):
        from repro.cli import main

        trace_dir = str(tmp_path / "obs")
        self._serve_with_trace_dir(trace_dir, capsys)
        assert main(["obs", "summary", "--trace-dir", trace_dir]) == 0
        out = capsys.readouterr().out
        assert "traces: 6" in out
        assert "request" in out

        spans = obs.load_trace_jsonl(tmp_path / "obs" / "trace.jsonl")
        tid = spans[0]["trace_id"]
        assert main(
            ["obs", "show", tid[:8], "--trace-dir", trace_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "- request" in out
        assert "queue.wait" in out

    def test_obs_export_chrome(self, tmp_path, capsys):
        from repro.cli import main

        trace_dir = str(tmp_path / "obs")
        self._serve_with_trace_dir(trace_dir, capsys)
        out_path = tmp_path / "exported.json"
        assert main([
            "obs", "export", "--format", "chrome",
            "--trace-dir", trace_dir, "--out", str(out_path),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(out_path.read_text())
        assert {"traceEvents", "displayTimeUnit"} <= set(doc)

    def test_obs_missing_dir_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "obs", "summary", "--trace-dir", str(tmp_path / "nope"),
        ]) == 1
        err = capsys.readouterr().err
        assert "repro serve --trace-dir" in err
