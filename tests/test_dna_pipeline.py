"""Tests for the DNA channel, clustering, consensus, end-to-end pipeline
and the FPGA accelerator model."""

import numpy as np
import pytest

from repro.dna.channel import ChannelParams, DNAChannel
from repro.dna.clustering import cluster_reads, clustering_purity
from repro.dna.consensus import align_to_template, consensus_sequence
from repro.dna.decoder import DNAStorageSystem
from repro.dna.editdistance import levenshtein
from repro.dna.encoding import OligoLayout
from repro.dna.fpga_accel import (
    EditDistanceAcceleratorModel,
    SoftwareBaselineModel,
)


class TestChannelParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelParams(substitution_rate=-0.1)
        with pytest.raises(ValueError):
            ChannelParams(substitution_rate=0.5, insertion_rate=0.4,
                          deletion_rate=0.4)
        with pytest.raises(ValueError):
            ChannelParams(mean_coverage=0)
        with pytest.raises(ValueError):
            ChannelParams(coverage_sigma=-1)

    def test_total_rate(self):
        p = ChannelParams(substitution_rate=0.01, insertion_rate=0.005,
                          deletion_rate=0.005)
        assert p.total_error_rate == pytest.approx(0.02)


class TestChannel:
    def test_noiseless_channel_identity(self):
        params = ChannelParams(substitution_rate=0, insertion_rate=0,
                               deletion_rate=0, coverage_sigma=0,
                               mean_coverage=3)
        channel = DNAChannel(params, seed=0)
        assert channel.corrupt_strand("ACGTACGT") == "ACGTACGT"

    def test_noise_changes_reads(self):
        channel = DNAChannel(
            ChannelParams(substitution_rate=0.3), seed=0
        )
        strand = "ACGT" * 25
        corrupted = channel.corrupt_strand(strand)
        assert corrupted != strand

    def test_error_rate_statistics(self):
        params = ChannelParams(substitution_rate=0.05, insertion_rate=0.0,
                               deletion_rate=0.0)
        channel = DNAChannel(params, seed=1)
        strand = "ACGT" * 100
        total_edits = sum(
            levenshtein(strand, channel.corrupt_strand(strand))
            for _ in range(20)
        )
        rate = total_edits / (20 * len(strand))
        assert rate == pytest.approx(0.05, abs=0.02)

    def test_deletions_shorten(self):
        params = ChannelParams(substitution_rate=0, insertion_rate=0,
                               deletion_rate=0.2)
        channel = DNAChannel(params, seed=2)
        strand = "A" * 200
        assert len(channel.corrupt_strand(strand)) < 200

    def test_coverage_near_mean(self):
        params = ChannelParams(coverage_sigma=0.0, mean_coverage=7)
        channel = DNAChannel(params, seed=3)
        assert channel.copy_count() == 7

    def test_dropout(self):
        params = ChannelParams(dropout_rate=1.0)
        channel = DNAChannel(params, seed=4)
        assert channel.copy_count() == 0

    def test_transmit_pools_reads(self):
        channel = DNAChannel(ChannelParams(mean_coverage=5,
                                           coverage_sigma=0.0), seed=5)
        reads = channel.transmit(["ACGTACGT", "TTTTCCCC"])
        assert len(reads) == 10

    def test_empty_inputs_rejected(self):
        channel = DNAChannel(seed=0)
        with pytest.raises(ValueError):
            channel.corrupt_strand("")
        with pytest.raises(ValueError):
            channel.transmit([])


def _noisy_reads(strands, copies, seed, error=0.02):
    params = ChannelParams(
        substitution_rate=error, insertion_rate=error / 2,
        deletion_rate=error / 2, mean_coverage=copies, coverage_sigma=0.0,
    )
    channel = DNAChannel(params, seed=seed)
    reads, origins = [], []
    for idx, strand in enumerate(strands):
        for _ in range(copies):
            reads.append(channel.corrupt_strand(strand))
            origins.append(idx)
    return reads, origins


class TestClustering:
    def test_groups_by_origin(self):
        rng = np.random.default_rng(0)
        strands = [
            "".join(rng.choice(list("ACGT"), 60)) for _ in range(5)
        ]
        reads, origins = _noisy_reads(strands, copies=6, seed=1)
        result = cluster_reads(reads, distance_threshold=10)
        assert result.num_clusters == 5
        assert clustering_purity(result, origins, reads) == 1.0

    def test_zero_threshold_exact_grouping(self):
        reads = ["AAAA", "AAAA", "CCCC"]
        result = cluster_reads(reads, distance_threshold=0)
        assert result.num_clusters == 2

    def test_work_accounting(self):
        reads = ["AAAA", "CCCC", "GGGG"]
        result = cluster_reads(reads, distance_threshold=1)
        assert result.comparisons == 3  # 0 + 1 + 2
        assert result.cell_updates > 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            cluster_reads(["A"], distance_threshold=-1)

    def test_purity_validation(self):
        result = cluster_reads(["AAAA"], 1)
        with pytest.raises(ValueError):
            clustering_purity(result, [0, 1], ["AAAA"])


class TestConsensus:
    def test_align_identity(self):
        events = align_to_template("ACGT", "ACGT")
        assert events == [(0, "A"), (1, "C"), (2, "G"), (3, "T")]

    def test_align_records_deletion(self):
        events = align_to_template("AGT", "ACGT")
        assert (1, "") in events

    def test_align_records_insertion(self):
        events = align_to_template("ACXGT", "ACGT")
        assert any(sym.startswith("+") for _, sym in events)

    def test_majority_substitution_fixed(self):
        reads = ["ACGT", "ACGT", "AGGT"]
        assert consensus_sequence(reads, template="ACGT") == "ACGT"

    def test_majority_deletion_applied(self):
        reads = ["ACT", "ACT", "ACGT"]
        assert consensus_sequence(reads, template="ACGT") == "ACT"

    def test_majority_insertion_applied(self):
        reads = ["ACGGT", "ACGGT", "ACGT"]
        assert consensus_sequence(reads, template="ACGT") == "ACGGT"

    def test_recovers_strand_from_noisy_reads(self):
        rng = np.random.default_rng(7)
        strand = "".join(rng.choice(list("ACGT"), 80))
        reads, _ = _noisy_reads([strand], copies=9, seed=8, error=0.03)
        consensus = consensus_sequence(reads)
        assert levenshtein(consensus, strand) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            consensus_sequence([])
        with pytest.raises(ValueError):
            consensus_sequence(["A"], iterations=0)


class TestEndToEnd:
    def test_roundtrip_recovers_payload(self):
        system = DNAStorageSystem(
            layout=OligoLayout(payload_bytes=10, index_bytes=1),
            rs_n=40, rs_k=30,
            channel_params=ChannelParams(mean_coverage=8),
            seed=0,
        )
        payload = bytes(range(60))
        report = system.roundtrip(payload)
        assert report.success
        assert report.payload == payload
        assert report.cell_updates > 0

    def test_dropout_repaired_by_ecc(self):
        system = DNAStorageSystem(
            layout=OligoLayout(payload_bytes=5, index_bytes=1),
            rs_n=30, rs_k=20,
            channel_params=ChannelParams(mean_coverage=10,
                                         coverage_sigma=0.0),
            seed=1,
        )
        payload = bytes(range(40))
        strands = system.store(payload)
        # Drop one entire oligo (5 coded bytes lost <= t = 5 per block).
        reads = system.channel.transmit(strands[:-1])
        report = system.retrieve(reads, len(payload))
        assert report.missing_chunks >= 1
        assert report.success
        assert report.payload == payload

    def test_hopeless_channel_fails_gracefully(self):
        system = DNAStorageSystem(
            layout=OligoLayout(payload_bytes=5, index_bytes=1),
            rs_n=30, rs_k=20,
            channel_params=ChannelParams(substitution_rate=0.3,
                                         insertion_rate=0.1,
                                         deletion_rate=0.1,
                                         mean_coverage=2),
            seed=2,
        )
        payload = bytes(range(40))
        report = system.roundtrip(payload)
        # Success is not guaranteed; what matters is a clean verdict.
        if not report.success:
            assert report.payload is None

    def test_validation(self):
        system = DNAStorageSystem(seed=0)
        with pytest.raises(ValueError):
            system.store(b"")
        with pytest.raises(ValueError):
            system.retrieve(["ACGT"], 0)
        with pytest.raises(ValueError):
            system.coded_length(0)


class TestAcceleratorModel:
    def test_reproduces_published_figures(self):
        model = EditDistanceAcceleratorModel()
        # "nearly 90% of FPGA basic-block hardware resources"
        assert model.resource_utilization == pytest.approx(0.90, abs=0.02)
        # "maximum throughput of 16.8 TCUPS"
        assert model.sustained_tcups == pytest.approx(16.8, rel=0.03)
        # "energy efficiency of 46 Mpair/Joule" (80-base oligo pairs)
        assert model.pairs_per_joule(80, 80) / 1e6 == pytest.approx(
            46.0, rel=0.10
        )

    def test_efficiency_scales_peak(self):
        model = EditDistanceAcceleratorModel()
        assert model.sustained_cups == pytest.approx(
            0.9 * model.peak_cups
        )

    def test_longer_sequences_fewer_pairs(self):
        model = EditDistanceAcceleratorModel()
        assert model.pairs_per_second(200, 200) < model.pairs_per_second(
            100, 100
        )

    def test_time_and_energy_linear_in_cells(self):
        model = EditDistanceAcceleratorModel()
        assert model.time_for_cells(2_000_000) == pytest.approx(
            2 * model.time_for_cells(1_000_000)
        )
        assert model.energy_for_cells(10**9) > 0

    def test_fpga_beats_software_baseline(self):
        fpga = EditDistanceAcceleratorModel()
        cpu = SoftwareBaselineModel()
        cells = 10**12
        assert fpga.time_for_cells(cells) < cpu.time_for_cells(cells) / 100
        assert fpga.energy_for_cells(cells) < cpu.energy_for_cells(cells)

    def test_validation(self):
        with pytest.raises(ValueError):
            EditDistanceAcceleratorModel(word_bits=0)
        with pytest.raises(ValueError):
            EditDistanceAcceleratorModel(target_utilization=1.5)
        with pytest.raises(ValueError):
            EditDistanceAcceleratorModel(computing_efficiency=0)
        model = EditDistanceAcceleratorModel()
        with pytest.raises(ValueError):
            model.pairs_per_second(0, 10)
        with pytest.raises(ValueError):
            model.time_for_cells(-1)
        with pytest.raises(ValueError):
            SoftwareBaselineModel().time_for_cells(-1)
