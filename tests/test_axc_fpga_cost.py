"""Tests for the Table I FPGA cost model."""

import pytest

from repro.axc.fpga_cost import (
    FPGAResources,
    HTConvAcceleratorConfig,
    PUBLISHED_CHANG2020,
    PUBLISHED_HTCONV,
    estimate_fmax_mhz,
    estimate_htconv_accelerator,
    estimate_power_w,
    estimate_resources,
    estimate_throughput_mpixels,
    table_i_rows,
)


class TestValidation:
    def test_resource_validation(self):
        with pytest.raises(ValueError):
            FPGAResources(luts=-1, ffs=0, dsps=0, bram_kb=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HTConvAcceleratorConfig(bitwidth=2)
        with pytest.raises(ValueError):
            HTConvAcceleratorConfig(kernel_size=4)
        with pytest.raises(ValueError):
            HTConvAcceleratorConfig(foveal_coverage=1.5)
        with pytest.raises(ValueError):
            HTConvAcceleratorConfig(lanes=0)

    def test_power_rejects_bad_fmax(self):
        with pytest.raises(ValueError):
            estimate_power_w(PUBLISHED_HTCONV.resources, 0.0)


class TestCalibration:
    """The default configuration must land near the published 'New' row."""

    def test_default_matches_published_row(self):
        row = estimate_htconv_accelerator()
        pub = PUBLISHED_HTCONV
        assert row.fmax_mhz == pytest.approx(pub.fmax_mhz, rel=0.05)
        assert row.throughput_mpixels == pytest.approx(
            pub.throughput_mpixels, rel=0.05
        )
        assert row.power_w == pytest.approx(pub.power_w, rel=0.10)
        assert row.resources.dsps == pub.resources.dsps
        assert row.resources.luts == pytest.approx(pub.resources.luts, rel=0.05)
        assert row.resources.ffs == pytest.approx(pub.resources.ffs, rel=0.05)
        assert row.resources.bram_kb == pytest.approx(
            pub.resources.bram_kb, rel=0.10
        )

    def test_energy_efficiency_beats_chang_by_2x(self):
        # The headline Table I comparison: 203.5 vs 92.13 Mpixels/s/W.
        row = estimate_htconv_accelerator()
        ratio = row.energy_efficiency / PUBLISHED_CHANG2020.energy_efficiency
        assert ratio > 2.0

    def test_power_model_consistent_with_chang_row(self):
        # Cross-check: the fitted power model applied to the [15] resources
        # reproduces its published 5.38 W within 10%.
        predicted = estimate_power_w(
            PUBLISHED_CHANG2020.resources, PUBLISHED_CHANG2020.fmax_mhz
        )
        assert predicted == pytest.approx(PUBLISHED_CHANG2020.power_w, rel=0.10)


class TestResponseSurface:
    def test_wider_operands_cost_more(self):
        narrow = estimate_resources(HTConvAcceleratorConfig(bitwidth=8))
        wide = estimate_resources(HTConvAcceleratorConfig(bitwidth=16))
        assert wide.luts > narrow.luts
        assert wide.ffs > narrow.ffs
        assert wide.bram_kb > narrow.bram_kb

    def test_wider_operands_slow_clock(self):
        fast = estimate_fmax_mhz(HTConvAcceleratorConfig(bitwidth=8))
        slow = estimate_fmax_mhz(HTConvAcceleratorConfig(bitwidth=16))
        assert slow < fast

    def test_more_lanes_more_dsps(self):
        one = estimate_resources(HTConvAcceleratorConfig(lanes=1))
        five = estimate_resources(HTConvAcceleratorConfig(lanes=5))
        assert five.dsps == 5 * one.dsps

    def test_more_coverage_less_throughput(self):
        config_lo = HTConvAcceleratorConfig(foveal_coverage=0.1)
        config_hi = HTConvAcceleratorConfig(foveal_coverage=0.9)
        fmax = 200.0
        assert estimate_throughput_mpixels(
            config_hi, fmax
        ) < estimate_throughput_mpixels(config_lo, fmax)

    def test_kernel_size_drives_dsps(self):
        small = estimate_resources(HTConvAcceleratorConfig(kernel_size=5))
        large = estimate_resources(HTConvAcceleratorConfig(kernel_size=9))
        assert large.dsps > small.dsps


class TestTableRows:
    def test_four_rows(self):
        rows = table_i_rows()
        assert len(rows) == 4
        methods = [r.method for r in rows]
        assert any("[15]" in m for m in methods)
        assert any("[17]" in m for m in methods)
        assert sum("New" in m for m in methods) == 2

    def test_na_power_yields_na_efficiency(self):
        rows = table_i_rows()
        adas = next(r for r in rows if "[17]" in r.method)
        assert adas.power_w is None
        assert adas.energy_efficiency is None

    def test_new_has_best_efficiency(self):
        rows = [r for r in table_i_rows() if r.energy_efficiency is not None]
        best = max(rows, key=lambda r: r.energy_efficiency)
        assert "New" in best.method
