"""Tests for the process-backed shard cluster.

The promotion from threads to processes must not weaken any serving
guarantee: results stay byte-identical to direct evaluation, delivery
stays exactly-once even when a worker process is ``kill -9``'d with
requests in flight (supervisor restart + ledger replay across the
process boundary), and the consistent-hash router keeps its stability
contract when shards leave and rejoin.

Process tests are deliberately small -- each spawned worker pays an
interpreter start-up -- but they cover the real OS failure mode the
in-process chaos tests cannot: SIGKILL, no cleanup, no goodbye.
"""

import os
import signal
import time

import pytest

import numpy as np

from repro.core.api import get_workload
from repro.core.errors import ValidationError
from repro.obs.ledger import get_ledger
from repro.serve import ShardCluster, ShardRouter, generate_requests
from repro.serve.procshard import ProcessShard, validate_process_spec
from repro.serve.request import EvalRequest

WORKLOAD = "imc-crossbar"


def _requests(count, seed=3):
    workload = get_workload(WORKLOAD)
    return generate_requests(
        workload, count, pool_size=max(4, count // 2), seed=seed
    )


def _canonical(requests):
    workload = get_workload(WORKLOAD)
    canonical = {}
    for request in requests:
        if request.digest not in canonical:
            result = workload.evaluate(request.config, seed=request.seed)
            canonical[request.digest] = result.canonical_json()
    return canonical


def _process_cluster(**kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("backend", "process")
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("heartbeat_s", 0.05)
    kwargs.setdefault("shard_heartbeat_s", 0.02)
    kwargs.setdefault("max_queue", 64)
    return ShardCluster(**kwargs)


class TestProcessSpecValidation:
    def test_accepts_plain_spec(self):
        spec = validate_process_spec(
            {"batch_size": 4, "parallel": 2, "cache": "/tmp/c.json"}
        )
        assert spec["batch_size"] == 4

    def test_rejects_unpicklable_parallel(self):
        with pytest.raises(ValidationError):
            validate_process_spec({"parallel": object()})

    def test_rejects_non_path_cache(self):
        with pytest.raises(ValidationError):
            validate_process_spec({"cache": {"not": "a path"}})

    def test_rejects_bad_backend(self):
        with pytest.raises(ValidationError):
            ShardCluster(num_shards=2, backend="carrier-pigeon")


class TestProcessCluster:
    def test_results_identical_and_exactly_once(self):
        requests = _requests(10)
        canonical = _canonical(requests)
        cluster = _process_cluster()
        try:
            assert cluster.wait_ready(timeout=90)
            futures = [
                cluster.submit_request(r, block=True) for r in requests
            ]
            results = [f.result(timeout=120) for f in futures]
        finally:
            cluster.shutdown()
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            assert result.status == "ok"
            assert result.canonical_json() == canonical[request.digest]
        snapshot = cluster.snapshot()
        assert snapshot["shards"] == 2
        assert snapshot["restarts"] == 0
        assert (
            snapshot["requests"]["completed"] == len(requests)
        )

    def test_sigkill_mid_batch_replays_exactly_once(self):
        """The flagship failure: ``kill -9`` one worker process while
        its queue holds work.  The supervisor must detect the death by
        heartbeat, restart the shard (new process), replay the lost
        requests from the run ledger, and still deliver every future
        exactly once with byte-identical results."""
        ledger = get_ledger()
        ledger.enable()
        ledger.reset()
        requests = _requests(16, seed=5)
        canonical = _canonical(requests)
        cluster = _process_cluster(num_shards=2)
        try:
            assert cluster.wait_ready(timeout=90)
            futures = [
                cluster.submit_request(r, block=True) for r in requests
            ]
            victim = cluster._slots[0].service
            os.kill(victim.pid, signal.SIGKILL)
            # A few more submissions after the kill: routing must flow
            # around the corpse (or to its replacement).
            extra = _requests(4, seed=9)
            canonical.update(_canonical(extra))
            deadline = time.monotonic() + 60
            for request in extra:
                while True:
                    try:
                        futures.append(
                            cluster.submit_request(request, block=True)
                        )
                        break
                    except Exception:
                        if time.monotonic() > deadline:
                            raise
                        time.sleep(0.05)
            results = [f.result(timeout=120) for f in futures]
        finally:
            cluster.shutdown()
            ledger.disable()
        all_requests = requests + extra
        assert len(results) == len(all_requests)
        for request, result in zip(all_requests, results):
            assert result is not None and result.status == "ok"
            assert result.canonical_json() == canonical[request.digest]
        assert cluster.restarts >= 1
        names = {record["event"] for record in ledger.events()}
        assert {"shard.down", "shard.restarted"} <= names
        # Exactly-once at the ledger level too: no cluster rid resolves
        # twice even though the replay re-evaluated stranded work.
        done_rids = [
            record["rid"]
            for record in ledger.events()
            if record["event"] == "cluster.done"
        ]
        assert len(done_rids) == len(set(done_rids))


class TestRouterRebalance:
    def test_remove_and_readd_restores_assignment(self):
        router = ShardRouter(num_shards=4)
        keys = [f"digest-{i:03d}" for i in range(200)]
        everyone = {0, 1, 2, 3}
        before = {k: router.route(k, alive=everyone) for k in keys}
        survivors = everyone - {2}
        during = {k: router.route(k, alive=survivors) for k in keys}
        # Only the dead shard's keys move; they land on live shards.
        for key in keys:
            if before[key] != 2:
                assert during[key] == before[key]
            else:
                assert during[key] in survivors
        # Re-adding the shard restores the original assignment exactly
        # (consistent hashing is memoryless: same ring, same answer).
        after = {k: router.route(k, alive=everyone) for k in keys}
        assert after == before

    def test_rebalance_spreads_moved_keys(self):
        router = ShardRouter(num_shards=4)
        keys = [f"digest-{i:03d}" for i in range(400)]
        everyone = {0, 1, 2, 3}
        before = {k: router.route(k, alive=everyone) for k in keys}
        moved_to = {
            router.route(k, alive=everyone - {1})
            for k in keys
            if before[k] == 1
        }
        # The victim's keys spread over multiple survivors, not one.
        assert len(moved_to) >= 2


class TestShardShmTransport:
    """Large ndarray request payloads ride the shared-memory descriptor
    protocol through the shard's command queue; the worker decodes
    them before evaluation and the parent releases every lease when the
    answer (or a shutdown) drains it."""

    def _shard(self, **kwargs):
        spec = {"batch_size": 2, "batch_wait_s": 0.01, "max_queue": 8,
                "parallel": None, "cache": None, "policy": None,
                "default_timeout_s": None}
        kwargs.setdefault("transport", "auto")
        kwargs.setdefault("shm_threshold_bytes", 64 * 1024)
        return ProcessShard(0, spec, **kwargs)

    def test_rejects_unknown_transport(self):
        with pytest.raises(ValidationError):
            self._shard(transport="carrier-pigeon")

    def test_large_payload_rides_shm_and_leases_drain(self):
        shard = self._shard()
        try:
            assert shard.wait_ready(90)
            payload = np.arange(40_000, dtype=np.float64)  # 320 KB
            config = {"num_nodes": 48, "num_lanes": 2, "payload": payload}
            futures = [
                shard.submit_request(
                    EvalRequest(workload="sparta", config=config,
                                seed=seed),
                    block=True,
                )
                for seed in (0, 1)
            ]
            results = [f.result(timeout=120) for f in futures]
            assert all(r.status == "ok" for r in results)
            stats = shard.arena.stats()
            # One segment for both requests (content-addressed reuse)...
            assert stats["segments_created"] == 1
            assert stats["segments_reused"] == 1
            # ...and no lease survives its answer.
            assert shard.arena.active_digests() == []

            # A below-threshold request never touches the arena.
            small = shard.submit_request(
                EvalRequest(workload="sparta",
                            config={"num_nodes": 48, "num_lanes": 2}),
                block=True,
            )
            assert small.result(timeout=120).status == "ok"
            assert shard.arena.stats()["registered"] == 2
        finally:
            shard.shutdown()

    def test_shm_results_match_pickle_transport(self):
        payload = np.arange(40_000, dtype=np.float64)
        config = {"num_nodes": 48, "num_lanes": 2, "payload": payload}
        request = EvalRequest(workload="sparta", config=config, seed=3)
        answers = {}
        for transport in ("pickle", "shm"):
            shard = self._shard(transport=transport)
            try:
                assert shard.wait_ready(90)
                future = shard.submit_request(request, block=True)
                answers[transport] = future.result(timeout=120)
            finally:
                shard.shutdown()
        assert answers["pickle"].status == answers["shm"].status == "ok"
        assert (
            answers["pickle"].canonical_json()
            == answers["shm"].canonical_json()
        )
