"""Tests for the DNA channel estimator and the hetero campaign matrix."""

import numpy as np
import pytest

from repro.dna.channel import ChannelParams, DNAChannel
from repro.dna.stats import ChannelEstimate, estimate_channel, recommend_rs_parity
from repro.hetero.campaign import (
    best_configuration,
    bottleneck_summary,
    run_campaign,
)
from repro.hetero.workload import SegmentationWorkload


class TestChannelEstimation:
    def _reference(self, length=120, seed=0):
        rng = np.random.default_rng(seed)
        return "".join(rng.choice(list("ACGT"), length))

    def test_clean_reads_estimate_zero(self):
        ref = self._reference()
        estimate = estimate_channel([ref] * 5, ref)
        assert estimate.total_error_rate == 0.0
        assert estimate.bases_observed == 5 * len(ref)

    def test_recovers_substitution_rate(self):
        ref = self._reference(seed=1)
        channel = DNAChannel(
            ChannelParams(substitution_rate=0.05, insertion_rate=0.0,
                          deletion_rate=0.0),
            seed=2,
        )
        reads = [channel.corrupt_strand(ref) for _ in range(40)]
        estimate = estimate_channel(reads, ref)
        assert estimate.substitution_rate == pytest.approx(0.05, abs=0.015)
        assert estimate.insertion_rate < 0.01
        assert estimate.deletion_rate < 0.01

    def test_recovers_indel_rates(self):
        ref = self._reference(seed=3)
        channel = DNAChannel(
            ChannelParams(substitution_rate=0.0, insertion_rate=0.03,
                          deletion_rate=0.04),
            seed=4,
        )
        reads = [channel.corrupt_strand(ref) for _ in range(40)]
        estimate = estimate_channel(reads, ref)
        assert estimate.insertion_rate == pytest.approx(0.03, abs=0.015)
        assert estimate.deletion_rate == pytest.approx(0.04, abs=0.015)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_channel([], "ACGT")
        with pytest.raises(ValueError):
            estimate_channel(["ACGT"], "")

    def test_parity_recommendation_scales_with_error(self):
        low = ChannelEstimate(0.001, 0.0, 0.0, 1000)
        high = ChannelEstimate(0.02, 0.01, 0.01, 1000)
        p_low = recommend_rs_parity(low, chunk_bytes=10, chunks_per_block=3)
        p_high = recommend_rs_parity(high, chunk_bytes=10,
                                     chunks_per_block=3)
        assert p_high > p_low >= 2
        assert p_high % 2 == 0

    def test_parity_validation(self):
        est = ChannelEstimate(0.01, 0.0, 0.0, 100)
        with pytest.raises(ValueError):
            recommend_rs_parity(est, chunk_bytes=0, chunks_per_block=1)
        with pytest.raises(ValueError):
            recommend_rs_parity(est, 10, 3, safety_factor=0)


class TestCampaign:
    @pytest.fixture(scope="class")
    def cells(self):
        return run_campaign(SegmentationWorkload(num_volumes=50, epochs=1))

    def test_matrix_coverage(self, cells):
        devices = {c.device for c in cells}
        storages = {c.storage for c in cells}
        phases = {c.phase for c in cells}
        assert len(devices) == 3
        assert len(storages) == 3
        assert phases == {"training", "inference"}

    def test_fpga_inference_only(self, cells):
        fpga = [c for c in cells if "FPGA" in c.device]
        assert fpga
        assert all(c.phase == "inference" for c in fpga)

    def test_gpu_wins_training_time(self, cells):
        best = best_configuration(cells, "training", objective="time")
        assert "GPU" in best.device

    def test_fpga_wins_inference_energy(self, cells):
        best = best_configuration(cells, "inference", objective="energy")
        assert "FPGA" in best.device

    def test_bottleneck_summary_counts_all(self, cells):
        summary = bottleneck_summary(cells)
        assert sum(summary.values()) == len(cells)
        # I/O-path or host stages dominate somewhere in the matrix (the
        # campaign's motivation for the storage work).
        io_stages = {"storage_read", "preprocess", "transfer_in"}
        assert io_stages & set(summary)

    def test_best_configuration_validation(self, cells):
        with pytest.raises(ValueError):
            best_configuration(cells, "compilation")
        with pytest.raises(ValueError):
            best_configuration(cells, "training", objective="beauty")
