"""Tests for IMC tiles, the layer mapper, end-to-end inference and the
Fig. 2 taxonomy."""

import numpy as np
import pytest

from repro.imc.crossbar import CrossbarConfig
from repro.imc.mapper import map_linear_layer
from repro.imc.nn import IMCInferenceEngine, make_blobs, train_mlp
from repro.imc.taxonomy import (
    ArchitectureKind,
    MovementCosts,
    mvm_cost,
    standby_weight_energy_j,
    taxonomy_table,
)
from repro.imc.tiles import IMCTile, TileConfig


def small_tile_config(rows=16, cols=16, **kwargs):
    return TileConfig(crossbar=CrossbarConfig(rows=rows, cols=cols, **kwargs))


class TestTile:
    def test_compute_matches_weights(self):
        tile = IMCTile(small_tile_config(), seed=0)
        rng = np.random.default_rng(0)
        w = rng.normal(0, 0.3, (16, 16))
        tile.program(w)
        x = rng.uniform(-1, 1, 16)
        y = tile.compute(x)
        rel = np.linalg.norm(y - w.T @ x) / np.linalg.norm(w.T @ x)
        assert rel < 0.2

    def test_energy_and_latency_accumulate(self):
        tile = IMCTile(small_tile_config(), seed=0)
        tile.program(np.zeros((16, 16)))
        assert tile.total_energy_j == 0.0
        tile.compute(np.zeros(16))
        tile.compute(np.zeros(16))
        assert tile.mvm_count == 2
        assert tile.total_energy_j > 0
        assert tile.latency_s == pytest.approx(2 * tile.config.mvm_latency_s)

    def test_activation_applied(self):
        tile = IMCTile(
            small_tile_config(), seed=0, activation=lambda y: np.maximum(y, 0)
        )
        tile.program(-0.5 * np.eye(16))
        y = tile.compute(np.ones(16))
        assert np.all(y >= 0)

    def test_drift_compensation_improves_long_term(self):
        from repro.imc.devices import PCM_PARAMS

        rng = np.random.default_rng(1)
        w = rng.normal(0, 0.3, (16, 16))
        x = rng.uniform(-1, 1, 16)
        y_ref = w.T @ x
        errs = {}
        for compensate in (True, False):
            config = TileConfig(
                crossbar=CrossbarConfig(rows=16, cols=16, device=PCM_PARAMS),
                drift_compensation=compensate,
            )
            tile = IMCTile(config, seed=2)
            tile.program(w)
            y = tile.compute(x, t_seconds=1e7)
            errs[compensate] = float(np.linalg.norm(y - y_ref))
        assert errs[True] < errs[False]


class TestMapper:
    def test_exact_fit_single_tile(self):
        w = np.random.default_rng(0).normal(0, 0.3, (16, 16))
        mapping = map_linear_layer(w, small_tile_config(), seed=0)
        assert mapping.grid_shape == (1, 1)
        assert mapping.utilization == pytest.approx(1.0)

    def test_partition_counts(self):
        w = np.zeros((40, 20))
        mapping = map_linear_layer(w, small_tile_config(), seed=0)
        assert mapping.grid_shape == (3, 2)
        assert mapping.num_tiles == 6
        assert mapping.utilization == pytest.approx(
            40 * 20 / (6 * 16 * 16)
        )

    def test_partitioned_compute_close_to_dense(self):
        rng = np.random.default_rng(3)
        w = rng.normal(0, 0.3, (40, 24))
        mapping = map_linear_layer(w, small_tile_config(), seed=3)
        x = rng.uniform(-1, 1, 40)
        y = mapping.compute(x)
        y_ref = w.T @ x
        rel = np.linalg.norm(y - y_ref) / np.linalg.norm(y_ref)
        assert y.shape == (24,)
        assert rel < 0.25

    def test_input_validation(self):
        w = np.zeros((8, 8))
        mapping = map_linear_layer(w, small_tile_config(8, 8), seed=0)
        with pytest.raises(ValueError):
            mapping.compute(np.zeros(9))
        with pytest.raises(ValueError):
            map_linear_layer(np.zeros((0, 4)), small_tile_config())

    def test_energy_aggregates_tiles(self):
        w = np.zeros((32, 32))
        mapping = map_linear_layer(w, small_tile_config(), seed=0)
        mapping.compute(np.zeros(32))
        assert mapping.total_energy_j > 0


class TestEndToEnd:
    def test_float_mlp_learns_blobs(self):
        x, labels = make_blobs(seed=0)
        model = train_mlp(x, labels, seed=0)
        acc = float(np.mean(model.predict(x) == labels))
        assert acc > 0.9

    def test_imc_accuracy_close_to_float(self):
        x, labels = make_blobs(seed=0)
        model = train_mlp(x, labels, seed=0)
        float_acc = float(np.mean(model.predict(x) == labels))
        engine = IMCInferenceEngine(model, small_tile_config(32, 32), seed=0)
        imc_acc = engine.accuracy(x[:80], labels[:80])
        assert imc_acc > float_acc - 0.1

    def test_drift_hurts_uncompensated_pcm(self):
        from repro.imc.devices import PCM_PARAMS

        x, labels = make_blobs(seed=1)
        model = train_mlp(x, labels, seed=1)
        config = TileConfig(
            crossbar=CrossbarConfig(rows=32, cols=32, device=PCM_PARAMS),
            drift_compensation=False,
        )
        engine = IMCInferenceEngine(model, config, seed=1)
        fresh = engine.accuracy(x[:80], labels[:80], t_seconds=1.0)
        aged = engine.accuracy(x[:80], labels[:80], t_seconds=1e8)
        assert aged <= fresh

    def test_engine_counts_tiles_and_energy(self):
        x, labels = make_blobs(n_features=16, seed=2)
        model = train_mlp(x, labels, hidden=32, epochs=20, seed=2)
        engine = IMCInferenceEngine(model, small_tile_config(16, 16), seed=2)
        assert engine.num_tiles == 2 + 2 * 1  # 16->32 and 32->4
        engine.predict(x[:2])
        assert engine.total_energy_j > 0

    def test_make_blobs_validation(self):
        with pytest.raises(ValueError):
            make_blobs(n_samples=2, n_classes=4)

    def test_train_mlp_validation(self):
        with pytest.raises(ValueError):
            train_mlp(np.zeros((4, 2)), np.zeros(3))


class TestTaxonomy:
    def test_fig2_energy_ordering(self):
        # The Fig. 2 narrative: each step right reduces total MVM energy.
        energies = [
            mvm_cost(kind, 512, 512).total_energy_j
            for kind in ArchitectureKind
        ]
        assert energies == sorted(energies, reverse=True)

    def test_imc_eliminates_weight_movement(self):
        for kind in (ArchitectureKind.IMC_SRAM, ArchitectureKind.IMC_ENVM):
            assert mvm_cost(kind, 256, 256).weight_movement_j == 0.0

    def test_von_neumann_movement_dominated(self):
        cost = mvm_cost(ArchitectureKind.VON_NEUMANN, 512, 512)
        assert cost.movement_fraction > 0.9

    def test_envm_free_standby(self):
        assert standby_weight_energy_j(
            ArchitectureKind.IMC_ENVM, 512, 512, 3600
        ) == 0.0
        assert standby_weight_energy_j(
            ArchitectureKind.IMC_SRAM, 512, 512, 3600
        ) > 0.0

    def test_standby_validation(self):
        with pytest.raises(ValueError):
            standby_weight_energy_j(ArchitectureKind.IMC_SRAM, 4, 4, -1.0)

    def test_taxonomy_table_complete(self):
        table = taxonomy_table()
        assert len(table) == 4
        assert table[0]["architecture"] == "von Neumann"
        assert all(row["total_pj"] > 0 for row in table)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            mvm_cost(ArchitectureKind.VON_NEUMANN, 0, 4)

    def test_custom_costs_respected(self):
        cheap_dram = MovementCosts(dram_per_byte=1e-15)
        cost = mvm_cost(
            ArchitectureKind.VON_NEUMANN, 64, 64, costs=cheap_dram
        )
        default = mvm_cost(ArchitectureKind.VON_NEUMANN, 64, 64)
        assert cost.total_energy_j < default.total_energy_j
