"""Cross-package integration tests.

These tests exercise the seams between the thrust packages -- the flows
the paper's toolchain narrative describes: HLS kernels explored by the
DSE engine, OpenMP-style kernels lowered from the HLS front-end onto the
SPARTA back-end, DNN models executed on the IMC stack, the approximate
SoftMax inside transformer attention, and assembled RISC-V machine code
executing on the SCF substrate.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.axc.attention import attention_quality
from repro.dna.channel import ChannelParams
from repro.dna.decoder import DNAStorageSystem
from repro.dna.encoding import OligoLayout
from repro.dse.explorer import NSGA2Explorer, best_tradeoff
from repro.dse.runner import DSERunner
from repro.hls.kernels import make_kernel
from repro.scf.rv32 import Assembler, RV32Simulator
from repro.scf.rv32_encoding import decode_program, encode_program
from repro.sparta.frontend import lower_loop_nest
from repro.sparta.simulator import simulate


class TestHlsToDse:
    def test_dse_finds_better_than_default(self):
        """The Sec. III toolchain promise: automatic exploration beats the
        untuned configuration."""
        runner = DSERunner(make_kernel("gemm", size=128))
        result = runner.run(NSGA2Explorer(population=12), budget=60, seed=0)
        default_like = [
            p for p in result.evaluated
            if p.config["unroll"] == 1 and not p.config["pipeline"]
        ]
        knee = best_tradeoff(result.evaluated)
        if default_like:
            assert knee.latency_s < default_like[0].latency_s

    def test_irregular_kernel_pareto_is_flat_on_partitioning(self):
        """Array partitioning buys nothing for the irregular gather kernel
        -- the structural gap SPARTA fills."""
        runner = DSERunner(make_kernel("gather", size=64))
        result = runner.run(NSGA2Explorer(population=12), budget=48, seed=1)
        by_partition = {}
        for p in result.evaluated:
            key = (
                p.config["unroll"], p.config["pipeline"],
                p.config["mul_units"], p.config["add_units"],
            )
            by_partition.setdefault(key, set()).add(
                (p.config["array_partition"], p.latency_s)
            )
        for variants in by_partition.values():
            latencies = {lat for _, lat in variants}
            assert len(latencies) == 1  # partitioning changed nothing


class TestHlsToSparta:
    def test_lowered_region_executes(self):
        nest = make_kernel("gather", size=64)
        region = lower_loop_nest(nest, seed=0)
        stats = simulate(region, num_lanes=2, contexts_per_lane=4)
        assert stats.tasks_completed == len(region.tasks)
        assert stats.memory_requests > 0

    def test_lowered_loads_match_body(self):
        nest = make_kernel("dot", size=16)
        region = lower_loop_nest(nest, seed=0)
        # dot body has 2 loads per iteration.
        assert region.total_loads == 2 * 16

    def test_context_switching_helps_lowered_irregular_kernel(self):
        """The full SPARTA story on an HLS-front-end kernel: the lowered
        gather benefits from multi-context lanes."""
        region = lower_loop_nest(make_kernel("gather", size=96), seed=1)
        one = simulate(region, num_lanes=2, contexts_per_lane=1)
        many = simulate(region, num_lanes=2, contexts_per_lane=8)
        assert many.cycles < one.cycles / 1.5

    def test_regular_kernel_has_streaming_addresses(self):
        region = lower_loop_nest(make_kernel("fir8", size=8), seed=2)
        addresses = [
            arg
            for task in region.tasks
            for kind, arg in task.steps
            if kind == "load"
        ]
        assert addresses == sorted(addresses)

    def test_iteration_chunking(self):
        nest = make_kernel("dot", size=16)
        region = lower_loop_nest(nest, iterations_per_task=4, seed=0)
        assert len(region.tasks) == 4
        with pytest.raises(ValueError):
            lower_loop_nest(nest, iterations_per_task=0)


class TestAxcToScf:
    def test_approximate_softmax_in_attention(self):
        """Sec. V's approximate SoftMax inside Sec. VII's transformer
        block: large cost saving, small quality loss."""
        report = attention_quality(seq_len=64, d_model=64, num_heads=4,
                                   seed=0)
        assert report["softmax_cost_saving"] > 0.9
        assert report["output_relative_error"] < 0.15
        assert report["top1_agreement"] > 0.9


class TestRv32MachineCodePath:
    def test_assemble_encode_ship_decode_run(self):
        """Full binary path: assembly -> machine code bytes -> decode ->
        execute, computing a checksum over preloaded memory."""
        source = """
            li t0, 0x1000
            li t1, 8
            li a0, 0
        loop:
            beq t1, x0, done
            lw t2, 0(t0)
            add a0, a0, t2
            addi t0, t0, 4
            addi t1, t1, -1
            j loop
        done:
            li a7, 93
            ecall
        """
        program = Assembler().assemble(source)
        shipped = encode_program(program)
        recovered = decode_program(shipped)
        sim = RV32Simulator()
        values = list(range(1, 9))
        sim.write_words(0x1000, values)
        assert sim.run(recovered) == sum(values)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                    max_size=8))
    def test_sum_program_property(self, values):
        source = f"""
            li t0, 0x1000
            li t1, {len(values)}
            li a0, 0
        loop:
            beq t1, x0, done
            lw t2, 0(t0)
            add a0, a0, t2
            addi t0, t0, 4
            addi t1, t1, -1
            j loop
        done:
            li a7, 93
            ecall
        """
        program = Assembler().assemble(source)
        sim = RV32Simulator()
        sim.write_words(0x1000, values)
        assert sim.run(program) == sum(values)


class TestDnaEndToEndProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=20, max_size=80),
           st.integers(min_value=0, max_value=10_000))
    def test_roundtrip_recovers_arbitrary_payloads(self, payload, seed):
        system = DNAStorageSystem(
            layout=OligoLayout(payload_bytes=10, index_bytes=1),
            rs_n=40,
            rs_k=30,
            channel_params=ChannelParams(
                substitution_rate=0.005,
                insertion_rate=0.002,
                deletion_rate=0.002,
                mean_coverage=9,
                coverage_sigma=0.2,
            ),
            seed=seed,
        )
        report = system.roundtrip(payload)
        assert report.success
        assert report.payload == payload


class TestImcQuantizedModels:
    def test_fixed_point_weights_through_crossbar(self):
        """core.fixedpoint -> imc.crossbar: quantized weights survive the
        analog chain about as well as float weights (quantization is not
        the accuracy bottleneck, device noise is)."""
        from repro.core.fixedpoint import Q8, quantize
        from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig

        rng = np.random.default_rng(0)
        w = rng.normal(0, 0.3, (32, 32))
        x = rng.uniform(-1, 1, 32)
        errors = {}
        for name, weights in (("float", w), ("q8", quantize(w, Q8))):
            xbar = AnalogCrossbar(CrossbarConfig(rows=32, cols=32), seed=5)
            xbar.program_weights(weights)
            y = xbar.mvm(x)
            y_ref = w.T @ x
            errors[name] = float(
                np.linalg.norm(y - y_ref) / np.linalg.norm(y_ref)
            )
        assert errors["q8"] < errors["float"] + 0.1
