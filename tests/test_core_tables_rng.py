"""Tests for repro.core.tables and repro.core.rng."""

import numpy as np
import pytest

from repro.core.rng import make_rng, spawn
from repro.core.tables import Table


class TestTable:
    def test_render_alignment(self):
        t = Table(["method", "PSNR"], title="Table I")
        t.add_row(["HTCONV", 31.25])
        t.add_row(["baseline-with-long-name", 30.0])
        text = t.render()
        lines = text.split("\n")
        assert lines[0] == "Table I"
        # All data rows share the same width.
        assert len(lines[2]) == len(lines[3])
        assert "HTCONV" in text

    def test_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_bool_formatting(self):
        t = Table(["flag"])
        t.add_row([True])
        assert "yes" in t.render()

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row([3.14159265])
        assert "3.142" in t.render()

    def test_num_rows(self):
        t = Table(["x"])
        assert t.num_rows == 0
        t.add_row([1])
        assert t.num_rows == 1


class TestRng:
    def test_seed_reproducible(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_spawn_independent_streams(self):
        children = spawn(make_rng(7), 3)
        assert len(children) == 3
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1]
        assert draws[1] != draws[2]

    def test_spawn_deterministic(self):
        a = [c.random(3).tolist() for c in spawn(make_rng(9), 2)]
        b = [c.random(3).tolist() for c in spawn(make_rng(9), 2)]
        assert a == b

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)
