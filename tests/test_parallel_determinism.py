"""Serial-vs-parallel determinism contract for the evaluation engine.

The acceptance bar for :mod:`repro.exec`: running the same seeded
workload serially, with 2 workers, and with 4 workers must produce
byte-identical results -- and a warm cache rerun must be a pure lookup
that changes nothing.  Seeds are derived from cell keys, never from
submission order, so these tests pin that contract.
"""

import json

import pytest

from repro.dse.explorer import (
    ExhaustiveExplorer,
    NSGA2Explorer,
    RandomExplorer,
)
from repro.dse.objectives import synthesis_to_record
from repro.dse.runner import DSERunner
from repro.dse.space import hls_directive_space
from repro.exec import ParallelEvaluator, ResultCache
from repro.hetero.campaign import run_campaign, run_resilient_campaign
from repro.hetero.workload import SegmentationWorkload
from repro.hls.kernels import make_kernel
from repro.imc.sweep import crossbar_sweep, sweep_grid
from repro.resilience import (
    BackoffPolicy,
    CheckpointStore,
    FaultInjector,
    FaultModel,
)

WORKLOAD = SegmentationWorkload(num_volumes=8, epochs=1)


def _campaign_signature(report):
    return json.dumps(
        {
            "cells": [c.to_record() for c in report.cells],
            "errors": [e.to_record() for e in report.errors],
            "attempts": report.total_attempts,
            "backoff_s": report.total_backoff_s,
        },
        sort_keys=True,
    )


def _point_record(point):
    return {
        "config": point.config,
        "objectives": list(point.objectives),
        "synthesis": synthesis_to_record(point.synthesis),
    }


def _dse_signature(result):
    return json.dumps(
        {
            "evaluated": [_point_record(p) for p in result.evaluated],
            "front": [_point_record(p) for p in result.front],
            "unique": result.unique_evaluations,
        },
        sort_keys=True,
    )


class TestCampaignDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_run_campaign_bit_identical(self, workers):
        serial = run_campaign(WORKLOAD)
        parallel = run_campaign(WORKLOAD, parallel=workers)
        assert [c.to_record() for c in parallel] == [
            c.to_record() for c in serial
        ]

    def test_run_campaign_cache_round_trip(self, tmp_path):
        serial = run_campaign(WORKLOAD)
        cache = ResultCache(path=tmp_path / "campaign.json")
        cold = run_campaign(WORKLOAD, parallel=2, cache=cache)
        cold_stats = cache.stats()
        warm = run_campaign(WORKLOAD, parallel=2, cache=cache)
        warm_stats = cache.stats()
        for report in (cold, warm):
            assert [c.to_record() for c in report] == [
                c.to_record() for c in serial
            ]
        assert cold_stats["hits"] == 0
        assert warm_stats["hits"] - cold_stats["hits"] == len(serial)
        assert warm_stats["misses"] == cold_stats["misses"]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_resilient_campaign_bit_identical(self, workers):
        policy = BackoffPolicy(max_attempts=4)

        def run(parallel):
            injector = FaultInjector(
                FaultModel(storage_transient_rate=0.3,
                           device_dropout=0.3),
                seed=9,
            )
            return run_resilient_campaign(
                WORKLOAD, injector=injector, policy=policy,
                parallel=parallel,
            )

        serial = run(None)
        # Faults actually fired: retries beyond one attempt per cell.
        assert serial.total_attempts > serial.total_cells
        parallel = run(workers)
        assert _campaign_signature(parallel) == _campaign_signature(
            serial
        )

    def test_resilient_parallel_checkpoint_resumes_serially(
        self, tmp_path
    ):
        # A parallel run's checkpoint must be readable by a serial
        # resume (and vice versa): same keys, same records.
        policy = BackoffPolicy(max_attempts=4)

        def injector():
            return FaultInjector(
                FaultModel(storage_transient_rate=0.3), seed=9
            )

        full = run_resilient_campaign(
            WORKLOAD, injector=injector(), policy=policy,
            checkpoint=CheckpointStore(tmp_path / "par.json"),
            parallel=2,
        )
        resumed = run_resilient_campaign(
            WORKLOAD, injector=injector(), policy=policy,
            checkpoint=CheckpointStore(tmp_path / "par.json"),
        )
        # Backoff seconds are not checkpointed, so compare the cell and
        # error records (as the serial resume test does), not totals.
        assert resumed.keys() == full.keys()
        assert [c.to_record() for c in resumed.cells] == [
            c.to_record() for c in full.cells
        ]
        assert [e.to_record() for e in resumed.errors] == [
            e.to_record() for e in full.errors
        ]


class TestDSEDeterminism:
    @pytest.fixture()
    def runner(self):
        nest = make_kernel("gemm", size=16)
        return DSERunner(nest, space=hls_directive_space(max_unroll=8))

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize(
        "explorer",
        [
            ExhaustiveExplorer(),
            RandomExplorer(),
            NSGA2Explorer(population=8),
        ],
        ids=["exhaustive", "random", "nsga2"],
    )
    def test_run_bit_identical(self, runner, explorer, workers):
        serial = runner.run(explorer, budget=40, seed=3)
        parallel = runner.run(
            explorer, budget=40, seed=3, parallel=workers
        )
        assert _dse_signature(parallel) == _dse_signature(serial)

    def test_run_cache_round_trip(self, runner, tmp_path):
        explorer = RandomExplorer()
        serial = runner.run(explorer, budget=30, seed=3)
        cache = ResultCache(path=tmp_path / "dse.json")
        cold = runner.run(
            explorer, budget=30, seed=3, parallel=2, cache=cache
        )
        warm = runner.run(
            explorer, budget=30, seed=3, parallel=2, cache=cache
        )
        assert _dse_signature(cold) == _dse_signature(serial)
        assert _dse_signature(warm) == _dse_signature(serial)
        stats = cache.stats()
        assert stats["hits"] >= len(serial.evaluated)

    def test_compare_records_wall_time_and_evaluations(self, runner):
        scores = runner.compare(
            [RandomExplorer(), ExhaustiveExplorer()],
            budget=20,
            parallel=2,
        )
        for name in ("random", "exhaustive"):
            assert scores[name]["wall_time_s"] >= 0.0
            assert scores[name]["evaluations"] >= 1.0


class TestSweepDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_crossbar_sweep_bit_identical(self, workers):
        specs = sweep_grid(6, rows=24, cols=24, num_inputs=4)
        serial = crossbar_sweep(specs)
        engine = ParallelEvaluator(max_workers=workers)
        assert crossbar_sweep(specs, parallel=engine) == serial

    def test_crossbar_sweep_warm_cache_hit_rate(self, tmp_path):
        specs = sweep_grid(6, rows=24, cols=24, num_inputs=4)
        cache = ResultCache(path=tmp_path / "sweep.json")
        cold = crossbar_sweep(specs, parallel=2, cache=cache)
        before = cache.stats()
        warm = crossbar_sweep(specs, parallel=2, cache=cache)
        after = cache.stats()
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        assert warm == cold
        assert hits / (hits + misses) >= 0.95
