"""Property-based tests of the HLS schedulers over random DAGs.

The targeted tests in test_hls.py use hand-built graphs; these generate
arbitrary dataflow DAGs (random op kinds, random edges to earlier nodes)
and check the scheduler invariants that must hold universally.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hls.allocation import bind_operations
from repro.hls.ir import DataflowGraph, Operation, OpKind
from repro.hls.scheduling import (
    mobility,
    schedule_alap,
    schedule_asap,
    schedule_list,
)

_KINDS = [
    OpKind.ADD, OpKind.MUL, OpKind.MAC, OpKind.CMP,
    OpKind.LOAD, OpKind.STORE, OpKind.LOGIC,
]


@st.composite
def random_dag(draw):
    """A random dataflow DAG: each node may depend on earlier nodes."""
    n = draw(st.integers(min_value=1, max_value=18))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    graph = DataflowGraph("random")
    for i in range(n):
        kind = _KINDS[rng.integers(len(_KINDS))]
        max_inputs = min(i, 3)
        k = int(rng.integers(0, max_inputs + 1)) if max_inputs else 0
        deps = tuple(
            f"op{j}" for j in rng.choice(i, size=k, replace=False)
        ) if k else ()
        graph.add(Operation(f"op{i}", kind, inputs=deps))
    return graph


class TestSchedulerProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_dag())
    def test_asap_valid_and_minimal(self, graph):
        schedule = schedule_asap(graph)
        schedule.validate()
        assert schedule.makespan == graph.critical_path_latency()

    @settings(max_examples=60, deadline=None)
    @given(random_dag())
    def test_alap_valid_same_makespan(self, graph):
        alap = schedule_alap(graph)
        alap.validate()
        assert alap.makespan <= schedule_asap(graph).makespan

    @settings(max_examples=60, deadline=None)
    @given(random_dag())
    def test_mobility_nonnegative(self, graph):
        assert all(s >= 0 for s in mobility(graph).values())
        assert any(s == 0 for s in mobility(graph).values())

    @settings(max_examples=40, deadline=None)
    @given(random_dag(), st.integers(min_value=1, max_value=3))
    def test_list_schedule_valid_under_any_budget(self, graph, units):
        resources = {kind: units for kind in _KINDS}
        schedule = schedule_list(graph, resources)
        schedule.validate()
        usage = schedule.resource_usage()
        for kind, peak in usage.items():
            assert peak <= units

    @settings(max_examples=40, deadline=None)
    @given(random_dag())
    def test_list_schedule_never_beats_asap(self, graph):
        constrained = schedule_list(graph, {OpKind.MUL: 1, OpKind.LOAD: 1})
        assert constrained.makespan >= schedule_asap(graph).makespan

    @settings(max_examples=40, deadline=None)
    @given(random_dag())
    def test_binding_consistent_with_schedule(self, graph):
        schedule = schedule_list(graph, {})
        binding = bind_operations(schedule)
        # Every op bound; two ops sharing a unit never overlap in time.
        assert set(binding.unit_of) == {
            op.name for op in graph.operations
        }
        by_unit = {}
        for name, unit in binding.unit_of.items():
            by_unit.setdefault(unit, []).append(name)
        for names in by_unit.values():
            intervals = []
            for name in names:
                start = schedule.start_cycle[name]
                duration = max(graph.op(name).latency, 1)
                intervals.append((start, start + duration))
            intervals.sort()
            for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
                assert start_b >= end_a
