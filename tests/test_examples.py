"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; these tests execute
each script's ``main()`` in-process (stdout captured by pytest) so API
drift that would break a user's first contact is caught by CI.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "super_resolution",
    "dna_storage",
    "imc_inference",
    "sparta_graphs",
    "scf_transformer",
    "hetero_pipeline",
    "hls_dse",
]


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_present(self):
        for name in EXAMPLES:
            assert (EXAMPLES_DIR / f"{name}.py").exists(), name

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_runs(self, name, capsys):
        module = _load_example(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 3, f"{name} produced no output"

    def test_quickstart_covers_all_thrusts(self, capsys):
        module = _load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        for marker in ("Survey", "HLS", "HTCONV", "IMC", "DNA",
                       "Compute Unit"):
            assert marker in out
