"""Tests for the extension modules: DNA q-gram pre-filters, DSE
sensitivity analysis, and the SCF host dispatch model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dna.editdistance import levenshtein
from repro.dna.filters import (
    filtered_all_pairs_within,
    qgram_distance_lower_bound,
    qgram_filter,
    qgram_profile,
)
from repro.dse.objectives import HLSEvaluator
from repro.dse.sensitivity import (
    most_sensitive_parameter,
    parameter_sensitivity,
)
from repro.dse.space import hls_directive_space
from repro.hls.kernels import make_kernel
from repro.scf.host import (
    DispatchResult,
    HostConfig,
    dispatch_overhead_fraction,
    run_dispatch,
)
from repro.scf.fabric import ScalableComputeFabric
from repro.scf.workloads import TransformerConfig

dna = st.text(alphabet="ACGT", min_size=0, max_size=40)


class TestQgramProfile:
    def test_known_profile(self):
        profile = qgram_profile("ACGTACG", q=3)
        assert profile["ACG"] == 2
        assert profile["CGT"] == 1
        assert sum(profile.values()) == 5

    def test_short_sequence_empty(self):
        assert not qgram_profile("AC", q=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            qgram_profile("ACGT", q=0)
        with pytest.raises(ValueError):
            qgram_filter("A", "A", k=-1)


class TestQgramBound:
    @settings(max_examples=150, deadline=None)
    @given(dna, dna)
    def test_lower_bound_never_exceeds_distance(self, a, b):
        # Completeness: the filter must never reject a true match.
        assert qgram_distance_lower_bound(a, b) <= levenshtein(a, b) + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(dna, st.integers(min_value=0, max_value=10))
    def test_identical_strings_always_pass(self, a, k):
        assert qgram_filter(a, a, k)

    def test_distant_strings_rejected(self):
        a = "A" * 30
        b = "T" * 30
        assert not qgram_filter(a, b, k=3)


class TestFilteredSearch:
    def _reads(self):
        rng = np.random.default_rng(0)
        strands = ["".join(rng.choice(list("ACGT"), 40)) for _ in range(6)]
        reads = []
        for s in strands:
            reads.append(s)
            # a close variant: one substitution
            variant = list(s)
            variant[5] = "A" if s[5] != "A" else "C"
            reads.append("".join(variant))
        return reads

    def test_filter_preserves_matches(self):
        reads = self._reads()
        with_filter, stats_f = filtered_all_pairs_within(reads, k=3)
        without, stats_n = filtered_all_pairs_within(
            reads, k=3, use_filter=False
        )
        assert set(with_filter) == set(without)

    def test_filter_saves_work(self):
        reads = self._reads()
        _, stats_f = filtered_all_pairs_within(reads, k=3)
        _, stats_n = filtered_all_pairs_within(reads, k=3, use_filter=False)
        assert stats_f.filter_rate > 0.5
        assert stats_f.cell_updates < stats_n.cell_updates
        assert stats_f.verified < stats_n.verified

    def test_stats_consistency(self):
        reads = self._reads()
        matches, stats = filtered_all_pairs_within(reads, k=3)
        assert stats.pairs == len(reads) * (len(reads) - 1) // 2
        assert stats.filtered_out + stats.verified == stats.pairs
        assert stats.matches == len(matches)


class TestSensitivity:
    def _evaluator(self):
        return HLSEvaluator(
            make_kernel("gemm", size=128),
            hls_directive_space(max_unroll=8, max_units=8),
        )

    def test_rows_cover_all_parameters(self):
        evaluator = self._evaluator()
        base = {p.name: p.values[0] for p in evaluator.space.parameters}
        rows = parameter_sensitivity(evaluator, base)
        assert {r.parameter for r in rows} == {
            p.name for p in evaluator.space.parameters
        }

    def test_sorted_by_latency_leverage(self):
        evaluator = self._evaluator()
        base = {p.name: p.values[0] for p in evaluator.space.parameters}
        rows = parameter_sensitivity(evaluator, base)
        spans = [r.latency_span for r in rows]
        assert spans == sorted(spans, reverse=True)
        assert all(s >= 1.0 for s in spans)

    def test_pipeline_is_high_leverage_for_gemm(self):
        evaluator = self._evaluator()
        base = {p.name: p.values[0] for p in evaluator.space.parameters}
        top = most_sensitive_parameter(evaluator, base)
        assert top in ("pipeline", "unroll")

    def test_base_validated(self):
        evaluator = self._evaluator()
        with pytest.raises(ValueError):
            parameter_sensitivity(evaluator, {"unroll": 3})


class TestHostDispatch:
    def test_dispatch_counts(self):
        result = run_dispatch(TransformerConfig(seq_len=2048), num_cus=8)
        assert isinstance(result, DispatchResult)
        assert result.tiles == 8
        assert result.cycles > 0
        assert result.cycles_per_tile > 1

    def test_descriptors_cover_sequence(self):
        workload = TransformerConfig(seq_len=1024)
        result = run_dispatch(workload, num_cus=4)
        bases = [base for base, _ in result.descriptors]
        rows = {count for _, count in result.descriptors}
        assert bases == [i * 256 for i in range(4)]
        assert rows == {256}

    def test_overhead_negligible_vs_fabric(self):
        workload = TransformerConfig(seq_len=2048)
        fabric = ScalableComputeFabric()
        point = fabric.run_block(workload, 16)
        fraction = dispatch_overhead_fraction(
            workload, 16, point.seconds_per_block
        )
        assert fraction < 0.01  # dispatch is not the bottleneck

    def test_validation(self):
        with pytest.raises(ValueError):
            run_dispatch(TransformerConfig(), num_cus=0)
        with pytest.raises(ValueError):
            HostConfig(clock_hz=0)
        with pytest.raises(ValueError):
            dispatch_overhead_fraction(TransformerConfig(), 4, 0.0)
