"""Tests for the Levenshtein kernels (full DP, banded, Myers)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dna.editdistance import (
    CellUpdateCounter,
    levenshtein,
    levenshtein_banded,
    levenshtein_myers,
    levenshtein_reference,
    pairwise_distance_matrix,
)

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=30)


class TestKnownValues:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("A", "", 1),
            ("", "ACGT", 4),
            ("ACGT", "ACGT", 0),
            ("ACGT", "AGGT", 1),
            ("ACGT", "CGT", 1),
            ("ACGT", "TACGT", 1),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
        ],
    )
    def test_all_kernels(self, a, b, expected):
        assert levenshtein(a, b) == expected
        assert levenshtein_myers(a, b) == expected
        assert levenshtein_reference(a, b) == expected
        assert levenshtein_banded(a, b, band=10) == expected


class TestAgreementProperties:
    @settings(max_examples=150, deadline=None)
    @given(dna_strings, dna_strings)
    def test_dp_matches_reference(self, a, b):
        assert levenshtein(a, b) == levenshtein_reference(a, b)

    @settings(max_examples=150, deadline=None)
    @given(dna_strings, dna_strings)
    def test_myers_matches_reference(self, a, b):
        assert levenshtein_myers(a, b) == levenshtein_reference(a, b)

    @settings(max_examples=100, deadline=None)
    @given(dna_strings, dna_strings, st.integers(min_value=0, max_value=8))
    def test_banded_semantics(self, a, b, band):
        ref = levenshtein_reference(a, b)
        result = levenshtein_banded(a, b, band)
        if ref <= band:
            assert result == ref
        else:
            assert result is None


class TestMetricAxioms:
    @settings(max_examples=80, deadline=None)
    @given(dna_strings)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @settings(max_examples=80, deadline=None)
    @given(dna_strings, dna_strings)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @settings(max_examples=60, deadline=None)
    @given(dna_strings, dna_strings, dna_strings)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @settings(max_examples=80, deadline=None)
    @given(dna_strings, dna_strings)
    def test_length_difference_lower_bound(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))


class TestCellAccounting:
    def test_dp_charges_nm(self):
        counter = CellUpdateCounter()
        levenshtein("ACGTACGT", "ACGT", counter=counter)
        assert counter.cells == 32

    def test_myers_charges_nm(self):
        counter = CellUpdateCounter()
        levenshtein_myers("ACGTACGT", "ACGT", counter=counter)
        assert counter.cells == 32

    def test_banded_charges_less_than_full(self):
        a = "ACGT" * 20
        b = "ACGT" * 20
        full = CellUpdateCounter()
        levenshtein(a, b, counter=full)
        banded = CellUpdateCounter()
        levenshtein_banded(a, b, band=4, counter=banded)
        assert banded.cells < full.cells

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            CellUpdateCounter().charge(-1)

    def test_band_rejects_negative(self):
        with pytest.raises(ValueError):
            levenshtein_banded("A", "A", band=-1)


class TestDistanceMatrix:
    def test_symmetric_zero_diagonal(self):
        seqs = ["ACGT", "AGGT", "TTTT"]
        matrix = pairwise_distance_matrix(seqs)
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)
        assert matrix[0, 1] == 1

    def test_counter_threads_through(self):
        counter = CellUpdateCounter()
        pairwise_distance_matrix(["ACGT", "ACGA"], counter=counter)
        assert counter.cells == 16
