"""Tests for repro.survey: dataset integrity and Fig. 1 / Fig. 7 analytics."""

import numpy as np
import pytest

from repro.survey import (
    AcceleratorRecord,
    PlatformClass,
    Precision,
    class_statistics,
    efficiency_trend,
    iso_efficiency_line,
    load_dataset,
    power_band_histogram,
    riscv_subset,
    scatter_series,
)
from repro.survey.analysis import POWER_BANDS_W, densest_band
from repro.survey.dataset import europe_subset


class TestRecords:
    def test_efficiency_derived(self):
        rec = AcceleratorRecord(
            "x", 2020, PlatformClass.GPU, peak_tops=100, power_w=50
        )
        assert rec.tops_per_watt == pytest.approx(2.0)

    def test_rejects_nonpositive_tops(self):
        with pytest.raises(ValueError):
            AcceleratorRecord("x", 2020, PlatformClass.GPU, 0, 10)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            AcceleratorRecord("x", 2020, PlatformClass.GPU, 1, 0)

    def test_rejects_bad_year(self):
        with pytest.raises(ValueError):
            AcceleratorRecord("x", 1885, PlatformClass.GPU, 1, 1)

    def test_describe(self):
        rec = AcceleratorRecord(
            "H100", 2022, PlatformClass.GPU, 1979, 700, Precision.FP8
        )
        text = rec.describe()
        assert "H100" in text and "TOPS/W" in text


class TestDataset:
    def test_nonempty_and_diverse(self):
        data = load_dataset()
        assert len(data) >= 40
        platforms = {r.platform for r in data}
        assert PlatformClass.CPU in platforms
        assert PlatformClass.GPU in platforms
        assert PlatformClass.RISCV in platforms
        assert PlatformClass.NPU_SRAM_IMC in platforms

    def test_unique_names(self):
        names = [r.name for r in load_dataset()]
        assert len(names) == len(set(names))

    def test_filter_by_platform(self):
        gpus = load_dataset(PlatformClass.GPU)
        assert gpus and all(r.platform is PlatformClass.GPU for r in gpus)

    def test_riscv_subset_size(self):
        subset = riscv_subset()
        assert len(subset) >= 10

    def test_returned_list_is_a_copy(self):
        a = load_dataset()
        a.clear()
        assert load_dataset()

    def test_europe_subset_mostly_riscv(self):
        eu = europe_subset()
        assert eu
        riscv = [r for r in eu if r.platform is PlatformClass.RISCV]
        # Fig. 7 point: a strong European presence among RISC-V designs.
        assert len(riscv) >= 5

    def test_contains_icsc_prototype(self):
        names = {r.name for r in riscv_subset()}
        assert any("ICSC" in n for n in names)


class TestFig1Analytics:
    def test_class_ranking_cpu_worst_imc_best(self):
        stats = class_statistics(load_dataset())
        order = [s.platform for s in stats]
        # The Fig. 1 narrative: CPUs least efficient, IMC NPUs most.
        assert order[0] is PlatformClass.CPU
        imc_rank = max(
            order.index(PlatformClass.NPU_SRAM_IMC),
            order.index(PlatformClass.NPU_RRAM_IMC),
        )
        assert imc_rank >= len(order) - 3

    def test_gpu_more_efficient_than_cpu(self):
        stats = {s.platform: s for s in class_statistics(load_dataset())}
        assert (
            stats[PlatformClass.GPU].median_tops_per_watt
            > stats[PlatformClass.CPU].median_tops_per_watt
        )

    def test_trend_positive_growth(self):
        trend = efficiency_trend(load_dataset())
        assert trend.growth_per_year > 1.0
        assert 0 < trend.doubling_years < 10

    def test_trend_prediction_monotone(self):
        trend = efficiency_trend(load_dataset())
        assert trend.predict(2025) > trend.predict(2015)

    def test_trend_needs_two_records(self):
        with pytest.raises(ValueError):
            efficiency_trend(load_dataset()[:1])

    def test_trend_needs_year_spread(self):
        rec = load_dataset()[0]
        with pytest.raises(ValueError):
            efficiency_trend([rec, rec])

    def test_scatter_series_cover_dataset(self):
        data = load_dataset()
        series = scatter_series(data)
        total = sum(len(xs) for xs, _ in series.values())
        assert total == len(data)

    def test_iso_line_constant_efficiency(self):
        power, tops = iso_efficiency_line(10.0, (0.01, 100.0))
        assert np.allclose(tops / power, 10.0)

    def test_iso_line_rejects_bad_range(self):
        with pytest.raises(ValueError):
            iso_efficiency_line(1.0, (1.0, 0.5))


class TestFig7Analytics:
    def test_riscv_cluster_in_100mw_1w_band(self):
        # The paper: RISC-V designs are "clustered, especially in the
        # 100mW-1W power range".
        assert densest_band(riscv_subset()) == (0.1, 1.0)

    def test_above_1w_sparse(self):
        hist = power_band_histogram(riscv_subset())
        cluster = hist[(0.1, 1.0)]
        hpc = hist[(1.0, 10.0)] + hist[(10.0, 100.0)]
        assert hpc < cluster

    def test_histogram_covers_all_riscv(self):
        subset = riscv_subset()
        hist = power_band_histogram(subset)
        assert sum(hist.values()) == len(subset)

    def test_bands_are_decades(self):
        for lo, hi in POWER_BANDS_W:
            assert hi == pytest.approx(10 * lo)
