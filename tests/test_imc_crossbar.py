"""Tests for the analog crossbar, converters and digital IMC macro."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.imc.adc import ADCConfig, ConversionLedger, DACConfig
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.imc.dimc import DIMCCostModel, DigitalIMCMacro


class TestDAC:
    def test_quantize_endpoints(self):
        dac = DACConfig(bits=8, v_max=0.3)
        out = dac.quantize(np.array([-1.0, 1.0]))
        assert out[0] == pytest.approx(-0.3)
        assert out[1] == pytest.approx(0.3)

    def test_quantize_clips(self):
        dac = DACConfig(bits=4, v_max=0.3)
        out = dac.quantize(np.array([5.0, -5.0]))
        assert out[0] == pytest.approx(0.3)
        assert out[1] == pytest.approx(-0.3)

    def test_resolution(self):
        coarse = DACConfig(bits=2, v_max=1.0)
        x = np.array([0.3])
        assert abs(coarse.quantize(x)[0] - 0.3) > 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            DACConfig(bits=0)
        with pytest.raises(ValueError):
            DACConfig(v_max=0)


class TestADC:
    def test_quantize_saturates(self):
        adc = ADCConfig(bits=8, i_max=1e-3)
        out = adc.quantize(np.array([5.0, -5.0]))
        assert out[0] == pytest.approx(1e-3)
        assert out[1] == pytest.approx(-1e-3)

    def test_energy_doubles_per_bit(self):
        assert ADCConfig(bits=9).energy_per_conversion_j == pytest.approx(
            2 * ADCConfig(bits=8).energy_per_conversion_j
        )

    def test_lsb(self):
        adc = ADCConfig(bits=8, i_max=1e-3)
        assert adc.lsb_current() == pytest.approx(2e-3 / 255)

    @given(st.floats(min_value=-1e-3, max_value=1e-3))
    def test_quantization_error_bounded(self, current):
        adc = ADCConfig(bits=8, i_max=1e-3)
        err = abs(adc.quantize(np.array([current]))[0] - current)
        assert err <= adc.lsb_current() / 2 + 1e-18


class TestLedger:
    def test_charges_accumulate(self):
        ledger = ConversionLedger()
        adc, dac = ADCConfig(), DACConfig()
        ledger.charge_adc(adc, 10)
        ledger.charge_dac(dac, 5)
        assert ledger.adc_conversions == 10
        assert ledger.dac_conversions == 5
        assert ledger.total_energy_j == pytest.approx(
            10 * adc.energy_per_conversion_j + 5 * dac.energy_per_conversion_j
        )

    def test_merge(self):
        a, b = ConversionLedger(), ConversionLedger()
        b.charge_adc(ADCConfig(), 3)
        a.merge(b)
        assert a.adc_conversions == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConversionLedger().charge_adc(ADCConfig(), -1)


class TestAnalogCrossbar:
    def _programmed(self, rows=32, cols=32, seed=0, **cfg_kwargs):
        config = CrossbarConfig(rows=rows, cols=cols, **cfg_kwargs)
        xbar = AnalogCrossbar(config, seed=seed)
        rng = np.random.default_rng(seed)
        weights = rng.normal(0, 0.3, (rows, cols))
        xbar.program_weights(weights)
        return xbar, weights

    def test_mvm_accurate_to_few_percent(self):
        xbar, weights = self._programmed()
        x = np.random.default_rng(1).uniform(-1, 1, 32)
        y_true = weights.T @ x
        y = xbar.mvm(x)
        rel = np.linalg.norm(y - y_true) / np.linalg.norm(y_true)
        assert rel < 0.15

    def test_effective_weights_close_to_programmed(self):
        xbar, weights = self._programmed()
        eff = xbar.effective_weights()
        corr = np.corrcoef(eff.ravel(), weights.ravel())[0, 1]
        assert corr > 0.99

    def test_unprogrammed_raises(self):
        xbar = AnalogCrossbar(CrossbarConfig(rows=4, cols=4), seed=0)
        with pytest.raises(RuntimeError):
            xbar.mvm(np.zeros(4))
        with pytest.raises(RuntimeError):
            xbar.effective_weights()

    def test_weight_shape_checked(self):
        xbar = AnalogCrossbar(CrossbarConfig(rows=4, cols=4), seed=0)
        with pytest.raises(ValueError):
            xbar.program_weights(np.zeros((3, 4)))

    def test_input_shape_checked(self):
        xbar, _ = self._programmed(rows=8, cols=8)
        with pytest.raises(ValueError):
            xbar.mvm(np.zeros(4))

    def test_drift_degrades_pcm_more(self):
        from repro.imc.devices import PCM_PARAMS, RRAM_PARAMS

        errors = {}
        for params in (RRAM_PARAMS, PCM_PARAMS):
            xbar, weights = self._programmed(device=params, seed=3)
            x = np.random.default_rng(4).uniform(-1, 1, 32)
            y_true = weights.T @ x
            y = xbar.mvm(x, t_seconds=1e6)
            errors[params.name] = float(
                np.linalg.norm(y - y_true) / np.linalg.norm(y_true)
            )
        assert errors["PCM"] > errors["RRAM"]

    def test_program_verify_beats_open_loop_mvm(self):
        errs = {}
        for use_pv in (True, False):
            xbar, weights = self._programmed(
                seed=5, use_program_verify=use_pv
            )
            rng = np.random.default_rng(6)
            total, count = 0.0, 0
            for _ in range(10):
                x = rng.uniform(-1, 1, 32)
                y_true = weights.T @ x
                y = xbar.mvm(x)
                total += float(
                    np.linalg.norm(y - y_true) / np.linalg.norm(y_true)
                )
                count += 1
            errs[use_pv] = total / count
        assert errs[True] < errs[False]

    def test_ir_drop_attenuates_far_cells(self):
        config = CrossbarConfig(rows=64, cols=64, wire_resistance_ohm=5.0)
        xbar = AnalogCrossbar(config, seed=0)
        factor = xbar._ir_drop_factor()
        assert factor[0, 0] > factor[-1, -1]
        assert factor[0, 0] == pytest.approx(1.0)

    def test_zero_wire_resistance_no_attenuation(self):
        config = CrossbarConfig(rows=8, cols=8, wire_resistance_ohm=0.0)
        xbar = AnalogCrossbar(config, seed=0)
        assert np.allclose(xbar._ir_drop_factor(), 1.0)

    def test_ledger_counts_conversions(self):
        xbar, _ = self._programmed(rows=16, cols=16)
        xbar.mvm(np.zeros(16))
        assert xbar.ledger.dac_conversions == 16
        assert xbar.ledger.adc_conversions == 16

    def test_accumulated_mvm_fewer_conversions(self):
        xbar, weights = self._programmed(
            rows=16, cols=16, accumulation_depth=4
        )
        xs = np.random.default_rng(7).uniform(-0.25, 0.25, (4, 16))
        y = xbar.mvm_accumulated(xs)
        assert xbar.ledger.adc_conversions == 16  # one conversion per column
        assert xbar.ledger.dac_conversions == 64
        y_true = weights.T @ xs.sum(axis=0)
        rel = np.linalg.norm(y - y_true) / max(np.linalg.norm(y_true), 1e-12)
        assert rel < 0.3

    def test_accumulation_depth_enforced(self):
        xbar, _ = self._programmed(rows=8, cols=8, accumulation_depth=2)
        with pytest.raises(ValueError):
            xbar.mvm_accumulated(np.zeros((3, 8)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CrossbarConfig(rows=0)
        with pytest.raises(ValueError):
            CrossbarConfig(wire_resistance_ohm=-1)
        with pytest.raises(ValueError):
            CrossbarConfig(accumulation_depth=0)

    def test_zero_weights_programmable(self):
        xbar = AnalogCrossbar(CrossbarConfig(rows=4, cols=4), seed=0)
        xbar.program_weights(np.zeros((4, 4)))
        y = xbar.mvm(np.ones(4))
        assert np.all(np.abs(y) < 0.2)


class TestDigitalIMC:
    def test_exact_mvm(self):
        rng = np.random.default_rng(0)
        w = rng.integers(-128, 128, (24, 12))
        macro = DigitalIMCMacro(w)
        x = rng.integers(-128, 128, 24)
        assert np.array_equal(macro.mvm(x), w.T @ x)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10_000))
    def test_exactness_property(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        w = rng.integers(-8, 8, (rows, cols))
        macro = DigitalIMCMacro(w, w_bits=4, x_bits=4)
        x = rng.integers(-8, 8, rows)
        assert np.array_equal(macro.mvm(x), w.T @ x)

    def test_rejects_float_weights(self):
        with pytest.raises(ValueError):
            DigitalIMCMacro(np.ones((2, 2)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DigitalIMCMacro(np.array([[200]]), w_bits=8)
        macro = DigitalIMCMacro(np.array([[1]]), x_bits=4)
        with pytest.raises(ValueError):
            macro.mvm(np.array([100]))

    def test_rejects_float_input(self):
        macro = DigitalIMCMacro(np.array([[1]]))
        with pytest.raises(ValueError):
            macro.mvm(np.array([0.5]))

    def test_energy_scales_with_precision(self):
        model = DIMCCostModel()
        assert model.mvm_energy_j(64, 64, 8, 8) > model.mvm_energy_j(
            64, 64, 4, 4
        )

    def test_latency_bit_serial(self):
        model = DIMCCostModel()
        assert model.mvm_latency_s(8, 8) == pytest.approx(
            64 * model.cycle_time_s
        )

    def test_cost_validation(self):
        model = DIMCCostModel()
        with pytest.raises(ValueError):
            model.mvm_energy_j(0, 1, 1, 1)
        with pytest.raises(ValueError):
            model.mvm_latency_s(0, 8)
