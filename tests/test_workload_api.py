"""Conformance suite for the unified Workload / RunResult contract.

Every registered workload must honour the :mod:`repro.core.api`
contract: deterministic evaluation (same seed -> identical canonical
``RunResult``), lossless JSON round-tripping, and a valid declared
space whose example configuration actually evaluates.  The suite
iterates the registry so new adapters are covered the moment they
register.
"""

import dataclasses
import json

import pytest

from repro.core.api import (
    RunResult,
    VOLATILE_FIELDS,
    Workload,
    build_run_result,
    ensure_default_workloads,
    example_config,
    get_workload,
    register_workload,
    request_digest,
    workload_names,
)
from repro.core.errors import ValidationError

EXPECTED_WORKLOADS = {
    "axc-htconv",
    "dna-pipeline",
    "dse",
    "hetero-cell",
    "hls",
    "imc-crossbar",
    "sparta",
}


def _all_workloads():
    ensure_default_workloads()
    return [get_workload(name) for name in workload_names()]


def _workload_params():
    return pytest.mark.parametrize(
        "name", sorted(EXPECTED_WORKLOADS), ids=sorted(EXPECTED_WORKLOADS)
    )


class TestRegistry:
    def test_all_seven_subsystems_registered(self):
        assert EXPECTED_WORKLOADS <= set(workload_names())

    def test_get_workload_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown workload"):
            get_workload("no-such-subsystem")

    def test_collision_rejected_without_replace(self):
        class Fake:
            name = "imc-crossbar"

            def space(self):
                return {}

            def evaluate(self, config, *, seed=0, impl=None):
                raise NotImplementedError

        with pytest.raises(ValidationError, match="already registered"):
            register_workload(Fake())

    def test_replace_allows_override_and_restore(self):
        original = get_workload("imc-crossbar")

        class Fake:
            name = "imc-crossbar"

            def space(self):
                return {}

            def evaluate(self, config, *, seed=0, impl=None):
                raise NotImplementedError

        register_workload(Fake(), replace=True)
        try:
            assert get_workload("imc-crossbar").__class__ is Fake
        finally:
            register_workload(original, replace=True)
        assert get_workload("imc-crossbar") is original

    def test_nameless_workload_rejected(self):
        class Nameless:
            def space(self):
                return {}

            def evaluate(self, config, *, seed=0, impl=None):
                raise NotImplementedError

        with pytest.raises(ValidationError, match="name"):
            register_workload(Nameless())

    def test_registered_instances_satisfy_protocol(self):
        for workload in _all_workloads():
            assert isinstance(workload, Workload)
            assert isinstance(workload.name, str) and workload.name


class TestSpaces:
    def test_spaces_declare_nonempty_choice_tuples(self):
        for workload in _all_workloads():
            space = workload.space()
            assert space, f"{workload.name} declares an empty space"
            for param, choices in space.items():
                assert isinstance(param, str)
                assert isinstance(choices, tuple) and choices, (
                    f"{workload.name}.{param} must offer a non-empty "
                    "tuple of choices"
                )

    def test_example_config_is_first_choice_of_each_param(self):
        for workload in _all_workloads():
            config = example_config(workload)
            assert config == {
                name: choices[0]
                for name, choices in workload.space().items()
            }


@_workload_params()
class TestConformance:
    """Per-workload contract checks on the cheap example configuration."""

    def test_same_seed_is_byte_identical(self, name):
        workload = get_workload(name)
        config = example_config(workload)
        first = workload.evaluate(config, seed=3)
        second = workload.evaluate(config, seed=3)
        assert first.canonical_json() == second.canonical_json()
        assert first.same_result(second)

    def test_different_seed_changes_digest(self, name):
        workload = get_workload(name)
        config = example_config(workload)
        first = workload.evaluate(config, seed=0)
        second = workload.evaluate(config, seed=1)
        assert first.config_digest != second.config_digest

    def test_result_shape_and_digest(self, name):
        workload = get_workload(name)
        config = example_config(workload)
        result = workload.evaluate(config, seed=5)
        assert isinstance(result, RunResult)
        assert result.workload == name
        assert result.seed == 5
        assert result.status == "ok" and result.ok
        assert result.wall_time_s >= 0.0
        assert result.metrics, f"{name} returned no metrics"
        assert result.config_digest == request_digest(
            name, config, 5, None
        )

    def test_json_round_trip_is_lossless(self, name):
        workload = get_workload(name)
        result = workload.evaluate(example_config(workload), seed=2)
        payload = result.to_json()
        json.dumps(payload)  # strictly JSON-serializable
        restored = RunResult.from_json(
            json.loads(json.dumps(payload))
        )
        assert restored == result

    def test_metrics_are_json_scalars(self, name):
        workload = get_workload(name)
        result = workload.evaluate(example_config(workload), seed=0)
        for key, value in result.metrics.items():
            assert isinstance(value, (bool, int, float, str)), (
                f"{name}.metrics[{key!r}] is {type(value).__name__}, "
                "not a JSON scalar"
            )
            if isinstance(value, float):
                assert value == value and abs(value) != float("inf"), (
                    f"{name}.metrics[{key!r}] must be finite"
                )


class TestRunResult:
    def _result(self, **overrides):
        base = dict(
            workload="demo",
            metrics={"cycles": 12, "throughput": 3.5},
            seed=0,
            config_digest="abc123",
            wall_time_s=0.25,
        )
        base.update(overrides)
        return RunResult(**base)

    def test_invalid_status_rejected(self):
        with pytest.raises(ValidationError, match="status"):
            self._result(status="pending")

    def test_error_status_requires_message(self):
        with pytest.raises(ValidationError, match="message"):
            self._result(status="error")

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValidationError, match="attempts"):
            self._result(attempts=0)

    def test_from_json_rejects_unknown_fields(self):
        payload = self._result().to_json()
        payload["surprise"] = 1
        with pytest.raises(ValidationError, match="unknown RunResult"):
            RunResult.from_json(payload)

    def test_canonical_json_drops_volatile_fields(self):
        fast = self._result(wall_time_s=0.001, attempts=1)
        slow = self._result(wall_time_s=9.0, attempts=3)
        assert fast.canonical_json() == slow.canonical_json()
        assert fast.same_result(slow)
        decoded = json.loads(fast.canonical_json())
        for field in VOLATILE_FIELDS:
            assert field not in decoded

    def test_canonical_json_sees_metric_changes(self):
        assert not self._result().same_result(
            self._result(metrics={"cycles": 13, "throughput": 3.5})
        )

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            self._result().workload = "other"

    def test_legacy_attribute_shim_warns(self):
        result = self._result()
        with pytest.warns(DeprecationWarning, match="metrics"):
            assert result.cycles == 12
        with pytest.warns(DeprecationWarning):
            assert result.throughput == 3.5

    def test_legacy_shim_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            self._result().no_such_metric

    def test_build_run_result_digest_matches_request_digest(self):
        result = build_run_result(
            "demo", {"x": 1}, config={"a": 2}, seed=7, impl="numpy"
        )
        assert result.config_digest == request_digest(
            "demo", {"a": 2}, 7, "numpy"
        )

    def test_error_result_carries_type_and_message(self):
        result = build_run_result(
            "demo",
            {},
            config={},
            seed=0,
            status="error",
            error="boom",
            error_type="RuntimeError",
        )
        assert not result.ok
        assert result.error == "boom"
        assert result.error_type == "RuntimeError"


class TestRequestDigest:
    def test_digest_covers_every_identity_component(self):
        base = request_digest("hls", {"size": 8}, 0, None)
        assert request_digest("dse", {"size": 8}, 0, None) != base
        assert request_digest("hls", {"size": 16}, 0, None) != base
        assert request_digest("hls", {"size": 8}, 1, None) != base
        assert request_digest("hls", {"size": 8}, 0, "numpy") != base

    def test_digest_is_order_insensitive(self):
        assert request_digest(
            "hls", {"a": 1, "b": 2}, 0
        ) == request_digest("hls", {"b": 2, "a": 1}, 0)


class TestSweepGridKwargs:
    """Satellite: `parallel=`/`cache=` now reach sweep_grid too."""

    def test_default_returns_spec_list(self):
        from repro.imc.sweep import CrossbarSweepSpec, sweep_grid

        specs = sweep_grid(4, rows=32, cols=32, num_inputs=2)
        assert len(specs) == 4
        assert all(isinstance(s, CrossbarSweepSpec) for s in specs)

    def test_evaluate_flag_returns_records(self):
        from repro.imc.sweep import sweep_grid

        records = sweep_grid(2, rows=32, cols=32, num_inputs=2,
                             evaluate=True)
        assert all(isinstance(r, dict) and "rms_error" in r
                   for r in records)

    def test_cache_kwarg_implies_evaluation_and_memoizes(self):
        from repro.exec import ResultCache
        from repro.imc.sweep import sweep_grid

        cache = ResultCache()
        cold = sweep_grid(3, rows=32, cols=32, num_inputs=2, cache=cache)
        warm = sweep_grid(3, rows=32, cols=32, num_inputs=2, cache=cache)
        assert warm == cold
        assert cache.stats()["hits"] >= 3

    def test_parallel_kwarg_matches_serial(self):
        from repro.imc.sweep import sweep_grid

        serial = sweep_grid(3, rows=32, cols=32, num_inputs=2,
                            evaluate=True)
        threaded = sweep_grid(3, rows=32, cols=32, num_inputs=2,
                              parallel=2)
        assert serial == threaded
