"""Tests for repro.axc.layers and repro.axc.macs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.axc.layers import (
    avg_pool2d,
    conv2d,
    fully_connected,
    max_pool2d,
    prelu,
    transposed_conv2d_x2,
    zero_upsample_x2,
)
from repro.axc.macs import MacCounter, conv2d_macs


class TestConv2d:
    def test_identity_kernel(self):
        x = np.random.default_rng(0).normal(size=(1, 6, 6))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = conv2d(x, w)
        assert out.shape == (1, 6, 6)
        assert np.allclose(out, x)

    def test_known_sum_kernel(self):
        x = np.ones((1, 4, 4))
        w = np.ones((1, 1, 3, 3))
        out = conv2d(x, w, padding=0)
        assert out.shape == (1, 2, 2)
        assert np.allclose(out, 9.0)

    def test_multi_channel_sums(self):
        x = np.ones((3, 4, 4))
        w = np.ones((2, 3, 1, 1))
        out = conv2d(x, w)
        assert out.shape == (2, 4, 4)
        assert np.allclose(out, 3.0)

    def test_bias(self):
        x = np.zeros((1, 3, 3))
        w = np.zeros((2, 1, 1, 1))
        out = conv2d(x, w, bias=np.array([1.0, -2.0]))
        assert np.allclose(out[0], 1.0)
        assert np.allclose(out[1], -2.0)

    def test_mac_counting(self):
        counter = MacCounter()
        x = np.zeros((3, 8, 8))
        w = np.zeros((4, 3, 3, 3))
        conv2d(x, w, counter=counter, layer_name="L")
        assert counter.macs["L"] == conv2d_macs(8, 8, 3, 3, 3, 4)

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((2, 4, 4)), np.zeros((1, 3, 3, 3)))

    def test_bad_input_rank(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((4, 4)), np.zeros((1, 1, 3, 3)))

    def test_linearity(self):
        rng = np.random.default_rng(3)
        x1 = rng.normal(size=(2, 5, 5))
        x2 = rng.normal(size=(2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        assert np.allclose(
            conv2d(x1 + x2, w), conv2d(x1, w) + conv2d(x2, w)
        )


class TestZeroUpsample:
    def test_placement(self):
        x = np.arange(6.0).reshape(1, 2, 3)
        up = zero_upsample_x2(x)
        assert up.shape == (1, 4, 6)
        assert np.allclose(up[0, ::2, ::2], x[0])
        assert up[0, 1::2, :].sum() == 0
        assert up[0, :, 1::2].sum() == 0

    def test_pad_tail(self):
        up = zero_upsample_x2(np.ones((1, 2, 2)), pad_tail=3)
        assert up.shape == (1, 7, 7)


class TestTransposedConv:
    def test_output_shape(self):
        out = transposed_conv2d_x2(np.zeros((2, 5, 7)), np.zeros((2, 3, 3)))
        assert out.shape == (10, 14)

    def test_delta_kernel_reproduces_upsample(self):
        x = np.random.default_rng(1).normal(size=(1, 4, 4))
        k = np.zeros((1, 3, 3))
        k[0, 0, 0] = 1.0
        out = transposed_conv2d_x2(x, k)
        assert np.allclose(out[::2, ::2], x[0])
        assert np.allclose(out[1::2, :], 0.0)

    def test_mac_count_is_dense(self):
        counter = MacCounter()
        transposed_conv2d_x2(
            np.zeros((3, 4, 4)), np.zeros((3, 5, 5)), counter=counter
        )
        assert counter.total_macs == 4 * 4 * 4 * 25 * 3

    def test_rejects_rectangular_kernel(self):
        with pytest.raises(ValueError):
            transposed_conv2d_x2(np.zeros((1, 4, 4)), np.zeros((1, 3, 5)))

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            transposed_conv2d_x2(np.zeros((2, 4, 4)), np.zeros((1, 3, 3)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=3), st.integers(2, 5))
    def test_linearity_property(self, channels, size):
        rng = np.random.default_rng(channels * 10 + size)
        x = rng.normal(size=(channels, size, size))
        k = rng.normal(size=(channels, 3, 3))
        assert np.allclose(
            transposed_conv2d_x2(2.0 * x, k),
            2.0 * transposed_conv2d_x2(x, k),
        )


class TestPooling:
    def test_max_pool(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        out = max_pool2d(x, 2)
        assert out.shape == (1, 2, 2)
        assert np.allclose(out[0], [[5, 7], [13, 15]])

    def test_avg_pool(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        out = avg_pool2d(x, 2)
        assert np.allclose(out[0], [[2.5, 4.5], [10.5, 12.5]])

    def test_bad_pool_size(self):
        with pytest.raises(ValueError):
            max_pool2d(np.zeros((1, 4, 4)), 0)


class TestFullyConnected:
    def test_matvec(self):
        w = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = fully_connected(np.array([1.0, 1.0]), w)
        assert np.allclose(out, [3.0, 7.0])

    def test_bias_and_macs(self):
        counter = MacCounter()
        out = fully_connected(
            np.ones(3), np.ones((2, 3)), bias=np.array([1.0, 2.0]),
            counter=counter,
        )
        assert np.allclose(out, [4.0, 5.0])
        assert counter.total_macs == 6

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fully_connected(np.ones(3), np.ones((2, 4)))


class TestPrelu:
    def test_positive_passthrough(self):
        x = np.ones((2, 2, 2))
        assert np.allclose(prelu(x, np.array([0.1, 0.2])), x)

    def test_negative_scaling(self):
        x = -np.ones((2, 1, 1))
        out = prelu(x, np.array([0.5, 0.25]))
        assert np.allclose(out[:, 0, 0], [-0.5, -0.25])

    def test_slope_shape_mismatch(self):
        with pytest.raises(ValueError):
            prelu(np.zeros((2, 2, 2)), np.zeros(3))


class TestMacCounter:
    def test_merge(self):
        a, b = MacCounter(), MacCounter()
        a.charge_macs("x", 10)
        b.charge_macs("x", 5)
        b.charge_interp("x", 3)
        a.merge(b)
        assert a.macs["x"] == 15
        assert a.interp_adds["x"] == 3

    def test_saving(self):
        a, b = MacCounter(), MacCounter()
        a.charge_macs("x", 20)
        b.charge_macs("x", 100)
        assert a.saving_vs(b) == pytest.approx(0.8)

    def test_saving_zero_baseline(self):
        with pytest.raises(ValueError):
            MacCounter().saving_vs(MacCounter())

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MacCounter().charge_macs("x", -1)

    def test_report_mentions_layers(self):
        c = MacCounter()
        c.charge_macs("deconv", 7)
        c.charge_interp("deconv", 2)
        text = c.report()
        assert "deconv" in text and "total MACs: 7" in text

    def test_conv2d_macs_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            conv2d_macs(0, 1, 1, 1, 1, 1)
