"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    @pytest.mark.parametrize(
        "artifact,expect",
        [
            ("fig1", "platform class"),
            ("fig2", "von Neumann"),
            ("taxonomy", "von Neumann"),
            ("fig7", "power band"),
            ("table1", "HTCONV"),
            ("survey-csv", "peak_tops"),
        ],
    )
    def test_artifacts_print_tables(self, artifact, expect, capsys):
        assert main([artifact]) == 0
        out = capsys.readouterr().out
        assert expect in out
        assert len(out.splitlines()) > 3

    def test_scf_artifact(self, capsys):
        assert main(["scf"]) == 0
        out = capsys.readouterr().out
        assert "SCF scale-up" in out
        assert "64" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code != 0

    def test_no_arguments_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_survey_csv_round_trips(self, capsys):
        from repro.survey import load_dataset
        from repro.survey.io import from_csv

        main(["survey-csv"])
        out = capsys.readouterr().out
        assert from_csv(out) == load_dataset()


class TestServeCli:
    def test_synthetic_load_mode(self, capsys):
        assert main([
            "serve", "--workload", "hls", "--num-requests", "8",
            "--batch-size", "4", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "synthetic load" in out
        assert "'hls'" in out
        assert "batches:" in out
        assert "deduped" in out

    def test_request_file_mode(self, tmp_path, capsys):
        import json

        requests = [
            {"workload": "hls", "config": {"kernel": "dot", "size": 8}},
            {"workload": "sparta", "config": {"num_nodes": 48},
             "priority": "high", "seed": 3},
        ]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(requests))
        out_path = tmp_path / "snapshot.json"
        assert main([
            "serve", "--requests", str(path), "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "2 request(s)" in out
        assert "hls" in out and "sparta" in out
        snapshot = json.loads(out_path.read_text())
        assert snapshot["requests"]["completed"] == 2
        assert "latency_s" in snapshot

    def test_bad_request_file_rejected(self, tmp_path):
        from repro.core.errors import ValidationError

        path = tmp_path / "bad.json"
        path.write_text('{"workload": "hls"}')
        with pytest.raises(ValidationError, match="array"):
            main(["serve", "--requests", str(path)])


class TestCapacityCli:
    def test_capacity_from_measured_numbers(self, capsys):
        assert main([
            "capacity", "--shard-rps", "100", "--shard-p99-ms", "50",
            "--target-p99-ms", "100", "--offered-rps", "250",
            "--overhead-cost", "0",
        ]) == 0
        out = capsys.readouterr().out
        # The hand-computed case: 5 shards, $2.50/h, $2.78 per 1M.
        row = [line for line in out.splitlines()
               if line.startswith("250")]
        assert row and "| 5" in row[0]
        assert "2.5" in row[0]
        assert "2.778" in row[0]

    def test_capacity_writes_report(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "capacity.json"
        assert main([
            "capacity", "--shard-rps", "80", "--shard-p99-ms", "40",
            "--out", str(out_path),
        ]) == 0
        report = json.loads(out_path.read_text())
        assert set(report) == {"model", "cost", "target_p99_s", "plans"}
        assert report["model"]["per_shard_rps"] == 80.0

    def test_capacity_from_scale_report(self, tmp_path, capsys):
        import json

        bench = tmp_path / "BENCH_scale.json"
        bench.write_text(json.dumps({
            "capacity": {
                "model": {
                    "per_shard_rps": 100.0,
                    "service_p99_s": 0.05,
                    "efficiency": {"1": 1.0, "2": 0.9},
                },
            },
        }))
        assert main([
            "capacity", "--from-report", str(bench),
            "--offered-rps", "50",
        ]) == 0
        assert "100.0 rps/shard" in capsys.readouterr().out

    def test_capacity_requires_a_model_source(self):
        from repro.core.errors import ValidationError

        with pytest.raises(ValidationError, match="--shard-rps"):
            main(["capacity"])

    def test_serve_capacity_report_footer(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "snapshot.json"
        assert main([
            "serve", "--num-requests", "8", "--pool", "4",
            "--capacity-report", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "capacity plan" in out
        snapshot = json.loads(out_path.read_text())
        assert "capacity" in snapshot
        assert snapshot["capacity"]["plans"]
