"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    @pytest.mark.parametrize(
        "artifact,expect",
        [
            ("fig1", "platform class"),
            ("fig2", "von Neumann"),
            ("taxonomy", "von Neumann"),
            ("fig7", "power band"),
            ("table1", "HTCONV"),
            ("survey-csv", "peak_tops"),
        ],
    )
    def test_artifacts_print_tables(self, artifact, expect, capsys):
        assert main([artifact]) == 0
        out = capsys.readouterr().out
        assert expect in out
        assert len(out.splitlines()) > 3

    def test_scf_artifact(self, capsys):
        assert main(["scf"]) == 0
        out = capsys.readouterr().out
        assert "SCF scale-up" in out
        assert "64" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code != 0

    def test_no_arguments_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_survey_csv_round_trips(self, capsys):
        from repro.survey import load_dataset
        from repro.survey.io import from_csv

        main(["survey-csv"])
        out = capsys.readouterr().out
        assert from_csv(out) == load_dataset()
