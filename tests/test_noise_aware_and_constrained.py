"""Tests for noise-aware IMC training and the constrained DNA code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dna.constrained import (
    decode_constrained,
    density_bits_per_base,
    encode_constrained,
    expansion_vs_unconstrained,
)
from repro.dna.encoding import max_homopolymer_run
from repro.imc.nn import make_blobs, train_mlp
from repro.imc.noise_aware import (
    accuracy_under_weight_noise,
    train_mlp_noise_aware,
)


class TestNoiseAwareTraining:
    @pytest.fixture(scope="class")
    def dataset(self):
        # Harder blobs (more spread) so noise actually threatens accuracy.
        return make_blobs(n_samples=300, spread=1.4, seed=0)

    def test_clean_accuracy_competitive(self, dataset):
        x, labels = dataset
        vanilla = train_mlp(x, labels, seed=0)
        robust = train_mlp_noise_aware(x, labels, seed=0,
                                       weight_noise_sigma=0.15)
        acc_vanilla = float(np.mean(vanilla.predict(x) == labels))
        acc_robust = float(np.mean(robust.predict(x) == labels))
        assert acc_robust > acc_vanilla - 0.08

    def test_more_robust_under_heavy_noise(self):
        # A harder task (8 classes, 8 features, small hidden layer) where
        # weight noise genuinely costs accuracy; the straight-through
        # noise-injection scheme buys a small but consistent margin.
        x, labels = make_blobs(
            n_samples=400, n_features=8, n_classes=8, spread=1.8, seed=3
        )
        vanilla = train_mlp(x, labels, hidden=12, seed=0)
        robust = train_mlp_noise_aware(
            x, labels, hidden=12, seed=0, weight_noise_sigma=0.25
        )
        sigma = 0.8
        acc_vanilla = accuracy_under_weight_noise(
            vanilla, x, labels, sigma, trials=30, seed=1
        )
        acc_robust = accuracy_under_weight_noise(
            robust, x, labels, sigma, trials=30, seed=1
        )
        assert acc_robust >= acc_vanilla

    def test_zero_noise_reduces_to_vanilla_shape(self, dataset):
        x, labels = dataset
        model = train_mlp_noise_aware(x, labels, weight_noise_sigma=0.0,
                                      seed=2)
        assert float(np.mean(model.predict(x) == labels)) > 0.7

    def test_validation(self, dataset):
        x, labels = dataset
        with pytest.raises(ValueError):
            train_mlp_noise_aware(x, labels, weight_noise_sigma=-0.1)
        with pytest.raises(ValueError):
            train_mlp_noise_aware(np.zeros((3, 2)), np.zeros(4))
        model = train_mlp(x, labels, epochs=5, seed=0)
        with pytest.raises(ValueError):
            accuracy_under_weight_noise(model, x, labels, -0.1)
        with pytest.raises(ValueError):
            accuracy_under_weight_noise(model, x, labels, 0.1, trials=0)


class TestConstrainedCode:
    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=1, max_size=64))
    def test_round_trip(self, data):
        assert decode_constrained(encode_constrained(data)) == data

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=1, max_size=64))
    def test_no_homopolymers_by_construction(self, data):
        strand = encode_constrained(data)
        assert max_homopolymer_run(strand) == 1

    def test_leading_zeros_preserved(self):
        data = b"\x00\x00\x07"
        assert decode_constrained(encode_constrained(data)) == data

    def test_density(self):
        assert density_bits_per_base() == pytest.approx(1.585, abs=0.001)

    def test_expansion_ratio(self):
        # ~26% longer strands than the unconstrained 2-bit/base code.
        ratio = expansion_vs_unconstrained(100)
        assert 1.2 < ratio < 1.3

    def test_length_close_to_theory(self):
        data = bytes(range(64))
        strand = encode_constrained(data)
        theoretical = 8 * len(data) / density_bits_per_base()
        assert abs(len(strand) - theoretical) < 8

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            encode_constrained(b"")
        with pytest.raises(ValueError):
            decode_constrained("")
        with pytest.raises(ValueError):
            decode_constrained("AXGT")
        with pytest.raises(ValueError):
            decode_constrained("AAGT")  # homopolymer cannot occur

    def test_expansion_validation(self):
        with pytest.raises(ValueError):
            expansion_vs_unconstrained(0)
