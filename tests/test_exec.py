"""Unit tests for the parallel evaluation engine and result cache."""

import json
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.errors import (
    SimulationTimeout,
    ValidationError,
    WorkerCrashError,
)
from repro.exec import (
    ParallelEvaluator,
    ResultCache,
    canonical_payload,
    coerce_cache,
    config_digest,
    make_evaluator,
)
from repro.hls.ir import OpKind


def _square(x):
    return x * x


def _slow_identity(x):
    time.sleep(1.0)
    return x


def _crash_once(task):
    """Crash the worker on first sight of the sentinel; succeed after.

    The sentinel file is the cross-process memory: the crashing attempt
    creates it with os._exit (no cleanup handlers -- a genuine process
    death), so every retry finds it and completes.  Models an
    *environmental* crash (OOM kill, node reaped), not a poison task.
    """
    import os

    sentinel, value = task
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os._exit(17)
    return value * 2


def _crash_if_flagged(task):
    """A poison task: crashes its worker iff the flag is set."""
    import os

    flagged, value = task
    if flagged:
        os._exit(23)
    return value + 1


def _crash_off_main(task):
    """Crashes in any worker process, succeeds in the coordinator --
    the shape only the in-process serial fallback can complete."""
    import os

    main_pid, value = task
    if os.getpid() != main_pid:
        os._exit(11)
    return value * 3


@dataclass(frozen=True)
class _SpecA:
    alpha: int = 1
    beta: float = 2.0


@dataclass(frozen=True)
class _SpecB:
    alpha: int = 1
    beta: float = 2.0


class TestConfigDigest:
    def test_dict_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )

    def test_tuple_and_list_spellings_collide(self):
        assert config_digest((1, 2, 3)) == config_digest([1, 2, 3])

    def test_numpy_scalars_match_python(self):
        assert config_digest({"n": np.int64(7)}) == config_digest({"n": 7})
        assert config_digest(np.float64(0.5)) == config_digest(0.5)
        assert config_digest(np.array([1, 2])) == config_digest([1, 2])

    def test_negative_zero_normalized(self):
        assert config_digest(-0.0) == config_digest(0.0)

    def test_value_changes_change_digest(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_dataclass_type_tagged(self):
        # Same field values, different config classes: distinct keys.
        assert config_digest(_SpecA()) != config_digest(_SpecB())
        assert config_digest(_SpecA()) == config_digest(_SpecA(1, 2.0))

    def test_enum_digestible(self):
        assert config_digest(OpKind.MUL) != config_digest(OpKind.ADD)
        assert config_digest(OpKind.MUL) == config_digest(OpKind.MUL)

    def test_cycle_rejected(self):
        loop = {}
        loop["self"] = loop
        with pytest.raises(ValidationError):
            config_digest(loop)

    def test_canonical_payload_is_json_ready(self):
        payload = canonical_payload({"spec": _SpecA(), "kind": OpKind.ADD})
        json.dumps(payload)  # must not raise


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_get_or_compute(self):
        cache = ResultCache()
        calls = []

        def compute():
            calls.append(1)
            return {"x": 1}

        assert cache.get_or_compute("k", compute) == {"x": 1}
        assert cache.get_or_compute("k", compute) == {"x": 1}
        assert len(calls) == 1

    def test_values_isolated_from_mutation(self):
        cache = ResultCache()
        value = {"xs": [1, 2]}
        cache.put("k", value)
        value["xs"].append(3)
        first = cache.get("k")
        first["xs"].append(4)
        assert cache.get("k") == {"xs": [1, 2]}

    def test_disk_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        with ResultCache(path=path) as cache:
            cache.put(config_digest({"cell": 1}), {"result": 42})
        reopened = ResultCache(path=path)
        assert reopened.get(config_digest({"cell": 1})) == {"result": 42}
        assert reopened.stats()["entries"] == 1

    def test_corruption_tolerated(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json !!", encoding="utf-8")
        cache = ResultCache(path=path)
        assert len(cache) == 0
        assert cache.stats()["recovered_from_corruption"]
        cache.put("k", {"v": 1})  # store must work again...
        cache.flush()
        assert ResultCache(path=path).get("k") == {"v": 1}  # ...atomically

    def test_non_object_store_tolerated(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        cache = ResultCache(path=path)
        assert len(cache) == 0
        assert cache.stats()["recovered_from_corruption"]

    def test_validation(self):
        with pytest.raises(ValidationError):
            ResultCache(max_entries=0)
        with pytest.raises(ValidationError):
            ResultCache(flush_every=0)


class TestParallelEvaluator:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_map_preserves_order(self, mode):
        engine = ParallelEvaluator(max_workers=4, mode=mode)
        assert engine.map(_square, range(10)) == [
            x * x for x in range(10)
        ]

    def test_chunksize_covers_all_tasks(self):
        engine = ParallelEvaluator(max_workers=2, mode="process",
                                   chunksize=3)
        assert engine.map(_square, range(8)) == [x * x for x in range(8)]

    def test_cache_hits_skip_computation(self):
        cache = ResultCache()
        engine = ParallelEvaluator(max_workers=1, mode="serial",
                                   cache=cache)
        keys = [config_digest(x) for x in range(4)]
        first = engine.map(_square, range(4), keys=keys)
        second = engine.map(_square, range(4), keys=keys)
        assert first == second == [0, 1, 4, 9]
        assert engine.tasks_computed == 4
        assert cache.stats()["hits"] == 4

    def test_duplicate_keys_computed_once(self):
        engine = ParallelEvaluator(max_workers=1, mode="serial")
        keys = [config_digest("same")] * 5
        assert engine.map(_square, [3] * 5, keys=keys) == [9] * 5
        assert engine.tasks_computed == 1

    def test_unpicklable_fn_falls_back_to_threads(self):
        engine = ParallelEvaluator(max_workers=2, mode="process")
        assert engine.map(lambda x: x + 1, range(4)) == [1, 2, 3, 4]

    def test_timeout_raises_simulation_timeout(self):
        engine = ParallelEvaluator(max_workers=2, mode="thread",
                                   timeout_s=0.05)
        with pytest.raises(SimulationTimeout):
            engine.map(_slow_identity, [1, 2])

    def test_keys_must_align(self):
        engine = ParallelEvaluator(max_workers=1, mode="serial")
        with pytest.raises(ValidationError):
            engine.map(_square, [1, 2], keys=["only-one"])

    def test_validation(self):
        with pytest.raises(ValidationError):
            ParallelEvaluator(mode="gpu")
        with pytest.raises(ValidationError):
            ParallelEvaluator(max_workers=0)
        with pytest.raises(ValidationError):
            ParallelEvaluator(chunksize=0)
        with pytest.raises(ValidationError):
            ParallelEvaluator(timeout_s=0)

    def test_stats_shape(self):
        cache = ResultCache()
        engine = ParallelEvaluator(max_workers=2, cache=cache)
        engine.map(_square, range(3),
                   keys=[config_digest(i) for i in range(3)])
        stats = engine.stats()
        assert stats["tasks_seen"] == 3
        assert stats["tasks_computed"] == 3
        assert stats["cache"]["stores"] == 3


class TestWorkerCrashRecovery:
    """A dead worker process must cost at most the affected tasks."""

    def test_environmental_crash_recovers_all_results(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        tasks = [(sentinel, i) for i in range(6)]
        engine = ParallelEvaluator(max_workers=2, mode="process")
        results = engine.map(
            _crash_once, tasks,
            keys=[config_digest(i) for i in range(6)],
        )
        assert results == [i * 2 for i in range(6)]
        assert engine.worker_crashes >= 1
        assert engine.stats()["tasks_quarantined"] == 0
        assert engine.quarantined == {}

    def test_poison_task_quarantined_with_typed_error(self):
        tasks = [(False, 1), (True, 0), (False, 2)]
        keys = [config_digest(t) for t in tasks]
        engine = ParallelEvaluator(
            max_workers=2, mode="process",
            crash_retries=2, quarantine_after=2,
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            engine.map(_crash_if_flagged, tasks, keys=keys)
        assert excinfo.value.quarantined == (keys[1],)
        assert engine.stats()["tasks_quarantined"] == 1
        assert engine.worker_crashes >= 2
        # Innocent batch-mates were completed before the raise.
        completed = dict(excinfo.value.completed)
        assert completed.get(0) == 2 or completed.get(2) == 3

    def test_quarantined_digest_fails_fast_without_dispatch(self):
        tasks = [(True, 0), (True, 1)]
        keys = [config_digest(t) for t in tasks]
        engine = ParallelEvaluator(
            max_workers=2, mode="process",
            crash_retries=2, quarantine_after=2,
        )
        with pytest.raises(WorkerCrashError):
            engine.map(_crash_if_flagged, tasks, keys=keys)
        crashes_after_first = engine.worker_crashes
        with pytest.raises(WorkerCrashError) as excinfo:
            engine.map(_crash_if_flagged, tasks, keys=keys)
        # The pre-dispatch quarantine check spent zero new crashes.
        assert engine.worker_crashes == crashes_after_first
        assert set(excinfo.value.quarantined) == set(keys)

    def test_healthy_tasks_unaffected_by_poison_batchmate(self):
        tasks = [(False, i) for i in range(4)] + [(True, 0)]
        keys = [config_digest(t) for t in tasks]
        engine = ParallelEvaluator(
            max_workers=2, mode="process",
            crash_retries=2, quarantine_after=2,
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            engine.map(_crash_if_flagged, tasks, keys=keys)
        completed = dict(excinfo.value.completed)
        # Every healthy task has a result despite the pool breaking;
        # only the poison digest is quarantined.
        assert excinfo.value.quarantined == (keys[4],)
        for index in range(4):
            assert completed[index] == index + 1

    def test_keyless_crash_falls_back_to_serial(self):
        import os

        tasks = [(os.getpid(), 5), (os.getpid(), 6)]
        engine = ParallelEvaluator(
            max_workers=2, mode="process", crash_retries=1,
        )
        results = engine.map(_crash_off_main, tasks)
        assert results == [15, 18]
        assert engine.worker_crashes >= 1
        assert engine.stats()["tasks_quarantined"] == 0

    def test_crash_error_is_runtime_error(self):
        exc = WorkerCrashError("boom", completed=[(0, "v")],
                               suspect_indices=[1], quarantined=["k"])
        assert isinstance(exc, RuntimeError)
        assert exc.completed == ((0, "v"),)
        assert exc.suspect_indices == (1,)
        assert exc.quarantined == ("k",)

    def test_crash_params_validated(self):
        with pytest.raises(ValidationError):
            ParallelEvaluator(crash_retries=-1)
        with pytest.raises(ValidationError):
            ParallelEvaluator(quarantine_after=0)


class TestMakeEvaluator:
    def test_none_without_cache_is_none(self):
        assert make_evaluator(None) is None
        assert make_evaluator(False) is None
        assert make_evaluator(0) is None

    def test_cache_only_builds_serial_engine(self):
        engine = make_evaluator(None, ResultCache())
        assert engine is not None
        assert engine.mode == "serial"

    def test_worker_count(self):
        engine = make_evaluator(3)
        assert engine.max_workers == 3
        assert engine.mode == "process"

    def test_single_worker_is_serial(self):
        assert make_evaluator(1).mode == "serial"

    def test_existing_engine_passthrough_gains_cache(self):
        engine = ParallelEvaluator(max_workers=2)
        cache = ResultCache()
        assert make_evaluator(engine, cache) is engine
        assert engine.cache is cache

    def test_coerce_cache(self, tmp_path):
        assert coerce_cache(None) is None
        cache = ResultCache()
        assert coerce_cache(cache) is cache
        built = coerce_cache(tmp_path / "c.json")
        assert isinstance(built, ResultCache)
        assert built.path == tmp_path / "c.json"
