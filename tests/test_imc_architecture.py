"""Tests for the system-level multi-tile IMC accelerator."""

import numpy as np
import pytest

from repro.imc.architecture import (
    ExecutionReport,
    IMCAccelerator,
    SystemConfig,
)
from repro.imc.conv_mapper import map_conv_layer
from repro.imc.crossbar import CrossbarConfig
from repro.imc.mapper import map_linear_layer
from repro.imc.tiles import TileConfig


def tile_config(rows=32, cols=32):
    return TileConfig(crossbar=CrossbarConfig(rows=rows, cols=cols))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(tile_mvm_latency_s=0)
        with pytest.raises(ValueError):
            SystemConfig(interconnect_energy_per_byte_j=-1)
        with pytest.raises(ValueError):
            IMCAccelerator([])


class TestLinearStack:
    def _two_layer(self, seed=0):
        rng = np.random.default_rng(seed)
        w1 = rng.normal(0, 0.3, (32, 24))
        w2 = rng.normal(0, 0.3, (24, 8))
        acc = IMCAccelerator(
            [
                map_linear_layer(w1, tile_config(), seed=seed),
                map_linear_layer(w2, tile_config(), seed=seed + 1),
            ]
        )
        return acc, w1, w2

    def test_output_close_to_float(self):
        acc, w1, w2 = self._two_layer()
        x = np.random.default_rng(1).uniform(-1, 1, 32)
        out, report = acc.run(x)
        expected = np.maximum(w1.T @ x, 0.0) @ w2
        rel = np.linalg.norm(out - expected) / np.linalg.norm(expected)
        assert out.shape == (8,)
        assert rel < 0.3

    def test_report_decomposition(self):
        acc, _, _ = self._two_layer()
        _, report = acc.run(np.zeros(32))
        assert isinstance(report, ExecutionReport)
        assert report.latency_s == pytest.approx(
            report.analog_latency_s
            + report.digital_latency_s
            + report.movement_latency_s
        )
        assert report.converter_energy_j > 0
        assert report.total_energy_j >= report.converter_energy_j
        assert report.total_tiles == 2

    def test_shape_mismatch_rejected(self):
        acc, _, _ = self._two_layer()
        with pytest.raises(ValueError):
            acc.run(np.zeros(31))

    def test_bigger_layers_more_wavefronts(self):
        rng = np.random.default_rng(2)
        small = IMCAccelerator(
            [map_linear_layer(rng.normal(0, 0.3, (32, 8)),
                              tile_config(), seed=0)]
        )
        tall = IMCAccelerator(
            [map_linear_layer(rng.normal(0, 0.3, (96, 8)),
                              tile_config(), seed=0)]
        )
        _, rep_small = small.run(np.zeros(32))
        _, rep_tall = tall.run(np.zeros(96))
        assert rep_tall.analog_latency_s > rep_small.analog_latency_s


class TestConvThenLinear:
    def test_cnn_stack_runs(self):
        rng = np.random.default_rng(3)
        conv_w = rng.normal(0, 0.3, (4, 1, 3, 3))
        conv = map_conv_layer(conv_w, tile_config(16, 16), seed=3)
        # 6x6 input, same padding -> 4 x 6 x 6 = 144 features.
        fc_w = rng.normal(0, 0.3, (144, 4))
        fc = map_linear_layer(fc_w, tile_config(), seed=4)
        acc = IMCAccelerator([conv, fc])
        out, report = acc.run(rng.uniform(-1, 1, (1, 6, 6)))
        assert out.shape == (4,)
        # Conv layers pay one analog wave per output pixel.
        assert report.analog_latency_s >= 36 * 100e-9
        assert report.total_tiles == conv.num_tiles + fc.num_tiles

    def test_movement_scales_with_feature_volume(self):
        rng = np.random.default_rng(5)
        conv_w = rng.normal(0, 0.3, (8, 1, 3, 3))
        small = IMCAccelerator(
            [map_conv_layer(conv_w, tile_config(16, 16), seed=5)]
        )
        _, rep_small = small.run(rng.uniform(-1, 1, (1, 4, 4)))
        big = IMCAccelerator(
            [map_conv_layer(conv_w, tile_config(16, 16), seed=5)]
        )
        _, rep_big = big.run(rng.uniform(-1, 1, (1, 8, 8)))
        assert rep_big.movement_energy_j > rep_small.movement_energy_j
