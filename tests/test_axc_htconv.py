"""Tests for repro.axc.htconv -- the Fig. 3 hybrid transposed convolution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.axc.htconv import FovealRegion, htconv_mac_model, htconv_x2
from repro.axc.layers import transposed_conv2d_x2
from repro.axc.macs import MacCounter


class TestFovealRegion:
    def test_mask_shape_and_center(self):
        fovea = FovealRegion(center=(2, 2), radius=1.0)
        mask = fovea.mask(5, 5)
        assert mask.shape == (5, 5)
        assert mask[2, 2]
        assert not mask[0, 0]

    def test_everything_covers_all(self):
        assert FovealRegion.everything().mask(4, 6).all()

    def test_nothing_covers_none(self):
        assert not FovealRegion.nothing().mask(4, 6).any()

    def test_centered_fraction(self):
        fovea = FovealRegion.centered(64, 64, 0.25)
        assert fovea.coverage(64, 64) == pytest.approx(0.25, abs=0.03)

    def test_centered_extremes(self):
        assert FovealRegion.centered(32, 32, 0.0).coverage(32, 32) == 0.0
        assert FovealRegion.centered(32, 32, 1.0).coverage(32, 32) >= 0.99

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            FovealRegion.centered(8, 8, 1.5)

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            FovealRegion(center=(0, 0), radius=-1.0)

    def test_mask_bad_dims(self):
        with pytest.raises(ValueError):
            FovealRegion.everything().mask(0, 5)


class TestHtconvCorrectness:
    def test_full_fovea_equals_exact_tconv(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 6, 9))
        k = rng.normal(size=(3, 5, 5))
        exact = transposed_conv2d_x2(x, k)
        hybrid = htconv_x2(x, k, FovealRegion.everything())
        assert np.allclose(exact, hybrid)

    def test_even_even_always_exact(self):
        # Fig. 3 line 18: the even-even output is exact even outside the
        # fovea.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 8, 8))
        k = rng.normal(size=(2, 3, 3))
        exact = transposed_conv2d_x2(x, k)
        hybrid = htconv_x2(x, k, FovealRegion.nothing())
        assert np.allclose(exact[::2, ::2], hybrid[::2, ::2])

    def test_peripheral_outputs_are_averages(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 6, 6))
        k = rng.normal(size=(1, 3, 3))
        out = htconv_x2(x, k, FovealRegion.nothing())
        ee = out[::2, ::2]
        # Interior block (i=1, j=1): Fig. 3 lines 19-21.
        assert out[3, 2] == pytest.approx((ee[1, 1] + ee[2, 1]) / 2)
        assert out[2, 3] == pytest.approx((ee[1, 1] + ee[1, 2]) / 2)
        assert out[3, 3] == pytest.approx(
            (ee[1, 1] + ee[1, 2] + ee[2, 1] + ee[2, 2]) / 4
        )

    def test_border_clamping(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 4, 4))
        k = rng.normal(size=(1, 3, 3))
        out = htconv_x2(x, k, FovealRegion.nothing())
        ee = out[::2, ::2]
        # Last row/col blocks clamp the missing neighbour.
        assert out[7, 6] == pytest.approx(ee[3, 3])
        assert out[6, 7] == pytest.approx(ee[3, 3])

    def test_mixed_fovea_partitions_output(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 8, 8))
        k = rng.normal(size=(1, 3, 3))
        fovea = FovealRegion(center=(3.5, 3.5), radius=2.0)
        exact = transposed_conv2d_x2(x, k)
        hybrid = htconv_x2(x, k, fovea)
        mask = fovea.mask(8, 8)
        # Foveal blocks exact in all four positions.
        for i, j in zip(*np.where(mask)):
            block_exact = exact[2 * i : 2 * i + 2, 2 * j : 2 * j + 2]
            block_hybrid = hybrid[2 * i : 2 * i + 2, 2 * j : 2 * j + 2]
            assert np.allclose(block_exact, block_hybrid)

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            htconv_x2(
                np.zeros((1, 4, 4)), np.zeros((1, 3, 5)),
                FovealRegion.everything(),
            )
        with pytest.raises(ValueError):
            htconv_x2(
                np.zeros((2, 4, 4)), np.zeros((1, 3, 3)),
                FovealRegion.everything(),
            )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=4, max_value=9))
    def test_constant_image_with_bilinear_kernel(self, size):
        # A constant image under the separable bilinear x2 kernel is
        # reproduced exactly by both the exact TCONV and the peripheral
        # interpolation (away from the zero-padded borders): averaging
        # exact constants yields the same constant.
        x = np.full((1, size, size), 2.5)
        axis = np.array([0.5, 1.0, 0.5])
        k = np.outer(axis, axis)[None, :, :]
        out_exact = htconv_x2(x, k, FovealRegion.everything())
        out_approx = htconv_x2(x, k, FovealRegion.nothing())
        interior = (slice(1, 2 * (size - 2)), slice(1, 2 * (size - 2)))
        assert np.allclose(out_exact[interior], 2.5)
        assert np.allclose(out_approx[interior], 2.5)


class TestHtconvMacs:
    def test_empty_fovea_saves_75_percent(self):
        x = np.zeros((2, 8, 8))
        k = np.zeros((2, 5, 5))
        counter, base = MacCounter(), MacCounter()
        htconv_x2(x, k, FovealRegion.nothing(), counter=counter)
        transposed_conv2d_x2(x, k, counter=base)
        assert counter.saving_vs(base) == pytest.approx(0.75)

    def test_full_fovea_saves_nothing(self):
        x = np.zeros((1, 6, 6))
        k = np.zeros((1, 3, 3))
        counter, base = MacCounter(), MacCounter()
        htconv_x2(x, k, FovealRegion.everything(), counter=counter)
        transposed_conv2d_x2(x, k, counter=base)
        assert counter.saving_vs(base) == pytest.approx(0.0)

    def test_interp_adds_charged_per_peripheral_pixel(self):
        x = np.zeros((1, 4, 4))
        k = np.zeros((1, 3, 3))
        counter = MacCounter()
        htconv_x2(x, k, FovealRegion.nothing(), counter=counter)
        assert counter.total_interp_adds == 16 * 5

    def test_mac_model_matches_counter(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(3, 10, 10))
        k = rng.normal(size=(3, 5, 5))
        fovea = FovealRegion.centered(10, 10, 0.3)
        counter = MacCounter()
        htconv_x2(x, k, fovea, counter=counter)
        coverage = fovea.coverage(10, 10)
        hybrid, exact = htconv_mac_model(10, 10, 5, 3, coverage)
        assert counter.total_macs == hybrid
        assert exact == 4 * 100 * 25 * 3

    def test_mac_model_saving_formula(self):
        # saving = 0.75 * (1 - coverage)
        hybrid, exact = htconv_mac_model(100, 100, 9, 25, 0.2)
        assert 1 - hybrid / exact == pytest.approx(0.75 * 0.8, abs=1e-3)

    def test_mac_model_bad_coverage(self):
        with pytest.raises(ValueError):
            htconv_mac_model(4, 4, 3, 1, 1.5)
