"""Tests for repro.core.units."""

import pytest

from repro.core import units


class TestSiFormat:
    def test_tera(self):
        assert units.si_format(16.8e12, "CUPS") == "16.8 TCUPS"

    def test_giga(self):
        assert units.si_format(150e9, "FLOPS") == "150 GFLOPS"

    def test_milli(self):
        assert units.si_format(0.55, "V", precision=2) == "550 mV"

    def test_unity(self):
        assert units.si_format(3.7, "W") == "3.7 W"

    def test_zero(self):
        assert units.si_format(0.0, "W") == "0 W"

    def test_no_unit(self):
        assert units.si_format(2e6) == "2 M"

    def test_negative_value(self):
        assert units.si_format(-1.5e9, "B") == "-1.5 GB"

    def test_pico(self):
        assert units.si_format(2.3e-12, "J") == "2.3 pJ"


class TestEnergyConversions:
    def test_round_trip(self):
        eff = 1.5  # TFLOPS/W as in the Sec. VII compute unit
        j_per_op = units.tops_per_watt_to_joules_per_op(eff)
        assert units.joules_per_op_to_tops_per_watt(j_per_op) == pytest.approx(eff)

    def test_known_value(self):
        # 1 pJ/op is exactly 1 TOPS/W.
        assert units.joules_per_op_to_tops_per_watt(1e-12) == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.joules_per_op_to_tops_per_watt(0.0)
        with pytest.raises(ValueError):
            units.tops_per_watt_to_joules_per_op(-1.0)

    def test_binary_prefixes(self):
        assert units.MEBI == 1024 * units.KIBI
        assert units.GIBI == 1024 * units.MEBI
