"""Tests for the micro-batched evaluation service.

The load-bearing guarantee is *serving never perturbs results*: a
request served through :class:`EvaluationService` must be byte-identical
(canonical form) to calling ``Workload.evaluate`` directly, whether it
was computed, deduplicated inside a batch, or answered from the result
cache.  The rest covers the service mechanics: priority lanes, bounded
queues with backpressure, admission control, drain/shutdown, retry
accounting and the metrics snapshot.
"""

import asyncio
import json
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError

import pytest

from repro.core.api import (
    RunResult,
    build_run_result,
    example_config,
    get_workload,
    register_workload,
    workload_names,
)
from repro.core.errors import TransientFault, ValidationError
from repro.exec import ResultCache
from repro.resilience import BackoffPolicy
from repro.serve import (
    AdmissionRejected,
    EvalRequest,
    EvaluationService,
    config_pool,
    generate_requests,
    load_requests,
    percentile,
    run_load,
    serve_requests,
    zipf_weights,
)

CHEAP_CONFIGS = {
    "imc-crossbar": {"rows": 32, "cols": 32, "num_inputs": 2},
    "sparta": {"num_nodes": 48},
    "hls": {"kernel": "dot", "size": 8},
}


def _service(**kwargs):
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("batch_wait_s", 0.001)
    return EvaluationService(**kwargs)


class _FlakyWorkload:
    """Fails transiently N times per (config, seed) before succeeding."""

    name = "test-flaky"

    def __init__(self, failures: int = 0) -> None:
        self.failures = failures
        self.calls = {}

    def space(self):
        return {"x": (1, 2)}

    def evaluate(self, config, *, seed=0, impl=None):
        key = (tuple(sorted(config.items())), seed)
        self.calls[key] = self.calls.get(key, 0) + 1
        if self.calls[key] <= self.failures:
            raise TransientFault(f"transient #{self.calls[key]}")
        return build_run_result(
            self.name, {"x": config.get("x", 1), "seed_used": seed},
            config=dict(config), seed=seed, impl=impl,
        )


class _BrokenWorkload:
    name = "test-broken"

    def space(self):
        return {"x": (1,)}

    def evaluate(self, config, *, seed=0, impl=None):
        raise RuntimeError("this workload always explodes")


class _SleepyWorkload:
    name = "test-sleepy"

    def space(self):
        return {"x": (1,)}

    def evaluate(self, config, *, seed=0, impl=None):
        time.sleep(0.05)
        return build_run_result(
            self.name, {"x": 1}, config=dict(config), seed=seed, impl=impl
        )


register_workload(_FlakyWorkload(), replace=True)
register_workload(_BrokenWorkload(), replace=True)
register_workload(_SleepyWorkload(), replace=True)


class TestServedVsDirect:
    @pytest.mark.parametrize("name", sorted(CHEAP_CONFIGS))
    def test_served_result_is_byte_identical(self, name):
        workload = get_workload(name)
        config = {**example_config(workload), **CHEAP_CONFIGS[name]}
        direct = workload.evaluate(config, seed=11)
        with _service() as service:
            served = service.evaluate(name, config, seed=11)
        assert served.canonical_json() == direct.canonical_json()

    def test_every_registered_workload_served_equals_direct(self):
        subsystems = [
            n for n in workload_names() if not n.startswith("test-")
        ]
        directs = {}
        with _service(cache=ResultCache()) as service:
            futures = {}
            for name in subsystems:
                workload = get_workload(name)
                config = {
                    **example_config(workload),
                    **CHEAP_CONFIGS.get(name, {}),
                }
                directs[name] = workload.evaluate(config, seed=4)
                futures[name] = service.submit(name, config, seed=4)
            for name, future in futures.items():
                assert (
                    future.result().canonical_json()
                    == directs[name].canonical_json()
                ), f"served {name} differs from direct evaluation"

    def test_warm_cache_request_served_from_result_cache(self):
        cache = ResultCache()
        config = CHEAP_CONFIGS["imc-crossbar"]
        with _service(cache=cache) as service:
            cold = service.evaluate("imc-crossbar", config, seed=0)
            computed_after_cold = service.snapshot()["evaluations"]
            warm = service.evaluate("imc-crossbar", config, seed=0)
            evaluations = service.snapshot()["evaluations"]
        assert warm.canonical_json() == cold.canonical_json()
        assert evaluations["cache_hits"] == 1
        assert (
            evaluations["computed"] == computed_after_cold["computed"] == 1
        )

    def test_in_batch_duplicates_deduplicate(self):
        config = CHEAP_CONFIGS["imc-crossbar"]
        with _service(start=False) as service:
            futures = [
                service.submit("imc-crossbar", config, seed=0)
                for _ in range(5)
            ]
            service.start()
            results = [f.result() for f in futures]
            evaluations = service.snapshot()["evaluations"]
        assert evaluations["computed"] == 1
        assert evaluations["deduped"] == 4
        first = results[0].canonical_json()
        assert all(r.canonical_json() == first for r in results)


class TestAdmission:
    def test_unknown_workload_fails_fast(self):
        with _service() as service:
            with pytest.raises(ValidationError, match="unknown workload"):
                service.submit("no-such-workload")

    def test_queue_full_rejected_with_reason(self):
        with _service(max_queue=2, start=False) as service:
            service.submit("test-sleepy")
            service.submit("test-sleepy", seed=1)
            with pytest.raises(AdmissionRejected) as excinfo:
                service.submit("test-sleepy", seed=2)
            assert excinfo.value.reason == "queue full"
            snapshot = service.snapshot()
            assert snapshot["requests"]["rejected"] == 1
            assert snapshot["requests"]["rejected_reasons"] == {
                "queue full": 1
            }
            service.start()

    def test_backpressure_blocks_instead_of_rejecting(self):
        with _service(max_queue=1, batch_size=1) as service:
            futures = [
                service.submit("test-sleepy", seed=seed, block=True)
                for seed in range(3)
            ]
            assert all(f.result().ok for f in futures)
            assert service.snapshot()["requests"]["rejected"] == 0

    def test_submissions_rejected_after_shutdown(self):
        service = _service()
        service.shutdown()
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit("test-sleepy")
        assert excinfo.value.reason == "stopped"


class TestPriorityAndBatching:
    def test_priority_lanes_dispatch_before_later_arrivals(self):
        service = _service(start=False, batch_size=2)
        service.submit("test-sleepy", seed=0, priority="low")
        service.submit("test-sleepy", seed=1, priority="normal")
        service.submit("test-sleepy", seed=2, priority="high")
        batch = service._next_batch()
        lanes = [request.priority for _, _, request, _, _ in batch]
        assert lanes == ["high", "normal"]
        service._run_batch(batch)  # resolve the popped futures
        service.start()
        service.shutdown()

    def test_integer_priorities_are_accepted(self):
        request = EvalRequest(workload="test-sleepy", priority=-5)
        assert request.priority_rank == -5

    def test_batch_size_bounds_occupancy(self):
        with _service(start=False, batch_size=3) as service:
            for seed in range(7):
                service.submit("test-sleepy", seed=seed)
            service.start()
            assert service.drain(timeout=30.0)
            batches = service.snapshot()["batches"]
        assert batches["max_occupancy"] <= 3
        assert batches["count"] >= 3


class TestFailureHandling:
    def test_broken_workload_returns_error_result(self):
        with _service() as service:
            result = service.evaluate("test-broken")
        assert not result.ok
        assert result.status == "error"
        assert result.error_type == "RuntimeError"
        assert "explodes" in result.error

    def test_error_results_are_not_cached(self):
        cache = ResultCache()
        with _service(cache=cache) as service:
            first = service.evaluate("test-broken", seed=9)
            second = service.evaluate("test-broken", seed=9)
            evaluations = service.snapshot()["evaluations"]
        assert not first.ok and not second.ok
        assert evaluations["cache_hits"] == 0
        assert evaluations["computed"] == 2

    def test_transient_faults_retry_under_policy(self):
        flaky = _FlakyWorkload(failures=2)
        register_workload(flaky, replace=True)
        try:
            policy = BackoffPolicy(max_attempts=3, base_delay_s=0.0,
                                   jitter=0.0)
            with _service(policy=policy) as service:
                result = service.evaluate("test-flaky", {"x": 2}, seed=1)
                evaluations = service.snapshot()["evaluations"]
            assert result.ok
            assert result.attempts == 3
            assert evaluations["retries"] == 2
        finally:
            register_workload(_FlakyWorkload(), replace=True)

    def test_retries_exhausted_becomes_error_result(self):
        flaky = _FlakyWorkload(failures=5)
        register_workload(flaky, replace=True)
        try:
            policy = BackoffPolicy(max_attempts=2, base_delay_s=0.0,
                                   jitter=0.0)
            with _service(policy=policy) as service:
                result = service.evaluate("test-flaky", {"x": 1}, seed=0)
            assert not result.ok
            assert result.error_type == "TransientFault"
        finally:
            register_workload(_FlakyWorkload(), replace=True)

    def test_request_timeout_becomes_error_result(self):
        with _service() as service:
            result = service.evaluate(
                "test-sleepy", timeout_s=1e-6
            )
        assert not result.ok

    def test_coalesced_follower_not_served_leader_error(self):
        # Two identical requests land in one batch; dedup makes the
        # second a follower of the first.  The first attempt fails, so
        # the follower must get a fresh evaluation (which succeeds),
        # not a copy of the leader's error record.
        flaky = _FlakyWorkload(failures=1)
        register_workload(flaky, replace=True)
        try:
            cache = ResultCache()
            service = _service(start=False, cache=cache, batch_size=4)
            first = service.submit("test-flaky", {"x": 1}, seed=3)
            second = service.submit("test-flaky", {"x": 1}, seed=3)
            service.start()
            leader = first.result(timeout=30.0)
            follower = second.result(timeout=30.0)
            assert not leader.ok
            assert leader.error_type == "TransientFault"
            assert follower.ok
            # The follower's success repopulated the cache, so the next
            # identical request is a hit on a good result.
            before = service.snapshot()["evaluations"]["cache_hits"]
            third = service.evaluate("test-flaky", {"x": 1}, seed=3)
            after = service.snapshot()["evaluations"]["cache_hits"]
            service.shutdown()
            assert third.ok
            assert after == before + 1
        finally:
            register_workload(_FlakyWorkload(), replace=True)

    def test_follower_retry_counts_as_computed(self):
        flaky = _FlakyWorkload(failures=1)
        register_workload(flaky, replace=True)
        try:
            service = _service(start=False, batch_size=4)
            futures = [
                service.submit("test-flaky", {"x": 2}, seed=5)
                for _ in range(3)
            ]
            service.start()
            results = [f.result(timeout=30.0) for f in futures]
            evaluations = service.snapshot()["evaluations"]
            service.shutdown()
            assert not results[0].ok
            assert all(r.ok for r in results[1:])
            # Leader attempt plus one fresh attempt per follower (the
            # retry path deliberately skips dedup).
            assert evaluations["computed"] == 3
        finally:
            register_workload(_FlakyWorkload(), replace=True)


class TestLifecycle:
    def test_graceful_shutdown_completes_queued_requests(self):
        service = _service(start=False, batch_size=2)
        futures = [
            service.submit("test-sleepy", seed=seed) for seed in range(4)
        ]
        service.start()
        service.shutdown()  # drain=True
        assert all(f.result().ok for f in futures)

    def test_non_graceful_shutdown_cancels_queued_futures(self):
        service = _service(start=False)
        futures = [
            service.submit("test-sleepy", seed=seed) for seed in range(3)
        ]
        service.shutdown(drain=False)
        for future in futures:
            with pytest.raises(AdmissionRejected) as excinfo:
                future.result(timeout=5.0)
            assert excinfo.value.reason == "cancelled"

    def test_shutdown_is_idempotent(self):
        service = _service()
        service.shutdown()
        service.shutdown()

    def test_drain_returns_false_on_timeout(self):
        with _service(start=False) as service:
            service.submit("test-sleepy")
            assert service.drain(timeout=0.01) is False
            service.start()
            assert service.drain(timeout=30.0) is True

    def test_start_after_shutdown_rejected(self):
        service = _service()
        service.shutdown()
        with pytest.raises(ValidationError, match="shut down"):
            service.start()

    def test_alive_reflects_lifecycle(self):
        service = _service()
        assert service.alive
        service.shutdown()
        assert not service.alive

    def test_kill_strands_queued_work_and_rejects_new(self):
        # kill() models a crash: queued futures are abandoned (never
        # resolved -- recovery is the cluster's job), and the dead
        # service refuses new admissions.
        service = _service(start=False)
        future = service.submit("test-sleepy", seed=1)
        service.kill()
        assert not service.alive
        with pytest.raises(FuturesTimeoutError):
            future.result(timeout=0.05)
        with pytest.raises(AdmissionRejected):
            service.submit("test-sleepy", seed=2)


class TestAsyncAndOneShot:
    def test_submit_async_resolves_in_event_loop(self):
        async def roundtrip(service):
            request = EvalRequest(
                workload="hls", config=CHEAP_CONFIGS["hls"], seed=3
            )
            return await service.submit_async(request)

        with _service() as service:
            result = asyncio.run(roundtrip(service))
        direct = get_workload("hls").evaluate(CHEAP_CONFIGS["hls"], seed=3)
        assert result.canonical_json() == direct.canonical_json()

    def test_serve_requests_preserves_request_order(self):
        requests = [
            EvalRequest(workload="hls", config=CHEAP_CONFIGS["hls"],
                        seed=seed)
            for seed in (5, 1, 3)
        ]
        results, snapshot = serve_requests(requests, batch_size=2)
        assert [r.seed for r in results] == [5, 1, 3]
        assert snapshot["requests"]["completed"] == 3

    def test_serve_requests_mixed_workloads(self):
        requests = [
            EvalRequest(workload="hls", config=CHEAP_CONFIGS["hls"]),
            EvalRequest(workload="sparta", config=CHEAP_CONFIGS["sparta"],
                        priority="high"),
        ]
        results, _ = serve_requests(requests)
        assert [r.workload for r in results] == ["hls", "sparta"]
        assert all(r.ok for r in results)


class TestMetricsSnapshot:
    def test_snapshot_has_the_advertised_sections(self):
        with _service(cache=ResultCache()) as service:
            service.evaluate("hls", CHEAP_CONFIGS["hls"])
            snapshot = service.snapshot()
        for section in ("elapsed_s", "requests", "throughput_rps",
                        "latency_s", "queue_wait_s", "queue_depth",
                        "batches", "evaluations", "cache", "evaluator"):
            assert section in snapshot, f"snapshot misses {section!r}"
        for key in ("p50", "p95", "p99", "mean", "max", "count"):
            assert key in snapshot["latency_s"]
        assert snapshot["requests"]["in_flight"] == 0
        json.dumps(snapshot)  # JSON-exportable as-is

    def test_cache_hit_and_dedup_ratios(self):
        config = CHEAP_CONFIGS["hls"]
        with _service(cache=ResultCache()) as service:
            service.evaluate("hls", config)
            service.evaluate("hls", config)
            evaluations = service.snapshot()["evaluations"]
        assert evaluations["cache_hit_ratio"] == pytest.approx(0.5)
        assert evaluations["computed"] == 1

    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 50.0) == pytest.approx(2.5)
        assert percentile([], 50.0) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 101.0)


class TestRequestShape:
    def test_request_json_round_trip(self):
        request = EvalRequest(
            workload="hls", config={"size": 8}, seed=4, impl=None,
            priority="high", timeout_s=2.0,
        )
        assert EvalRequest.from_json(request.to_json()) == request

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown EvalRequest"):
            EvalRequest.from_json({"workload": "hls", "nope": 1})

    def test_invalid_priority_rejected(self):
        with pytest.raises(ValidationError, match="priority"):
            EvalRequest(workload="hls", priority="urgent")

    def test_load_requests_parses_json_array(self):
        text = json.dumps([
            {"workload": "hls", "config": {"size": 8}, "seed": 1},
            {"workload": "sparta", "priority": "low"},
        ])
        requests = load_requests(text)
        assert [r.workload for r in requests] == ["hls", "sparta"]
        assert requests[1].priority == "low"

    def test_load_requests_rejects_non_array(self):
        with pytest.raises(ValidationError, match="array"):
            load_requests(json.dumps({"workload": "hls"}))

    def test_digest_matches_request_identity(self):
        a = EvalRequest(workload="hls", config={"size": 8}, seed=1)
        b = EvalRequest(workload="hls", config={"size": 8}, seed=1,
                        priority="high")
        c = EvalRequest(workload="hls", config={"size": 8}, seed=2)
        assert a.digest == b.digest  # priority is routing, not identity
        assert a.digest != c.digest


class TestLoadgen:
    def test_config_pool_members_are_valid_and_distinct(self):
        workload = get_workload("imc-crossbar")
        pool = config_pool(workload, 6)
        space = workload.space()
        assert len({json.dumps(c, sort_keys=True) for c in pool}) == 6
        for config in pool:
            for param, value in config.items():
                assert value in space[param]

    def test_zipf_weights_normalized_and_head_heavy(self):
        weights = zipf_weights(8, skew=1.5)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(7))

    def test_generate_requests_is_deterministic(self):
        workload = get_workload("hls")
        first = generate_requests(workload, 16, seed=7)
        second = generate_requests(workload, 16, seed=7)
        assert first == second
        assert len({r.digest for r in first}) < 16  # duplicate-heavy

    def test_repeated_configs_share_seed_hence_digest(self):
        workload = get_workload("hls")
        requests = generate_requests(workload, 32, pool_size=4, seed=0)
        by_config = {}
        for request in requests:
            key = json.dumps(dict(request.config), sort_keys=True)
            by_config.setdefault(key, set()).add(request.digest)
        assert all(len(digests) == 1 for digests in by_config.values())

    def test_priority_mix_uses_requested_lanes(self):
        workload = get_workload("hls")
        requests = generate_requests(
            workload, 32, seed=1,
            priority_mix={"high": 0.5, "normal": 0.5},
        )
        lanes = {r.priority for r in requests}
        assert lanes <= {"high", "normal"}
        assert len(lanes) == 2

    def test_run_load_burst_reports_throughput_and_latency(self):
        workload = get_workload("hls")
        requests = generate_requests(workload, 8, seed=2)
        with _service() as service:
            point = run_load(service, requests)
        assert point["completed"] == 8
        assert point["achieved_rps"] > 0
        assert point["latency_s"]["count"] == 8
        first = point["results"][0]
        assert isinstance(first, RunResult) and first.ok

    def test_run_load_paced_mode_spaces_arrivals(self):
        workload = get_workload("hls")
        requests = generate_requests(workload, 4, seed=3)
        with _service() as service:
            point = run_load(service, requests, rate_rps=200.0)
        assert point["offered_rps"] == 200.0
        assert point["completed"] == 4
        assert point["elapsed_s"] >= 3 / 200.0
