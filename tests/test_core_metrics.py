"""Tests for repro.core.metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import metrics


class TestMse:
    def test_identical_is_zero(self):
        a = np.arange(12.0).reshape(3, 4)
        assert metrics.mse(a, a) == 0.0

    def test_known_value(self):
        assert metrics.mse(np.zeros(4), np.full(4, 2.0)) == pytest.approx(4.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            metrics.mse(np.zeros(3), np.zeros(4))


class TestPsnr:
    def test_identical_is_inf(self):
        a = np.ones((8, 8))
        assert metrics.psnr(a, a) == float("inf")

    def test_known_value(self):
        # MSE = 1 with peak 255 -> 10*log10(255^2) ~ 48.13 dB
        ref = np.zeros(100)
        test = np.ones(100)
        assert metrics.psnr(ref, test) == pytest.approx(48.1308, abs=1e-3)

    def test_peak_scaling(self):
        ref = np.zeros(10)
        test = np.full(10, 0.1)
        assert metrics.psnr(ref, test, peak=1.0) == pytest.approx(20.0)

    def test_more_noise_lower_psnr(self):
        rng = np.random.default_rng(1)
        ref = rng.uniform(0, 255, size=(32, 32))
        small = ref + rng.normal(0, 1, ref.shape)
        large = ref + rng.normal(0, 10, ref.shape)
        assert metrics.psnr(ref, small) > metrics.psnr(ref, large)


class TestAccuracy:
    def test_perfect(self):
        labels = np.array([0, 1, 2, 1])
        assert metrics.classification_accuracy(labels, labels) == 1.0

    def test_half(self):
        assert metrics.classification_accuracy(
            np.array([0, 1, 0, 1]), np.array([0, 1, 1, 0])
        ) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            metrics.classification_accuracy(np.array([]), np.array([]))


class TestDice:
    def test_identical_masks(self):
        m = np.array([[1, 0], [1, 1]], dtype=bool)
        assert metrics.dice_coefficient(m, m) == 1.0

    def test_disjoint_masks(self):
        a = np.array([1, 1, 0, 0], dtype=bool)
        b = np.array([0, 0, 1, 1], dtype=bool)
        assert metrics.dice_coefficient(a, b) == 0.0

    def test_empty_masks(self):
        z = np.zeros(4, dtype=bool)
        assert metrics.dice_coefficient(z, z) == 1.0

    def test_known_overlap(self):
        a = np.array([1, 1, 1, 0], dtype=bool)
        b = np.array([1, 1, 0, 0], dtype=bool)
        assert metrics.dice_coefficient(a, b) == pytest.approx(0.8)


class TestRelativeChange:
    def test_reduction(self):
        assert metrics.relative_change(10.0, 9.0) == pytest.approx(-0.1)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            metrics.relative_change(0.0, 1.0)


class TestGeometricMean:
    def test_known(self):
        assert metrics.geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            metrics.geometric_mean(np.array([1.0, 0.0]))

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20
        )
    )
    def test_between_min_and_max(self, values):
        vals = np.array(values)
        gm = metrics.geometric_mean(vals)
        assert vals.min() - 1e-9 <= gm <= vals.max() + 1e-9
