"""Tests for the cluster-wide observability plane.

Four contracts under test:

- **Trace stitching**: a request served through a ``ShardCluster``
  yields one trace spanning router -> shard worker -> evaluator, with
  the canonical encoding byte-identical across reruns, across the
  inproc/process backends, and across a chaos kill vs a fault-free
  run (replays re-derive the same span ids instead of forking the
  trace).
- **Flight recorder**: bounded ring, named gauge sources, crash dumps
  triggered by ledger watchers, JSONL round trip.
- **SLO layer**: multi-window burn rates over recorder samples,
  breach/recovery ledger transitions, circuit-breaker coupling.
- **Critical path**: request subtrees decomposed into the shared phase
  taxonomy, with stable regression attribution.
"""

import json
import os
import random
import time

import pytest

from repro import obs
from repro.core.api import get_workload
from repro.core.errors import ValidationError
from repro.obs.critical import (
    PHASES,
    compare_reports,
    critical_path_report,
    request_breakdowns,
    trace_breakdown,
)
from repro.obs.ledger import RunLedger, get_ledger
from repro.obs.metrics import get_metrics, prometheus_text
from repro.obs.recorder import FlightRecorder, load_flight_jsonl
from repro.obs.slo import SLOEvaluator, SLOSpec, evaluate_slos
from repro.obs.stats import bucket_fraction_above
from repro.obs.trace import derive_span_id, derive_trace_id, get_tracer
from repro.resilience import ChaosPolicy
from repro.serve import ShardCluster, run_chaos_campaign
from repro.serve.procshard import merge_shard_events
from repro.serve.request import EvalRequest
from repro.serve.service import EvaluationService

WORKLOAD = "imc-crossbar"


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with the spine off and empty."""
    obs.disable()
    get_tracer().reset()
    get_ledger().reset()
    get_metrics().reset()
    yield
    obs.disable()
    get_tracer().reset()
    get_ledger().reset()
    get_metrics().reset()


def _requests(count):
    return [
        EvalRequest(
            workload=WORKLOAD,
            config={"rows": 16, "cols": 16},
            seed=seed,
        )
        for seed in range(count)
    ]


def _serve_cluster(backend, count=4, **kwargs):
    """Serve *count* distinct requests through a fresh 2-shard cluster
    under full observability; returns (canonical_json, spans)."""
    get_tracer().reset()
    get_ledger().reset()
    get_metrics().reset()
    obs.enable()
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("batch_wait_s", 0.002)
    kwargs.setdefault("supervise", False)
    cluster = ShardCluster(backend=backend, **kwargs)
    cluster.wait_ready()
    try:
        futures = [
            cluster.submit_request(request, block=True)
            for request in _requests(count)
        ]
        for future in futures:
            assert future.result().ok
    finally:
        cluster.shutdown()
    tracer = get_tracer()
    canonical = tracer.canonical_json()
    spans = tracer.spans()
    obs.disable()
    return canonical, spans


def _spans_by_trace(spans):
    by_trace = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)
    return by_trace


# ---------------------------------------------------------------- stitching


class TestTraceStitching:
    def test_inproc_request_stitches_router_to_evaluator(self):
        _, spans = _serve_cluster("inproc", count=3)
        for trace_spans in _spans_by_trace(spans).values():
            names = {s["name"]: s for s in trace_spans}
            assert "cluster.request" in names
            assert "request" in names
            assert "worker" in names
            cluster_root = names["cluster.request"]
            request_root = names["request"]
            assert cluster_root["parent_id"] == ""
            assert request_root["parent_id"] == cluster_root["span_id"]
            # The shard-side root carries the owning shard id as a
            # volatile tag (excluded from canonical identity).
            assert request_root["volatile"]["shard"] in (0, 1)

    def test_rerun_canonical_identity_inproc(self):
        first, _ = _serve_cluster("inproc", count=4)
        second, _ = _serve_cluster("inproc", count=4)
        assert first == second

    def test_process_backend_matches_inproc_byte_for_byte(self):
        inproc, _ = _serve_cluster("inproc", count=4)
        process, spans = _serve_cluster("process", count=4)
        assert inproc == process
        # Worker-side spans really crossed the process boundary and
        # were tagged with their shard on arrival.
        workers = [s for s in spans if s["name"] == "worker"]
        assert workers
        assert all(
            s["volatile"].get("shard") in (0, 1) for s in workers
        )

    def test_process_rerun_canonical_identity(self):
        first, _ = _serve_cluster("process", count=3)
        second, _ = _serve_cluster("process", count=3)
        assert first == second

    def test_direct_service_submit_with_trace_ctx(self):
        obs.enable()
        tracer = get_tracer()
        root = tracer.start_span(
            "driver", trace_id=derive_trace_id("driver", 0)
        )
        service = EvaluationService(batch_size=2, batch_wait_s=0.002)
        try:
            future = service.submit(
                WORKLOAD,
                {"rows": 16, "cols": 16},
                seed=0,
                block=True,
                trace_ctx=root.context,
            )
            assert future.result().ok
        finally:
            service.shutdown()
        tracer.end_span(root)
        spans = tracer.spans(root.trace_id)
        names = {s["name"]: s for s in spans}
        assert names["request"]["parent_id"] == root.span_id
        assert "worker" in names

    def test_campaign_layer_dispatch_stitches_under_campaign(self):
        from repro.campaign import CampaignGraph
        from repro.campaign.runner import GraphRunner

        obs.enable()
        graph = CampaignGraph(name="obsplane")
        for index in range(3):
            graph.evaluate(
                f"cell-{index}",
                WORKLOAD,
                config={"rows": 16, "cols": 16},
                seed=index,
            )
        cluster = ShardCluster(
            num_shards=2,
            batch_size=4,
            batch_wait_s=0.002,
            supervise=False,
        )
        try:
            report = GraphRunner(service=cluster).run(graph)
        finally:
            cluster.shutdown()
        assert all(r.ok for r in report.results.values())
        spans = get_tracer().spans()
        campaign_traces = {
            s["trace_id"] for s in spans if s["name"] == "campaign"
        }
        assert len(campaign_traces) == 1
        (tid,) = campaign_traces
        names = [s["name"] for s in spans if s["trace_id"] == tid]
        # Layer dispatch, router, shard and evaluator all landed in
        # the ONE campaign trace.
        for expected in (
            "campaign", "campaign.layer", "cluster.request",
            "request", "worker",
        ):
            assert expected in names
        # Three evaluations under one shared layer span still derive
        # three distinct cluster.request ids (per-parent digest order).
        cluster_spans = [
            s for s in spans
            if s["trace_id"] == tid and s["name"] == "cluster.request"
        ]
        assert len({s["span_id"] for s in cluster_spans}) == 3


# ------------------------------------------------- shard event merge (fix)


class TestMergeShardEvents:
    def _batch(self):
        return [
            {"event": "request.admitted", "trace_id": "t2", "seq": 0,
             "ts": 2.0},
            {"event": "evaluation.computed", "trace_id": "t1",
             "seq": 1, "ts": 1.0},
            {"event": "request.admitted", "trace_id": "t1", "seq": 0,
             "ts": 0.5},
            {"event": "request.done", "trace_id": "t2", "seq": 2,
             "ts": 3.0},
        ]

    def test_merge_sorts_by_trace_then_child_seq(self):
        ledger = RunLedger()
        ledger.enable()
        merge_shard_events(ledger, 3, self._batch())
        events = ledger.events()
        assert [
            (e["trace_id"], e["event"]) for e in events
        ] == [
            ("t1", "request.admitted"),
            ("t1", "evaluation.computed"),
            ("t2", "request.admitted"),
            ("t2", "request.done"),
        ]
        assert all(e["shard"] == 3 for e in events)
        # Child-side ordering survives as the volatile shard_seq.
        assert [e["shard_seq"] for e in events] == [0, 1, 0, 2]

    def test_merge_is_deterministic_under_arrival_shuffle(self):
        ledger_a = RunLedger()
        ledger_a.enable()
        merge_shard_events(ledger_a, 0, self._batch())
        shuffled = self._batch()
        random.Random(7).shuffle(shuffled)
        ledger_b = RunLedger()
        ledger_b.enable()
        merge_shard_events(ledger_b, 0, shuffled)
        assert ledger_a.canonical_json() == ledger_b.canonical_json()

    def test_disabled_ledger_ignores_batch(self):
        ledger = RunLedger()
        merge_shard_events(ledger, 0, self._batch())
        assert ledger.events() == []


# ------------------------------------------------------------- recorder


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for _ in range(7):
            recorder.sample()
        assert len(recorder) == 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValidationError):
            FlightRecorder(interval_s=0.0)

    def test_sources_are_prefixed_and_fault_isolated(self):
        recorder = FlightRecorder()
        recorder.add_source("svc", lambda: {"depth": 4})
        recorder.add_source(
            "broken", lambda: (_ for _ in ()).throw(RuntimeError())
        )
        sample = recorder.sample()
        assert sample["gauges"]["svc.depth"] == 4.0
        assert not any(
            key.startswith("broken.") for key in sample["gauges"]
        )

    def test_samples_carry_registry_metrics(self):
        registry = get_metrics()
        registry.enable()
        registry.inc("serve.completed", 5)
        registry.observe("serve.latency_s", 0.01)
        sample = FlightRecorder().sample()
        assert sample["counters"]["serve.completed"] == 5
        assert "serve.latency_s" in sample["histograms"]

    def test_dump_takes_fresh_sample_first(self):
        recorder = FlightRecorder()
        tick = {"value": 0.0}
        recorder.add_source("live", lambda: {"v": tick["value"]})
        recorder.sample()
        tick["value"] = 9.0
        dump = recorder.dump("manual", detail="x")
        assert dump["reason"] == "manual"
        assert dump["fields"] == {"detail": "x"}
        # The freshest ring entry reflects state at the dump instant.
        assert dump["samples"][-1]["gauges"]["live.v"] == 9.0
        assert recorder.dumps[0]["reason"] == "manual"

    def test_ledger_watcher_triggers_dump_and_stop_unhooks(self):
        ledger = get_ledger()
        ledger.enable()
        recorder = FlightRecorder()
        recorder.watch_ledger()
        ledger.event("request.admitted")  # not a dump trigger
        assert recorder.dumps == []
        ledger.event("shard.killed", shard=1)
        dumps = recorder.dumps
        assert len(dumps) == 1
        assert dumps[0]["reason"] == "ledger:shard.killed"
        assert dumps[0]["fields"]["shard"] == 1
        recorder.stop()
        ledger.event("shard.killed", shard=0)
        assert len(recorder.dumps) == 1

    def test_dump_emits_no_ledger_events(self):
        ledger = get_ledger()
        ledger.enable()
        recorder = FlightRecorder()
        recorder.watch_ledger()
        ledger.event("shard.down", shard=0, cause="test")
        events = [e["event"] for e in ledger.events()]
        assert events == ["shard.down"]
        recorder.stop()

    def test_sampler_thread_collects(self):
        recorder = FlightRecorder(interval_s=0.01)
        recorder.start()
        deadline = time.time() + 2.0
        while len(recorder) < 2 and time.time() < deadline:
            time.sleep(0.01)
        recorder.stop()
        assert len(recorder) >= 2

    def test_export_jsonl_round_trip(self, tmp_path):
        recorder = FlightRecorder()
        recorder.add_source("svc", lambda: {"depth": 2})
        recorder.sample()
        recorder.dump("test-dump")
        path = str(tmp_path / "flight.jsonl")
        lines = recorder.export_jsonl(path)
        assert lines == len(recorder.samples()) + 1
        loaded = load_flight_jsonl(path)
        assert loaded["samples"] == recorder.samples()
        assert loaded["dumps"][0]["reason"] == "test-dump"


# ------------------------------------------------------------------- slo


def _sample(ts, completed=0, failed=0, rejected=0, cache_hits=0,
            computed=0, latencies=()):
    """Synthetic cumulative recorder sample."""
    bounds = [0.01, 0.1, 1.0]
    counts = [0, 0, 0, 0]
    for value in latencies:
        for i, bound in enumerate(bounds):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    return {
        "ts": ts,
        "counters": {
            "serve.completed": completed,
            "serve.failed": failed,
            "serve.rejected": rejected,
            "serve.cache_hits": cache_hits,
            "serve.computed": computed,
        },
        "gauges": {},
        "histograms": {
            "serve.latency_s": {
                "bounds": bounds,
                "counts": counts,
                "count": sum(counts),
            }
        },
    }


class TestSLO:
    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            SLOSpec(name="x", objective="nope", target=0.1)
        with pytest.raises(ValidationError):
            SLOSpec(name="x", objective="error_rate", target=0.0)
        with pytest.raises(ValidationError):
            SLOSpec(
                name="x", objective="availability", target=0.9,
                windows=(),
            )
        with pytest.raises(ValidationError):
            SLOEvaluator([
                SLOSpec(name="a", objective="error_rate", target=0.1),
                SLOSpec(name="a", objective="error_rate", target=0.2),
            ])

    def test_spec_json_round_trip(self):
        spec = SLOSpec(
            name="p99", objective="p99_latency", target=0.05,
            windows=(2.0, 10.0), burn_threshold=2.0,
            workload=WORKLOAD,
        )
        assert SLOSpec.from_json(spec.to_json()) == spec

    def test_error_rate_breach_and_recovery_emit_transitions(self):
        ledger = get_ledger()
        ledger.enable()
        spec = SLOSpec(
            name="errors", objective="error_rate", target=0.1,
            windows=(1.0, 5.0),
        )
        evaluator = SLOEvaluator([spec])
        # 50% failures across both windows: burning 5x budget.
        burning = [
            _sample(0.0),
            _sample(4.5, completed=10, failed=10),
            _sample(5.0, completed=20, failed=20),
        ]
        (status,) = evaluator.evaluate(burning)
        assert status["state"] == "breached"
        assert evaluator.breached() == ["errors"]
        # Second evaluation in the same state: no duplicate event.
        evaluator.evaluate(burning)
        # Errors stop: rates fall to zero in every window.
        recovered = [
            _sample(10.0, completed=40, failed=20),
            _sample(14.5, completed=80, failed=20),
            _sample(15.0, completed=90, failed=20),
        ]
        (status,) = evaluator.evaluate(recovered)
        assert status["state"] == "ok"
        events = [e["event"] for e in ledger.events()]
        assert events == ["slo.breach", "slo.recovered"]

    def test_short_window_spike_alone_does_not_breach(self):
        spec = SLOSpec(
            name="errors", objective="error_rate", target=0.1,
            windows=(1.0, 10.0),
        )
        # Long window healthy (2% errors), last second terrible.
        samples = [
            _sample(0.0),
            _sample(9.0, completed=980, failed=20),
            _sample(10.0, completed=980, failed=30),
        ]
        (status,) = evaluate_slos([spec], samples)
        assert status["windows"][1.0]["burn"] > 1.0
        assert status["windows"][10.0]["burn"] < 1.0
        assert status["state"] == "ok"

    def test_p99_latency_burn_from_histogram_deltas(self):
        spec = SLOSpec(
            name="p99", objective="p99_latency", target=0.1,
            windows=(1.0, 5.0),
        )
        # Window deltas: half the requests land in the overflow
        # buckets above the 100 ms target -> burning 50x the 1% budget.
        slow = [
            _sample(0.0),
            _sample(4.5, completed=8, latencies=[0.005] * 8),
            _sample(
                5.0, completed=16,
                latencies=[0.005] * 8 + [0.5] * 8,
            ),
        ]
        (status,) = evaluate_slos([spec], slow)
        assert status["state"] == "breached"
        assert status["windows"][5.0]["burn"] == pytest.approx(50.0)
        fast = [
            _sample(0.0),
            _sample(5.0, completed=16, latencies=[0.005] * 16),
        ]
        (status,) = evaluate_slos([spec], fast)
        assert status["state"] == "ok"

    def test_availability_and_cache_hit_objectives(self):
        specs = [
            SLOSpec(
                name="avail", objective="availability", target=0.9,
                windows=(5.0,),
            ),
            SLOSpec(
                name="cache", objective="cache_hit", target=0.5,
                windows=(5.0,), burn_threshold=0.5,
            ),
        ]
        samples = [
            _sample(0.0),
            _sample(
                5.0, completed=50, failed=25, rejected=25,
                cache_hits=10, computed=90,
            ),
        ]
        avail, cache = evaluate_slos(specs, samples)
        assert avail["state"] == "breached"  # 50% << 90% target
        # Hit rate 10% against the 50% floor burns 0.8x the budget,
        # past this spec's 0.5 threshold.
        assert cache["state"] == "breached"
        assert avail["windows"][5.0]["value"] == pytest.approx(0.5)
        assert cache["windows"][5.0]["value"] == pytest.approx(0.1)
        assert cache["windows"][5.0]["burn"] == pytest.approx(0.8)

    def test_breach_trips_cluster_breaker_and_recovery_closes(self):
        get_ledger().enable()
        cluster = ShardCluster(
            num_shards=2, supervise=False, breaker_recovery_s=0.05
        )
        try:
            spec = SLOSpec(
                name="errors", objective="error_rate", target=0.1,
                windows=(1.0,), workload=WORKLOAD,
            )
            evaluator = SLOEvaluator([spec], cluster=cluster)
            evaluator.evaluate(
                [_sample(0.0), _sample(1.0, completed=5, failed=5)]
            )
            breaker = cluster.breaker(WORKLOAD)
            assert breaker.state == "open"
            with pytest.raises(Exception):
                cluster.submit_request(_requests(1)[0])
            # The breaker's own recovery window governs re-admission:
            # once it half-opens, the SLO recovery's recorded success
            # closes it.
            time.sleep(0.1)
            assert breaker.state == "half_open"
            evaluator.evaluate(
                [_sample(10.0), _sample(11.0, completed=50)]
            )
            assert breaker.state == "closed"
            assert evaluator.breached() == []
        finally:
            cluster.shutdown()

    def test_bucket_fraction_above(self):
        bounds = [0.01, 0.1, 1.0]
        counts = [5, 5, 0, 10]
        # Overflow bucket entirely above 0.5; half of nothing else.
        assert bucket_fraction_above(
            bounds, counts, 0.5
        ) == pytest.approx(0.5)
        assert bucket_fraction_above(bounds, counts, 0.0) == 1.0
        assert bucket_fraction_above([0.1], [0, 0], 0.05) == 0.0


# ----------------------------------------------------------- critical path


def _span(name, trace_id, span_id, parent_id, duration,
          attributes=None):
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "duration_s": duration,
        "status": "ok",
        "attributes": attributes or {},
        "volatile": {},
    }


def _synthetic_request(trace_id, *, total=1.0, wait=0.2, batch=0.6,
                       eval_s=0.5, transport=0.05, request=0.85):
    return [
        _span("cluster.request", trace_id, "c1", "", total,
              {"workload": WORKLOAD}),
        _span("transport.encode", trace_id, "tx", "c1", transport),
        _span("request", trace_id, "r1", "c1", request,
              {"workload": WORKLOAD}),
        _span("queue.wait", trace_id, "q1", "r1", wait),
        _span("batch", trace_id, "b1", "r1", batch),
        _span("worker", trace_id, "w1", "b1", eval_s),
    ]


class TestCriticalPath:
    def test_breakdown_phases(self):
        breakdown = trace_breakdown(_synthetic_request("t1"))
        phases = breakdown["phases"]
        assert breakdown["workload"] == WORKLOAD
        assert phases["admission_wait"] == pytest.approx(0.2)
        assert phases["eval"] == pytest.approx(0.5)
        assert phases["batch_wait"] == pytest.approx(0.1)
        assert phases["transport"] == pytest.approx(0.05)
        assert phases["route_merge"] == pytest.approx(0.15)
        assert breakdown["total_s"] == pytest.approx(1.0)
        # Every second accounted: 0.2 + 0.1 + 0.5 + 0.05 + 0.15 = 1.0.
        assert phases["other"] == pytest.approx(0.0, abs=1e-9)

    def test_direct_request_without_cluster_root(self):
        records = _synthetic_request("t1")[2:]  # drop router + encode
        breakdown = trace_breakdown(records)
        assert breakdown["phases"]["route_merge"] == 0.0
        assert breakdown["total_s"] == pytest.approx(0.85)

    def test_campaign_trace_yields_one_breakdown_per_request(self):
        records = []
        records.append(
            _span("campaign", "t", "camp", "", 5.0)
        )
        records.append(
            _span("campaign.layer", "t", "layer", "camp", 4.0)
        )
        for i in range(3):
            sub = _synthetic_request("t")
            for record in sub:
                record["span_id"] = f"{record['span_id']}-{i}"
                if record["name"] == "cluster.request":
                    record["parent_id"] = "layer"
                elif record["parent_id"]:
                    record["parent_id"] = f"{record['parent_id']}-{i}"
            records.extend(sub)
        breakdowns = request_breakdowns(records)
        assert len(breakdowns) == 3

    def test_report_orders_slowest_first_and_aggregates(self):
        records = _synthetic_request("a", total=1.0) + \
            _synthetic_request("b", total=3.0) + \
            _synthetic_request("c", total=2.0)
        report = critical_path_report(records, top=2)
        assert report["requests"] == 3
        assert [e["trace_id"] for e in report["top"]] == ["b", "c"]
        assert report["phase_means_s"]["eval"] == pytest.approx(0.5)

    def test_compare_reports_names_culprit(self):
        base = critical_path_report(_synthetic_request("a"))
        regressed = critical_path_report(
            _synthetic_request("a", total=2.0, eval_s=1.5)
        )
        diff = compare_reports(base, regressed)
        assert diff["culprit"] == "eval"
        assert diff["phase_deltas_s"]["eval"] == pytest.approx(1.0)
        assert diff["ranked"][0]["phase"] == "eval"
        same = compare_reports(base, base)
        assert same["culprit"] is None

    def test_live_cluster_trace_decomposes(self):
        _, spans = _serve_cluster("inproc", count=3)
        report = critical_path_report(spans, top=3)
        assert report["requests"] == 3
        top = report["top"][0]
        assert top["workload"] == WORKLOAD
        assert top["total_s"] > 0.0
        assert top["phases"]["eval"] >= 0.0
        assert set(top["phases"]) == set(PHASES)


# ------------------------------------------------------------- prometheus


class TestPrometheusText:
    def test_exposition_covers_all_metric_kinds(self):
        registry = get_metrics()
        registry.enable()
        registry.inc("serve.completed", 3)
        registry.set_gauge("serve.queue_depth", 2)
        registry.observe("serve.latency_s", 0.02)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE serve_completed counter" in text
        assert "serve_completed 3" in text
        assert "serve_queue_depth 2" in text
        assert "# TYPE serve_latency_s histogram" in text
        assert 'serve_latency_s_bucket{le="+Inf"} 1' in text
        assert "serve_latency_s_count 1" in text


# ---------------------------------------------------------------- chaos


class TestObsUnderChaos:
    def test_crash_dump_and_stitched_traces_survive_a_kill(self):
        requests = _requests(8)

        def campaign(policy, recorder):
            get_tracer().reset()
            get_ledger().reset()
            get_metrics().reset()
            obs.enable()
            results, report = run_chaos_campaign(
                requests,
                policy,
                num_shards=2,
                batch_size=4,
                supervise=False,
                recorder=recorder,
            )
            canonical = get_tracer().canonical_json()
            obs.disable()
            return results, report, canonical

        recorder = FlightRecorder(interval_s=0.01)
        policy = ChaosPolicy.kill_shard(4, 0)
        results, report, canonical_kill = campaign(policy, recorder)
        assert report["lost"] == 0
        assert report["restarts"] >= 1
        assert all(r is not None and r.ok for r in results)

        # The kill produced at least one automatic flight dump whose
        # fresh final sample still carries the killed shard's gauges.
        dumps = recorder.dumps
        assert dumps
        assert any("shard.down" in d["reason"] for d in dumps) or any(
            "shard.killed" in d["reason"] for d in dumps
        )
        last_sample = dumps[0]["samples"][-1]
        assert "cluster.shard0.alive" in last_sample["gauges"]
        assert "cluster.shard1.alive" in last_sample["gauges"]

        # Fault-free rerun: byte-identical stitched traces (replays
        # re-derive the same span ids; partial attempts vanish).
        _, report_clean, canonical_clean = campaign(
            ChaosPolicy(), None
        )
        assert report_clean["restarts"] == 0
        assert canonical_kill == canonical_clean


# ------------------------------------------------------------------- cli


class TestObsCli:
    def _serve(self, tmp_path, capsys):
        from repro.cli import main

        trace_dir = str(tmp_path / "obs")
        assert main([
            "serve", "--workload", WORKLOAD, "--num-requests", "6",
            "--trace-dir", trace_dir,
        ]) == 0
        capsys.readouterr()
        return trace_dir

    def test_serve_exports_flight_and_metrics(self, tmp_path, capsys):
        trace_dir = self._serve(tmp_path, capsys)
        for name in (
            "trace.jsonl", "ledger.jsonl", "trace.chrome.json",
            "metrics.json", "flight.jsonl",
        ):
            assert os.path.exists(os.path.join(trace_dir, name))

    def test_top_slo_critical_path_verbs(self, tmp_path, capsys):
        from repro.cli import main

        trace_dir = self._serve(tmp_path, capsys)
        assert main(["obs", "top", "--trace-dir", trace_dir]) == 0
        out = capsys.readouterr().out
        assert "requests: 6" in out
        assert "phase means" in out

        assert main(["obs", "slo", "--trace-dir", trace_dir]) == 0
        out = capsys.readouterr().out
        assert "latency-p99" in out
        assert "availability" in out

        assert main(
            ["obs", "critical-path", "--trace-dir", trace_dir,
             "--baseline", trace_dir]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["requests"] == 6
        assert report["vs_baseline"]["total_delta_s"] == 0.0

    def test_prom_export(self, tmp_path, capsys):
        from repro.cli import main

        trace_dir = self._serve(tmp_path, capsys)
        assert main(
            ["obs", "export", "--format", "prom",
             "--trace-dir", trace_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE serve_completed counter" in out
        assert "serve_completed 6" in out

    def test_corrupt_trace_is_a_one_line_error(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        trace_dir = self._serve(tmp_path, capsys)
        with open(
            os.path.join(trace_dir, "trace.jsonl"), "a",
            encoding="utf-8",
        ) as fh:
            fh.write("{not json\n")
        assert main(["obs", "summary", "--trace-dir", trace_dir]) == 1
        err = capsys.readouterr().err
        assert "cannot read trace" in err
        assert "Traceback" not in err

    def test_missing_flight_recording_is_clean(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["obs", "slo", "--trace-dir", str(tmp_path / "nope")]
        ) == 1
        err = capsys.readouterr().err
        assert "no flight recording" in err
