"""Tests for the HLS toolchain: IR, scheduling, binding, estimation,
directives and backends."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hls.allocation import bind_operations, estimate_registers
from repro.hls.backends import (
    BambuBackend,
    CommercialBackend,
    InputFormat,
    Target,
)
from repro.hls.directives import Directives, resource_map, synthesize
from repro.hls.estimation import ResourceLibrary, estimate_design
from repro.hls.ir import DataflowGraph, Operation, OpKind
from repro.hls.kernels import LoopNest, make_kernel
from repro.hls.scheduling import (
    minimum_initiation_interval,
    mobility,
    schedule_alap,
    schedule_asap,
    schedule_list,
)


def diamond_graph():
    """a -> (b, c) -> d : the classic scheduling test DAG."""
    g = DataflowGraph("diamond")
    g.add(Operation("a", OpKind.LOAD))
    g.add(Operation("b", OpKind.MUL, inputs=("a",)))
    g.add(Operation("c", OpKind.ADD, inputs=("a",)))
    g.add(Operation("d", OpKind.STORE, inputs=("b", "c")))
    return g


class TestIR:
    def test_duplicate_rejected(self):
        g = DataflowGraph()
        g.add(Operation("x", OpKind.ADD))
        with pytest.raises(ValueError):
            g.add(Operation("x", OpKind.ADD))

    def test_unknown_dependence_rejected(self):
        g = DataflowGraph()
        with pytest.raises(ValueError):
            g.add(Operation("y", OpKind.ADD, inputs=("missing",)))

    def test_sources_and_sinks(self):
        g = diamond_graph()
        assert [op.name for op in g.sources()] == ["a"]
        assert [op.name for op in g.sinks()] == ["d"]

    def test_critical_path(self):
        g = diamond_graph()
        # load(2) -> mul(3) -> store(1) = 6
        assert g.critical_path_latency() == 6

    def test_count_by_kind(self):
        counts = diamond_graph().count_by_kind()
        assert counts[OpKind.LOAD] == 1
        assert counts[OpKind.MUL] == 1

    def test_replicate_scales_and_isolates(self):
        g = diamond_graph()
        doubled = g.replicate(2)
        assert len(doubled) == 2 * len(g)
        # Copies are independent: critical path unchanged.
        assert doubled.critical_path_latency() == g.critical_path_latency()

    def test_replicate_validation(self):
        with pytest.raises(ValueError):
            diamond_graph().replicate(0)

    def test_operation_validation(self):
        with pytest.raises(ValueError):
            Operation("", OpKind.ADD)
        with pytest.raises(ValueError):
            Operation("x", OpKind.ADD, bitwidth=0)


class TestScheduling:
    def test_asap_respects_dependences(self):
        schedule = schedule_asap(diamond_graph())
        schedule.validate()
        assert schedule.start_cycle["a"] == 0
        assert schedule.start_cycle["b"] == 2
        assert schedule.makespan == 6

    def test_alap_meets_asap_makespan(self):
        g = diamond_graph()
        asap = schedule_asap(g)
        alap = schedule_alap(g)
        alap.validate()
        assert alap.makespan == asap.makespan

    def test_alap_infeasible_deadline(self):
        with pytest.raises(ValueError):
            schedule_alap(diamond_graph(), deadline=2)

    def test_mobility_zero_on_critical_path(self):
        slack = mobility(diamond_graph())
        assert slack["a"] == 0
        assert slack["b"] == 0
        assert slack["c"] > 0

    def test_list_schedule_respects_resources(self):
        g = DataflowGraph("independent_muls")
        for i in range(6):
            g.add(Operation(f"m{i}", OpKind.MUL))
        schedule = schedule_list(g, {OpKind.MUL: 2})
        usage = schedule.resource_usage()
        assert usage[OpKind.MUL] <= 2
        assert schedule.makespan >= 3 * 3  # 6 muls / 2 units * 3 cycles

    def test_list_schedule_unconstrained_matches_asap(self):
        g = diamond_graph()
        unconstrained = schedule_list(g, {})
        assert unconstrained.makespan == schedule_asap(g).makespan

    def test_list_schedule_rejects_bad_resources(self):
        with pytest.raises(ValueError):
            schedule_list(diamond_graph(), {OpKind.MUL: 0})

    def test_validate_catches_violation(self):
        g = diamond_graph()
        schedule = schedule_asap(g)
        schedule.start_cycle["d"] = 0
        with pytest.raises(ValueError):
            schedule.validate()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_fewer_resources_never_faster(self, units):
        body = make_kernel("fir8", size=4).body
        tight = schedule_list(body, {OpKind.MUL: units})
        loose = schedule_list(body, {OpKind.MUL: units + 4})
        assert tight.makespan >= loose.makespan

    def test_min_ii_formula(self):
        g = DataflowGraph()
        for i in range(8):
            g.add(Operation(f"m{i}", OpKind.MUL))
        assert minimum_initiation_interval(g, {OpKind.MUL: 4}) == 2
        assert minimum_initiation_interval(g, {OpKind.MUL: 3}) == 3
        assert minimum_initiation_interval(g, {}) == 1


class TestBinding:
    def test_serial_ops_share_a_unit(self):
        g = DataflowGraph()
        g.add(Operation("m1", OpKind.MUL))
        g.add(Operation("m2", OpKind.MUL, inputs=("m1",)))
        binding = bind_operations(schedule_asap(g))
        assert binding.units[OpKind.MUL] == 1

    def test_parallel_ops_need_two_units(self):
        g = DataflowGraph()
        g.add(Operation("m1", OpKind.MUL))
        g.add(Operation("m2", OpKind.MUL))
        binding = bind_operations(schedule_asap(g))
        assert binding.units[OpKind.MUL] == 2

    def test_binding_covers_all_ops(self):
        g = diamond_graph()
        binding = bind_operations(schedule_asap(g))
        assert set(binding.unit_of) == {"a", "b", "c", "d"}

    def test_register_estimate_positive(self):
        assert estimate_registers(schedule_asap(diamond_graph())) >= 1

    def test_constrained_schedule_binding_within_budget(self):
        body = make_kernel("fir8", size=4).body
        schedule = schedule_list(body, {OpKind.MUL: 2})
        binding = bind_operations(schedule)
        assert binding.units[OpKind.MUL] <= 2


class TestEstimation:
    def test_more_units_more_area(self):
        g_small = diamond_graph()
        small = estimate_design(
            schedule_asap(g_small), bind_operations(schedule_asap(g_small))
        )
        g_big = g_small.replicate(4)
        sched_big = schedule_asap(g_big)
        big = estimate_design(sched_big, bind_operations(sched_big))
        assert big.luts > small.luts
        assert big.clock_mhz < small.clock_mhz

    def test_narrow_bitwidth_cheaper(self):
        g = diamond_graph()
        sched = schedule_asap(g)
        binding = bind_operations(sched)
        wide = estimate_design(sched, binding, average_bitwidth=32)
        narrow = estimate_design(sched, binding, average_bitwidth=8)
        assert narrow.luts < wide.luts
        assert narrow.dsps <= wide.dsps

    def test_latency_conversion(self):
        g = diamond_graph()
        sched = schedule_asap(g)
        est = estimate_design(sched, bind_operations(sched))
        assert est.latency_s == pytest.approx(
            est.cycles / (est.clock_mhz * 1e6)
        )

    def test_library_bitwidth_validation(self):
        with pytest.raises(ValueError):
            ResourceLibrary().cost_of(OpKind.ADD, 0)


class TestDirectivesAndSynthesis:
    def test_directive_validation(self):
        with pytest.raises(ValueError):
            Directives(unroll=0)
        with pytest.raises(ValueError):
            Directives(mul_units=0)

    def test_kernel_factory(self):
        nest = make_kernel("gemm", size=64)
        assert nest.trip_count == 64
        assert nest.has_reduction
        with pytest.raises(ValueError):
            make_kernel("nope")
        with pytest.raises(ValueError):
            make_kernel("dot", size=0)

    def test_loopnest_validation(self):
        with pytest.raises(ValueError):
            LoopNest("x", trip_count=0, body=diamond_graph())

    def test_unroll_reduces_cycles(self):
        nest = make_kernel("gemm", size=64)
        base = synthesize(nest, Directives(unroll=1, mul_units=16,
                                           add_units=16))
        unrolled = synthesize(nest, Directives(unroll=8, mul_units=16,
                                               add_units=16,
                                               array_partition=8))
        assert unrolled.total_cycles < base.total_cycles
        assert unrolled.estimate.luts > base.estimate.luts

    def test_pipeline_reduces_cycles(self):
        nest = make_kernel("fir8", size=128)
        flat = synthesize(nest, Directives(pipeline=False))
        piped = synthesize(nest, Directives(pipeline=True))
        assert piped.total_cycles < flat.total_cycles
        assert piped.initiation_interval < flat.initiation_interval

    def test_irregular_kernel_ignores_partitioning(self):
        nest = make_kernel("gather", size=64)
        r1 = resource_map(nest, Directives(array_partition=1))
        r8 = resource_map(nest, Directives(array_partition=8))
        assert r1[OpKind.LOAD] == r8[OpKind.LOAD]

    def test_regular_kernel_uses_partitioning(self):
        nest = make_kernel("fir8", size=64)
        r8 = resource_map(nest, Directives(array_partition=8))
        assert r8[OpKind.LOAD] == 16

    def test_unroll_capped_at_trip_count(self):
        nest = make_kernel("dot", size=4)
        result = synthesize(nest, Directives(unroll=64))
        assert result.total_cycles > 0


class TestBackends:
    def test_feature_matrix(self):
        bambu = BambuBackend().feature_row()
        commercial = CommercialBackend().feature_row()
        assert bambu["ir_input"] and not commercial["ir_input"]
        assert bambu["multi_vendor"] and not commercial["multi_vendor"]
        assert bambu["asic_target"] and not commercial["asic_target"]
        assert bambu["custom_passes"] and not commercial["custom_passes"]

    def test_commercial_rejects_ir_input(self):
        nest = make_kernel("dot", size=8)
        with pytest.raises(ValueError):
            CommercialBackend().synthesize(
                nest, input_format=InputFormat.COMPILER_IR
            )

    def test_commercial_rejects_asic_target(self):
        nest = make_kernel("dot", size=8)
        with pytest.raises(ValueError):
            CommercialBackend().synthesize(nest, target=Target.ASIC_OPENROAD)

    def test_bambu_accepts_ir_and_asic(self):
        nest = make_kernel("dot", size=8)
        result = BambuBackend().synthesize(
            nest,
            input_format=InputFormat.COMPILER_IR,
            target=Target.ASIC_OPENROAD,
        )
        assert result.total_cycles > 0

    def test_custom_pass_hook(self):
        bambu = BambuBackend()
        bambu.register_pass(
            lambda d: Directives(
                unroll=d.unroll, pipeline=True,
                array_partition=d.array_partition,
                mul_units=d.mul_units, add_units=d.add_units,
            )
        )
        nest = make_kernel("fir8", size=64)
        optimized = bambu.synthesize(nest, Directives(pipeline=False))
        baseline = CommercialBackend().synthesize(
            nest, Directives(pipeline=False)
        )
        assert optimized.total_cycles < baseline.total_cycles

    def test_commercial_pass_hook_denied(self):
        with pytest.raises(PermissionError):
            CommercialBackend().register_pass(lambda d: d)
