"""Tests for the DNA encoding layer and the Reed-Solomon codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dna.ecc import (
    ReedSolomonCodec,
    gf_div,
    gf_inverse,
    gf_mul,
    gf_pow,
    gf_solve,
)
from repro.dna.encoding import (
    OligoLayout,
    bases_to_bits,
    bits_to_bases,
    decode_strands,
    encode_payload,
    gc_content,
    max_homopolymer_run,
    parse_strand,
)


class TestBaseCodec:
    def test_known_mapping(self):
        # 0b00011011 -> A C G T
        assert bits_to_bases(bytes([0b00011011])) == "ACGT"

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=1, max_size=64))
    def test_round_trip(self, data):
        assert bases_to_bits(bits_to_bases(data)) == data

    def test_length_validation(self):
        with pytest.raises(ValueError):
            bases_to_bits("ACG")

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            bases_to_bits("ACGX")

    def test_strand_length_is_4x_bytes(self):
        assert len(bits_to_bases(b"abc")) == 12


class TestOligoLayout:
    def test_strand_bases(self):
        layout = OligoLayout(payload_bytes=20, index_bytes=2)
        assert layout.strand_bases == 88
        assert layout.max_oligos == 65536

    def test_validation(self):
        with pytest.raises(ValueError):
            OligoLayout(payload_bytes=0)


class TestPayloadCodec:
    def test_round_trip_exact_multiple(self):
        layout = OligoLayout(payload_bytes=4, index_bytes=1)
        data = bytes(range(16))
        strands = encode_payload(data, layout)
        assert len(strands) == 4
        recovered, missing = decode_strands(strands, 16, layout)
        assert recovered == data
        assert missing == 0

    def test_round_trip_with_padding(self):
        layout = OligoLayout(payload_bytes=4, index_bytes=1)
        data = b"hello"
        strands = encode_payload(data, layout)
        recovered, missing = decode_strands(strands, 5, layout)
        assert recovered == data

    def test_missing_chunk_reported(self):
        layout = OligoLayout(payload_bytes=4, index_bytes=1)
        data = bytes(range(12))
        strands = encode_payload(data, layout)
        recovered, missing = decode_strands(strands[:-1], 12, layout)
        assert missing == 1
        assert recovered[:8] == data[:8]
        assert recovered[8:] == b"\x00" * 4

    def test_shuffled_strands_reassemble(self):
        layout = OligoLayout(payload_bytes=2, index_bytes=1)
        data = bytes(range(20))
        strands = encode_payload(data, layout)
        recovered, _ = decode_strands(list(reversed(strands)), 20, layout)
        assert recovered == data

    def test_damaged_strand_skipped(self):
        layout = OligoLayout(payload_bytes=2, index_bytes=1)
        strands = encode_payload(b"abcd", layout)
        assert parse_strand(strands[0][:-1], layout) is None
        assert parse_strand("X" * layout.strand_bases, layout) is None

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            encode_payload(b"")

    def test_index_overflow_rejected(self):
        layout = OligoLayout(payload_bytes=1, index_bytes=1)
        with pytest.raises(ValueError):
            encode_payload(bytes(300), layout)

    def test_metrics(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("AATT") == 0.0
        assert max_homopolymer_run("AACCCGT") == 3
        with pytest.raises(ValueError):
            gc_content("")


class TestGaloisField:
    def test_mul_identity(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 255), st.integers(1, 255))
    def test_div_inverts_mul(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    def test_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inverse(a)) == 1

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(1, 0)

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 8) == 0x1D  # 2^8 = primitive poly remainder

    def test_solve_identity_system(self):
        matrix = [[1, 0], [0, 1]]
        assert gf_solve(matrix, [7, 9]) == [7, 9]

    def test_solve_singular_returns_none(self):
        assert gf_solve([[1, 1], [1, 1]], [1, 2]) is None

    def test_solve_validates_shapes(self):
        with pytest.raises(ValueError):
            gf_solve([[1, 2]], [1])


class TestReedSolomon:
    def test_parameters(self):
        rs = ReedSolomonCodec(255, 223)
        assert rs.t == 16
        assert rs.overhead == pytest.approx(32 / 223)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReedSolomonCodec(256, 200)
        with pytest.raises(ValueError):
            ReedSolomonCodec(10, 10)

    def test_encode_is_systematic(self):
        rs = ReedSolomonCodec(20, 12)
        msg = bytes(range(12))
        assert rs.encode(msg)[:12] == msg

    def test_clean_decode(self):
        rs = ReedSolomonCodec(20, 12)
        msg = bytes(range(12))
        assert rs.decode(rs.encode(msg)) == msg

    @settings(max_examples=60, deadline=None)
    @given(
        st.binary(min_size=12, max_size=12),
        st.lists(
            st.tuples(st.integers(0, 19), st.integers(1, 255)),
            min_size=1,
            max_size=4,
            unique_by=lambda tup: tup[0],
        ),
    )
    def test_corrects_up_to_t_errors(self, msg, errors):
        rs = ReedSolomonCodec(20, 12)  # t = 4
        codeword = bytearray(rs.encode(msg))
        for pos, flip in errors:
            codeword[pos] ^= flip
        assert rs.decode(bytes(codeword)) == msg

    def test_too_many_errors_detected(self):
        rs = ReedSolomonCodec(20, 12)
        codeword = bytearray(rs.encode(bytes(12)))
        # Corrupt well beyond t = 4.
        for pos in range(12):
            codeword[pos] ^= 0xFF
        result = rs.decode(bytes(codeword))
        # Either rejected (None) or, with vanishing probability for RS,
        # mis-decoded; reject is the expected behaviour.
        assert result is None or result != bytes(12)

    def test_erasure_like_zero_fill_corrected(self):
        # Dropped DNA chunks surface as zero-filled spans.
        rs = ReedSolomonCodec(24, 16)  # t = 4
        msg = bytes(range(1, 17))
        codeword = bytearray(rs.encode(msg))
        codeword[4:8] = b"\x00" * 4
        assert rs.decode(bytes(codeword)) == msg

    def test_block_codec_round_trip(self):
        rs = ReedSolomonCodec(20, 12)
        data = bytes(range(50))
        coded = rs.encode_blocks(data)
        assert len(coded) % 20 == 0
        assert rs.decode_blocks(coded, 50) == data

    def test_block_codec_validation(self):
        rs = ReedSolomonCodec(20, 12)
        with pytest.raises(ValueError):
            rs.encode_blocks(b"")
        with pytest.raises(ValueError):
            rs.decode_blocks(b"\x00" * 19, 10)
        with pytest.raises(ValueError):
            rs.decode_blocks(rs.encode_blocks(b"hi"), 100)

    def test_wrong_lengths_rejected(self):
        rs = ReedSolomonCodec(20, 12)
        with pytest.raises(ValueError):
            rs.encode(bytes(11))
        with pytest.raises(ValueError):
            rs.decode(bytes(19))
