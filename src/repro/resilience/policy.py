"""The one resilience knob shared by campaigns and graph nodes.

Retry behaviour used to be configured by passing a bare
:class:`~repro.resilience.retry.BackoffPolicy` to each entry point
(``run_resilient_campaign(policy=...)``, ``DSERunner.compare(policy=
...)``), which left no room for the recovery strategies a campaign
graph needs beyond in-place retry: re-running a failed node with a
perturbed seed, or falling back to a different kernel implementation.
:class:`ResiliencePolicy` bundles all of it into one value object that
every graph node -- and, through deprecation shims, every legacy entry
point -- accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.core.errors import ValidationError
from repro.resilience.retry import BackoffPolicy


@dataclass(frozen=True)
class ResiliencePolicy:
    """How one unit of work survives failure.

    *backoff* bounds in-place retries of transient faults (see
    :func:`~repro.resilience.resilient_run`).  The remaining fields
    drive :class:`~repro.campaign.GraphRunner` backtracking when a
    node's validation gate fails even on a successful evaluation:
    up to *max_backtracks* re-runs with the node seed advanced by
    *seed_step* per attempt, switching to *fallback_impl* (when set)
    on the final backtrack.
    """

    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    max_backtracks: int = 0
    seed_step: int = 1
    fallback_impl: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_backtracks < 0:
            raise ValidationError("max_backtracks must be >= 0")
        if self.seed_step < 0:
            raise ValidationError("seed_step must be >= 0")

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "backoff": {
                "max_attempts": self.backoff.max_attempts,
                "base_delay_s": self.backoff.base_delay_s,
                "factor": self.backoff.factor,
                "max_delay_s": self.backoff.max_delay_s,
                "jitter": self.backoff.jitter,
            },
            "max_backtracks": self.max_backtracks,
            "seed_step": self.seed_step,
        }
        if self.fallback_impl is not None:
            payload["fallback_impl"] = self.fallback_impl
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ResiliencePolicy":
        backoff = BackoffPolicy(**dict(payload.get("backoff", {})))
        return cls(
            backoff=backoff,
            max_backtracks=int(payload.get("max_backtracks", 0)),
            seed_step=int(payload.get("seed_step", 1)),
            fallback_impl=payload.get("fallback_impl"),
        )


def coerce_resilience(
    resilience: Optional[ResiliencePolicy],
    policy: Optional[BackoffPolicy],
    *,
    caller: str,
) -> Optional[ResiliencePolicy]:
    """Resolve the migration-era ``resilience=`` / ``policy=`` pair.

    ``policy=`` (a bare :class:`BackoffPolicy`) is the deprecated
    spelling; it still works, wrapped into a :class:`ResiliencePolicy`,
    but warns.  Passing both is an error.
    """
    if policy is None:
        return resilience
    if resilience is not None:
        raise ValidationError(
            f"{caller} accepts either resilience= or the deprecated "
            "policy=, not both"
        )
    import warnings

    warnings.warn(
        f"{caller}(policy=BackoffPolicy(...)) is deprecated; pass "
        "resilience=ResiliencePolicy(backoff=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ResiliencePolicy(backoff=policy)
