"""Circuit breakers: shed load from repeatedly failing work.

A workload that fails every attempt should not keep riding into every
micro-batch -- each retry wastes a batch slot, inflates tail latency
for healthy requests and (under faults) hammers the very component
that is struggling.  :class:`CircuitBreaker` implements the classic
three-state machine:

- **closed** (healthy): requests flow; consecutive failures are
  counted, and ``failure_threshold`` of them in a row open the breaker;
- **open** (shedding): requests are refused immediately with
  :class:`CircuitOpenError` until ``recovery_time_s`` has elapsed;
- **half-open** (probing): after the recovery window, up to
  ``half_open_max`` trial requests are admitted; a success closes the
  breaker, a failure re-opens it and restarts the window.

Every transition is recorded as a run-ledger event
(``breaker.open`` / ``breaker.half_open`` / ``breaker.closed``) and a
:mod:`repro.obs` metrics counter, so a chaos run can assert the breaker
actually tripped.  The clock is injectable, which keeps breaker tests
and seeded chaos scenarios deterministic.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict

from repro.core.errors import StateError, ValidationError

#: The three breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(StateError):
    """The breaker for this key is open: the request was shed, not
    queued.  Callers treat it like admission rejection -- back off or
    route the work elsewhere; retrying immediately defeats the point.
    """

    def __init__(self, message: str, *, key: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.key = key
        self.retry_after_s = retry_after_s


class CircuitBreaker:
    """Per-key failure isolation with closed/open/half-open states.

    *key* names what the breaker protects (a workload, a shard); it
    tags the ledger events and metrics.  ``failure_threshold``
    consecutive failures open the breaker; after ``recovery_time_s``
    it half-opens and admits up to ``half_open_max`` concurrent trial
    calls.  Thread-safe; the injectable *clock* makes tests and seeded
    chaos scenarios deterministic.
    """

    def __init__(
        self,
        key: str = "default",
        *,
        failure_threshold: int = 5,
        recovery_time_s: float = 1.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError("failure_threshold must be >= 1")
        if recovery_time_s < 0:
            raise ValidationError("recovery_time_s must be >= 0")
        if half_open_max < 1:
            raise ValidationError("half_open_max must be >= 1")
        self.key = key
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self.transitions = 0
        self.shed = 0
        self.failures = 0
        self.successes = 0

    # ------------------------------------------------------------ state

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        """Open -> half-open once the recovery window elapsed (called
        under the lock)."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.recovery_time_s
        ):
            self._transition(HALF_OPEN)
            self._half_open_inflight = 0

    def _transition(self, state: str) -> None:
        self._state = state
        self.transitions += 1
        self._record_transition(state)

    def _record_transition(self, state: str) -> None:
        from repro.obs.ledger import get_ledger
        from repro.obs.metrics import get_metrics

        get_ledger().event(f"breaker.{state}", key=self.key)
        registry = get_metrics()
        if registry.enabled:
            registry.inc(f"breaker.{state}")

    # ------------------------------------------------------------ calls

    def allow(self) -> bool:
        """Whether a request may proceed right now.

        Half-open admits at most ``half_open_max`` outstanding trials;
        an allowed call **must** be followed by exactly one
        :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._half_open_inflight < self.half_open_max:
                    self._half_open_inflight += 1
                    return True
            self.shed += 1
            return False

    def check(self) -> None:
        """:meth:`allow` that raises :class:`CircuitOpenError` when the
        request must be shed."""
        if not self.allow():
            with self._lock:
                retry_after = max(
                    0.0,
                    self.recovery_time_s
                    - (self._clock() - self._opened_at),
                )
            raise CircuitOpenError(
                f"circuit for {self.key!r} is {self._state}: request "
                f"shed (retry after {retry_after:.3g} s)",
                key=self.key,
                retry_after_s=retry_after,
            )

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            if self._state == HALF_OPEN:
                self._half_open_inflight = max(
                    0, self._half_open_inflight - 1
                )
                self._transition(CLOSED)
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            if self._state == HALF_OPEN:
                self._half_open_inflight = max(
                    0, self._half_open_inflight - 1
                )
                self._opened_at = self._clock()
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(OPEN)

    # ------------------------------------------------------------ report

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "key": self.key,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failures": self.failures,
                "successes": self.successes,
                "shed": self.shed,
                "transitions": self.transitions,
            }
