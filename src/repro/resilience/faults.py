"""Pluggable, seeded fault injection for every thrust of the suite.

ALPINE-style methodology: accuracy and performance claims are only
credible when re-measured under explicit device-fault sweeps.  The
:class:`FaultInjector` owns one seed and derives an independent,
*key-addressed* random stream per injection site, so

- the same seed reproduces the identical fault pattern bit-for-bit
  (campaign reruns and checkpoint resumes see the same world), and
- skipping already-checkpointed cells does not shift the faults of the
  remaining ones (streams are keyed, not sequential).

Fault models per thrust:

- **IMC** -- stuck-at cells on NVM arrays (cells pinned at ``g_min`` /
  ``g_max``, immune to further programming) and accelerated conductance
  drift (scaled ``drift_nu``);
- **SPARTA** -- accelerator-lane dropout (work remaps to surviving
  lanes) and NoC link degradation (scaled hop/memory latency);
- **hetero** -- storage throttling (reduced bandwidth) and transient
  read faults (probabilistic :class:`TransientFault` per read), plus
  compute-device dropout for campaign remapping;
- **SCF** -- compute-unit dropout (the fabric runs on survivors).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Sequence, Set, Tuple

import numpy as np

from repro.core.errors import TransientFault, ValidationError
from repro.core.rng import SeedLike, make_rng


def _stable_hash(key: str) -> int:
    """Process-independent 32-bit hash (``hash()`` is salted per run)."""
    return zlib.crc32(key.encode("utf-8"))


@dataclass(frozen=True)
class FaultModel:
    """Fault rates for one injection campaign (all default to off)."""

    imc_stuck_fraction: float = 0.0
    imc_drift_acceleration: float = 1.0
    sparta_lane_dropout: float = 0.0
    noc_latency_multiplier: float = 1.0
    storage_throttle_fraction: float = 0.0
    storage_transient_rate: float = 0.0
    device_dropout: float = 0.0
    scf_cu_dropout: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "imc_stuck_fraction",
            "sparta_lane_dropout",
            "storage_throttle_fraction",
            "storage_transient_rate",
            "device_dropout",
            "scf_cu_dropout",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1]")
        if self.imc_drift_acceleration < 1.0:
            raise ValidationError("imc_drift_acceleration must be >= 1")
        if self.noc_latency_multiplier < 1.0:
            raise ValidationError("noc_latency_multiplier must be >= 1")


class FaultyStorage:
    """A storage tier that fails reads with a given transient rate.

    Wraps any :class:`~repro.hetero.storage.StorageDevice`-shaped
    object; everything delegates to the base device except
    :meth:`read_time_s`, which raises
    :class:`~repro.core.errors.TransientFault` with probability
    ``rate`` per call.  The wrapped device keeps the base device's
    ``name`` so campaign cell keys are stable across fault sweeps.
    """

    def __init__(self, base, rate: float, rng: SeedLike = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValidationError("fault rate must be in [0, 1]")
        self._base = base
        self._rate = rate
        self._rng = make_rng(rng)
        self.faults_raised = 0

    @property
    def base(self):
        return self._base

    @property
    def fault_rate(self) -> float:
        return self._rate

    def read_time_s(self, num_bytes: float, accesses: int = 1) -> float:
        if self._rate > 0.0 and self._rng.uniform() < self._rate:
            self.faults_raised += 1
            from repro.obs.ledger import get_ledger

            get_ledger().event(
                "fault.injected",
                component=self._base.name,
                fault_kind="storage-read",
            )
            raise TransientFault(
                f"transient read fault on {self._base.name}",
                component=self._base.name,
                fault_kind="storage-read",
            )
        return self._base.read_time_s(num_bytes, accesses)

    def __getattr__(self, name: str):
        return getattr(self._base, name)


class FaultInjector:
    """Seeded fault source; one instance drives a whole injection sweep.

    Every method derives its random stream from ``(seed, key)`` where
    *key* names the injection site, so call order and checkpoint skips
    never change the injected faults.
    """

    def __init__(self, model: FaultModel = FaultModel(), seed: int = 0) -> None:
        self.model = model
        self.seed = int(seed)

    def derive_rng(self, key: str) -> np.random.Generator:
        """Independent generator for the injection site named *key*."""
        return make_rng(
            np.random.SeedSequence([self.seed, _stable_hash(key)])
        )

    # ---------------------------------------------------------------- IMC

    def inject_stuck_cells(self, device, key: str = "imc") -> np.ndarray:
        """Pin a fraction of *device*'s cells at ``g_min``/``g_max``.

        Stuck-at-low and stuck-at-high are equally likely.  Returns the
        boolean stuck mask.  The cells stay pinned through subsequent
        program pulses (see :meth:`NVMDevice.apply_stuck_faults`).
        """
        rng = self.derive_rng(f"imc-stuck|{key}")
        mask = rng.uniform(size=device.shape) < self.model.imc_stuck_fraction
        high = rng.uniform(size=device.shape) < 0.5
        values = np.where(high, device.params.g_max, device.params.g_min)
        device.apply_stuck_faults(mask, values)
        return mask

    def accelerated_drift(self, params):
        """Device parameters with fault-accelerated conductance drift."""
        return replace(
            params,
            drift_nu=params.drift_nu * self.model.imc_drift_acceleration,
        )

    # ------------------------------------------------------------- SPARTA

    def failed_lanes(self, num_lanes: int, key: str = "sparta") -> Tuple[int, ...]:
        """Lane indices lost to dropout (never all of them: at least one
        lane survives so the workload can remap)."""
        if num_lanes < 1:
            raise ValidationError("num_lanes must be >= 1")
        rng = self.derive_rng(f"sparta-lanes|{key}")
        draws = rng.uniform(size=num_lanes)
        failed = [i for i in range(num_lanes)
                  if draws[i] < self.model.sparta_lane_dropout]
        if len(failed) == num_lanes:  # keep one survivor
            failed = failed[1:]
        return tuple(failed)

    def degraded_noc(self, config):
        """NoC configuration with link degradation applied (hop and
        memory latency scaled by the model's multiplier)."""
        mult = self.model.noc_latency_multiplier
        return replace(
            config,
            hop_latency=int(round(config.hop_latency * mult)),
            memory_latency=int(round(config.memory_latency * mult)),
        )

    # ------------------------------------------------------------- hetero

    def throttled_storage(self, storage):
        """Storage tier with bandwidth degraded by the throttle model."""
        if self.model.storage_throttle_fraction == 0.0:
            return storage
        surviving = 1.0 - self.model.storage_throttle_fraction
        return replace(
            storage,
            bandwidth_bytes_s=storage.bandwidth_bytes_s * surviving,
        )

    def faulty_storage(self, storage, key: str = "hetero") -> FaultyStorage:
        """Wrap *storage* with throttling plus transient read faults,
        stream-keyed by *key* (one key per campaign cell)."""
        base = self.throttled_storage(storage)
        return FaultyStorage(
            base,
            self.model.storage_transient_rate,
            rng=self.derive_rng(f"storage-read|{key}"),
        )

    def failed_devices(
        self, names: Sequence[str], key: str = "hetero"
    ) -> Set[str]:
        """Compute devices lost to dropout (at least one survives so
        campaign cells can remap)."""
        failed = {
            name
            for name in names
            if self.derive_rng(f"device-drop|{key}|{name}").uniform()
            < self.model.device_dropout
        }
        if len(failed) == len(names) and names:
            failed.discard(sorted(names)[0])
        return failed

    # ---------------------------------------------------------------- SCF

    def surviving_cus(self, num_cus: int, key: str = "scf") -> int:
        """Compute units left after engine dropout (at least one)."""
        if num_cus < 1:
            raise ValidationError("num_cus must be >= 1")
        rng = self.derive_rng(f"scf-cus|{key}")
        survivors = int(
            (rng.uniform(size=num_cus) >= self.model.scf_cu_dropout).sum()
        )
        return max(1, survivors)
