"""Cross-cutting resilience: fault injection, bounded retry, checkpoints.

The production-grade counterpart to the happy-path simulators: this
package injects the non-ideal behavior the paper's thrusts are actually
about (device faults, link degradation, storage hiccups, engine
dropout) and gives long sweeps the machinery to survive it -- bounded
retry with exponential backoff, structured deadlines carrying partial
stats, and JSON checkpoint/resume.

Entry points:

- :class:`FaultInjector` / :class:`FaultModel` -- seeded, key-addressed
  fault models for the IMC, SPARTA, hetero and SCF thrusts;
- :func:`resilient_run` + :class:`BackoffPolicy` -- retry harness for
  :class:`~repro.core.errors.TransientFault`;
- :class:`ResiliencePolicy` -- the bundled recovery knob (in-place
  backoff retries plus campaign-graph backtracking: perturbed-seed
  re-runs and implementation fallback) shared by campaigns and
  :class:`~repro.campaign.GraphRunner` nodes;
- :class:`Deadline` -- cycle/wall-clock budgets raising structured
  :class:`~repro.core.errors.SimulationTimeout`;
- :class:`CheckpointStore` -- atomic JSON checkpoint/resume for
  campaign and DSE sweeps, salvaging damaged stores on load;
- :class:`CircuitBreaker` / :class:`CircuitOpenError` -- per-key
  closed/open/half-open load shedding for repeatedly failing work,
  with ledger/metrics-visible transitions;
- :class:`ChaosPolicy` / :class:`ChaosEvent` -- seeded, deterministic
  fault-injection schedules (shard kills, delays, queue-pressure
  bursts) for the sharded serving tier's chaos harness.
"""

from repro.resilience.breaker import (
    CircuitBreaker,
    CircuitOpenError,
)
from repro.resilience.chaos import ChaosEvent, ChaosPolicy
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import FaultInjector, FaultModel, FaultyStorage
from repro.resilience.policy import ResiliencePolicy, coerce_resilience
from repro.resilience.retry import (
    BackoffPolicy,
    Deadline,
    RunOutcome,
    resilient_run,
)

__all__ = [
    "BackoffPolicy",
    "ChaosEvent",
    "ChaosPolicy",
    "CheckpointStore",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "FaultInjector",
    "FaultModel",
    "FaultyStorage",
    "ResiliencePolicy",
    "RunOutcome",
    "coerce_resilience",
    "resilient_run",
]
