"""JSON checkpoint/resume for long sweeps.

A campaign or DSE run that takes hours must survive a crash at cell
900/1000.  :class:`CheckpointStore` persists one JSON record per
completed unit of work under a stable string key; on restart the sweep
skips every key already present and recomputes only the remainder.
Writes are atomic (temp file + ``os.replace``) so a crash mid-write
never corrupts the store -- and should a checkpoint file still arrive
truncated or damaged (a crash on an older filesystem, a partial copy),
:meth:`CheckpointStore._load` *salvages* every complete record it can
parse instead of refusing to start: a degraded resume recomputes a few
cells, a crashed resume recomputes the whole campaign.  Recovery is
recorded as a ``checkpoint.recovered`` run-ledger event so the loss is
observable, not silent.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.core.errors import ValidationError

#: Complete ``"key": {...}`` top-level entries inside a (possibly
#: truncated) checkpoint JSON object -- the salvage pattern.
_RECORD_RE = re.compile(r'"((?:[^"\\]|\\.)*)"\s*:\s*(\{)')


def _salvage_records(text: str) -> Dict[str, Dict[str, Any]]:
    """Every complete top-level ``"key": {...}`` record in *text*.

    Walks the (broken) JSON object left to right with
    ``raw_decode``, so a file truncated mid-record yields everything
    written before the torn tail.  Nested objects are skipped by
    resuming the scan after each decoded record.
    """
    records: Dict[str, Dict[str, Any]] = {}
    decoder = json.JSONDecoder()
    pos = text.find("{")
    if pos < 0:
        return records
    pos += 1
    while True:
        match = _RECORD_RE.search(text, pos)
        if match is None:
            break
        try:
            key = json.loads(f'"{match.group(1)}"')
            value, end = decoder.raw_decode(text, match.start(2))
        except json.JSONDecodeError:
            break
        records[str(key)] = value
        pos = end
    return records


class CheckpointStore:
    """Keyed JSON records on disk, loaded eagerly and written atomically.

    Records must be JSON-serializable dictionaries; the store is a flat
    ``{key: record}`` mapping.  ``flush_every`` batches disk writes for
    high-frequency sweeps (the store always flushes on :meth:`close`
    and context-manager exit).
    """

    def __init__(
        self, path: Union[str, Path], flush_every: int = 1
    ) -> None:
        if flush_every < 1:
            raise ValidationError("flush_every must be >= 1")
        self.path = Path(path)
        self.flush_every = flush_every
        self._dirty = 0
        self.recovered = False
        self.salvaged = 0
        self._records: Dict[str, Dict[str, Any]] = self._load()

    def _load(self) -> Dict[str, Dict[str, Any]]:
        if not self.path.exists():
            return {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            self._record_recovery({}, exc)
            return {}
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("checkpoint store is not a JSON object")
        except (json.JSONDecodeError, ValueError) as exc:
            # Crash consistency: a truncated or damaged store degrades
            # to whatever complete records it still holds (the same
            # tolerance ResultCache's on-disk store has) -- losing a
            # few cells to recomputation beats refusing to resume.
            records = _salvage_records(text)
            self._record_recovery(records, exc)
            return records
        return data

    def _record_recovery(
        self, records: Dict[str, Dict[str, Any]], error: Exception
    ) -> None:
        from repro.obs.ledger import get_ledger

        self.recovered = True
        self.salvaged = len(records)
        get_ledger().event(
            "checkpoint.recovered",
            path=str(self.path),
            salvaged=len(records),
            error_type=type(error).__name__,
        )

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[str]:
        return iter(self._records)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._records.get(key)

    def completed_keys(self) -> list:
        return sorted(self._records)

    def save(self, key: str, record: Dict[str, Any]) -> None:
        """Record *key* as completed; flushes per ``flush_every``."""
        self._records[key] = record
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Atomically rewrite the store on disk."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._records, fh, indent=1, sort_keys=True)
        os.replace(tmp, self.path)
        self._dirty = 0

    def clear(self) -> None:
        """Drop all records and remove the file."""
        self._records = {}
        self._dirty = 0
        if self.path.exists():
            self.path.unlink()

    def close(self) -> None:
        if self._dirty:
            self.flush()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
