"""Bounded retry with exponential backoff, and deadline enforcement.

:func:`resilient_run` is the execution harness every long sweep goes
through: transient faults are retried up to a bounded attempt budget
with exponentially growing, jittered backoff; permanent faults and
validation errors propagate immediately.  Backoff delays are *virtual*
by default (accumulated, not slept) -- the simulators model time, they
do not burn it -- but a real ``sleep`` callable can be injected for
wall-clock deployments.

:class:`Deadline` turns runaway runs into structured
:class:`~repro.core.errors.SimulationTimeout` errors that carry partial
statistics, instead of hanging or dying with a bare error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from repro.core.errors import SimulationTimeout, TransientFault, ValidationError
from repro.core.rng import SeedLike, make_rng


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with jitter, bounded in attempts and delay.

    Attempt *n* (1-based failure count) waits
    ``min(base_delay_s * factor**(n-1), max_delay_s)`` scaled by a
    uniform jitter in ``[1-jitter, 1+jitter]``.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.01
    factor: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValidationError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValidationError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValidationError("jitter must be in [0, 1)")

    def delay_s(self, attempt: int, rng: SeedLike = None) -> float:
        """Backoff delay after the *attempt*-th failure (1-based)."""
        if attempt < 1:
            raise ValidationError("attempt must be >= 1")
        delay = min(
            self.base_delay_s * self.factor ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter:
            generator = make_rng(rng)
            delay *= 1.0 + self.jitter * float(generator.uniform(-1.0, 1.0))
        return delay


class Deadline:
    """A cycle and/or wall-clock budget for one simulation run.

    ``check()`` raises :class:`SimulationTimeout` once either budget is
    exhausted; *partial_stats* threads whatever the simulator has
    accumulated into the exception so callers can checkpoint it.
    """

    def __init__(
        self,
        wall_clock_s: Optional[float] = None,
        max_cycles: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if wall_clock_s is not None and wall_clock_s <= 0:
            raise ValidationError("wall_clock_s must be positive")
        if max_cycles is not None and max_cycles < 1:
            raise ValidationError("max_cycles must be >= 1")
        self.wall_clock_s = wall_clock_s
        self.max_cycles = max_cycles
        self._clock = clock
        self._start = clock()

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._start

    def remaining_s(self) -> Optional[float]:
        if self.wall_clock_s is None:
            return None
        return self.wall_clock_s - self.elapsed_s

    def check(
        self, cycles: Optional[int] = None, partial_stats: Any = None
    ) -> None:
        """Raise :class:`SimulationTimeout` if any budget is exhausted."""
        if self.max_cycles is not None and cycles is not None:
            if cycles >= self.max_cycles:
                raise SimulationTimeout(
                    f"simulation exceeded {self.max_cycles} cycles",
                    partial_stats=partial_stats,
                    cycles=cycles,
                    elapsed_s=self.elapsed_s,
                )
        if self.wall_clock_s is not None:
            elapsed = self.elapsed_s
            if elapsed >= self.wall_clock_s:
                raise SimulationTimeout(
                    f"simulation exceeded {self.wall_clock_s:g} s "
                    f"wall-clock budget",
                    partial_stats=partial_stats,
                    cycles=cycles,
                    elapsed_s=elapsed,
                )


@dataclass(frozen=True)
class RunOutcome:
    """Result of one :func:`resilient_run`: the value plus the retry
    accounting the acceptance tests assert on."""

    value: Any
    attempts: int
    backoff_s: float

    @property
    def retried(self) -> bool:
        return self.attempts > 1


def resilient_run(
    fn: Callable[[], Any],
    *,
    policy: BackoffPolicy = BackoffPolicy(),
    retry_on: Tuple[Type[BaseException], ...] = (TransientFault,),
    rng: SeedLike = None,
    sleep: Optional[Callable[[float], None]] = None,
    deadline: Optional[Deadline] = None,
) -> RunOutcome:
    """Run *fn* with bounded retry on transient faults.

    Exceptions in *retry_on* are retried up to ``policy.max_attempts``
    total attempts with exponential backoff; the final failure (and any
    exception outside *retry_on*) propagates to the caller.  Backoff
    delays accumulate virtually unless a *sleep* callable is provided.
    A *deadline* is checked before every attempt, so a retry storm
    cannot outlive its wall-clock budget.
    """
    from repro.obs.ledger import get_ledger

    ledger = get_ledger()
    generator = make_rng(rng)
    attempts = 0
    backoff_total = 0.0
    while True:
        if deadline is not None:
            deadline.check()
        attempts += 1
        try:
            value = fn()
        except retry_on as exc:
            if attempts >= policy.max_attempts:
                ledger.event(
                    "retries.exhausted",
                    attempts=attempts,
                    error_type=type(exc).__name__,
                )
                raise
            delay = policy.delay_s(attempts, rng=generator)
            backoff_total += delay
            ledger.event(
                "retry",
                attempt=attempts,
                error_type=type(exc).__name__,
                delay_s=delay,
            )
            if sleep is not None:
                sleep(delay)
        else:
            return RunOutcome(
                value=value, attempts=attempts, backoff_s=backoff_total
            )
