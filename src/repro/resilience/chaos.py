"""Seeded, deterministic chaos schedules for fault-tolerance tests.

A chaos run is only evidence if it is reproducible: "the cluster
survived a random kill" proves nothing a rerun can check.
:class:`ChaosPolicy` is therefore pure data -- a tuple of
:class:`ChaosEvent` actions pinned to request indices -- either written
out explicitly (``kill shard 1 at request 8``) or derived from a seed
(:meth:`ChaosPolicy.random`), so every scenario in
``benchmarks/bench_chaos.py`` replays byte-for-byte.

The policy itself injects nothing; the serving cluster (and the
:func:`repro.serve.cluster.run_chaos_campaign` driver) consults
:meth:`ChaosPolicy.actions_at` on every submission and performs the
actions.  Three verbs cover the scenarios the ROADMAP's sharded tier
must survive:

- ``kill``  -- crash one shard (its queue and in-flight work are lost
  and must be recovered by supervisor restart + ledger replay);
- ``delay`` -- stall the submission path for ``delay_s`` (a degraded
  link / slow shard: tail latency must stay bounded);
- ``burst`` -- submit ``copies`` duplicates of the current request
  back-to-back (queue pressure: admission control and dedup must
  absorb it without losing or duplicating results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.errors import ValidationError

_ACTIONS = ("kill", "delay", "burst")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled injection: *action* fires when the cluster admits
    the ``at_request``-th request (0-based, cluster-wide counter)."""

    at_request: int
    action: str
    shard: int = 0
    delay_s: float = 0.0
    copies: int = 0

    def __post_init__(self) -> None:
        if self.at_request < 0:
            raise ValidationError("at_request must be >= 0")
        if self.action not in _ACTIONS:
            raise ValidationError(
                f"action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.action == "delay" and self.delay_s <= 0:
            raise ValidationError("delay events need delay_s > 0")
        if self.action == "burst" and self.copies < 1:
            raise ValidationError("burst events need copies >= 1")


@dataclass(frozen=True)
class ChaosPolicy:
    """An ordered, deterministic injection schedule.

    ``seed`` documents provenance for schedules built by
    :meth:`random`; hand-written schedules leave it at 0.
    """

    events: Tuple[ChaosEvent, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def actions_at(self, index: int) -> List[ChaosEvent]:
        """Every event scheduled for the *index*-th admission, in
        schedule order."""
        return [e for e in self.events if e.at_request == index]

    @property
    def kill_count(self) -> int:
        return sum(1 for e in self.events if e.action == "kill")

    def to_json(self) -> List[Dict]:
        return [
            {
                "at_request": e.at_request,
                "action": e.action,
                "shard": e.shard,
                "delay_s": e.delay_s,
                "copies": e.copies,
            }
            for e in self.events
        ]

    # ------------------------------------------------------- constructors

    @classmethod
    def kill_shard(cls, at_request: int, shard: int) -> "ChaosPolicy":
        """The canonical scenario: one shard dies mid-campaign."""
        return cls(events=(ChaosEvent(at_request, "kill", shard=shard),))

    @classmethod
    def random(
        cls,
        seed: int,
        num_requests: int,
        num_shards: int,
        *,
        kills: int = 1,
        delays: int = 2,
        bursts: int = 1,
        max_delay_s: float = 0.05,
        burst_copies: int = 8,
    ) -> "ChaosPolicy":
        """A seeded schedule over *num_requests* admissions.

        Injection points are drawn without replacement from the middle
        80% of the stream (chaos at the very first/last request tests
        nothing interesting), so every parameter set + seed maps to one
        schedule forever.
        """
        if num_requests < 5:
            raise ValidationError("need >= 5 requests to place chaos")
        if num_shards < 1:
            raise ValidationError("num_shards must be >= 1")
        total = kills + delays + bursts
        lo, hi = max(1, num_requests // 10), max(2, (9 * num_requests) // 10)
        span = list(range(lo, hi))
        if total > len(span):
            raise ValidationError(
                f"{total} events do not fit in {len(span)} injection slots"
            )
        rng = np.random.default_rng(np.random.SeedSequence([seed, num_requests]))
        points = sorted(
            int(p) for p in rng.choice(span, size=total, replace=False)
        )
        events: List[ChaosEvent] = []
        cursor = 0
        for _ in range(kills):
            events.append(
                ChaosEvent(
                    points[cursor], "kill",
                    shard=int(rng.integers(0, num_shards)),
                )
            )
            cursor += 1
        for _ in range(delays):
            events.append(
                ChaosEvent(
                    points[cursor], "delay",
                    delay_s=float(rng.uniform(max_delay_s / 5, max_delay_s)),
                )
            )
            cursor += 1
        for _ in range(bursts):
            events.append(
                ChaosEvent(points[cursor], "burst", copies=burst_copies)
            )
            cursor += 1
        return cls(events=tuple(sorted(events, key=lambda e: e.at_request)),
                   seed=seed)
