"""Reproduction of the ICSC Flagship 2 project overview (DATE 2025).

The paper surveys five research thrusts of the ICSC Flagship 2 project on
architectures and design methodologies to accelerate AI workloads.  This
package mirrors that structure, one subpackage per thrust:

- :mod:`repro.survey`  -- state-of-the-art AI-accelerator survey (Fig. 1, Fig. 7)
- :mod:`repro.hls`     -- Bambu-like High-Level Synthesis toolchain (Sec. III)
- :mod:`repro.dse`     -- Design Space Exploration engine (Sec. III)
- :mod:`repro.sparta`  -- SPARTA parallel multi-threaded accelerators (Sec. III)
- :mod:`repro.imc`     -- in-memory computing device/circuit/architecture stack (Sec. IV)
- :mod:`repro.axc`     -- approximate-computing FPGA accelerators, HTCONV (Sec. V)
- :mod:`repro.hetero`  -- heterogeneous CPU/GPU/FPGA DL pipeline (Sec. VI)
- :mod:`repro.dna`     -- DNA-based data-storage pipeline and edit distance (Sec. VI)
- :mod:`repro.scf`     -- RISC-V Scalable Compute Fabric (Sec. VII)
- :mod:`repro.core`    -- shared numerics, metrics and reporting utilities
- :mod:`repro.resilience` -- fault injection, bounded retry, checkpoint/resume
- :mod:`repro.exec`    -- parallel evaluation engine + content-addressed
  result caching under the DSE/campaign/sweep hot paths
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "survey",
    "hls",
    "dse",
    "sparta",
    "imc",
    "axc",
    "hetero",
    "dna",
    "scf",
    "resilience",
    "exec",
]
