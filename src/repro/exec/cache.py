"""Content-addressed result caching for simulator evaluations.

Every quantitative artifact of the paper is produced by grids of
*pure* evaluations: the result of a cell is a deterministic function of
its configuration (design point, campaign coordinates, crossbar spec).
:class:`ResultCache` exploits that purity -- the cache key is the
SHA-256 digest of a canonical-JSON encoding of the configuration, so
identical design points hash to the same key regardless of dict
ordering, tuple-vs-list spelling or numpy scalar types, and a repeated
sweep costs one dictionary lookup per cell instead of a simulation.

The cache is an in-memory LRU (bounded by ``max_entries``) optionally
backed by a single on-disk JSON store written atomically (temp file +
``os.replace``, the :class:`~repro.resilience.checkpoint.CheckpointStore`
pattern), so warm results survive across processes.  A corrupt or
truncated store is *tolerated*: the cache starts empty and rebuilds
rather than refusing to run, because a lost cache is a slowdown while a
crashed campaign is a lost night.  Hit/miss/eviction counters are
exposed via :meth:`ResultCache.stats` so benches can assert reuse
instead of guessing at it.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
import hashlib
import json
import os
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple, Union

import numpy as np

from repro.core.errors import ValidationError
from repro.perf import get_profiler


def canonical_payload(
    obj: Any, _seen: FrozenSet[int] = frozenset()
) -> Any:
    """*obj* reduced to a canonical JSON-serializable form.

    Handles the configuration vocabulary of the suite: dataclasses
    (tagged with their class name so two config types with identical
    fields do not collide), enums (by name), mappings with sorted keys,
    sequences, numpy scalars and arrays, and plain JSON scalars.
    Objects outside that vocabulary fall back to their ``__dict__``
    (tagged), keeping e.g. dataflow graphs digestible without a
    registry.  Reference cycles raise :class:`ValidationError` instead
    of recursing forever.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # Normalize -0.0 so the digest matches 0.0.
        return obj + 0.0
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__qualname__, "name": obj.name}
    if isinstance(obj, (np.bool_, np.integer, np.floating)):
        return canonical_payload(obj.item())
    if isinstance(obj, np.ndarray):
        return [canonical_payload(v) for v in obj.tolist()]
    if isinstance(obj, type):
        raise ValidationError(
            f"cannot canonicalize class object {obj.__qualname__!r}"
        )
    if id(obj) in _seen:
        raise ValidationError(
            f"reference cycle through {type(obj).__name__!r} while "
            "building a cache digest"
        )
    seen = _seen | {id(obj)}
    if dataclasses.is_dataclass(obj):
        fields = {
            f.name: canonical_payload(getattr(obj, f.name), seen)
            for f in dataclasses.fields(obj)
        }
        return {"__type__": type(obj).__qualname__, **fields}
    if isinstance(obj, dict):
        items = sorted(
            ((str(k), canonical_payload(v, seen)) for k, v in obj.items()),
            key=lambda kv: kv[0],
        )
        return dict(items)
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(v, seen) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(
            (canonical_payload(v, seen) for v in obj),
            key=lambda v: json.dumps(v, sort_keys=True),
        )
    if hasattr(obj, "__dict__"):
        return {
            "__type__": type(obj).__qualname__,
            **{
                str(k): canonical_payload(v, seen)
                for k, v in sorted(vars(obj).items())
            },
        }
    raise ValidationError(
        f"cannot canonicalize {type(obj).__name__!r} for cache digest"
    )


def config_digest(obj: Any) -> str:
    """Stable SHA-256 hex digest of *obj*'s canonical-JSON encoding."""
    encoded = json.dumps(
        canonical_payload(obj),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _is_memoizable(obj: Any) -> bool:
    """Only frozen dataclass instances are digest-memoized by identity:
    their fields cannot be rebound, so the digest computed once stays
    valid for the object's lifetime."""
    return (
        dataclasses.is_dataclass(obj)
        and not isinstance(obj, type)
        and type(obj).__dataclass_params__.frozen
    )


def _memo_key(obj: Any) -> Optional[Tuple[Any, ...]]:
    """Memo key for *obj*, or ``None`` when it must be digested afresh.

    Frozen dataclasses key by identity (fields cannot be rebound).
    ndarrays -- the dominant payload of zero-copy campaigns, and by far
    the most expensive objects to canonicalize (an element-wise
    ``tolist()`` walk) -- key by ``(id, nbytes)``, the same scheme the
    :class:`~repro.exec.shm.ShmArena` content memo uses: the entry's
    strong reference pins the id, and the convention (shared with the
    arena) is that arrays handed to evaluation configs are not mutated
    in place afterwards.
    """
    if isinstance(obj, np.ndarray):
        return ("ndarray", id(obj), obj.nbytes)
    if _is_memoizable(obj):
        return ("frozen", id(obj))
    return None


class _DigestMemo:
    """Keyed memo of the most recent *capacity* config digests.

    Campaign loops re-digest the *same* config objects (sweep grids hold
    one frozen spec per cell and pass it to several stages), so the
    canonical-JSON walk is repeated work.  Entries hold a strong
    reference to the object: an id cannot be recycled while its entry
    lives, which is what makes identity keying (see :func:`_memo_key`)
    sound.  Each entry also remembers how long the original digest took,
    so hits can account the time they saved.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValidationError("digest memo capacity must be >= 1")
        self.capacity = capacity
        self._entries: (
            "OrderedDict[Tuple[Any, ...], Tuple[Any, str, float]]"
        ) = OrderedDict()

    def lookup(
        self, key: Tuple[Any, ...]
    ) -> Optional[Tuple[Any, str, float]]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def store(
        self,
        key: Tuple[Any, ...],
        obj: Any,
        digest: str,
        elapsed_s: float,
    ) -> None:
        self._entries[key] = (obj, digest, elapsed_s)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class ResultCache:
    """Content-addressed evaluation results with LRU bounds and stats.

    Keys are digest strings (:func:`config_digest`); values must be
    JSON-serializable so the disk store round-trips.  ``max_entries``
    bounds the in-memory map (least-recently-used entries are evicted,
    and dropped from the disk store at the next flush); ``None`` means
    unbounded.  ``flush_every`` batches disk writes exactly like
    :class:`~repro.resilience.checkpoint.CheckpointStore`.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_entries: Optional[int] = None,
        flush_every: int = 1,
        digest_memo_size: int = 128,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValidationError("max_entries must be >= 1")
        if flush_every < 1:
            raise ValidationError("flush_every must be >= 1")
        self.path = Path(path) if path is not None else None
        self.max_entries = max_entries
        self.flush_every = flush_every
        self._dirty = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stores = 0
        self._recovered = False
        self._digest_memo = _DigestMemo(digest_memo_size)
        self._memo_hits = 0
        self._ndarray_memo_hits = 0
        self._digest_time_saved_s = 0.0
        self._records: "OrderedDict[str, Any]" = self._load()

    def _load(self) -> "OrderedDict[str, Any]":
        if self.path is None or not self.path.exists():
            return OrderedDict()
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if not isinstance(data, dict):
                raise ValueError("cache store is not a JSON object")
        except (json.JSONDecodeError, ValueError, OSError):
            # A damaged cache is a performance loss, not a failure:
            # start cold and rebuild.
            self._recovered = True
            return OrderedDict()
        records: "OrderedDict[str, Any]" = OrderedDict(data)
        while (
            self.max_entries is not None
            and len(records) > self.max_entries
        ):
            records.popitem(last=False)
            self._evictions += 1
        return records

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> Optional[Any]:
        """The cached value for *key*, or ``None`` on a miss.

        Hits refresh the entry's LRU position.  Values are deep-copied
        on the way out so callers cannot mutate the store.  When the
        default profiler is enabled, lookups are timed separately as
        ``cache.get.hit`` / ``cache.get.miss``.
        """
        profiler = get_profiler()
        if not profiler.enabled:
            return self._get(key)
        start = time.perf_counter()
        value = self._get(key)
        profiler.record(
            "cache.get.hit" if value is not None else "cache.get.miss",
            time.perf_counter() - start,
        )
        return value

    def _get(self, key: str) -> Optional[Any]:
        if key in self._records:
            self._records.move_to_end(key)
            self._hits += 1
            return copy.deepcopy(self._records[key])
        self._misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key*, evicting LRU entries as needed."""
        profiler = get_profiler()
        if not profiler.enabled:
            return self._put(key, value)
        start = time.perf_counter()
        self._put(key, value)
        profiler.record("cache.put", time.perf_counter() - start)

    def _put(self, key: str, value: Any) -> None:
        self._records[key] = copy.deepcopy(value)
        self._records.move_to_end(key)
        self._stores += 1
        while (
            self.max_entries is not None
            and len(self._records) > self.max_entries
        ):
            self._records.popitem(last=False)
            self._evictions += 1
        if self.path is not None:
            self._dirty += 1
            if self._dirty >= self.flush_every:
                self.flush()

    def delete(self, key: str) -> bool:
        """Drop *key* if present (used by :mod:`repro.serve` to keep
        failed evaluations out of the store).  Returns whether the key
        existed; the disk store is rewritten at the next flush."""
        if key not in self._records:
            return False
        del self._records[key]
        if self.path is not None:
            self._dirty += 1
            if self._dirty >= self.flush_every:
                self.flush()
        return True

    def digest(self, obj: Any) -> str:
        """:func:`config_digest` of *obj*, memoized by object identity.

        Frozen-dataclass configs and ndarray payloads seen among the
        most recent ``digest_memo_size`` objects skip the canonical-JSON
        walk entirely (ndarrays key by ``(id, nbytes)`` -- see
        :func:`_memo_key` -- and are the big win: their walk is
        element-wise); every other object (mutable, ad-hoc) is digested
        afresh.  :meth:`stats` reports the hits -- ndarray hits also
        separately -- and the digest time they saved.
        """
        key = _memo_key(obj)
        if key is None:
            return config_digest(obj)
        entry = self._digest_memo.lookup(key)
        if entry is not None:
            self._memo_hits += 1
            if key[0] == "ndarray":
                self._ndarray_memo_hits += 1
            self._digest_time_saved_s += entry[2]
            return entry[1]
        start = time.perf_counter()
        digest = config_digest(obj)
        self._digest_memo.store(
            key, obj, digest, time.perf_counter() - start
        )
        return digest

    def get_or_compute(self, key: str, fn: Callable[[], Any]) -> Any:
        """The cached value for *key*, computing and storing on a miss."""
        value = self.get(key)
        if value is not None:
            return value
        value = fn()
        self.put(key, value)
        return value

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction accounting for benches and CI assertions."""
        lookups = self._hits + self._misses
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "stores": self._stores,
            "entries": len(self._records),
            "hit_rate": self._hits / lookups if lookups else 0.0,
            "persistent": self.path is not None,
            "recovered_from_corruption": self._recovered,
            "digest_memo_hits": self._memo_hits,
            "ndarray_memo_hits": self._ndarray_memo_hits,
            "digest_time_saved_s": self._digest_time_saved_s,
        }

    def flush(self) -> None:
        """Atomically rewrite the disk store (no-op when memory-only)."""
        if self.path is None:
            return
        tmp = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(dict(self._records), fh, sort_keys=True)
        os.replace(tmp, self.path)
        self._dirty = 0

    def clear(self) -> None:
        """Drop every entry (and the disk store, if any)."""
        self._records = OrderedDict()
        self._dirty = 0
        if self.path is not None and self.path.exists():
            self.path.unlink()

    def close(self) -> None:
        if self._dirty:
            self.flush()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
