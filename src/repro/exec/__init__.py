"""Parallel evaluation engine with content-addressed result caching.

The throughput layer under every campaign in the suite (ROADMAP
north-star: "as fast as the hardware allows").  Grids of independent
simulator evaluations -- DSE objective evaluations, hetero
device x storage campaign cells, IMC crossbar sweeps -- fan out over a
process pool and memoize through a content-addressed cache, so reruns
of identical design points cost a lookup instead of a simulation.

Entry points:

- :class:`ParallelEvaluator` -- ordered, deterministic fan-out over
  ``concurrent.futures`` with per-task timeouts and a zero-copy
  ``transport="shm"`` path for large ndarray payloads;
- :class:`ShmArena` / :class:`ShmDescriptor` -- content-addressed,
  refcounted shared-memory segments behind that transport;
- :class:`ResultCache` / :func:`config_digest` -- SHA-256
  content-addressed LRU result store with an atomic on-disk backing;
- :func:`make_evaluator` / :func:`coerce_cache` -- adapters behind the
  ``parallel=`` / ``cache=`` kwargs of the high-level runners.
"""

from repro.exec.cache import ResultCache, canonical_payload, config_digest
from repro.exec.parallel import (
    ParallelEvaluator,
    coerce_cache,
    make_evaluator,
)
from repro.exec.shm import (
    ShmArena,
    ShmDescriptor,
    attach_view,
    decode_payload,
)

__all__ = [
    "ParallelEvaluator",
    "ResultCache",
    "ShmArena",
    "ShmDescriptor",
    "attach_view",
    "canonical_payload",
    "coerce_cache",
    "config_digest",
    "decode_payload",
    "make_evaluator",
]
