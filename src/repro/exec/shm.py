"""Zero-copy shared-memory transport for large ndarray payloads.

Profiling of the parallel campaigns showed the process boundary, not the
math, as the next speed rung: every :meth:`ParallelEvaluator.map` task
is pickled into the executor's pipe, so an 8 MB ndarray payload costs
two full copies plus pipe traffic *per task*.  This module moves those
bytes through ``multiprocessing.shared_memory`` instead:

- the parent-side :class:`ShmArena` **registers** each large array once
  by content digest (one memcpy into a named segment, deduplicated
  across tasks and across retries via an ``(id, nbytes)`` digest memo);
- only a tiny :class:`ShmDescriptor` -- ``(segment name, shape, dtype,
  nbytes, digest)`` -- rides through the pickle boundary;
- the worker **attaches** the segment and hands the kernel a zero-copy
  read-only ndarray view; attachments are memoized per worker process,
  so every batch item in a chunk (and every later chunk) referencing the
  same digest reuses the mapped buffer instead of re-attaching;
- segments are **refcounted** on the parent: each map (or in-flight
  shard request) holds a lease, release drops it, and the arena unlinks
  at zero -- optionally parking a few zero-ref segments in an LRU so
  the next map with the same payload skips the copy-in too.

Crash safety: the *parent* owns every segment, so a worker killed with
SIGKILL mid-chunk cannot orphan anything -- its attachment dies with its
address space and the parent's ``finally``-path release still runs.
Attachments deliberately unregister from the worker's
``resource_tracker`` (which would otherwise unlink shared segments when
the first worker exits -- the well-known bpo-38119 footgun); the owning
process keeps its registration as a last-resort leak net behind
:meth:`ShmArena.close`.
"""

from __future__ import annotations

import atexit
import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import StateError, ValidationError
from repro.perf import get_profiler

#: Default auto-transport threshold: arrays at or above this many bytes
#: are worth a shared-memory hop instead of a pickle copy.
DEFAULT_THRESHOLD_BYTES = 1 << 20

#: Worker-side attachment cache bound (segments, LRU-evicted).
MAX_ATTACHMENTS = 32


@dataclass(frozen=True)
class ShmDescriptor:
    """Wire form of one shared ndarray: everything a receiver needs to
    attach a zero-copy view, nothing else crosses the boundary."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    nbytes: int
    digest: str

    def attach(self) -> np.ndarray:
        """A read-only ndarray view of the named segment (memoized per
        process; see :func:`attach_view`)."""
        return attach_view(self)


def array_digest(arr: np.ndarray) -> str:
    """Content digest of *arr* (dtype + shape + raw bytes).

    blake2b rather than sha256: this hash gates the transport hot path
    and carries no cross-run persistence contract, so the faster
    primitive wins.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype).encode("utf-8"))
    h.update(repr(arr.shape).encode("utf-8"))
    h.update(np.ascontiguousarray(arr).view(np.uint8).reshape(-1).data)
    return h.hexdigest()


def _shippable(value: Any, threshold: int) -> bool:
    return (
        isinstance(value, np.ndarray)
        and value.nbytes >= threshold
        and value.nbytes > 0
        and not value.dtype.hasobject
    )


class _Segment:
    """One owned shared-memory segment and its lease count."""

    __slots__ = ("shm", "descriptor", "refcount")

    def __init__(self, shm: shared_memory.SharedMemory,
                 descriptor: ShmDescriptor) -> None:
        self.shm = shm
        self.descriptor = descriptor
        self.refcount = 0


#: Names created by arenas of *this* process; the attach path consults
#: it so a same-process attach never strips the owner's resource-tracker
#: registration (the last-resort leak net).
_OWNED_NAMES: set = set()


class ShmArena:
    """Owner-side registry of content-addressed shared-memory payloads.

    ``cache_segments`` parks up to that many zero-reference segments
    instead of unlinking them, so back-to-back maps over the same
    payload (retries, warm sweeps) skip both the digest's copy-in and
    the segment churn.  All methods are thread-safe: serving shards
    register and release from concurrent submit/pump threads.
    """

    def __init__(
        self,
        cache_segments: int = 8,
        digest_memo_size: int = 64,
    ) -> None:
        if cache_segments < 0:
            raise ValidationError("cache_segments must be >= 0")
        if digest_memo_size < 1:
            raise ValidationError("digest_memo_size must be >= 1")
        self.cache_segments = cache_segments
        self._lock = threading.Lock()
        self._segments: Dict[str, _Segment] = {}
        self._idle: "OrderedDict[str, _Segment]" = OrderedDict()
        self._digest_memo: "OrderedDict[Tuple[int, int], Tuple[Any, str]]" = (
            OrderedDict()
        )
        self._digest_memo_size = digest_memo_size
        self._closed = False
        # Counters (under the lock).
        self._registered = 0
        self._segments_created = 0
        self._segments_reused = 0
        self._digest_memo_hits = 0
        self._bytes_copied_in = 0
        self._bytes_leased = 0
        self._unlinked = 0
        atexit.register(self.close)

    # ---------------------------------------------------------- digesting

    def _content_digest(self, arr: np.ndarray) -> str:
        """:func:`array_digest`, memoized by ``(id, nbytes)`` with a
        strong reference -- a retried or re-mapped payload object never
        re-hashes its gigabytes."""
        key = (id(arr), arr.nbytes)
        entry = self._digest_memo.get(key)
        if entry is not None and entry[0] is arr:
            self._digest_memo_hits += 1
            self._digest_memo.move_to_end(key)
            return entry[1]
        digest = array_digest(arr)
        self._digest_memo[key] = (arr, digest)
        self._digest_memo.move_to_end(key)
        while len(self._digest_memo) > self._digest_memo_size:
            self._digest_memo.popitem(last=False)
        return digest

    # -------------------------------------------------------- registration

    def register(self, arr: np.ndarray) -> ShmDescriptor:
        """Place *arr* in shared memory (or find it there by content)
        and lease it; returns the wire descriptor.  Every successful
        register must be paired with one :meth:`release`."""
        if not isinstance(arr, np.ndarray):
            raise ValidationError("only ndarrays are arena payloads")
        if arr.nbytes == 0 or arr.dtype.hasobject:
            raise ValidationError(
                "empty or object-dtype arrays cannot ride shared memory"
            )
        profiler = get_profiler()
        start = time.perf_counter() if profiler.enabled else 0.0
        with self._lock:
            if self._closed:
                raise StateError("arena is closed")
            digest = self._content_digest(arr)
            self._registered += 1
            segment = self._segments.get(digest)
            if segment is None:
                segment = self._idle.pop(digest, None)
                if segment is not None:
                    self._segments[digest] = segment
            if segment is None:
                segment = self._create_segment(arr, digest)
                self._segments[digest] = segment
            else:
                self._segments_reused += 1
            segment.refcount += 1
            self._bytes_leased += segment.descriptor.nbytes
            descriptor = segment.descriptor
        if profiler.enabled:
            profiler.record("shm.register", time.perf_counter() - start)
            profiler.count("shm.bytes_leased", descriptor.nbytes)
        return descriptor

    def _create_segment(self, arr: np.ndarray, digest: str) -> _Segment:
        contiguous = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(create=True, size=contiguous.nbytes)
        _OWNED_NAMES.add(shm.name)
        view = np.ndarray(
            contiguous.shape, dtype=contiguous.dtype, buffer=shm.buf
        )
        view[...] = contiguous
        del view
        self._segments_created += 1
        self._bytes_copied_in += contiguous.nbytes
        descriptor = ShmDescriptor(
            name=shm.name,
            shape=tuple(int(d) for d in contiguous.shape),
            dtype=str(contiguous.dtype),
            nbytes=int(contiguous.nbytes),
            digest=digest,
        )
        return _Segment(shm, descriptor)

    def release(self, digest: str) -> None:
        """Drop one lease on *digest*; the last lease parks the segment
        in the idle LRU (or unlinks it when the LRU is full/disabled)."""
        with self._lock:
            segment = self._segments.get(digest)
            if segment is None:
                return  # already unlinked (idempotent for crash paths)
            segment.refcount -= 1
            if segment.refcount > 0:
                return
            del self._segments[digest]
            if self.cache_segments > 0 and not self._closed:
                self._idle[digest] = segment
                self._idle.move_to_end(digest)
                while len(self._idle) > self.cache_segments:
                    _, evicted = self._idle.popitem(last=False)
                    self._unlink(evicted)
            else:
                self._unlink(segment)

    def release_all(self, digests: List[str]) -> None:
        for digest in digests:
            self.release(digest)

    def _unlink(self, segment: _Segment) -> None:
        _OWNED_NAMES.discard(segment.shm.name)
        try:
            segment.shm.close()
        except BufferError:  # a live local view pins the mapping
            pass
        try:
            # Workers sharing this process's resource tracker (spawn
            # children inherit the tracker fd) may have stripped the
            # name when their attach path untracked it; re-registering
            # is set-idempotent and keeps unlink's internal unregister
            # from logging a KeyError in the tracker process.
            from multiprocessing import resource_tracker

            resource_tracker.register(segment.shm._name, "shared_memory")
        except Exception:
            pass
        try:
            segment.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass
        self._unlinked += 1

    # ------------------------------------------------------------ payloads

    def encode(
        self, obj: Any, threshold: int = DEFAULT_THRESHOLD_BYTES
    ) -> Tuple[Any, List[str]]:
        """*obj* with every large ndarray swapped for a leased
        :class:`ShmDescriptor`, plus the lease digests to release once
        the receiver is done.

        The walk covers the task vocabulary of the executor (dicts,
        lists, tuples, top-level arrays); anything else pickles as
        before.  Containers are rebuilt only on the spine that actually
        holds a large array.
        """
        leases: List[str] = []
        profiler = get_profiler()
        start = time.perf_counter() if profiler.enabled else 0.0
        encoded = self._encode(obj, threshold, leases)
        if profiler.enabled and leases:
            profiler.record("shm.encode", time.perf_counter() - start)
        return encoded, leases

    def _encode(self, obj: Any, threshold: int, leases: List[str]) -> Any:
        if _shippable(obj, threshold):
            descriptor = self.register(obj)
            leases.append(descriptor.digest)
            return descriptor
        if isinstance(obj, dict):
            items = {
                k: self._encode(v, threshold, leases) for k, v in obj.items()
            }
            if all(items[k] is obj[k] for k in items):
                return obj
            return items
        if isinstance(obj, (list, tuple)):
            items = [self._encode(v, threshold, leases) for v in obj]
            if all(new is old for new, old in zip(items, obj)):
                return obj
            return type(obj)(items)
        return obj

    # ---------------------------------------------------------- accounting

    def active_digests(self) -> List[str]:
        """Digests currently leased (leak checks assert this empties)."""
        with self._lock:
            return sorted(self._segments)

    def active_segment_names(self) -> List[str]:
        """Shared-memory names this arena still owns, leased or idle --
        exactly the set :meth:`close` would unlink."""
        with self._lock:
            names = [s.shm.name for s in self._segments.values()]
            names.extend(s.shm.name for s in self._idle.values())
            return sorted(names)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "registered": self._registered,
                "segments_created": self._segments_created,
                "segments_reused": self._segments_reused,
                "segments_active": len(self._segments),
                "segments_idle": len(self._idle),
                "segments_unlinked": self._unlinked,
                "digest_memo_hits": self._digest_memo_hits,
                "bytes_copied_in": self._bytes_copied_in,
                "bytes_leased": self._bytes_leased,
            }

    # ----------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Unlink every segment (leased or idle).  Idempotent; also
        registered via ``atexit`` so an abandoned arena cannot leak
        ``/dev/shm`` entries past process exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = list(self._segments.values()) + list(
                self._idle.values()
            )
            self._segments.clear()
            self._idle.clear()
            self._digest_memo.clear()
        for segment in segments:
            self._unlink(segment)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------- receiver side

_ATTACH_LOCK = threading.Lock()
_ATTACHMENTS: "OrderedDict[str, Tuple[shared_memory.SharedMemory, np.ndarray]]" = (
    OrderedDict()
)


def attach_view(descriptor: ShmDescriptor) -> np.ndarray:
    """A zero-copy read-only ndarray over *descriptor*'s segment.

    The underlying mapping is memoized per process and reused across
    batch items in a chunk and across chunks (bounded LRU of
    ``MAX_ATTACHMENTS`` segments), so repeated payloads cost a dict hit,
    not an mmap.  Read-only because the segment is shared by every
    worker: a kernel that wants scratch space copies explicitly.
    """
    profiler = get_profiler()
    start = time.perf_counter() if profiler.enabled else 0.0
    with _ATTACH_LOCK:
        cached = _ATTACHMENTS.get(descriptor.name)
        if cached is not None:
            _ATTACHMENTS.move_to_end(descriptor.name)
            base = cached[1]
        else:
            shm = shared_memory.SharedMemory(name=descriptor.name)
            if descriptor.name not in _OWNED_NAMES:
                _untrack(shm)
            base = np.ndarray(
                descriptor.shape,
                dtype=np.dtype(descriptor.dtype),
                buffer=shm.buf[: descriptor.nbytes],
            )
            base.flags.writeable = False
            _ATTACHMENTS[descriptor.name] = (shm, base)
            while len(_ATTACHMENTS) > MAX_ATTACHMENTS:
                _evict_oldest_attachment()
    if profiler.enabled:
        profiler.record("shm.attach", time.perf_counter() - start)
    view = base.view()
    view.flags.writeable = False
    return view


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach *shm* from this process's resource tracker.

    An attaching process registers the segment with its own tracker,
    which unlinks it when that process exits -- destroying the segment
    for the owner and every sibling worker (bpo-38119).  Attachments are
    views, not owners; the creating arena keeps the only registration.
    """
    try:  # pragma: no cover - exercised only inside pool workers
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _evict_oldest_attachment() -> None:
    name, (shm, base) = _ATTACHMENTS.popitem(last=False)
    del base
    try:
        shm.close()
    except BufferError:
        # A decoded view from an earlier task is still alive; the
        # mapping stays valid until those references drop, we just stop
        # caching it.
        pass


def detach_all() -> None:
    """Drop every cached attachment (tests and worker teardown)."""
    with _ATTACH_LOCK:
        while _ATTACHMENTS:
            _evict_oldest_attachment()


def decode_payload(obj: Any) -> Any:
    """*obj* with every :class:`ShmDescriptor` replaced by its attached
    zero-copy view (inverse of :meth:`ShmArena.encode`)."""
    if isinstance(obj, ShmDescriptor):
        return attach_view(obj)
    if isinstance(obj, dict):
        items = {k: decode_payload(v) for k, v in obj.items()}
        if all(items[k] is obj[k] for k in items):
            return obj
        return items
    if isinstance(obj, (list, tuple)):
        items = [decode_payload(v) for v in obj]
        if all(new is old for new, old in zip(items, obj)):
            return obj
        return type(obj)(items)
    return obj


def payload_bytes(obj: Any, threshold: int = 1) -> int:
    """Total bytes of shippable ndarrays inside *obj* (the auto-transport
    trigger measurement; cheap -- no hashing, no copies)."""
    if _shippable(obj, threshold):
        return obj.nbytes
    if isinstance(obj, dict):
        return sum(payload_bytes(v, threshold) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(payload_bytes(v, threshold) for v in obj)
    return 0


class ShmFunction:
    """Picklable callable: decode the task's descriptors, then run the
    wrapped function.  This is the worker-side half of the transport --
    the executor submits ``ShmFunction(fn)`` over encoded tasks."""

    __slots__ = ("fn",)

    def __init__(self, fn: Any) -> None:
        self.fn = fn

    def __call__(self, task: Any) -> Any:
        return self.fn(decode_payload(task))


__all__ = [
    "DEFAULT_THRESHOLD_BYTES",
    "MAX_ATTACHMENTS",
    "ShmArena",
    "ShmDescriptor",
    "ShmFunction",
    "array_digest",
    "attach_view",
    "decode_payload",
    "detach_all",
    "payload_bytes",
]
