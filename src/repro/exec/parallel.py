"""Parallel evaluation of independent simulator cells.

The paper's campaign grids (DSE objective evaluations, hetero
device x storage matrices, IMC crossbar sweeps) are embarrassingly
parallel: every cell is a pure function of its configuration.
:class:`ParallelEvaluator` fans those cells out over
:mod:`concurrent.futures` -- a process pool for the CPU-bound
simulators (the default), a thread pool fallback for callables that do
not pickle, or a serial mode that keeps exactly the legacy execution
path -- while guaranteeing the properties campaigns rely on:

- **deterministic ordering**: results come back in task-submission
  order regardless of completion order, so downstream reductions
  (Pareto fronts, float sums) are bit-identical to a serial run;
- **determinism under parallelism**: the engine never injects
  randomness; callers derive per-cell seeds from the cell *key* (not
  from submission order), so worker scheduling cannot perturb results;
- **per-task timeout**: a cell that exceeds ``timeout_s`` raises the
  existing :class:`~repro.core.errors.SimulationTimeout`;
- **content-addressed reuse**: an attached
  :class:`~repro.exec.cache.ResultCache` memoizes cells across calls
  and processes, with duplicate keys inside one batch computed once;
- **zero-copy transport**: with ``transport="shm"`` (or ``"auto"``
  above a payload-size threshold) large ndarray payloads cross the
  process boundary as shared-memory descriptors instead of pickle
  copies -- see :mod:`repro.exec.shm`; the thread/serial backends,
  which never pickle, bypass the transport;
- **worker-crash recovery**: a dead worker process
  (``BrokenProcessPool``) no longer aborts the whole map as a raw
  RuntimeError.  Completed chunks are kept, suspect tasks are
  re-executed in fresh single-task pools (exact crash attribution),
  and a task whose digest has crashed its worker ``quarantine_after``
  times is *quarantined*: it is never dispatched again and surfaces as
  a typed :class:`~repro.core.errors.WorkerCrashError` instead of
  poisoning every batch.  Tasks that keep failing environmentally
  (without quarantine evidence) fall back to in-process serial
  execution, so one flaky pool never loses a campaign.
"""

from __future__ import annotations

import concurrent.futures as _futures
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import (
    SimulationTimeout,
    ValidationError,
    WorkerCrashError,
)
from repro.exec.cache import ResultCache
from repro.exec.shm import (
    DEFAULT_THRESHOLD_BYTES,
    ShmArena,
    ShmFunction,
    payload_bytes,
)
from repro.perf import profiled

_MODES = ("process", "thread", "serial")
_TRANSPORTS = ("auto", "pickle", "shm")


def _run_chunk(fn: Callable[[Any], Any], chunk: List[Any]) -> List[Any]:
    """Evaluate one chunk of tasks in a worker (module-level: picklable)."""
    return [fn(task) for task in chunk]


def _crash_error(
    chunks: List[List[Any]], futures: List["_futures.Future"]
) -> WorkerCrashError:
    """Partition a broken pool's work into completed values and suspect
    task indices.  A dead worker breaks the whole pool, so every chunk
    that did not finish cleanly is suspect -- the crash cannot be
    attributed more precisely here; the recovery path narrows it down
    with single-task pools.
    """
    completed: List[Tuple[int, Any]] = []
    suspects: List[int] = []
    for future in futures:
        try:  # let the executor's manager thread settle every future
            future.exception(timeout=10.0)
        except (_futures.TimeoutError, _futures.CancelledError):
            pass
    base = 0
    for chunk, future in zip(chunks, futures):
        if future.done() and not future.cancelled() \
                and future.exception() is None:
            for offset, value in enumerate(future.result()):
                completed.append((base + offset, value))
        else:
            suspects.extend(range(base, base + len(chunk)))
        base += len(chunk)
    return WorkerCrashError(
        f"worker process died mid-batch: {len(suspects)} task(s) suspect, "
        f"{len(completed)} completed before the crash",
        completed=completed,
        suspect_indices=suspects,
    )


def _traced_call(payload: tuple) -> dict:
    """Evaluate one task under a propagated trace context (module-level:
    picklable across the process-pool hop).

    The payload carries the original task index, which becomes the
    ``exec.task`` span's explicit *order*: span ids derive from
    ``(trace, parent, name, order)``, so a worker process with a fresh
    tracer allocates exactly the ids a serial run would -- the property
    the serial-vs-parallel byte-identity test pins.  Spans and ledger
    events land in local buffers and ride back in the envelope.
    """
    fn, task, index, wire = payload
    from repro.obs.ledger import get_ledger
    from repro.obs.trace import TraceContext, get_tracer

    tracer = get_tracer()
    tracer.enable()
    ledger = get_ledger()
    if wire.get("ledger"):
        ledger.enable()
    ctx = TraceContext.from_wire(wire)
    spans: List[dict] = []
    events: List[dict] = []
    span = tracer.start_span(
        "exec.task",
        trace_id=ctx.trace_id,
        parent_id=ctx.span_id,
        order=index,
        attributes={"index": index},
    )
    status = "ok"
    try:
        with tracer.activate(span.context, sink=spans), \
                ledger.capture(events):
            try:
                value = fn(task)
            except BaseException:
                status = "error"
                raise
    finally:
        tracer.end_span(span, status=status, sink=spans)
    return {"__obs_task__": True, "value": value, "spans": spans,
            "events": events}


class ParallelEvaluator:
    """Map pure evaluation functions over task grids, in parallel.

    ``max_workers`` defaults to the CPU count; ``chunksize`` amortizes
    inter-process overhead for very cheap cells (the per-task timeout
    budget scales with the chunk length).  ``mode`` selects the
    executor: ``"process"`` for CPU-bound simulator cells (tasks and
    the function must pickle), ``"thread"`` for unpicklable callables,
    ``"serial"`` for the legacy in-order loop (still cache-aware).

    ``transport`` picks how task payloads reach process workers:
    ``"pickle"`` is the classic serialized copy, ``"shm"`` ships large
    ndarrays as zero-copy shared-memory descriptors, and ``"auto"``
    (default) switches to shm only when a task carries at least
    ``shm_threshold_bytes`` of ndarray payload.  Results are
    byte-identical either way; thread/serial modes always bypass.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        mode: str = "process",
        chunksize: int = 1,
        timeout_s: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        crash_retries: int = 2,
        quarantine_after: int = 3,
        transport: str = "auto",
        shm_threshold_bytes: int = DEFAULT_THRESHOLD_BYTES,
        arena: Optional[ShmArena] = None,
    ) -> None:
        if mode not in _MODES:
            raise ValidationError(f"mode must be one of {_MODES}")
        if transport not in _TRANSPORTS:
            raise ValidationError(
                f"transport must be one of {_TRANSPORTS}"
            )
        if shm_threshold_bytes < 1:
            raise ValidationError("shm_threshold_bytes must be >= 1")
        if max_workers is not None and max_workers < 1:
            raise ValidationError("max_workers must be >= 1")
        if chunksize < 1:
            raise ValidationError("chunksize must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValidationError("timeout_s must be positive")
        if crash_retries < 0:
            raise ValidationError("crash_retries must be >= 0")
        if quarantine_after < 1:
            raise ValidationError("quarantine_after must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.mode = mode
        self.chunksize = chunksize
        self.timeout_s = timeout_s
        self.cache = cache
        self.crash_retries = crash_retries
        self.quarantine_after = quarantine_after
        self.transport = transport
        self.shm_threshold_bytes = shm_threshold_bytes
        self._arena = arena
        self.tasks_seen = 0
        self.tasks_computed = 0
        self.worker_crashes = 0
        self.tasks_quarantined = 0
        self.shm_maps = 0
        self.shm_tasks = 0
        self.shm_bytes = 0
        self.last_transport: Optional[str] = None
        self._crash_counts: Dict[str, int] = {}
        self._quarantined: Dict[str, int] = {}

    @property
    def arena(self) -> ShmArena:
        """The evaluator's shared-memory arena (created on first use, so
        pickle-only evaluators never touch ``/dev/shm``)."""
        if self._arena is None:
            self._arena = ShmArena()
        return self._arena

    # ------------------------------------------------------------- mapping

    @profiled("exec.map")
    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        keys: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """``[fn(t) for t in tasks]`` with caching and parallelism.

        *keys*, when given, must align with *tasks*: each key is the
        content digest of its task, used for cache lookup and in-batch
        deduplication (two tasks with the same key are computed once).
        Results are returned in task order.
        """
        tasks = list(tasks)
        if keys is not None and len(keys) != len(tasks):
            raise ValidationError("keys must align one-to-one with tasks")
        self.tasks_seen += len(tasks)
        results: List[Any] = [None] * len(tasks)

        # Resolve cache hits and deduplicate identical pending cells.
        pending: List[int] = []  # index of the first occurrence per key
        followers: dict = {}  # key -> indices sharing the computation
        for idx, task in enumerate(tasks):
            key = keys[idx] if keys is not None else None
            if key is not None and self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    results[idx] = hit
                    continue
            if key is not None and key in followers:
                followers[key].append(idx)
                continue
            if key is not None:
                followers[key] = []
            pending.append(idx)

        if pending:
            wire = self._trace_wire()
            subkeys = [
                keys[i] if keys is not None else None for i in pending
            ]
            exec_fn: Callable[[Any], Any] = fn
            exec_tasks = [tasks[i] for i in pending]
            leases: List[str] = []
            exec_fn, exec_tasks, leases = self._apply_transport(
                exec_fn, exec_tasks
            )
            try:
                if wire is not None:
                    payloads = [
                        (exec_fn, task, i, wire)
                        for task, i in zip(exec_tasks, pending)
                    ]
                    computed = [
                        self._absorb_envelope(env)
                        for env in self._compute(
                            _traced_call, payloads, subkeys
                        )
                    ]
                else:
                    computed = self._compute(exec_fn, exec_tasks, subkeys)
            finally:
                if leases:
                    self.arena.release_all(leases)
            self.tasks_computed += len(computed)
            for slot, value in zip(pending, computed):
                results[slot] = value
                key = keys[slot] if keys is not None else None
                if key is not None:
                    if self.cache is not None:
                        self.cache.put(key, value)
                    for follower in followers.get(key, ()):
                        results[follower] = value
        return results

    # ------------------------------------------------------- shm transport

    def _apply_transport(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
    ) -> Tuple[Callable[[Any], Any], List[Any], List[str]]:
        """Swap large ndarray payloads for shared-memory descriptors
        when the configured transport calls for it.

        Returns ``(fn, tasks, leases)``; *leases* must be released after
        the map settles (crash recovery included -- the parent owns the
        segments, so a SIGKILLed worker cannot orphan them).  The
        ``thread``/``serial`` backends bypass the transport entirely:
        they share the parent's address space, so pickling -- and
        therefore shared memory -- never happens on their path.
        """
        self.last_transport = "pickle"
        if self.transport == "pickle" or self.mode != "process" \
                or self.max_workers <= 1:
            return fn, tasks, []
        threshold = self.shm_threshold_bytes
        if self.transport == "auto" and not any(
            payload_bytes(task, threshold) >= threshold for task in tasks
        ):
            return fn, tasks, []
        leases: List[str] = []
        encoded: List[Any] = []
        moved_bytes = 0
        shipped = 0
        for task in tasks:
            before = len(leases)
            encoded_task, task_leases = self.arena.encode(task, threshold)
            leases.extend(task_leases)
            encoded.append(encoded_task)
            if len(leases) > before:
                shipped += 1
                moved_bytes += payload_bytes(task, threshold)
        if not leases:
            return fn, tasks, []
        self.last_transport = "shm"
        self.shm_maps += 1
        self.shm_tasks += shipped
        self.shm_bytes += moved_bytes
        return ShmFunction(fn), encoded, leases

    # ------------------------------------------------------- crash recovery

    @property
    def quarantined(self) -> Dict[str, int]:
        """Quarantined task digests -> worker crashes attributed."""
        return dict(self._quarantined)

    def _compute(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        keys: List[Optional[str]],
    ) -> List[Any]:
        """:meth:`_execute` with worker-crash recovery and poison-task
        quarantine.  Quarantined keys fail fast, before any dispatch."""
        blocked = sorted(
            {k for k in keys if k is not None and k in self._quarantined}
        )
        if blocked:
            raise WorkerCrashError(
                f"{len(blocked)} task(s) are quarantined after repeated "
                "worker crashes on their digests",
                quarantined=blocked,
            )
        try:
            return self._execute(fn, tasks)
        except WorkerCrashError as exc:
            return self._recover_from_crash(fn, tasks, keys, exc)

    def _recover_from_crash(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        keys: List[Optional[str]],
        exc: WorkerCrashError,
    ) -> List[Any]:
        """Re-execute only the crash-affected work.

        Completed chunk results from *exc* are kept; each suspect task
        is retried in its own fresh single-task process pool (exact
        crash attribution, ``crash_retries`` rounds), crashes are
        charged to the task's digest, and digests reaching
        ``quarantine_after`` charges are quarantined.  Suspects that
        outlive the retry rounds without quarantine evidence run
        serially in-process -- the environmental-failure fallback.
        """
        from repro.obs.ledger import get_ledger

        self.worker_crashes += 1
        get_ledger().event(
            "worker.crash",
            suspects=len(exc.suspect_indices),
            completed=len(exc.completed),
        )
        results: Dict[int, Any] = {rel: value for rel, value in exc.completed}
        quarantined: List[str] = []
        retry: List[int] = []
        for rel in exc.suspect_indices:
            if not self._charge_crash(keys[rel], quarantined):
                retry.append(rel)

        rounds = 0
        while retry and rounds < self.crash_retries:
            rounds += 1
            settled, crashed = self._isolated_retry(fn, tasks, retry)
            for rel, value in settled.items():
                results[rel] = value
                if keys[rel] is not None:
                    # A success clears the digest's crash tab: the
                    # earlier charges were collateral, not poison.
                    self._crash_counts.pop(keys[rel], None)
            retry = []
            for rel in crashed:
                self.worker_crashes += 1
                if not self._charge_crash(keys[rel], quarantined):
                    retry.append(rel)
        for rel in retry:
            # Environmental fallback: fewer than quarantine_after
            # crashes on these digests, so run them in-process rather
            # than lose the campaign to a flaky pool.
            results[rel] = fn(tasks[rel])
        if quarantined:
            raise WorkerCrashError(
                f"{len(quarantined)} task(s) quarantined after "
                f"{self.quarantine_after}+ worker crashes",
                completed=sorted(results.items()),
                quarantined=sorted(set(quarantined)),
            ) from exc
        return [results[i] for i in range(len(tasks))]

    def _charge_crash(
        self, key: Optional[str], quarantined: List[str]
    ) -> bool:
        """Charge one worker crash to *key*; True when the charge tips
        the digest into quarantine (keyless tasks are never
        quarantined -- there is no digest to remember)."""
        if key is None:
            return False
        count = self._crash_counts.get(key, 0) + 1
        self._crash_counts[key] = count
        if count < self.quarantine_after:
            return False
        if key not in self._quarantined:
            from repro.obs.ledger import get_ledger

            self._quarantined[key] = count
            self.tasks_quarantined += 1
            get_ledger().event(
                "task.quarantined", digest=key, crashes=count
            )
        else:
            self._quarantined[key] = count
        quarantined.append(key)
        return True

    def _isolated_retry(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        rels: List[int],
    ) -> Tuple[Dict[int, Any], List[int]]:
        """One retry round: each suspect in its own fresh process pool,
        so a crash is attributable to exactly one task."""
        settled: Dict[int, Any] = {}
        crashed: List[int] = []
        for rel in rels:
            try:
                with _futures.ProcessPoolExecutor(max_workers=1) as pool:
                    future = pool.submit(_run_chunk, fn, [tasks[rel]])
                    settled[rel] = future.result(timeout=self.timeout_s)[0]
            except BrokenProcessPool:
                crashed.append(rel)
            except _futures.TimeoutError:
                raise SimulationTimeout(
                    f"crash-retry of task exceeded its "
                    f"{self.timeout_s:g} s budget",
                ) from None
        return settled, crashed

    # ------------------------------------------------------------ internals

    def _trace_wire(self) -> Optional[dict]:
        """The active trace context as an envelope header, or ``None``
        when tracing is off / no context is active (the common case --
        one boolean attribute check)."""
        from repro.obs.ledger import get_ledger
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        if not tracer.enabled:
            return None
        ctx = tracer.current()
        if ctx is None:
            return None
        wire = ctx.to_wire()
        wire["ledger"] = get_ledger().enabled
        return wire

    def _absorb_envelope(self, envelope: dict) -> Any:
        """Merge one :func:`_traced_call` envelope into the local
        tracer/ledger and return the payload value."""
        from repro.obs.ledger import get_ledger
        from repro.obs.trace import get_tracer

        get_tracer().merge_records(envelope["spans"])
        events = envelope.get("events")
        if events:
            get_ledger().extend(events)
        return envelope["value"]

    def _execute(self, fn: Callable[[Any], Any], tasks: List[Any]) -> List[Any]:
        if self.mode == "serial" or self.max_workers == 1 or len(tasks) == 1:
            return [fn(task) for task in tasks]
        if self.mode == "process":
            try:
                return self._execute_pool(
                    _futures.ProcessPoolExecutor, fn, tasks
                )
            except (pickle.PicklingError, TypeError, AttributeError,
                    ImportError):
                # Unpicklable cell function/payload: degrade to threads,
                # which share the interpreter and need no serialization.
                return self._execute_pool(
                    _futures.ThreadPoolExecutor, fn, tasks
                )
        return self._execute_pool(_futures.ThreadPoolExecutor, fn, tasks)

    def _execute_pool(
        self,
        executor_cls,
        fn: Callable[[Any], Any],
        tasks: List[Any],
    ) -> List[Any]:
        chunks = [
            tasks[i: i + self.chunksize]
            for i in range(0, len(tasks), self.chunksize)
        ]
        start = time.monotonic()
        with executor_cls(max_workers=self.max_workers) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
            gathered: List[List[Any]] = []
            try:
                for chunk, future in zip(chunks, futures):
                    budget = (
                        None
                        if self.timeout_s is None
                        else self.timeout_s * len(chunk)
                    )
                    gathered.append(future.result(timeout=budget))
            except _futures.TimeoutError:
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                elapsed = time.monotonic() - start
                raise SimulationTimeout(
                    f"evaluation cell exceeded its {self.timeout_s:g} s "
                    f"budget ({self.mode} pool, {self.max_workers} workers)",
                    elapsed_s=elapsed,
                ) from None
            except BrokenProcessPool as exc:
                raise _crash_error(chunks, futures) from exc
        return [value for chunk in gathered for value in chunk]

    # ------------------------------------------------------------ accounting

    def stats(self) -> dict:
        """Engine counters, merged with the attached cache's stats."""
        info = {
            "mode": self.mode,
            "max_workers": self.max_workers,
            "chunksize": self.chunksize,
            "tasks_seen": self.tasks_seen,
            "tasks_computed": self.tasks_computed,
            "worker_crashes": self.worker_crashes,
            "tasks_quarantined": self.tasks_quarantined,
            "transport": self.transport,
            "last_transport": self.last_transport,
            "shm_maps": self.shm_maps,
            "shm_tasks": self.shm_tasks,
            "shm_bytes": self.shm_bytes,
        }
        if self._arena is not None:
            info["arena"] = self._arena.stats()
        if self.cache is not None:
            info["cache"] = self.cache.stats()
        return info

    def gauges(self) -> Dict[str, float]:
        """Flat numeric counters for flight-recorder sampling (cheap:
        plain attribute reads, no pool or arena traffic)."""
        return {
            "tasks_seen": float(self.tasks_seen),
            "tasks_computed": float(self.tasks_computed),
            "worker_crashes": float(self.worker_crashes),
            "tasks_quarantined": float(self.tasks_quarantined),
            "shm_tasks": float(self.shm_tasks),
            "shm_bytes": float(self.shm_bytes),
        }


EvaluatorLike = Union[None, bool, int, ParallelEvaluator]
CacheLike = Union[None, str, "os.PathLike[str]", ResultCache]


def make_evaluator(
    parallel: EvaluatorLike = None,
    cache: CacheLike = None,
    **defaults: Any,
) -> Optional[ParallelEvaluator]:
    """Coerce the user-facing ``parallel=`` / ``cache=`` kwargs.

    ``parallel`` accepts ``None``/``False`` (no engine -- unless a cache
    is requested, in which case a serial cache-aware engine is built),
    ``True`` (process pool at CPU count), a worker count, or a
    ready-made :class:`ParallelEvaluator`.  ``cache`` accepts a
    :class:`ResultCache` or a path for a persistent one.
    """
    result_cache = coerce_cache(cache)
    if isinstance(parallel, ParallelEvaluator):
        if result_cache is not None and parallel.cache is None:
            parallel.cache = result_cache
        return parallel
    if parallel is None or parallel is False or parallel == 0:
        if result_cache is None:
            return None
        return ParallelEvaluator(
            max_workers=1, mode="serial", cache=result_cache, **defaults
        )
    workers = None if parallel is True else int(parallel)
    mode = "serial" if workers == 1 else defaults.pop("mode", "process")
    return ParallelEvaluator(
        max_workers=workers, mode=mode, cache=result_cache, **defaults
    )


def coerce_cache(cache: CacheLike) -> Optional[ResultCache]:
    """``cache=`` kwarg -> :class:`ResultCache` (path means persistent)."""
    if cache is None:
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(path=cache)
