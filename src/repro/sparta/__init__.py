"""SPARTA: Synthesis of PARallel multi-Threaded Accelerators (Sec. III, [5]).

SPARTA-generated accelerators "can exploit spatial parallelism and hide
the latency of external memory accesses through context switching", and
include "a custom Network-on-Chip connecting multiple external memory
channels to each accelerator, memory-side caching, and on-chip private
memories for each accelerator."  This package simulates exactly that
architecture at cycle granularity:

- :mod:`repro.sparta.openmp`      -- the OpenMP-like parallel-region
  front-end producing task queues;
- :mod:`repro.sparta.memory`      -- pipelined external memory channels;
- :mod:`repro.sparta.cache`       -- memory-side set-associative caches;
- :mod:`repro.sparta.noc`         -- the lane <-> channel crossbar NoC;
- :mod:`repro.sparta.accelerator` -- multi-context accelerator lanes with
  context switching;
- :mod:`repro.sparta.simulator`   -- the cycle-level simulation loop;
- :mod:`repro.sparta.kernels`     -- graph-processing workloads (BFS,
  SpMV, PageRank) and a regular streaming baseline.
"""

from repro.sparta.openmp import ParallelForRegion, Task, compute, load, store
from repro.sparta.memory import MemoryChannel
from repro.sparta.cache import MemorySideCache
from repro.sparta.noc import NocConfig, CrossbarNoc
from repro.sparta.accelerator import AcceleratorLane, LaneConfig
from repro.sparta.simulator import SimulationStats, SpartaSystem, simulate
from repro.sparta.kernels import (
    bfs_tasks,
    pagerank_tasks,
    spmv_tasks,
    streaming_tasks,
    random_graph,
)
from repro.sparta.frontend import lower_loop_nest
from repro.sparta.scratchpad import stage_hot_addresses

__all__ = [
    "ParallelForRegion",
    "Task",
    "compute",
    "load",
    "store",
    "MemoryChannel",
    "MemorySideCache",
    "NocConfig",
    "CrossbarNoc",
    "AcceleratorLane",
    "LaneConfig",
    "SimulationStats",
    "SpartaSystem",
    "simulate",
    "bfs_tasks",
    "spmv_tasks",
    "pagerank_tasks",
    "streaming_tasks",
    "random_graph",
    "lower_loop_nest",
    "stage_hot_addresses",
]
