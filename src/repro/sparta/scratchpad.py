"""Scratchpad staging: exploiting SPARTA's per-accelerator private
memories.

The SPARTA architecture includes "on-chip private memories for each
accelerator"; the compiler's job is to decide *what to stage there*.
:func:`stage_hot_addresses` implements the standard frequency-based
policy: profile the region's external accesses, pin the hottest
addresses into the scratchpad window (the lane serves those at 1-cycle
latency without touching the NoC), and rewrite the task steps.

For graph kernels this captures the heavy-hitter vertices of skewed
degree distributions -- a large share of traffic for a small on-chip
budget.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.sparta.openmp import ParallelForRegion, Task


@dataclass(frozen=True)
class StagingPlan:
    """Outcome of the staging decision."""

    staged_addresses: Dict[int, int]
    budget_words: int
    staged_access_fraction: float

    @property
    def words_used(self) -> int:
        return len(self.staged_addresses)


def profile_accesses(region: ParallelForRegion) -> Counter:
    """External-address access counts (loads and stores) of *region*."""
    counts: Counter = Counter()
    for task in region.tasks:
        for kind, arg in task.steps:
            if kind in ("load", "store"):
                counts[arg] += 1
    return counts


def stage_hot_addresses(
    region: ParallelForRegion,
    budget_words: int,
    scratchpad_base: int = 0,
) -> (ParallelForRegion, StagingPlan):
    """Rewrite *region* so its hottest addresses live in the scratchpad.

    The *budget_words* most-accessed addresses are remapped into
    ``[scratchpad_base, scratchpad_base + budget_words)``; every other
    access is left on the external path.  Returns the rewritten region
    and the staging plan (including the fraction of accesses captured).
    """
    if budget_words < 0:
        raise ValueError("budget must be non-negative")
    counts = profile_accesses(region)
    total_accesses = sum(counts.values())
    hot = [addr for addr, _ in counts.most_common(budget_words)]
    mapping = {
        addr: scratchpad_base + slot for slot, addr in enumerate(hot)
    }
    captured = sum(counts[addr] for addr in hot)

    tasks: List[Task] = []
    for task in region.tasks:
        steps = [
            (kind, mapping.get(arg, arg)) if kind in ("load", "store")
            else (kind, arg)
            for kind, arg in task.steps
        ]
        tasks.append(Task(task_id=task.task_id, steps=steps))
    plan = StagingPlan(
        staged_addresses=mapping,
        budget_words=budget_words,
        staged_access_fraction=(
            captured / total_accesses if total_accesses else 0.0
        ),
    )
    return (
        ParallelForRegion(name=f"{region.name}_staged", tasks=tasks),
        plan,
    )
