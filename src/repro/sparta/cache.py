"""Memory-side cache.

SPARTA places caching at the memory side of the NoC (one cache per
external channel), so all accelerator lanes share each cache and no
coherence protocol is needed -- the design choice the paper's
architecture sketch implies.  Set-associative with LRU replacement.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class MemorySideCache:
    """Set-associative LRU cache in front of one memory channel."""

    num_sets: int = 64
    associativity: int = 4
    line_words: int = 8
    hit_latency: int = 4
    hits: int = 0
    misses: int = 0
    _sets: Dict[int, OrderedDict] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_sets < 1 or self.associativity < 1:
            raise ValueError("cache geometry must be positive")
        if self.line_words < 1 or (self.line_words & (self.line_words - 1)):
            raise ValueError("line_words must be a positive power of two")
        if self.hit_latency < 1:
            raise ValueError("hit latency must be >= 1")

    @property
    def capacity_words(self) -> int:
        return self.num_sets * self.associativity * self.line_words

    def access(self, address: int) -> bool:
        """Access word *address*; returns True on hit.  Misses allocate
        (fetch-on-miss, write-allocate for stores)."""
        if address < 0:
            raise ValueError("address must be non-negative")
        line = address // self.line_words
        set_idx = line % self.num_sets
        ways = self._sets.setdefault(set_idx, OrderedDict())
        if line in ways:
            ways.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        ways[line] = True
        if len(ways) > self.associativity:
            ways.popitem(last=False)
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
