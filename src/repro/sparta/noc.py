"""The custom Network-on-Chip of the SPARTA architecture.

"SPARTA includes a custom Network-on-Chip connecting multiple external
memory channels to each accelerator [and] memory-side caching."  The NoC
is a crossbar: any lane reaches any channel in ``hop_latency`` cycles
each way; addresses are line-interleaved across channels; each channel
fronted by a :class:`~repro.sparta.cache.MemorySideCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sparta.cache import MemorySideCache
from repro.sparta.memory import MemoryChannel


@dataclass(frozen=True)
class NocConfig:
    """Crossbar NoC geometry and timing."""

    num_channels: int = 4
    hop_latency: int = 4
    memory_latency: int = 100
    cache_sets: int = 64
    cache_associativity: int = 4
    cache_line_words: int = 8
    enable_cache: bool = True

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise ValueError("need at least one channel")
        if self.hop_latency < 0:
            raise ValueError("hop latency must be non-negative")
        if self.memory_latency < 1:
            raise ValueError("memory latency must be >= 1")


class CrossbarNoc:
    """Crossbar NoC + channels + memory-side caches."""

    def __init__(self, config: NocConfig = NocConfig()) -> None:
        self.config = config
        self.channels: List[MemoryChannel] = [
            MemoryChannel(latency=config.memory_latency, channel_id=i)
            for i in range(config.num_channels)
        ]
        self.caches: List[MemorySideCache] = [
            MemorySideCache(
                num_sets=config.cache_sets,
                associativity=config.cache_associativity,
                line_words=config.cache_line_words,
            )
            for _ in range(config.num_channels)
        ]
        self.requests_routed = 0

    def channel_of(self, address: int) -> int:
        """Line-interleaved address mapping."""
        if address < 0:
            raise ValueError("address must be non-negative")
        line = address // self.config.cache_line_words
        return line % self.config.num_channels

    def request(self, address: int, now: int) -> int:
        """Route a read of *address* issued at cycle *now*; returns the
        data-return cycle (request hop + cache/memory + response hop)."""
        self.requests_routed += 1
        idx = self.channel_of(address)
        arrival = now + self.config.hop_latency
        if self.config.enable_cache:
            cache = self.caches[idx]
            if cache.access(address):
                done = arrival + cache.hit_latency
            else:
                done = self.channels[idx].issue(arrival)
        else:
            done = self.channels[idx].issue(arrival)
        return done + self.config.hop_latency

    @property
    def total_hits(self) -> int:
        return sum(c.hits for c in self.caches)

    @property
    def total_misses(self) -> int:
        return sum(c.misses for c in self.caches)

    @property
    def hit_rate(self) -> float:
        total = self.total_hits + self.total_misses
        return self.total_hits / total if total else 0.0
