"""OpenMP-like parallel-region front-end.

In the real SPARTA flow "parallel regions are first translated into calls
to OpenMP runtime primitives by the front-end Clang compiler"; our
substitution (DESIGN.md #5) is an explicit task representation: a
:class:`ParallelForRegion` holds independent :class:`Task` objects, each
a sequence of compute / load / store steps, which is precisely the
information the back-end architecture consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

#: Step encoding: ("compute", cycles) | ("load", address) | ("store", address).
Step = Tuple[str, int]

_VALID_STEP_KINDS = ("compute", "load", "store")


def compute(cycles: int) -> Step:
    """A compute burst of *cycles* cycles."""
    if cycles < 1:
        raise ValueError("compute cycles must be >= 1")
    return ("compute", cycles)


def load(address: int) -> Step:
    """A blocking read of word *address* through the NoC."""
    if address < 0:
        raise ValueError("address must be non-negative")
    return ("load", address)


def store(address: int) -> Step:
    """A posted (non-blocking) write of word *address*."""
    if address < 0:
        raise ValueError("address must be non-negative")
    return ("store", address)


@dataclass
class Task:
    """One independent loop iteration (or iteration chunk)."""

    task_id: int
    steps: List[Step] = field(default_factory=list)

    def __post_init__(self) -> None:
        for step in self.steps:
            if step[0] not in _VALID_STEP_KINDS:
                raise ValueError(f"invalid step kind {step[0]!r}")

    @property
    def num_loads(self) -> int:
        return sum(1 for kind, _ in self.steps if kind == "load")

    @property
    def compute_cycles(self) -> int:
        return sum(arg for kind, arg in self.steps if kind == "compute")


@dataclass
class ParallelForRegion:
    """An ``#pragma omp parallel for`` region: independent tasks."""

    name: str
    tasks: List[Task]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("parallel region must contain tasks")
        ids = [t.task_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate task ids")

    @property
    def total_loads(self) -> int:
        return sum(t.num_loads for t in self.tasks)

    @property
    def total_compute_cycles(self) -> int:
        return sum(t.compute_cycles for t in self.tasks)

    @property
    def memory_intensity(self) -> float:
        """Loads per compute cycle -- irregular graph kernels sit far
        above regular streaming kernels on this axis."""
        cycles = self.total_compute_cycles
        if cycles == 0:
            return float("inf")
        return self.total_loads / cycles
