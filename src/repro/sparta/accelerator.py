"""Multi-context accelerator lanes.

The SPARTA accelerator "can exploit spatial parallelism and hide the
latency of external memory accesses through context switching": each lane
holds several hardware task contexts; when the running context issues a
load it parks until the data returns, and the lane switches (with a small
penalty) to another ready context instead of stalling.

On-chip private memories are modeled as a per-lane scratchpad address
window served at fixed low latency without touching the NoC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sparta.openmp import Task


class ContextState(enum.Enum):
    IDLE = "idle"
    READY = "ready"
    RUNNING = "running"
    WAITING = "waiting"


@dataclass
class HardwareContext:
    """One task context (registers + program point) inside a lane."""

    slot: int
    task: Optional[Task] = None
    step_index: int = 0
    compute_remaining: int = 0
    ready_at: int = 0
    state: ContextState = ContextState.IDLE

    def assign(self, task: Task, now: int) -> None:
        self.task = task
        self.step_index = 0
        self.compute_remaining = 0
        self.ready_at = now
        self.state = ContextState.READY

    @property
    def finished(self) -> bool:
        return self.task is not None and self.step_index >= len(
            self.task.steps
        ) and self.compute_remaining == 0


@dataclass(frozen=True)
class LaneConfig:
    """Accelerator lane parameters."""

    num_contexts: int = 4
    switch_penalty: int = 1
    scratchpad_words: int = 1024
    scratchpad_latency: int = 1

    def __post_init__(self) -> None:
        if self.num_contexts < 1:
            raise ValueError("need at least one context")
        if self.switch_penalty < 0 or self.scratchpad_latency < 1:
            raise ValueError("invalid lane timing parameters")
        if self.scratchpad_words < 0:
            raise ValueError("scratchpad size must be non-negative")


class AcceleratorLane:
    """One SPARTA accelerator lane executing tasks over its contexts."""

    def __init__(
        self,
        lane_id: int,
        config: LaneConfig,
        request_fn: Callable[[int, int], int],
    ) -> None:
        self.lane_id = lane_id
        self.config = config
        self._request = request_fn
        self.contexts: List[HardwareContext] = [
            HardwareContext(slot=i) for i in range(config.num_contexts)
        ]
        self._current: Optional[HardwareContext] = None
        self._last_running: Optional[HardwareContext] = None
        self._switch_stall = 0
        self.busy_cycles = 0
        self.stall_cycles = 0
        self.switches = 0
        self.tasks_completed = 0

    # -- task feeding ------------------------------------------------
    def idle_context(self) -> Optional[HardwareContext]:
        for ctx in self.contexts:
            if ctx.state is ContextState.IDLE:
                return ctx
        return None

    @property
    def fully_idle(self) -> bool:
        return all(ctx.state is ContextState.IDLE for ctx in self.contexts)

    # -- execution ---------------------------------------------------
    def _is_scratchpad(self, address: int) -> bool:
        return address < self.config.scratchpad_words

    def _pick_ready(self, now: int) -> Optional[HardwareContext]:
        # Wake waiting contexts whose data has returned.
        for ctx in self.contexts:
            if ctx.state is ContextState.WAITING and ctx.ready_at <= now:
                ctx.state = ContextState.READY
        ready = [
            ctx
            for ctx in self.contexts
            if ctx.state is ContextState.READY and ctx.ready_at <= now
        ]
        if not ready:
            return None
        # Round-robin-ish: lowest slot first.
        return min(ready, key=lambda c: c.slot)

    def step(self, now: int) -> None:
        """Advance the lane by one cycle."""
        if self._switch_stall > 0:
            self._switch_stall -= 1
            self.stall_cycles += 1
            return
        ctx = self._current
        if ctx is None or ctx.state is not ContextState.RUNNING:
            candidate = self._pick_ready(now)
            if candidate is None:
                self.stall_cycles += 1
                return
            if (
                self._last_running is not None
                and candidate is not self._last_running
            ):
                self.switches += 1
                if self.config.switch_penalty:
                    self._switch_stall = self.config.switch_penalty - 1
                    self._current = candidate
                    self._last_running = candidate
                    candidate.state = ContextState.RUNNING
                    self.stall_cycles += 1
                    return
            self._current = candidate
            self._last_running = candidate
            candidate.state = ContextState.RUNNING
            ctx = candidate
        self._execute_cycle(ctx, now)

    def _execute_cycle(self, ctx: HardwareContext, now: int) -> None:
        self.busy_cycles += 1
        if ctx.compute_remaining > 0:
            ctx.compute_remaining -= 1
            if ctx.compute_remaining == 0 and ctx.step_index >= len(
                ctx.task.steps
            ):
                self._retire(ctx)
            return
        if ctx.step_index >= len(ctx.task.steps):
            self._retire(ctx)
            return
        kind, arg = ctx.task.steps[ctx.step_index]
        ctx.step_index += 1
        if kind == "compute":
            ctx.compute_remaining = arg - 1
            if ctx.compute_remaining == 0 and ctx.step_index >= len(
                ctx.task.steps
            ):
                self._retire(ctx)
        elif kind == "load":
            if self._is_scratchpad(arg):
                ctx.ready_at = now + self.config.scratchpad_latency
            else:
                ctx.ready_at = self._request(arg, now)
            ctx.state = ContextState.WAITING
            self._current = None
            if ctx.step_index >= len(ctx.task.steps):
                # Load result unused by further steps; retire on return.
                pass
        elif kind == "store":
            if not self._is_scratchpad(arg):
                self._request(arg, now)  # posted write, no blocking
            if ctx.step_index >= len(ctx.task.steps):
                self._retire(ctx)
        else:  # pragma: no cover - Task validates kinds
            raise ValueError(f"unknown step kind {kind!r}")

    def _retire(self, ctx: HardwareContext) -> None:
        ctx.task = None
        ctx.state = ContextState.IDLE
        self.tasks_completed += 1
        if self._current is ctx:
            self._current = None

    def stall_wake(self, now: int) -> Optional[float]:
        """Earliest future cycle at which this lane could do work, given
        that it is purely stalled at *now*.

        Returns ``None`` when the lane can act at *now* (a running or
        ready context, a waking waiter, or an in-progress context
        switch), ``inf`` when every context is idle, else the smallest
        ``ready_at`` among waiting contexts.  The event-skipping
        simulator uses this to retire whole stall spans in one update;
        each skipped cycle is exactly one :meth:`step` that would have
        counted a stall.
        """
        if self._switch_stall > 0:
            return None
        wake = float("inf")
        for ctx in self.contexts:
            if ctx.state is ContextState.IDLE:
                continue
            if ctx.state is ContextState.WAITING:
                if ctx.ready_at <= now:
                    return None
                wake = min(wake, float(ctx.ready_at))
            else:  # READY or RUNNING: work available this cycle
                return None
        return wake

    def drain_waiting_finished(self, now: int) -> None:
        """Retire contexts whose final step was a load that has returned."""
        for ctx in self.contexts:
            if (
                ctx.state is ContextState.WAITING
                and ctx.ready_at <= now
                and ctx.task is not None
                and ctx.step_index >= len(ctx.task.steps)
                and ctx.compute_remaining == 0
            ):
                self._retire(ctx)
