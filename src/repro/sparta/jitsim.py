"""Compiled (``impl="jit"``) SPARTA cycle simulator.

The object-graph simulator (:class:`~repro.sparta.simulator.SpartaSystem`
stepping :class:`~repro.sparta.accelerator.AcceleratorLane` /
:class:`~repro.sparta.noc.CrossbarNoc` instances) spends its cycles in
Python attribute dispatch: the per-cycle loop is pure integer state
machinery, precisely the shape that compiles to machine code.  This
module flattens the whole system -- contexts, lanes, crossbar channels,
set-associative LRU memory-side caches, the task queue -- into int64
arrays and advances it in one numba ``nopython`` kernel, including the
all-lanes-stalled event skip of the numpy tier.

Equivalence contract: the kernel is a line-for-line transcription of
``AcceleratorLane.step`` / ``CrossbarNoc.request`` /
``MemorySideCache.access`` / ``MemoryChannel.issue`` and the
``SpartaSystem.run`` feed loop, so the resulting
:class:`~repro.sparta.simulator.SimulationStats` -- cycle count, busy /
stall split, context switches, cache hits/misses, requests routed --
are **bit-identical** to the scalar oracle.  LRU order is carried as
monotonic access stamps (min-stamp eviction == ``OrderedDict``
least-recently-used).  Via the :func:`repro.core.jit.njit` shim the
kernel also runs as plain Python on numba-free installs, which is how
the equivalence tests pin it everywhere.

State is exported from the live objects before the kernel runs and
imported back afterwards (counters, channel issue cursors, cache tag /
recency state, per-context execution state), so a reused
:class:`SpartaSystem` accumulates statistics exactly as the scalar path
would -- warm caches included.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.core.jit import njit, timed_first_call

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparta.openmp import ParallelForRegion
    from repro.sparta.simulator import SpartaSystem

#: Step kind codes in the flattened task program.
_LOAD, _STORE, _COMPUTE = 0, 1, 2
#: Context state codes (mirror ContextState member order).
_IDLE, _READY, _RUNNING, _WAITING = 0, 1, 2, 3

_KINDS = {"load": _LOAD, "store": _STORE, "compute": _COMPUTE}


@timed_first_call("sparta.cycle")
@njit(cache=True)
def cycle_kernel(
    # task program (read-only)
    step_kind, step_arg, task_off, num_tasks,
    # lane/context mutable state
    cstate, ctask, cstep, ccomp, cready,
    cur, last, switch_stall,
    busy, stall, switches, completed,
    # lane config scalars
    num_contexts, switch_penalty, scratch_words, scratch_latency,
    # NoC / channels / caches
    next_issue, served, chan_busy,
    hop_latency, memory_latency, line_words, enable_cache,
    tags, stamps, stampctr, hits, misses,
    cache_sets, cache_ways, cache_hit_latency,
    # run control + out-params
    queue_head, max_cycles, out,
):
    """Advance the flattened system until completion or *max_cycles*.

    ``out[0]`` is 1 on timeout, ``out[1]`` the final cycle count,
    ``out[2]`` the requests-routed delta, ``out[3]`` the final queue
    head.  Everything else is mutated in place.
    """
    num_lanes = cstate.shape[0]
    now = 0
    qh = queue_head
    requests = 0
    timeout = 0
    while True:
        # ---- feed: drain finished waiters, then assign queued tasks.
        for lane in range(num_lanes):
            for c in range(num_contexts):
                if (
                    cstate[lane, c] == _WAITING
                    and cready[lane, c] <= now
                    and ctask[lane, c] >= 0
                    and cstep[lane, c] >= (
                        task_off[ctask[lane, c] + 1]
                        - task_off[ctask[lane, c]]
                    )
                    and ccomp[lane, c] == 0
                ):
                    # retire
                    ctask[lane, c] = -1
                    cstate[lane, c] = _IDLE
                    completed[lane] += 1
                    if cur[lane] == c:
                        cur[lane] = -1
            while qh < num_tasks:
                slot = -1
                for c in range(num_contexts):
                    if cstate[lane, c] == _IDLE:
                        slot = c
                        break
                if slot < 0:
                    break
                ctask[lane, slot] = qh
                cstep[lane, slot] = 0
                ccomp[lane, slot] = 0
                cready[lane, slot] = now
                cstate[lane, slot] = _READY
                qh += 1
        if qh >= num_tasks:
            all_idle = True
            for lane in range(num_lanes):
                for c in range(num_contexts):
                    if cstate[lane, c] != _IDLE:
                        all_idle = False
                        break
                if not all_idle:
                    break
            if all_idle:
                break
        # ---- step every lane one cycle.
        for lane in range(num_lanes):
            if switch_stall[lane] > 0:
                switch_stall[lane] -= 1
                stall[lane] += 1
                continue
            ctx = cur[lane]
            if ctx < 0 or cstate[lane, ctx] != _RUNNING:
                # wake waiting contexts whose data has returned
                for c in range(num_contexts):
                    if (
                        cstate[lane, c] == _WAITING
                        and cready[lane, c] <= now
                    ):
                        cstate[lane, c] = _READY
                candidate = -1
                for c in range(num_contexts):
                    if (
                        cstate[lane, c] == _READY
                        and cready[lane, c] <= now
                    ):
                        candidate = c
                        break
                if candidate < 0:
                    stall[lane] += 1
                    continue
                if last[lane] >= 0 and candidate != last[lane]:
                    switches[lane] += 1
                    if switch_penalty > 0:
                        switch_stall[lane] = switch_penalty - 1
                        cur[lane] = candidate
                        last[lane] = candidate
                        cstate[lane, candidate] = _RUNNING
                        stall[lane] += 1
                        continue
                cur[lane] = candidate
                last[lane] = candidate
                cstate[lane, candidate] = _RUNNING
                ctx = candidate
            # ---- execute one cycle of ctx (busy by definition).
            busy[lane] += 1
            task = ctask[lane, ctx]
            task_len = task_off[task + 1] - task_off[task]
            if ccomp[lane, ctx] > 0:
                ccomp[lane, ctx] -= 1
                if ccomp[lane, ctx] == 0 and cstep[lane, ctx] >= task_len:
                    ctask[lane, ctx] = -1
                    cstate[lane, ctx] = _IDLE
                    completed[lane] += 1
                    if cur[lane] == ctx:
                        cur[lane] = -1
                continue
            if cstep[lane, ctx] >= task_len:
                ctask[lane, ctx] = -1
                cstate[lane, ctx] = _IDLE
                completed[lane] += 1
                if cur[lane] == ctx:
                    cur[lane] = -1
                continue
            step = task_off[task] + cstep[lane, ctx]
            kind = step_kind[step]
            arg = step_arg[step]
            cstep[lane, ctx] += 1
            if kind == _COMPUTE:
                ccomp[lane, ctx] = arg - 1
                if ccomp[lane, ctx] == 0 and cstep[lane, ctx] >= task_len:
                    ctask[lane, ctx] = -1
                    cstate[lane, ctx] = _IDLE
                    completed[lane] += 1
                    if cur[lane] == ctx:
                        cur[lane] = -1
            elif kind == _LOAD:
                if arg < scratch_words:
                    cready[lane, ctx] = now + scratch_latency
                else:
                    # ---- CrossbarNoc.request (read)
                    requests += 1
                    line = arg // line_words
                    ch = line % next_issue.shape[0]
                    arrival = now + hop_latency
                    done = arrival
                    hit = False
                    if enable_cache != 0:
                        s = line % cache_sets
                        way = -1
                        for w in range(cache_ways):
                            if tags[ch, s, w] == line:
                                way = w
                                break
                        if way >= 0:
                            hits[ch] += 1
                            stampctr[ch] += 1
                            stamps[ch, s, way] = stampctr[ch]
                            done = arrival + cache_hit_latency
                            hit = True
                        else:
                            misses[ch] += 1
                            victim = -1
                            for w in range(cache_ways):
                                if tags[ch, s, w] < 0:
                                    victim = w
                                    break
                            if victim < 0:
                                best = stamps[ch, s, 0]
                                victim = 0
                                for w in range(1, cache_ways):
                                    if stamps[ch, s, w] < best:
                                        best = stamps[ch, s, w]
                                        victim = w
                            tags[ch, s, victim] = line
                            stampctr[ch] += 1
                            stamps[ch, s, victim] = stampctr[ch]
                    if not hit:
                        issue_cycle = arrival
                        if next_issue[ch] > issue_cycle:
                            issue_cycle = next_issue[ch]
                        next_issue[ch] = issue_cycle + 1
                        served[ch] += 1
                        chan_busy[ch] += 1
                        done = issue_cycle + memory_latency
                    cready[lane, ctx] = done + hop_latency
                cstate[lane, ctx] = _WAITING
                cur[lane] = -1
            else:  # _STORE
                if arg >= scratch_words:
                    # posted write: routes (and allocates) but no wait
                    requests += 1
                    line = arg // line_words
                    ch = line % next_issue.shape[0]
                    arrival = now + hop_latency
                    hit = False
                    if enable_cache != 0:
                        s = line % cache_sets
                        way = -1
                        for w in range(cache_ways):
                            if tags[ch, s, w] == line:
                                way = w
                                break
                        if way >= 0:
                            hits[ch] += 1
                            stampctr[ch] += 1
                            stamps[ch, s, way] = stampctr[ch]
                            hit = True
                        else:
                            misses[ch] += 1
                            victim = -1
                            for w in range(cache_ways):
                                if tags[ch, s, w] < 0:
                                    victim = w
                                    break
                            if victim < 0:
                                best = stamps[ch, s, 0]
                                victim = 0
                                for w in range(1, cache_ways):
                                    if stamps[ch, s, w] < best:
                                        best = stamps[ch, s, w]
                                        victim = w
                            tags[ch, s, victim] = line
                            stampctr[ch] += 1
                            stamps[ch, s, victim] = stampctr[ch]
                    if not hit:
                        issue_cycle = arrival
                        if next_issue[ch] > issue_cycle:
                            issue_cycle = next_issue[ch]
                        next_issue[ch] = issue_cycle + 1
                        served[ch] += 1
                        chan_busy[ch] += 1
                if cstep[lane, ctx] >= task_len:
                    ctask[lane, ctx] = -1
                    cstate[lane, ctx] = _IDLE
                    completed[lane] += 1
                    if cur[lane] == ctx:
                        cur[lane] = -1
        now += 1
        if now >= max_cycles:
            timeout = 1
            break
        # ---- event skip: retire whole all-lanes-stalled spans at once.
        can_skip = True
        for lane in range(num_lanes):
            if cur[lane] >= 0 or switch_stall[lane] > 0:
                can_skip = False
                break
        if can_skip and qh < num_tasks:
            for lane in range(num_lanes):
                for c in range(num_contexts):
                    if cstate[lane, c] == _IDLE:
                        can_skip = False
                        break
                if not can_skip:
                    break
        if can_skip:
            wake = -1
            for lane in range(num_lanes):
                lane_wake = -1
                for c in range(num_contexts):
                    st = cstate[lane, c]
                    if st == _IDLE:
                        continue
                    if st == _WAITING:
                        if cready[lane, c] <= now:
                            lane_wake = -2  # can act now
                            break
                        if lane_wake < 0 or cready[lane, c] < lane_wake:
                            lane_wake = cready[lane, c]
                    else:  # READY or RUNNING
                        lane_wake = -2
                        break
                if lane_wake == -2:
                    wake = -2
                    break
                if lane_wake >= 0 and (wake < 0 or lane_wake < wake):
                    wake = lane_wake
            if wake >= 0:
                skip_to = wake if wake < max_cycles else max_cycles
                skip = skip_to - now
                if skip > 0:
                    for lane in range(num_lanes):
                        stall[lane] += skip
                    now += skip
                    if now >= max_cycles:
                        timeout = 1
                        break
    out[0] = timeout
    out[1] = now
    out[2] = requests
    out[3] = qh
    return 0


def _flatten_region(region: "ParallelForRegion"):
    """Task programs as flat (kind, arg, offsets) arrays."""
    total = sum(len(task.steps) for task in region.tasks)
    step_kind = np.empty(max(total, 1), dtype=np.int64)
    step_arg = np.empty(max(total, 1), dtype=np.int64)
    task_off = np.zeros(len(region.tasks) + 1, dtype=np.int64)
    cursor = 0
    for t, task in enumerate(region.tasks):
        for kind, arg in task.steps:
            step_kind[cursor] = _KINDS[kind]
            step_arg[cursor] = arg
            cursor += 1
        task_off[t + 1] = cursor
    return step_kind, step_arg, task_off


def _export_caches(system: "SpartaSystem"):
    """Cache tag/recency state as (tags, stamps, counters) arrays; LRU
    order becomes ascending stamps."""
    cfg = system.noc.config
    K = cfg.num_channels
    S = cfg.cache_sets
    W = cfg.cache_associativity
    tags = np.full((K, S, W), -1, dtype=np.int64)
    stamps = np.zeros((K, S, W), dtype=np.int64)
    stampctr = np.zeros(K, dtype=np.int64)
    for k, cache in enumerate(system.noc.caches):
        ctr = 0
        for set_idx, ways in cache._sets.items():
            w = 0
            for line in ways:  # OrderedDict iterates LRU -> MRU
                ctr += 1
                tags[k, set_idx, w] = line
                stamps[k, set_idx, w] = ctr
                w += 1
        stampctr[k] = ctr
    return tags, stamps, stampctr


def _import_caches(system: "SpartaSystem", tags, stamps) -> None:
    """Write tag/recency arrays back into the live cache objects."""
    from collections import OrderedDict

    for k, cache in enumerate(system.noc.caches):
        sets = {}
        for set_idx in range(tags.shape[1]):
            entries = [
                (int(stamps[k, set_idx, w]), int(tags[k, set_idx, w]))
                for w in range(tags.shape[2])
                if tags[k, set_idx, w] >= 0
            ]
            if entries:
                entries.sort()
                sets[set_idx] = OrderedDict(
                    (line, True) for _, line in entries
                )
        cache._sets = sets


def run_jit(
    system: "SpartaSystem",
    region: "ParallelForRegion",
    max_cycles: int,
) -> Tuple[bool, int]:
    """Execute *region* on *system* via the compiled kernel.

    Mutates the live system objects exactly as a scalar run would
    (counters accumulate, caches warm, channel issue cursors advance)
    and returns ``(timed_out, cycles)``; the caller builds the
    :class:`SimulationStats` / raises the timeout, keeping one
    stats/ error path for every tier.
    """
    lanes = system.lanes
    L = len(lanes)
    C = lanes[0].config.num_contexts
    lane_cfg = lanes[0].config
    noc_cfg = system.noc.config

    step_kind, step_arg, task_off = _flatten_region(region)

    cstate = np.zeros((L, C), dtype=np.int64)
    ctask = np.full((L, C), -1, dtype=np.int64)
    cstep = np.zeros((L, C), dtype=np.int64)
    ccomp = np.zeros((L, C), dtype=np.int64)
    cready = np.zeros((L, C), dtype=np.int64)
    cur = np.full(L, -1, dtype=np.int64)
    last = np.full(L, -1, dtype=np.int64)
    switch_stall = np.zeros(L, dtype=np.int64)
    busy = np.zeros(L, dtype=np.int64)
    stall = np.zeros(L, dtype=np.int64)
    switches = np.zeros(L, dtype=np.int64)
    completed = np.zeros(L, dtype=np.int64)
    for i, lane in enumerate(lanes):
        busy[i] = lane.busy_cycles
        stall[i] = lane.stall_cycles
        switches[i] = lane.switches
        completed[i] = lane.tasks_completed
        switch_stall[i] = lane._switch_stall
        if lane._current is not None:
            cur[i] = lane._current.slot
        if lane._last_running is not None:
            # Persists across runs: the first pick of the next region
            # charges a switch when it lands on a different slot.
            last[i] = lane._last_running.slot

    channels = system.noc.channels
    next_issue = np.array(
        [ch.next_issue_cycle for ch in channels], dtype=np.int64
    )
    served = np.array(
        [ch.requests_served for ch in channels], dtype=np.int64
    )
    chan_busy = np.array(
        [ch.busy_cycles for ch in channels], dtype=np.int64
    )
    tags, stamps, stampctr = _export_caches(system)
    hits = np.array([c.hits for c in system.noc.caches], dtype=np.int64)
    misses = np.array(
        [c.misses for c in system.noc.caches], dtype=np.int64
    )
    hit_latency = system.noc.caches[0].hit_latency

    out = np.zeros(4, dtype=np.int64)
    cycle_kernel(
        step_kind, step_arg, task_off, len(region.tasks),
        cstate, ctask, cstep, ccomp, cready,
        cur, last, switch_stall,
        busy, stall, switches, completed,
        C, lane_cfg.switch_penalty, lane_cfg.scratchpad_words,
        lane_cfg.scratchpad_latency,
        next_issue, served, chan_busy,
        noc_cfg.hop_latency, noc_cfg.memory_latency,
        noc_cfg.cache_line_words, 1 if noc_cfg.enable_cache else 0,
        tags, stamps, stampctr, hits, misses,
        noc_cfg.cache_sets, noc_cfg.cache_associativity, hit_latency,
        0, max_cycles, out,
    )

    # ---- write the flattened state back into the live objects.
    from repro.sparta.accelerator import ContextState

    states = (
        ContextState.IDLE, ContextState.READY,
        ContextState.RUNNING, ContextState.WAITING,
    )
    for i, lane in enumerate(lanes):
        lane.busy_cycles = int(busy[i])
        lane.stall_cycles = int(stall[i])
        lane.switches = int(switches[i])
        lane.tasks_completed = int(completed[i])
        lane._switch_stall = int(switch_stall[i])
        lane._current = (
            lane.contexts[int(cur[i])] if cur[i] >= 0 else None
        )
        lane._last_running = (
            lane.contexts[int(last[i])] if last[i] >= 0 else None
        )
        for c, ctx in enumerate(lane.contexts):
            ctx.state = states[int(cstate[i, c])]
            ctx.task = (
                region.tasks[int(ctask[i, c])]
                if ctask[i, c] >= 0
                else None
            )
            ctx.step_index = int(cstep[i, c])
            ctx.compute_remaining = int(ccomp[i, c])
            ctx.ready_at = int(cready[i, c])
    for k, channel in enumerate(channels):
        channel.next_issue_cycle = int(next_issue[k])
        channel.requests_served = int(served[k])
        channel.busy_cycles = int(chan_busy[k])
    for k, cache in enumerate(system.noc.caches):
        cache.hits = int(hits[k])
        cache.misses = int(misses[k])
    _import_caches(system, tags, stamps)
    system.noc.requests_routed += int(out[2])
    return bool(out[0]), int(out[1])


__all__ = ["cycle_kernel", "run_jit"]
