"""External memory channel model.

Each channel is a fully pipelined DRAM-class port: it accepts at most one
request per cycle (bandwidth limit) and returns data a fixed latency
after issue.  Multiple channels are the parallelism SPARTA's NoC exposes
to the accelerator lanes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MemoryChannel:
    """One pipelined external memory port."""

    latency: int = 100
    channel_id: int = 0
    next_issue_cycle: int = 0
    requests_served: int = 0
    busy_cycles: int = 0

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError("latency must be >= 1")

    def issue(self, now: int) -> int:
        """Issue a request at cycle *now*; returns the completion cycle.

        Back-to-back requests serialize on the 1-per-cycle issue port,
        then overlap in the pipeline.
        """
        if now < 0:
            raise ValueError("cycle must be non-negative")
        issue_cycle = max(now, self.next_issue_cycle)
        self.next_issue_cycle = issue_cycle + 1
        self.requests_served += 1
        self.busy_cycles += 1
        return issue_cycle + self.latency

    @property
    def queue_delay(self) -> int:
        """Current backlog in cycles (how far ahead of 'now' the issue
        port is booked); used by tests and contention diagnostics."""
        return self.next_issue_cycle
