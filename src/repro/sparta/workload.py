"""SPARTA adapter for the unified :class:`~repro.core.api.Workload`
contract: one evaluation runs a seeded BFS region on the cycle-level
multi-lane simulator (the Sec. III latency-hiding experiment cell)."""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

from repro.core.api import RunResult, register_workload
from repro.core.errors import ValidationError


class SpartaWorkload:
    """``sparta``: cycle-accurate N-lane accelerator over a BFS region."""

    name = "sparta"

    def space(self) -> Dict[str, tuple]:
        return {
            "num_nodes": (48, 96, 128, 256),
            "avg_degree": (6.0, 8.0),
            "num_lanes": (4, 1, 2, 8),
            "contexts_per_lane": (4, 1, 2, 8),
            "num_channels": (4, 2, 8),
            "memory_latency": (100, 50, 200),
            "enable_cache": (True, False),
        }

    def evaluate(
        self,
        config: Mapping[str, Any],
        *,
        seed: int = 0,
        impl: Optional[str] = None,
    ) -> RunResult:
        from repro.sparta.kernels import bfs_tasks, random_graph
        from repro.sparta.simulator import simulate

        if impl not in (None, "scalar", "numpy", "jit"):
            raise ValidationError(
                "sparta supports impl=None|'scalar'|'numpy'|'jit', "
                f"got {impl!r}"
            )
        cfg = dict(config)
        start = time.perf_counter()
        graph = random_graph(
            int(cfg["num_nodes"]),
            avg_degree=float(cfg.get("avg_degree", 8.0)),
            seed=seed,
        )
        region = bfs_tasks(graph, seed=seed)
        stats = simulate(
            region,
            num_lanes=int(cfg.get("num_lanes", 4)),
            contexts_per_lane=int(cfg.get("contexts_per_lane", 4)),
            num_channels=int(cfg.get("num_channels", 4)),
            memory_latency=int(cfg.get("memory_latency", 100)),
            enable_cache=bool(cfg.get("enable_cache", True)),
            impl=impl or "numpy",
        )
        wall = time.perf_counter() - start
        return stats.to_run_result(
            workload=self.name, config=cfg, seed=seed, impl=impl,
            wall_time_s=wall,
        )


register_workload(SpartaWorkload())
