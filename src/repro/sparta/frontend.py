"""HLS-to-SPARTA bridge: lowering loop nests to SPARTA task graphs.

In the real toolchain SPARTA "is integrated within Bambu, and it is
triggered when the input design contains OpenMP directives."  This module
closes the same loop in the reproduction: a
:class:`~repro.hls.kernels.LoopNest` (the HLS front-end object) is
lowered into a :class:`~repro.sparta.openmp.ParallelForRegion` (the
SPARTA back-end object), mapping the body's LOAD/STORE/arithmetic
operations onto task steps.  Regular kernels produce streaming addresses;
irregular kernels (``irregular_memory``) produce randomized gather
addresses -- the access pattern that makes SPARTA's context switching
worthwhile where static HLS pipelining fails.
"""

from __future__ import annotations

from typing import List

from repro.core.rng import SeedLike, make_rng
from repro.hls.ir import OpKind
from repro.hls.kernels import LoopNest
from repro.sparta.openmp import ParallelForRegion, Task, compute, load, store

#: Word-address base for lowered kernels (beyond the lane scratchpad).
_DATA_BASE = 1 << 18
_GATHER_SPACE = 1 << 14


def lower_loop_nest(
    nest: LoopNest,
    iterations_per_task: int = 1,
    seed: SeedLike = 0,
) -> ParallelForRegion:
    """Lower *nest* to a SPARTA parallel region.

    Each task covers *iterations_per_task* loop iterations.  Body LOADs
    become task loads (sequential addresses for regular kernels,
    randomized for ``irregular_memory`` kernels); STOREs become posted
    stores; arithmetic operations between memory operations are folded
    into compute bursts of their total latency.
    """
    if iterations_per_task < 1:
        raise ValueError("iterations_per_task must be >= 1")
    rng = make_rng(seed)
    num_tasks = -(-nest.trip_count // iterations_per_task)
    body_ops = nest.body.operations
    tasks: List[Task] = []
    for task_id in range(num_tasks):
        steps = []
        pending_compute = 0
        for iteration in range(iterations_per_task):
            global_iter = task_id * iterations_per_task + iteration
            if global_iter >= nest.trip_count:
                break
            for op_index, op in enumerate(body_ops):
                if op.kind is OpKind.LOAD:
                    if pending_compute:
                        steps.append(compute(pending_compute))
                        pending_compute = 0
                    if nest.irregular_memory:
                        address = _DATA_BASE + int(
                            rng.integers(_GATHER_SPACE)
                        )
                    else:
                        address = (
                            _DATA_BASE
                            + global_iter * len(body_ops)
                            + op_index
                        )
                    steps.append(load(address))
                elif op.kind is OpKind.STORE:
                    if pending_compute:
                        steps.append(compute(pending_compute))
                        pending_compute = 0
                    steps.append(store(_DATA_BASE + global_iter))
                else:
                    pending_compute += max(op.latency, 1)
        if pending_compute:
            steps.append(compute(pending_compute))
        if steps:
            tasks.append(Task(task_id=task_id, steps=steps))
    return ParallelForRegion(name=f"{nest.name}_omp", tasks=tasks)
