"""Graph-processing workloads for SPARTA (paper Sec. III).

"SPARTA has primarily been tested on graph processing kernels, to
demonstrate its ability to generate efficient accelerators for irregular
applications."  Task generators for BFS, SpMV and PageRank over synthetic
graphs, plus a regular streaming kernel as the cache-friendly contrast.

Address map (word addresses, beyond the lane scratchpad window):
node *i*'s value lives at ``VALUE_BASE + i``, its adjacency list at
``ADJ_BASE + offset``.  Graph traversals therefore issue the
pointer-chasing irregular accesses that defeat static HLS pipelining and
motivate SPARTA's context switching.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from repro.core.rng import SeedLike, make_rng
from repro.sparta.openmp import ParallelForRegion, Task, compute, load, store

#: Word-address bases (kept clear of the default 1024-word scratchpad).
VALUE_BASE = 1 << 16
ADJ_BASE = 1 << 20
MATRIX_BASE = 1 << 22


def random_graph(
    num_nodes: int = 256, avg_degree: float = 8.0, seed: SeedLike = 0
) -> nx.Graph:
    """Erdos-Renyi graph with the requested average degree."""
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if avg_degree <= 0:
        raise ValueError("average degree must be positive")
    rng = make_rng(seed)
    p = min(1.0, avg_degree / (num_nodes - 1))
    return nx.fast_gnp_random_graph(
        num_nodes, p, seed=int(rng.integers(2**31))
    )


def _adjacency_offsets(graph: nx.Graph) -> List[int]:
    offsets = []
    cursor = 0
    for node in sorted(graph.nodes):
        offsets.append(cursor)
        cursor += max(graph.degree[node], 1)
    return offsets


def bfs_tasks(graph: nx.Graph, seed: SeedLike = 0) -> ParallelForRegion:
    """Level-synchronous BFS expressed as one task per frontier node:
    load the adjacency list, load each neighbour's visited flag, compute
    the update, store the new frontier bit."""
    offsets = _adjacency_offsets(graph)
    tasks = []
    for node in sorted(graph.nodes):
        steps = [load(ADJ_BASE + offsets[node])]
        for neighbor in graph.neighbors(node):
            steps.append(load(VALUE_BASE + neighbor))
            steps.append(compute(1))
        steps.append(store(VALUE_BASE + node))
        tasks.append(Task(task_id=node, steps=steps))
    return ParallelForRegion(name="bfs", tasks=tasks)


def spmv_tasks(
    num_rows: int = 256,
    avg_nnz: float = 8.0,
    seed: SeedLike = 0,
) -> ParallelForRegion:
    """Sparse matrix-vector product: per row, gather column indices and
    x-vector entries at random positions, MAC each pair, store y[row]."""
    if num_rows < 1:
        raise ValueError("need at least one row")
    if avg_nnz <= 0:
        raise ValueError("avg_nnz must be positive")
    rng = make_rng(seed)
    tasks = []
    for row in range(num_rows):
        nnz = max(1, int(rng.poisson(avg_nnz)))
        steps = []
        for k in range(nnz):
            col = int(rng.integers(num_rows))
            steps.append(load(MATRIX_BASE + row * 64 + k))  # A value
            steps.append(load(VALUE_BASE + col))  # x[col] gather
            steps.append(compute(1))  # MAC
        steps.append(store(VALUE_BASE + num_rows + row))
        tasks.append(Task(task_id=row, steps=steps))
    return ParallelForRegion(name="spmv", tasks=tasks)


def pagerank_tasks(graph: nx.Graph, seed: SeedLike = 0) -> ParallelForRegion:
    """One PageRank iteration: per node, gather each in-neighbour's rank
    and degree, accumulate, apply the damping compute, store the rank."""
    offsets = _adjacency_offsets(graph)
    tasks = []
    for node in sorted(graph.nodes):
        steps = [load(ADJ_BASE + offsets[node])]
        for neighbor in graph.neighbors(node):
            steps.append(load(VALUE_BASE + neighbor))  # rank
            steps.append(load(VALUE_BASE + (1 << 14) + neighbor))  # degree
            steps.append(compute(2))  # divide-accumulate
        steps.append(compute(3))  # damping
        steps.append(store(VALUE_BASE + node))
        tasks.append(Task(task_id=node, steps=steps))
    return ParallelForRegion(name="pagerank", tasks=tasks)


def streaming_tasks(
    num_tasks: int = 256, elements_per_task: int = 16
) -> ParallelForRegion:
    """Regular unit-stride streaming kernel (AXPY-like): sequential
    addresses, high cache-line reuse -- the contrast workload where the
    memory-side cache, not context switching, does the heavy lifting."""
    if num_tasks < 1 or elements_per_task < 1:
        raise ValueError("sizes must be >= 1")
    tasks = []
    for t in range(num_tasks):
        base = VALUE_BASE + t * elements_per_task
        steps = []
        for e in range(elements_per_task):
            steps.append(load(base + e))
            steps.append(compute(1))
        steps.append(store(base))
        tasks.append(Task(task_id=t, steps=steps))
    return ParallelForRegion(name="streaming", tasks=tasks)
