"""Cycle-level simulation of a SPARTA accelerator system.

:class:`SpartaSystem` assembles N accelerator lanes behind the crossbar
NoC and executes a :class:`~repro.sparta.openmp.ParallelForRegion` to
completion, producing :class:`SimulationStats`.  The statistics expose the
quantities the Sec. III claims are about: lane utilization (how well
context switching hides memory latency), cache hit rates, and the
speedup over fewer lanes/contexts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

from repro.core.errors import SimulationTimeout, ValidationError
from repro.core.jit import resolve_impl
from repro.perf import profiled
from repro.sparta.accelerator import AcceleratorLane, LaneConfig
from repro.sparta.noc import CrossbarNoc, NocConfig
from repro.sparta.openmp import ParallelForRegion


@dataclass(frozen=True)
class SimulationStats:
    """Outcome of one simulated region execution."""

    region: str
    cycles: int
    num_lanes: int
    contexts_per_lane: int
    tasks_completed: int
    busy_cycles: int
    stall_cycles: int
    context_switches: int
    cache_hits: int
    cache_misses: int
    memory_requests: int

    @property
    def utilization(self) -> float:
        """Fraction of lane-cycles doing useful work -- the latency-hiding
        figure of merit."""
        total = self.cycles * self.num_lanes
        return self.busy_cycles / total if total else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def tasks_per_kcycle(self) -> float:
        return 1000.0 * self.tasks_completed / self.cycles if self.cycles else 0.0

    def to_run_result(
        self,
        *,
        workload: str = "sparta",
        config=None,
        seed=None,
        impl=None,
        wall_time_s: float = 0.0,
    ):
        """This result in the unified :class:`~repro.core.api.RunResult`
        shape; the legacy field names stay reachable as deprecated
        attribute aliases on the returned object."""
        from dataclasses import asdict

        from repro.core.api import build_run_result

        metrics = asdict(self)
        metrics["utilization"] = self.utilization
        metrics["cache_hit_rate"] = self.cache_hit_rate
        metrics["tasks_per_kcycle"] = self.tasks_per_kcycle
        return build_run_result(
            workload, metrics, config=config, seed=seed, impl=impl,
            wall_time_s=wall_time_s,
        )


class SpartaSystem:
    """N-lane SPARTA accelerator with a shared crossbar NoC."""

    def __init__(
        self,
        num_lanes: int = 4,
        lane_config: LaneConfig = LaneConfig(),
        noc_config: NocConfig = NocConfig(),
        failed_lanes: Optional[Sequence[int]] = None,
    ) -> None:
        if num_lanes < 1:
            raise ValidationError("need at least one lane")
        failed = frozenset(failed_lanes or ())
        if any(i < 0 or i >= num_lanes for i in failed):
            raise ValidationError("failed lane index out of range")
        if len(failed) >= num_lanes:
            raise ValidationError("at least one lane must survive")
        self.failed_lanes = failed
        self.noc = CrossbarNoc(noc_config)
        # Dropped lanes are simply not built: the task queue feeds only
        # survivors, which is exactly how work remaps around a dead lane.
        self.lanes: List[AcceleratorLane] = [
            AcceleratorLane(i, lane_config, self.noc.request)
            for i in range(num_lanes)
            if i not in failed
        ]

    def _stats(self, region: ParallelForRegion, now: int) -> SimulationStats:
        """Statistics snapshot at cycle *now* (complete or partial)."""
        return SimulationStats(
            region=region.name,
            cycles=now,
            num_lanes=len(self.lanes),
            contexts_per_lane=self.lanes[0].config.num_contexts,
            tasks_completed=sum(l.tasks_completed for l in self.lanes),
            busy_cycles=sum(l.busy_cycles for l in self.lanes),
            stall_cycles=sum(l.stall_cycles for l in self.lanes),
            context_switches=sum(l.switches for l in self.lanes),
            cache_hits=self.noc.total_hits,
            cache_misses=self.noc.total_misses,
            memory_requests=self.noc.requests_routed,
        )

    @profiled("sparta.run")
    def run(
        self,
        region: ParallelForRegion,
        max_cycles: int = 5_000_000,
        impl: str = "numpy",
    ) -> SimulationStats:
        """Execute *region* to completion.

        At *max_cycles* raises a structured
        :class:`~repro.core.errors.SimulationTimeout` carrying the
        partial :class:`SimulationStats` accumulated so far, so a
        harness can checkpoint or report progress instead of losing
        the run.

        ``impl="scalar"`` advances strictly cycle by cycle (the
        reference); ``impl="numpy"`` (default) detects spans where every
        lane is stalled on outstanding memory -- the dominant regime at
        DRAM-class latencies -- and retires the whole span in one bulk
        update.  ``impl="jit"`` runs the whole cycle loop as one
        numba-compiled kernel over flattened array state
        (:mod:`repro.sparta.jitsim`) and degrades gracefully to
        ``"numpy"`` when numba is not installed.  The resulting
        :class:`SimulationStats` (cycle count included) are identical
        across all tiers; the equivalence tests pin that.
        """
        if impl not in ("scalar", "numpy", "jit"):
            raise ValidationError(
                f"impl must be 'scalar', 'numpy' or 'jit', got {impl!r}"
            )
        if impl == "jit":
            impl = resolve_impl(impl)  # "numpy" on numba-free installs
        if impl == "jit" and not all(
            lane.fully_idle for lane in self.lanes
        ):
            # Mid-flight context state (a rerun after a timeout) has no
            # task->index mapping into *region*; the object-graph tier
            # handles it, so degrade rather than guess.
            impl = "numpy"
        if impl == "jit":
            from repro.sparta.jitsim import run_jit

            timed_out, now = run_jit(self, region, max_cycles)
            if timed_out:
                raise SimulationTimeout(
                    f"simulation exceeded {max_cycles} cycles",
                    partial_stats=self._stats(region, now),
                    cycles=now,
                )
            return self._stats(region, now)
        queue: Deque = deque(region.tasks)
        now = 0
        while True:
            # Feed idle contexts.
            for lane in self.lanes:
                lane.drain_waiting_finished(now)
                while queue:
                    ctx = lane.idle_context()
                    if ctx is None:
                        break
                    ctx.assign(queue.popleft(), now)
            if not queue and all(lane.fully_idle for lane in self.lanes):
                break
            for lane in self.lanes:
                lane.step(now)
            now += 1
            if now >= max_cycles:
                raise SimulationTimeout(
                    f"simulation exceeded {max_cycles} cycles",
                    partial_stats=self._stats(region, now),
                    cycles=now,
                )
            if impl == "numpy":
                now += self._skip_stall_span(queue, now, max_cycles)
                if now >= max_cycles:
                    raise SimulationTimeout(
                        f"simulation exceeded {max_cycles} cycles",
                        partial_stats=self._stats(region, now),
                        cycles=now,
                    )
        return self._stats(region, now)

    def _skip_stall_span(
        self, queue: Deque, now: int, max_cycles: int
    ) -> int:
        """Cycles to fast-forward from *now* while every lane only
        stalls.

        Each skipped cycle is exactly one all-lanes-stall iteration of
        the scalar loop: the feed is a no-op (nothing drains before the
        earliest ``ready_at``; the queue cannot feed because either it
        is empty or no context is idle), no lane state changes, and
        every lane charges one stall cycle -- accounted here in bulk.
        """
        # Cheap precheck: a running lane or pending switch means work.
        for lane in self.lanes:
            if lane._current is not None or lane._switch_stall > 0:
                return 0
        if queue and any(
            lane.idle_context() is not None for lane in self.lanes
        ):
            return 0
        wake = float("inf")
        for lane in self.lanes:
            lane_wake = lane.stall_wake(now)
            if lane_wake is None:
                return 0
            if lane_wake < wake:
                wake = lane_wake
        if wake == float("inf"):
            return 0  # fully idle: the top-of-loop check handles it
        skip = min(int(wake), max_cycles) - now
        if skip <= 0:
            return 0
        for lane in self.lanes:
            lane.stall_cycles += skip
        return skip


def simulate(
    region: ParallelForRegion,
    num_lanes: int = 4,
    contexts_per_lane: int = 4,
    num_channels: int = 4,
    memory_latency: int = 100,
    enable_cache: bool = True,
    switch_penalty: int = 1,
    failed_lanes: Optional[Sequence[int]] = None,
    impl: str = "numpy",
) -> SimulationStats:
    """Convenience wrapper: build a system and run *region* once."""
    system = SpartaSystem(
        num_lanes=num_lanes,
        lane_config=LaneConfig(
            num_contexts=contexts_per_lane, switch_penalty=switch_penalty
        ),
        noc_config=NocConfig(
            num_channels=num_channels,
            memory_latency=memory_latency,
            enable_cache=enable_cache,
        ),
        failed_lanes=failed_lanes,
    )
    return system.run(region, impl=impl)
