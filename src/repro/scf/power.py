"""Energy / DVFS model around the published CU operating point.

Fig. 9's prototype CU "achieves up to 150 GFLOPS and 1.5 TFLOPS/W at
460 MHz, 0.55 V".  :class:`OperatingPoint` anchors the model there;
:func:`dvfs_scale` applies the standard alpha-power scaling (dynamic
power ~ C V^2 f, frequency roughly linear in voltage overdrive) to
derive nearby voltage/frequency points for the scale-up study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.units import GIGA, TERA


@dataclass(frozen=True)
class OperatingPoint:
    """One (V, f) point with its performance/power figures."""

    voltage_v: float
    clock_hz: float
    peak_flops: float
    power_w: float

    def __post_init__(self) -> None:
        if min(self.voltage_v, self.clock_hz, self.peak_flops,
               self.power_w) <= 0:
            raise ValueError("operating-point values must be positive")

    @property
    def efficiency_flops_per_w(self) -> float:
        return self.peak_flops / self.power_w

    @property
    def efficiency_tflops_per_w(self) -> float:
        return self.efficiency_flops_per_w / TERA


#: The published GF12 Compute Unit operating point (Fig. 9).
CU_PUBLISHED = OperatingPoint(
    voltage_v=0.55,
    clock_hz=460e6,
    peak_flops=150 * GIGA,
    power_w=0.1,  # 150 GFLOPS / 1.5 TFLOPS/W
)

#: Threshold-ish voltage of the GF12 device models used for DVFS scaling.
_V_THRESHOLD = 0.30


def dvfs_scale(
    base: OperatingPoint, voltage_v: float
) -> OperatingPoint:
    """Scale *base* to a new supply *voltage_v*.

    Frequency scales with the overdrive ``(V - Vth)`` (alpha ~ 1 linear
    approximation around the anchor); performance scales with frequency;
    dynamic power scales as ``V^2 f``.
    """
    if voltage_v <= _V_THRESHOLD:
        raise ValueError(
            f"voltage must exceed the {_V_THRESHOLD} V threshold"
        )
    freq_ratio = (voltage_v - _V_THRESHOLD) / (base.voltage_v - _V_THRESHOLD)
    clock = base.clock_hz * freq_ratio
    power = base.power_w * (voltage_v / base.voltage_v) ** 2 * freq_ratio
    return OperatingPoint(
        voltage_v=voltage_v,
        clock_hz=clock,
        peak_flops=base.peak_flops * freq_ratio,
        power_w=power,
    )
