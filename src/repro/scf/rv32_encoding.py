"""RV32IM binary instruction encoding and decoding.

The functional simulator of :mod:`repro.scf.rv32` executes decoded
:class:`~repro.scf.rv32.Instruction` objects; this module provides the
actual RISC-V instruction-word layer: :func:`encode` produces the 32-bit
little-endian word per the RV32IM base encoding (R/I/S/B/U/J formats),
and :func:`decode` recovers the instruction.  ``encode`` then ``decode``
is the identity (property-tested), so programs can be stored, shipped
and disassembled as real RISC-V machine code.

Branch/JAL immediates: the assembler resolves labels to *instruction
slots*; the encoder converts them to the byte offsets the ISA encodes
(relative to the instruction's own pc), and the decoder converts back,
given the instruction's slot index.
"""

from __future__ import annotations

from typing import List

from repro.scf.rv32 import Instruction

_OPCODE_LUI = 0b0110111
_OPCODE_AUIPC = 0b0010111
_OPCODE_JAL = 0b1101111
_OPCODE_JALR = 0b1100111
_OPCODE_BRANCH = 0b1100011
_OPCODE_LOAD = 0b0000011
_OPCODE_STORE = 0b0100011
_OPCODE_OP_IMM = 0b0010011
_OPCODE_OP = 0b0110011
_OPCODE_SYSTEM = 0b1110011

#: funct3 for branches / loads / stores / ALU-immediate ops.
_BRANCH_F3 = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}
_LOAD_F3 = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
_STORE_F3 = {"sb": 0, "sh": 1, "sw": 2}
_IMM_F3 = {
    "addi": 0, "slli": 1, "slti": 2, "sltiu": 3,
    "xori": 4, "srli": 5, "srai": 5, "ori": 6, "andi": 7,
}
#: (funct3, funct7) for register-register ops.
_OP_F37 = {
    "add": (0, 0), "sub": (0, 0x20), "sll": (1, 0), "slt": (2, 0),
    "sltu": (3, 0), "xor": (4, 0), "srl": (5, 0), "sra": (5, 0x20),
    "or": (6, 0), "and": (7, 0),
    "mul": (0, 1), "mulh": (1, 1), "mulhsu": (2, 1), "mulhu": (3, 1),
    "div": (4, 1), "divu": (5, 1), "rem": (6, 1), "remu": (7, 1),
}

_F3_TO_BRANCH = {v: k for k, v in _BRANCH_F3.items()}
_F3_TO_LOAD = {v: k for k, v in _LOAD_F3.items()}
_F3_TO_STORE = {v: k for k, v in _STORE_F3.items()}
_F37_TO_OP = {v: k for k, v in _OP_F37.items()}


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


def _check_imm(value: int, bits: int, name: str) -> None:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(
            f"{name} immediate {value} out of {bits}-bit signed range"
        )


def _sext(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def encode(ins: Instruction, slot: int = 0) -> int:
    """Encode *ins* (occupying instruction *slot*) as a 32-bit word."""
    m = ins.mnemonic
    rd, rs1, rs2 = ins.rd, ins.rs1, ins.rs2
    if m == "lui" or m == "auipc":
        if not 0 <= ins.imm < (1 << 20):
            raise EncodingError(f"{m} immediate out of 20-bit range")
        opcode = _OPCODE_LUI if m == "lui" else _OPCODE_AUIPC
        return (ins.imm << 12) | (rd << 7) | opcode
    if m == "jal":
        offset = (ins.imm - slot) * 4
        _check_imm(offset, 21, "jal")
        u = offset & 0x1FFFFF
        word = (
            ((u >> 20) & 1) << 31
            | ((u >> 1) & 0x3FF) << 21
            | ((u >> 11) & 1) << 20
            | ((u >> 12) & 0xFF) << 12
            | rd << 7
            | _OPCODE_JAL
        )
        return word
    if m == "jalr":
        _check_imm(ins.imm, 12, "jalr")
        return (
            (ins.imm & 0xFFF) << 20 | rs1 << 15 | 0 << 12 | rd << 7
            | _OPCODE_JALR
        )
    if m in _BRANCH_F3:
        offset = (ins.imm - slot) * 4
        _check_imm(offset, 13, m)
        u = offset & 0x1FFF
        return (
            ((u >> 12) & 1) << 31
            | ((u >> 5) & 0x3F) << 25
            | rs2 << 20
            | rs1 << 15
            | _BRANCH_F3[m] << 12
            | ((u >> 1) & 0xF) << 8
            | ((u >> 11) & 1) << 7
            | _OPCODE_BRANCH
        )
    if m in _LOAD_F3:
        _check_imm(ins.imm, 12, m)
        return (
            (ins.imm & 0xFFF) << 20 | rs1 << 15 | _LOAD_F3[m] << 12
            | rd << 7 | _OPCODE_LOAD
        )
    if m in _STORE_F3:
        _check_imm(ins.imm, 12, m)
        u = ins.imm & 0xFFF
        return (
            ((u >> 5) & 0x7F) << 25 | rs2 << 20 | rs1 << 15
            | _STORE_F3[m] << 12 | (u & 0x1F) << 7 | _OPCODE_STORE
        )
    if m in _IMM_F3:
        if m in ("slli", "srli", "srai"):
            if not 0 <= ins.imm < 32:
                raise EncodingError(f"{m} shift amount out of range")
            funct7 = 0x20 if m == "srai" else 0
            imm12 = (funct7 << 5) | ins.imm
        else:
            _check_imm(ins.imm, 12, m)
            imm12 = ins.imm & 0xFFF
        return (
            imm12 << 20 | rs1 << 15 | _IMM_F3[m] << 12 | rd << 7
            | _OPCODE_OP_IMM
        )
    if m in _OP_F37:
        funct3, funct7 = _OP_F37[m]
        return (
            funct7 << 25 | rs2 << 20 | rs1 << 15 | funct3 << 12
            | rd << 7 | _OPCODE_OP
        )
    if m == "ecall":
        return _OPCODE_SYSTEM
    raise EncodingError(f"cannot encode mnemonic {m!r}")


def decode(word: int, slot: int = 0) -> Instruction:
    """Decode a 32-bit instruction *word* at instruction *slot*."""
    if not 0 <= word < (1 << 32):
        raise EncodingError("word out of 32-bit range")
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode in (_OPCODE_LUI, _OPCODE_AUIPC):
        m = "lui" if opcode == _OPCODE_LUI else "auipc"
        return Instruction(m, rd=rd, imm=word >> 12)
    if opcode == _OPCODE_JAL:
        offset = _sext(
            (((word >> 31) & 1) << 20)
            | (((word >> 21) & 0x3FF) << 1)
            | (((word >> 20) & 1) << 11)
            | (((word >> 12) & 0xFF) << 12),
            21,
        )
        return Instruction("jal", rd=rd, imm=slot + offset // 4)
    if opcode == _OPCODE_JALR:
        return Instruction(
            "jalr", rd=rd, rs1=rs1, imm=_sext(word >> 20, 12)
        )
    if opcode == _OPCODE_BRANCH:
        if funct3 not in _F3_TO_BRANCH:
            raise EncodingError(f"bad branch funct3 {funct3}")
        offset = _sext(
            (((word >> 31) & 1) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1),
            13,
        )
        return Instruction(
            _F3_TO_BRANCH[funct3], rs1=rs1, rs2=rs2,
            imm=slot + offset // 4,
        )
    if opcode == _OPCODE_LOAD:
        if funct3 not in _F3_TO_LOAD:
            raise EncodingError(f"bad load funct3 {funct3}")
        return Instruction(
            _F3_TO_LOAD[funct3], rd=rd, rs1=rs1,
            imm=_sext(word >> 20, 12),
        )
    if opcode == _OPCODE_STORE:
        if funct3 not in _F3_TO_STORE:
            raise EncodingError(f"bad store funct3 {funct3}")
        imm = _sext((funct7 << 5) | rd, 12)
        return Instruction(_F3_TO_STORE[funct3], rs1=rs1, rs2=rs2, imm=imm)
    if opcode == _OPCODE_OP_IMM:
        if funct3 == 1:
            return Instruction("slli", rd=rd, rs1=rs1, imm=rs2)
        if funct3 == 5:
            m = "srai" if funct7 == 0x20 else "srli"
            return Instruction(m, rd=rd, rs1=rs1, imm=rs2)
        names = {0: "addi", 2: "slti", 3: "sltiu", 4: "xori", 6: "ori",
                 7: "andi"}
        return Instruction(
            names[funct3], rd=rd, rs1=rs1, imm=_sext(word >> 20, 12)
        )
    if opcode == _OPCODE_OP:
        key = (funct3, funct7)
        if key not in _F37_TO_OP:
            raise EncodingError(f"bad OP funct3/funct7 {key}")
        return Instruction(_F37_TO_OP[key], rd=rd, rs1=rs1, rs2=rs2)
    if opcode == _OPCODE_SYSTEM and word == _OPCODE_SYSTEM:
        return Instruction("ecall")
    raise EncodingError(f"unknown opcode {opcode:#09b}")


def encode_program(program: List[Instruction]) -> bytes:
    """Encode a program to little-endian machine code."""
    out = bytearray()
    for slot, ins in enumerate(program):
        out.extend(encode(ins, slot).to_bytes(4, "little"))
    return bytes(out)


def decode_program(code: bytes) -> List[Instruction]:
    """Decode little-endian machine code back to instructions."""
    if len(code) % 4:
        raise EncodingError("machine code length must be a multiple of 4")
    return [
        decode(int.from_bytes(code[i : i + 4], "little"), slot=i // 4)
        for i in range(0, len(code), 4)
    ]


def disassemble(code: bytes) -> List[str]:
    """Human-readable disassembly of *code*."""
    lines = []
    for slot, ins in enumerate(decode_program(code)):
        fields = f"rd=x{ins.rd} rs1=x{ins.rs1} rs2=x{ins.rs2} imm={ins.imm}"
        lines.append(f"{slot * 4:#06x}: {ins.mnemonic:8s} {fields}")
    return lines
