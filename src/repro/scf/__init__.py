"""RISC-V Scalable Compute Fabric (paper Sec. VII, Fig. 8 / Fig. 9).

The ICSC Flagship 2 target: "the architecture design, simulation
framework, and overall validation of the system architecture of a
Scalable Compute Fabric (SCF) exploiting the RISC-V open processor."

- :mod:`repro.scf.rv32`        -- an RV32IM assembler + functional ISA
  simulator, the substrate standing in for the Snitch/CV32E40P cores;
- :mod:`repro.scf.engines`     -- BF16 tensor / vector / NPU engine
  models (RedMule-, Spatz-class);
- :mod:`repro.scf.cluster`     -- the Compute Unit: cores + L1 SRAM +
  engines, anchored to the GF12 prototype (1.21 mm^2, 150 GFLOPS,
  1.5 TFLOPS/W at 460 MHz / 0.55 V);
- :mod:`repro.scf.interconnect`-- hierarchical AXI and NoC models;
- :mod:`repro.scf.workloads`   -- transformer-block workloads (BF16);
- :mod:`repro.scf.fabric`      -- the multi-CU SCF and its scale-up study;
- :mod:`repro.scf.power`       -- DVFS energy model around the published
  operating point;
- :mod:`repro.scf.roofline`    -- roofline analysis of CU workloads.
"""

from repro.scf.rv32 import Assembler, RV32Simulator, assemble_and_run
from repro.scf.rv32_encoding import encode_program, decode_program
from repro.scf.host import HostConfig, run_dispatch
from repro.scf.engines import EngineConfig, TensorEngine, VectorEngine
from repro.scf.cluster import ComputeUnit, ComputeUnitConfig
from repro.scf.interconnect import AXIHierarchy, NocMesh
from repro.scf.workloads import TransformerConfig, transformer_block_gemms
from repro.scf.fabric import ScalableComputeFabric, ScalingPoint
from repro.scf.power import OperatingPoint, dvfs_scale
from repro.scf.roofline import roofline_performance

__all__ = [
    "Assembler",
    "RV32Simulator",
    "assemble_and_run",
    "encode_program",
    "decode_program",
    "HostConfig",
    "run_dispatch",
    "EngineConfig",
    "TensorEngine",
    "VectorEngine",
    "ComputeUnit",
    "ComputeUnitConfig",
    "AXIHierarchy",
    "NocMesh",
    "TransformerConfig",
    "transformer_block_gemms",
    "ScalableComputeFabric",
    "ScalingPoint",
    "OperatingPoint",
    "dvfs_scale",
    "roofline_performance",
]
