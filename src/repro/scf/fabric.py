"""The Scalable Compute Fabric: host + N Compute Units (paper Fig. 8).

"The template includes, on a single silicon chip/chiplet, a heterogeneous
acceleration system with a host/controller Linux capable processor (e.g.,
based on the CVA6 design) and an acceleration fabric composed of a
collection of Compute Units."

:class:`ScalableComputeFabric` executes transformer blocks across CUs
with sequence-parallel partitioning: each CU processes a slice of the
sequence, weights are broadcast through the interconnect, and the slower
of compute and weight delivery bounds throughput -- producing the
scaling curve (and its interconnect-dependent knee) that the SCF design
study is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.scf.cluster import ComputeUnit, ComputeUnitConfig
from repro.scf.interconnect import AXIHierarchy, NocMesh
from repro.scf.workloads import (
    TransformerConfig,
    block_elementwise_elements,
    block_gemm_flops,
    block_weight_bytes,
    sequence_parallel_gemms,
)

Interconnect = Union[AXIHierarchy, NocMesh]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of the SCF scale-up curve."""

    num_cus: int
    seconds_per_block: float
    sustained_flops: float
    parallel_efficiency: float
    power_w: float
    compute_bound: bool

    @property
    def flops_per_w(self) -> float:
        return self.sustained_flops / self.power_w


@dataclass
class ScalableComputeFabric:
    """An SCF instance: CU configuration + interconnect + host."""

    cu_config: ComputeUnitConfig = field(default_factory=ComputeUnitConfig)
    interconnect: Interconnect = field(default_factory=NocMesh)
    host_power_w: float = 2.0

    def _cu_slice_seconds(
        self, workload: TransformerConfig, slice_len: int
    ) -> float:
        """Busy time of one CU processing *slice_len* query rows."""
        cu = ComputeUnit(self.cu_config)
        for _, m, n, k, count in sequence_parallel_gemms(
            workload, slice_len
        ):
            for _ in range(count):
                cu.run_gemm(m, n, k)
        elementwise = block_elementwise_elements(workload)
        share = max(1, elementwise * slice_len // workload.seq_len)
        cu.run_elementwise(share)
        return cu.elapsed_seconds()

    def run_block(
        self, workload: TransformerConfig, num_cus: int
    ) -> ScalingPoint:
        """Execute one transformer block sequence-parallel over
        *num_cus* CUs."""
        if num_cus < 1:
            raise ValueError("num_cus must be >= 1")
        slice_len = min(
            workload.seq_len, max(1, -(-workload.seq_len // num_cus))
        )
        compute_s = self._cu_slice_seconds(workload, slice_len)
        # Every CU needs the full weight set per block; the interconnect
        # must deliver it (double buffering overlaps it with compute).
        weight_bytes = block_weight_bytes(workload)
        bandwidth = self.interconnect.per_cu_bandwidth(num_cus)
        delivery_s = (
            weight_bytes / bandwidth
            + self.interconnect.access_latency_s(num_cus)
        )
        seconds = max(compute_s, delivery_s)
        flops = block_gemm_flops(workload)
        single = self._cu_slice_seconds(workload, workload.seq_len)
        efficiency = single / (seconds * num_cus)
        power = (
            num_cus * self.cu_config.operating_point.power_w
            + self.host_power_w
        )
        return ScalingPoint(
            num_cus=num_cus,
            seconds_per_block=seconds,
            sustained_flops=flops / seconds,
            parallel_efficiency=efficiency,
            power_w=power,
            compute_bound=compute_s >= delivery_s,
        )

    def scaling_study(
        self, workload: TransformerConfig, cu_counts: List[int]
    ) -> List[ScalingPoint]:
        """The Fig. 8 scale-up curve over *cu_counts*."""
        if not cu_counts:
            raise ValueError("cu_counts must be non-empty")
        return [self.run_block(workload, n) for n in cu_counts]
