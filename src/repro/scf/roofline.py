"""Roofline analysis for SCF Compute Units.

The classic attainable-performance model: ``min(peak_flops, intensity *
bandwidth)``.  Used by the Fig. 8/9 bench to show where the transformer
GEMMs sit relative to the CU's compute roof and the interconnect's
memory roof.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on the roofline."""

    name: str
    intensity_flops_per_byte: float
    attainable_flops: float
    compute_bound: bool


def roofline_performance(
    peak_flops: float,
    memory_bandwidth_bytes_s: float,
    intensity_flops_per_byte: float,
    name: str = "workload",
) -> RooflinePoint:
    """Attainable performance at a given arithmetic intensity."""
    if peak_flops <= 0 or memory_bandwidth_bytes_s <= 0:
        raise ValueError("peaks must be positive")
    if intensity_flops_per_byte <= 0:
        raise ValueError("intensity must be positive")
    memory_roof = intensity_flops_per_byte * memory_bandwidth_bytes_s
    attainable = min(peak_flops, memory_roof)
    return RooflinePoint(
        name=name,
        intensity_flops_per_byte=intensity_flops_per_byte,
        attainable_flops=attainable,
        compute_bound=memory_roof >= peak_flops,
    )


def ridge_intensity(
    peak_flops: float, memory_bandwidth_bytes_s: float
) -> float:
    """Arithmetic intensity at the roofline ridge point."""
    if peak_flops <= 0 or memory_bandwidth_bytes_s <= 0:
        raise ValueError("peaks must be positive")
    return peak_flops / memory_bandwidth_bytes_s


def gemm_intensity(m: int, n: int, k: int, bytes_per_el: int = 2) -> float:
    """Arithmetic intensity of an (m, n, k) GEMM with cold operands."""
    if min(m, n, k, bytes_per_el) < 1:
        raise ValueError("dimensions must be >= 1")
    flops = 2.0 * m * n * k
    traffic = bytes_per_el * (m * k + k * n + 2 * m * n)
    return flops / traffic
