"""The SCF Compute Unit (paper Fig. 9).

A CU is a cluster of computation-oriented RISC-V cores sharing an L1
SRAM, augmented with a BF16 tensor engine and a vector unit.  The model
is anchored to the GF12 prototype: ~1.21 mm^2, up to 150 GFLOPS and
1.5 TFLOPS/W at 460 MHz / 0.55 V, "thanks to accelerators using the
BFloat16 precision for all major Transformer blocks".

Anchor arithmetic: 150 GFLOPS / 460 MHz = ~326 FLOPs/cycle; a 12x16 FMA
array peaks at 384 FLOPs/cycle, so the published figure corresponds to
~85% utilization -- exactly the tensor engine's efficiency cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.units import KIBI
from repro.scf.engines import EngineConfig, TensorEngine, VectorEngine
from repro.scf.power import CU_PUBLISHED, OperatingPoint


@dataclass(frozen=True)
class ComputeUnitConfig:
    """CU composition and physical parameters."""

    num_cores: int = 8
    l1_kib: int = 128
    engine: EngineConfig = field(default_factory=EngineConfig)
    vector_lanes: int = 4
    operating_point: OperatingPoint = CU_PUBLISHED
    area_mm2: float = 1.21
    l1_bandwidth_bytes_cycle: int = 64

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.l1_kib < 1 or self.area_mm2 <= 0:
            raise ValueError("L1 size and area must be positive")
        if self.l1_bandwidth_bytes_cycle < 1:
            raise ValueError("L1 bandwidth must be >= 1 byte/cycle")

    @property
    def l1_bytes(self) -> int:
        return self.l1_kib * KIBI


@dataclass(frozen=True)
class GemmExecution:
    """Timing of one GEMM on a CU."""

    m: int
    n: int
    k: int
    cycles: int
    compute_bound: bool

    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k


class ComputeUnit:
    """One SCF Compute Unit with cycle accounting."""

    def __init__(self, config: ComputeUnitConfig = ComputeUnitConfig()) -> None:
        self.config = config
        self.tensor = TensorEngine(config.engine)
        self.vector = VectorEngine(lanes=config.vector_lanes)
        self.busy_cycles = 0
        self.flops_executed = 0.0

    @property
    def clock_hz(self) -> float:
        return self.config.operating_point.clock_hz

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s of the tensor datapath at the operating clock."""
        return (
            self.config.engine.peak_flops_per_cycle * self.clock_hz
        )

    def fits_in_l1(self, m: int, n: int, k: int, bytes_per_el: int = 2) -> bool:
        """Do the A, B and C tiles fit the shared L1 simultaneously?"""
        footprint = bytes_per_el * (m * k + k * n + m * n)
        return footprint <= self.config.l1_bytes

    def run_gemm(self, m: int, n: int, k: int) -> GemmExecution:
        """Execute one BF16 GEMM, tiling through L1 as needed.

        Compute cycles come from the tensor engine; data movement cycles
        from streaming A/B/C through the L1 port.  The slower of the two
        wins (double-buffered operation).
        """
        if min(m, n, k) < 1:
            raise ValueError("GEMM dimensions must be >= 1")
        compute = self.tensor.gemm_cycles(m, n, k)
        traffic_bytes = 2 * (m * k + k * n + 2 * m * n)
        movement = -(-traffic_bytes // self.config.l1_bandwidth_bytes_cycle)
        cycles = max(compute, movement)
        self.busy_cycles += cycles
        self.flops_executed += 2.0 * m * n * k
        return GemmExecution(
            m=m, n=n, k=k, cycles=cycles,
            compute_bound=compute >= movement,
        )

    def run_elementwise(self, elements: int, flops_per_element: float = 4.0) -> int:
        """Execute a vector-unit pass; returns cycles."""
        cycles = self.vector.elementwise_cycles(elements, flops_per_element)
        self.busy_cycles += cycles
        self.flops_executed += elements * flops_per_element
        return cycles

    def achieved_flops(self) -> float:
        """Average FLOP/s over everything executed so far."""
        if self.busy_cycles == 0:
            return 0.0
        return self.flops_executed / self.busy_cycles * self.clock_hz

    def achieved_efficiency_flops_per_w(self) -> float:
        """Achieved FLOP/s per watt at the CU operating power."""
        return self.achieved_flops() / self.config.operating_point.power_w

    def elapsed_seconds(self) -> float:
        return self.busy_cycles / self.clock_hz
