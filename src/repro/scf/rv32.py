"""RV32IM assembler and functional ISA simulator.

The SCF's Compute Units are "clusters of one or more RISC-V cores
oriented on computation, such as Snitch or CV32E40P".  This module is the
executable substrate for that claim: a two-pass assembler for the RV32I
base integer ISA plus the M extension, and a functional simulator with a
simple per-instruction timing model (loads, multiplies and divides take
extra cycles), so cluster-level studies can run real RISC-V programs.

Supported instructions: ``lui auipc jal jalr`` / branches ``beq bne blt
bge bltu bgeu`` / loads ``lb lh lw lbu lhu`` / stores ``sb sh sw`` /
immediate ALU ``addi slti sltiu xori ori andi slli srli srai`` / register
ALU ``add sub sll slt sltu xor srl sra or and`` / M-extension ``mul mulh
mulhsu mulhu div divu rem remu`` / ``ecall`` (exit syscall).  Pseudo
instructions: ``li mv nop j ret``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

_MASK32 = 0xFFFFFFFF

#: ABI register names accepted alongside x0..x31.
ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
_LOADS = ("lb", "lh", "lw", "lbu", "lhu")
_STORES = ("sb", "sh", "sw")
_IMM_ALU = (
    "addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai"
)
_REG_ALU = (
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
)

#: Extra cycles beyond the base 1 cycle/instruction (Snitch-like).
EXTRA_CYCLES = {
    "lb": 1, "lh": 1, "lw": 1, "lbu": 1, "lhu": 1,
    "mul": 2, "mulh": 2, "mulhsu": 2, "mulhu": 2,
    "div": 15, "divu": 15, "rem": 15, "remu": 15,
}


class AssemblyError(ValueError):
    """Raised on malformed assembly input."""


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    line: int = 0


def _parse_register(token: str, line: int) -> int:
    token = token.strip().lower()
    if token in ABI_NAMES:
        return ABI_NAMES[token]
    if token.startswith("x"):
        try:
            idx = int(token[1:])
        except ValueError:
            raise AssemblyError(f"line {line}: bad register {token!r}")
        if 0 <= idx <= 31:
            return idx
    raise AssemblyError(f"line {line}: bad register {token!r}")


def _parse_immediate(token: str, labels: Dict[str, int], line: int) -> int:
    token = token.strip()
    if token in labels:
        return labels[token]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"line {line}: bad immediate {token!r}")


def _parse_mem_operand(token: str, line: int) -> Tuple[int, int]:
    """Parse ``imm(reg)``."""
    token = token.strip()
    if "(" not in token or not token.endswith(")"):
        raise AssemblyError(f"line {line}: expected imm(reg), got {token!r}")
    imm_text, reg_text = token[:-1].split("(", 1)
    imm = int(imm_text, 0) if imm_text.strip() else 0
    return imm, _parse_register(reg_text, line)


class Assembler:
    """Two-pass RV32IM assembler producing :class:`Instruction` lists."""

    def assemble(self, source: str) -> List[Instruction]:
        lines = source.splitlines()
        labels = self._collect_labels(lines)
        program: List[Instruction] = []
        for lineno, raw in enumerate(lines, start=1):
            text = raw.split("#", 1)[0].strip()
            while ":" in text:
                _, text = text.split(":", 1)
                text = text.strip()
            if not text:
                continue
            program.extend(self._assemble_line(text, lineno, labels,
                                               len(program)))
        return program

    def _collect_labels(self, lines: List[str]) -> Dict[str, int]:
        labels: Dict[str, int] = {}
        pc = 0
        for lineno, raw in enumerate(lines, start=1):
            text = raw.split("#", 1)[0].strip()
            while ":" in text:
                label, text = text.split(":", 1)
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblyError(
                        f"line {lineno}: bad label {label!r}"
                    )
                if label in labels:
                    raise AssemblyError(
                        f"line {lineno}: duplicate label {label!r}"
                    )
                labels[label] = pc
                text = text.strip()
            if text:
                pc += len(self._expand_size(text, lineno))
        return labels

    def _expand_size(self, text: str, lineno: int) -> List[str]:
        """Instruction slots a source line occupies (li may need two)."""
        mnemonic = text.split()[0].lower()
        if mnemonic == "li":
            parts = self._operands(text)
            try:
                value = int(parts[1], 0)
            except (ValueError, IndexError):
                raise AssemblyError(f"line {lineno}: bad li operands")
            if -2048 <= value <= 2047:
                return [text]
            return [text, text]  # lui + addi
        return [text]

    @staticmethod
    def _operands(text: str) -> List[str]:
        body = text.split(None, 1)
        return [p.strip() for p in body[1].split(",")] if len(body) > 1 else []

    def _assemble_line(
        self,
        text: str,
        lineno: int,
        labels: Dict[str, int],
        pc: int,
    ) -> List[Instruction]:
        mnemonic = text.split()[0].lower()
        ops = self._operands(text)

        def reg(i):
            return _parse_register(ops[i], lineno)

        def imm(i):
            return _parse_immediate(ops[i], labels, lineno)

        def need(count):
            if len(ops) != count:
                raise AssemblyError(
                    f"line {lineno}: {mnemonic} expects {count} operands"
                )

        if mnemonic == "nop":
            return [Instruction("addi", rd=0, rs1=0, imm=0, line=lineno)]
        if mnemonic == "mv":
            need(2)
            return [Instruction("addi", rd=reg(0), rs1=reg(1), imm=0,
                                line=lineno)]
        if mnemonic == "li":
            need(2)
            value = imm(1)
            if -2048 <= value <= 2047:
                return [Instruction("addi", rd=reg(0), rs1=0, imm=value,
                                    line=lineno)]
            upper = (value + 0x800) >> 12
            lower = value - (upper << 12)
            return [
                Instruction("lui", rd=reg(0), imm=upper & 0xFFFFF,
                            line=lineno),
                Instruction("addi", rd=reg(0), rs1=reg(0), imm=lower,
                            line=lineno),
            ]
        if mnemonic == "j":
            need(1)
            return [Instruction("jal", rd=0, imm=imm(0), line=lineno)]
        if mnemonic == "ret":
            need(0)
            return [Instruction("jalr", rd=0, rs1=1, imm=0, line=lineno)]
        if mnemonic in ("lui", "auipc"):
            need(2)
            return [Instruction(mnemonic, rd=reg(0), imm=imm(1),
                                line=lineno)]
        if mnemonic == "jal":
            if len(ops) == 1:
                return [Instruction("jal", rd=1, imm=imm(0), line=lineno)]
            need(2)
            return [Instruction("jal", rd=reg(0), imm=imm(1), line=lineno)]
        if mnemonic == "jalr":
            need(3)
            return [Instruction("jalr", rd=reg(0), rs1=reg(1), imm=imm(2),
                                line=lineno)]
        if mnemonic in _BRANCHES:
            need(3)
            return [Instruction(mnemonic, rs1=reg(0), rs2=reg(1),
                                imm=imm(2), line=lineno)]
        if mnemonic in _LOADS:
            need(2)
            offset, base = _parse_mem_operand(ops[1], lineno)
            return [Instruction(mnemonic, rd=reg(0), rs1=base, imm=offset,
                                line=lineno)]
        if mnemonic in _STORES:
            need(2)
            offset, base = _parse_mem_operand(ops[1], lineno)
            return [Instruction(mnemonic, rs2=reg(0), rs1=base, imm=offset,
                                line=lineno)]
        if mnemonic in _IMM_ALU:
            need(3)
            return [Instruction(mnemonic, rd=reg(0), rs1=reg(1), imm=imm(2),
                                line=lineno)]
        if mnemonic in _REG_ALU:
            need(3)
            return [Instruction(mnemonic, rd=reg(0), rs1=reg(1), rs2=reg(2),
                                line=lineno)]
        if mnemonic == "ecall":
            return [Instruction("ecall", line=lineno)]
        raise AssemblyError(f"line {lineno}: unknown mnemonic {mnemonic!r}")


def _signed(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value & (1 << 31) else value


class RV32Simulator:
    """Functional RV32IM simulator with a flat byte memory."""

    def __init__(self, memory_bytes: int = 1 << 16) -> None:
        if memory_bytes < 4:
            raise ValueError("memory must hold at least one word")
        self.memory = bytearray(memory_bytes)
        self.regs = [0] * 32
        self.pc = 0
        self.cycles = 0
        self.instructions_retired = 0
        self.exited = False
        self.exit_code = 0

    # -- memory helpers ----------------------------------------------
    def _check_range(self, address: int, size: int) -> None:
        if address < 0 or address + size > len(self.memory):
            raise IndexError(f"memory access at {address:#x} out of range")

    def load_word(self, address: int) -> int:
        self._check_range(address, 4)
        return int.from_bytes(self.memory[address : address + 4], "little")

    def store_word(self, address: int, value: int) -> None:
        self._check_range(address, 4)
        self.memory[address : address + 4] = (value & _MASK32).to_bytes(
            4, "little"
        )

    def write_words(self, address: int, values) -> None:
        for i, value in enumerate(values):
            self.store_word(address + 4 * i, int(value) & _MASK32)

    def read_words(self, address: int, count: int) -> List[int]:
        return [self.load_word(address + 4 * i) for i in range(count)]

    # -- execution ----------------------------------------------------
    def run(
        self, program: List[Instruction], max_instructions: int = 1_000_000
    ) -> int:
        """Execute *program* from pc=0 until ``ecall`` exit; returns the
        exit code (register a0 at the exit ecall)."""
        if not program:
            raise ValueError("empty program")
        self.pc = 0
        self.exited = False
        while not self.exited:
            index = self.pc // 4
            if index < 0 or index >= len(program):
                raise IndexError(f"pc {self.pc:#x} outside program")
            self._execute(program[index])
            self.instructions_retired += 1
            if self.instructions_retired > max_instructions:
                raise RuntimeError("instruction budget exceeded")
        return self.exit_code

    def _execute(self, ins: Instruction) -> None:
        regs = self.regs
        m = ins.mnemonic
        next_pc = self.pc + 4
        self.cycles += 1 + EXTRA_CYCLES.get(m, 0)

        if m == "lui":
            regs[ins.rd] = (ins.imm << 12) & _MASK32
        elif m == "auipc":
            regs[ins.rd] = (self.pc + (ins.imm << 12)) & _MASK32
        elif m == "jal":
            regs[ins.rd] = next_pc
            next_pc = ins.imm * 4  # label immediates are instruction slots
        elif m == "jalr":
            target = (regs[ins.rs1] + ins.imm) & ~1
            regs[ins.rd] = next_pc
            next_pc = target
        elif m in _BRANCHES:
            a, b = regs[ins.rs1], regs[ins.rs2]
            sa, sb = _signed(a), _signed(b)
            taken = {
                "beq": a == b,
                "bne": a != b,
                "blt": sa < sb,
                "bge": sa >= sb,
                "bltu": a < b,
                "bgeu": a >= b,
            }[m]
            if taken:
                next_pc = ins.imm * 4
        elif m in _LOADS:
            address = (regs[ins.rs1] + ins.imm) & _MASK32
            if m == "lw":
                value = self.load_word(address)
            elif m in ("lh", "lhu"):
                self._check_range(address, 2)
                value = int.from_bytes(
                    self.memory[address : address + 2], "little"
                )
                if m == "lh" and value & 0x8000:
                    value |= 0xFFFF0000
            else:  # lb / lbu
                self._check_range(address, 1)
                value = self.memory[address]
                if m == "lb" and value & 0x80:
                    value |= 0xFFFFFF00
            regs[ins.rd] = value & _MASK32
        elif m in _STORES:
            address = (regs[ins.rs1] + ins.imm) & _MASK32
            value = regs[ins.rs2] & _MASK32
            size = {"sb": 1, "sh": 2, "sw": 4}[m]
            self._check_range(address, size)
            self.memory[address : address + size] = value.to_bytes(
                4, "little"
            )[:size]
        elif m in _IMM_ALU:
            regs[ins.rd] = self._alu(m.rstrip("i") if m != "sltiu" else
                                     "sltu",
                                     regs[ins.rs1], ins.imm & _MASK32
                                     if m in ("slli", "srli", "srai")
                                     else ins.imm)
        elif m in _REG_ALU:
            regs[ins.rd] = self._alu(m, regs[ins.rs1], regs[ins.rs2])
        elif m == "ecall":
            if regs[17] == 93:  # exit syscall
                self.exited = True
                self.exit_code = _signed(regs[10])
            # Other syscalls are no-ops in this harness.
        else:  # pragma: no cover - assembler emits known mnemonics only
            raise ValueError(f"unknown mnemonic {m!r}")

        regs[0] = 0
        self.pc = next_pc

    @staticmethod
    def _alu(op: str, a: int, b: int) -> int:
        sa, sb = _signed(a), _signed(b & _MASK32)
        shamt = b & 31
        if op in ("add", "addi".rstrip("i")):
            return (a + b) & _MASK32
        if op == "sub":
            return (a - b) & _MASK32
        if op in ("sll", "sll"):
            return (a << shamt) & _MASK32
        if op in ("slt",):
            return 1 if sa < sb else 0
        if op == "sltu":
            return 1 if (a & _MASK32) < (b & _MASK32) else 0
        if op in ("xor", "xo"):
            return (a ^ b) & _MASK32
        if op in ("srl", "srl"):
            return (a & _MASK32) >> shamt
        if op in ("sra",):
            return _signed(a) >> shamt & _MASK32
        if op in ("or", "o"):
            return (a | b) & _MASK32
        if op in ("and", "an"):
            return (a & b) & _MASK32
        if op == "mul":
            return (sa * sb) & _MASK32
        if op == "mulh":
            return ((sa * sb) >> 32) & _MASK32
        if op == "mulhsu":
            return ((sa * (b & _MASK32)) >> 32) & _MASK32
        if op == "mulhu":
            return (((a & _MASK32) * (b & _MASK32)) >> 32) & _MASK32
        if op == "div":
            if sb == 0:
                return _MASK32
            q = abs(sa) // abs(sb)
            return (-q if (sa < 0) != (sb < 0) else q) & _MASK32
        if op == "divu":
            return (_MASK32 if b == 0 else (a & _MASK32) // (b & _MASK32))
        if op == "rem":
            if sb == 0:
                return sa & _MASK32
            r = abs(sa) % abs(sb)
            return (-r if sa < 0 else r) & _MASK32
        if op == "remu":
            return (a & _MASK32 if b == 0
                    else (a & _MASK32) % (b & _MASK32))
        raise ValueError(f"unknown ALU op {op!r}")


def assemble_and_run(
    source: str,
    data: Optional[Dict[int, List[int]]] = None,
    memory_bytes: int = 1 << 16,
    max_instructions: int = 1_000_000,
) -> RV32Simulator:
    """Assemble *source*, preload *data* (address -> word list), run to
    the exit ecall and return the simulator for inspection."""
    program = Assembler().assemble(source)
    sim = RV32Simulator(memory_bytes=memory_bytes)
    if data:
        for address, words in data.items():
            sim.write_words(address, words)
    sim.run(program, max_instructions=max_instructions)
    return sim
