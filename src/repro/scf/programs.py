"""Library of RV32IM assembly programs.

Canonical kernels for the functional simulator: they double as ISA
coverage tests and as realistic host-side control code for the SCF
studies.  Every program follows the same contract: inputs preloaded in
memory or registers as documented, result returned as the exit code
(register ``a0`` at the exit ``ecall``).
"""

from __future__ import annotations

#: Sum of the N words at address 0x1000 (N in t1 patched by format).
SUM_ARRAY = """
    li t0, 0x1000
    li t1, {count}
    li a0, 0
loop:
    beq t1, x0, done
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    j loop
done:
    li a7, 93
    ecall
"""

#: Fibonacci(n) iteratively, n in {n}.
FIBONACCI = """
    li t0, {n}
    li a0, 0
    li t1, 1
    beq t0, x0, done
loop:
    add t2, a0, t1
    mv a0, t1
    mv t1, t2
    addi t0, t0, -1
    bne t0, x0, loop
    mv a0, a0
done:
    li a7, 93
    ecall
"""

#: Greatest common divisor of {a} and {b} (Euclid with remu).
GCD = """
    li a0, {a}
    li a1, {b}
loop:
    beq a1, x0, done
    remu t0, a0, a1
    mv a0, a1
    mv a1, t0
    j loop
done:
    li a7, 93
    ecall
"""

#: Count set bits of the word preloaded at 0x1000.
POPCOUNT = """
    li t0, 0x1000
    lw t1, 0(t0)
    li a0, 0
loop:
    beq t1, x0, done
    andi t2, t1, 1
    add a0, a0, t2
    srli t1, t1, 1
    j loop
done:
    li a7, 93
    ecall
"""

#: In-place bubble sort of {count} words at 0x1000; returns the number
#: of swap passes executed (the array itself is checked via memory).
BUBBLE_SORT = """
    li s0, {count}        # n
    li a0, 0              # pass counter
outer:
    li s1, 0              # swapped flag
    li t0, 0x1000         # cursor
    addi s2, s0, -1       # inner iterations
inner:
    beq s2, x0, inner_done
    lw t1, 0(t0)
    lw t2, 4(t0)
    bge t2, t1, no_swap
    sw t2, 0(t0)
    sw t1, 4(t0)
    li s1, 1
no_swap:
    addi t0, t0, 4
    addi s2, s2, -1
    j inner
inner_done:
    addi a0, a0, 1
    bne s1, x0, outer
    li a7, 93
    ecall
"""

#: Length of the NUL-terminated string at 0x1000.
STRLEN = """
    li t0, 0x1000
    li a0, 0
loop:
    lbu t1, 0(t0)
    beq t1, x0, done
    addi a0, a0, 1
    addi t0, t0, 1
    j loop
done:
    li a7, 93
    ecall
"""


def fill_template(template: str, **values: int) -> str:
    """Substitute integer parameters into a program template."""
    for key, value in values.items():
        if not isinstance(value, int):
            raise ValueError(f"parameter {key!r} must be an integer")
    return template.format(**values)
