"""SCF interconnect models: hierarchical AXI and NoC (paper Sec. VII).

Fig. 8 connects CUs "using a scalable interconnect, such as a
hierarchical AXI [45], [46] or a Network-on-Chip [47]".  Both models
answer the same question -- effective bandwidth per CU as the fabric
grows -- with different scaling behaviour:

- :class:`AXIHierarchy`: a tree of crossbars; every level multiplexes its
  children onto one upstream port, so per-CU bandwidth to main memory
  shrinks with the CU count (the scaling wall);
- :class:`NocMesh`: a 2-D mesh with per-hop latency and bisection-limited
  aggregate bandwidth, scaling per-CU bandwidth much more gently --
  FlooNoC's multi-Tb/s argument [47].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.units import GIGA


@dataclass(frozen=True)
class AXIHierarchy:
    """Tree-of-crossbars interconnect."""

    fanout: int = 4
    port_bandwidth_bytes_s: float = 32 * GIGA
    hop_latency_ns: float = 10.0

    def __post_init__(self) -> None:
        if self.fanout < 2:
            raise ValueError("fanout must be >= 2")
        if self.port_bandwidth_bytes_s <= 0 or self.hop_latency_ns <= 0:
            raise ValueError("bandwidth and latency must be positive")

    def levels(self, num_cus: int) -> int:
        """Crossbar levels needed to reach *num_cus* leaves."""
        if num_cus < 1:
            raise ValueError("num_cus must be >= 1")
        return max(1, math.ceil(math.log(num_cus, self.fanout)))

    def per_cu_bandwidth(self, num_cus: int) -> float:
        """Main-memory bandwidth share of one CU: the root port is shared
        by every CU."""
        if num_cus < 1:
            raise ValueError("num_cus must be >= 1")
        return self.port_bandwidth_bytes_s / num_cus

    def access_latency_s(self, num_cus: int) -> float:
        """Round-trip latency through the tree."""
        return 2 * self.levels(num_cus) * self.hop_latency_ns * 1e-9


@dataclass(frozen=True)
class NocMesh:
    """2-D mesh NoC (FlooNoC-class wide links)."""

    link_bandwidth_bytes_s: float = 64 * GIGA
    hop_latency_ns: float = 2.0
    memory_ports_per_edge: int = 2

    def __post_init__(self) -> None:
        if self.link_bandwidth_bytes_s <= 0 or self.hop_latency_ns <= 0:
            raise ValueError("bandwidth and latency must be positive")
        if self.memory_ports_per_edge < 1:
            raise ValueError("need at least one memory port per edge")

    @staticmethod
    def mesh_side(num_cus: int) -> int:
        if num_cus < 1:
            raise ValueError("num_cus must be >= 1")
        return max(1, math.ceil(math.sqrt(num_cus)))

    def per_cu_bandwidth(self, num_cus: int) -> float:
        """Per-CU share of the edge memory ports.

        Memory ports sit on the mesh edge, so aggregate bandwidth grows
        with sqrt(N) instead of staying flat -- gentler than the AXI
        root bottleneck but not free.
        """
        side = self.mesh_side(num_cus)
        aggregate = (
            side * self.memory_ports_per_edge * self.link_bandwidth_bytes_s
        )
        return aggregate / num_cus

    def access_latency_s(self, num_cus: int) -> float:
        """Average round-trip: half the mesh diameter each way."""
        side = self.mesh_side(num_cus)
        hops = max(1, side)  # average Manhattan distance ~ side
        return 2 * hops * self.hop_latency_ns * 1e-9
