"""Host controller model: the CVA6-class processor of Fig. 8.

The SCF template pairs the acceleration fabric with "a host/controller
Linux capable processor (e.g., based on the CVA6 design)".  The host's
role in inference is dispatch: computing the tile schedule and issuing
work descriptors to the CUs.  This module *executes the dispatch loop as
a real RV32IM program* on the functional simulator, converts its cycle
count to wall-clock at the host frequency, and exposes the overhead so
fabric-level studies can check dispatch never becomes the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scf.rv32 import Assembler, RV32Simulator
from repro.scf.workloads import TransformerConfig

#: Dispatch program: for each of a0 = n_tiles work items, compute the
#: descriptor (base address + size) and store it to the mailbox at 0x800.
_DISPATCH_TEMPLATE = """
    li t0, {n_tiles}      # tiles to dispatch
    li t1, 0x800          # mailbox base
    li t2, 0              # tile index
    li t3, {tile_rows}    # rows per tile
loop:
    beq t2, t0, done
    mul t4, t2, t3        # descriptor: first row of this tile
    sw t4, 0(t1)          # post base row
    sw t3, 4(t1)          # post row count
    addi t1, t1, 8
    addi t2, t2, 1
    j loop
done:
    mv a0, t2
    li a7, 93
    ecall
"""


@dataclass(frozen=True)
class HostConfig:
    """CVA6-class host operating point."""

    clock_hz: float = 1.0e9
    power_w: float = 2.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.power_w <= 0:
            raise ValueError("host parameters must be positive")


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of one dispatch-loop execution."""

    tiles: int
    instructions: int
    cycles: int
    seconds: float
    descriptors: list

    @property
    def cycles_per_tile(self) -> float:
        return self.cycles / self.tiles if self.tiles else 0.0


def run_dispatch(
    workload: TransformerConfig,
    num_cus: int,
    host: HostConfig = HostConfig(),
) -> DispatchResult:
    """Execute the host's tile-dispatch loop for *workload* on *num_cus*
    Compute Units and return its measured cost."""
    if num_cus < 1:
        raise ValueError("num_cus must be >= 1")
    tile_rows = max(1, -(-workload.seq_len // num_cus))
    n_tiles = -(-workload.seq_len // tile_rows)
    source = _DISPATCH_TEMPLATE.format(
        n_tiles=n_tiles, tile_rows=tile_rows
    )
    program = Assembler().assemble(source)
    sim = RV32Simulator()
    dispatched = sim.run(program)
    if dispatched != n_tiles:
        raise RuntimeError(
            f"dispatch program posted {dispatched} tiles, expected {n_tiles}"
        )
    descriptors = [
        tuple(sim.read_words(0x800 + 8 * i, 2)) for i in range(n_tiles)
    ]
    return DispatchResult(
        tiles=n_tiles,
        instructions=sim.instructions_retired,
        cycles=sim.cycles,
        seconds=sim.cycles / host.clock_hz,
        descriptors=descriptors,
    )


def dispatch_overhead_fraction(
    workload: TransformerConfig,
    num_cus: int,
    block_seconds: float,
    host: HostConfig = HostConfig(),
) -> float:
    """Host dispatch time as a fraction of one block's fabric time.

    The Fig. 8 design is only balanced if this stays tiny; the fabric
    bench asserts it.
    """
    if block_seconds <= 0:
        raise ValueError("block_seconds must be positive")
    result = run_dispatch(workload, num_cus, host)
    return result.seconds / block_seconds
