"""Transformer workload descriptions (paper Sec. VII).

The prototype CU accelerates "all major Transformer blocks" in BFloat16;
this module decomposes an encoder block into its GEMMs plus the
elementwise/softmax passes, so CU and fabric models can execute it:

- QKV projections: 3 x (seq, d_model) @ (d_model, d_model)
- attention scores: heads x (seq, d_head) @ (d_head, seq)
- attention context: heads x (seq, seq) @ (seq, d_head)
- output projection: (seq, d_model) @ (d_model, d_model)
- FFN up / down: (seq, d_model) @ (d_model, d_ff) and back
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: One GEMM: (name, m, n, k, count).
GemmSpec = Tuple[str, int, int, int, int]


@dataclass(frozen=True)
class TransformerConfig:
    """Encoder block dimensions."""

    seq_len: int = 256
    d_model: int = 512
    num_heads: int = 8
    d_ff: int = 2048

    def __post_init__(self) -> None:
        if min(self.seq_len, self.d_model, self.num_heads, self.d_ff) < 1:
            raise ValueError("all dimensions must be >= 1")
        if self.d_model % self.num_heads:
            raise ValueError("d_model must divide evenly into heads")

    @property
    def d_head(self) -> int:
        return self.d_model // self.num_heads


def transformer_block_gemms(config: TransformerConfig) -> List[GemmSpec]:
    """The GEMM list of one encoder block."""
    s, d, h, f = (
        config.seq_len,
        config.d_model,
        config.num_heads,
        config.d_ff,
    )
    dh = config.d_head
    return [
        ("qkv_proj", s, d, d, 3),
        ("attn_scores", s, s, dh, h),
        ("attn_context", s, dh, s, h),
        ("out_proj", s, d, d, 1),
        ("ffn_up", s, f, d, 1),
        ("ffn_down", s, d, f, 1),
    ]


def sequence_parallel_gemms(
    config: TransformerConfig, slice_len: int
) -> List[GemmSpec]:
    """Per-CU GEMM list under sequence parallelism.

    Each CU owns *slice_len* query rows but attends over the **full**
    sequence (keys/values are exchanged), so the attention GEMMs keep the
    global ``seq_len`` in their inner/outer dimensions -- slicing reduces
    attention work linearly, not quadratically.
    """
    if slice_len < 1 or slice_len > config.seq_len:
        raise ValueError("slice_len must be in [1, seq_len]")
    s, d, h, f = (
        config.seq_len,
        config.d_model,
        config.num_heads,
        config.d_ff,
    )
    dh = config.d_head
    p = slice_len
    return [
        ("qkv_proj", p, d, d, 3),
        ("attn_scores", p, s, dh, h),
        ("attn_context", p, dh, s, h),
        ("out_proj", p, d, d, 1),
        ("ffn_up", p, f, d, 1),
        ("ffn_down", p, d, f, 1),
    ]


def block_gemm_flops(config: TransformerConfig) -> float:
    """Total GEMM FLOPs of one block."""
    return sum(
        2.0 * m * n * k * count
        for _, m, n, k, count in transformer_block_gemms(config)
    )


def block_elementwise_elements(config: TransformerConfig) -> int:
    """Elements touched by softmax + layernorm + activation passes."""
    s, d, h, f = (
        config.seq_len,
        config.d_model,
        config.num_heads,
        config.d_ff,
    )
    softmax = h * s * s
    layernorms = 2 * s * d
    activation = s * f
    residuals = 2 * s * d
    return softmax + layernorms + activation + residuals


def block_weight_bytes(config: TransformerConfig, bytes_per_el: int = 2) -> int:
    """Parameter footprint of one block (the per-CU working set the
    fabric interconnect must deliver)."""
    d, f = config.d_model, config.d_ff
    weights = 4 * d * d + 2 * d * f
    return weights * bytes_per_el
