"""Special-purpose compute engines attached to SCF Compute Units.

Each CU "can further be augmented with special purpose units, such as
vector processing units tightly-coupled to the cores; local neural
processing units; tensor cores; digital in-memory-computing augmented
SRAM."  The engines here are throughput models: a peak FLOPs/cycle
capability plus a shape-dependent utilization derived from array tiling,
the level of detail the SCF scale-up study needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EngineConfig:
    """Geometry of a 2-D FMA array engine (RedMule-class)."""

    name: str = "tensor"
    array_rows: int = 12
    array_cols: int = 16
    precision: str = "BF16"
    efficiency_cap: float = 0.85

    def __post_init__(self) -> None:
        if self.array_rows < 1 or self.array_cols < 1:
            raise ValueError("array dimensions must be >= 1")
        if not 0 < self.efficiency_cap <= 1:
            raise ValueError("efficiency cap must be in (0, 1]")

    @property
    def peak_flops_per_cycle(self) -> int:
        """Two FLOPs (mul + add) per PE per cycle."""
        return 2 * self.array_rows * self.array_cols


class TensorEngine:
    """RedMule-class mixed-precision matrix engine [50]."""

    def __init__(self, config: EngineConfig = EngineConfig()) -> None:
        self.config = config

    def tiling_efficiency(self, m: int, n: int, k: int) -> float:
        """Fraction of the array kept busy by an ``m x k @ k x n`` GEMM.

        Edge tiles waste PEs when m/n are not multiples of the array
        dimensions; long k amortizes the pipeline fill.  Capped by the
        engine's structural efficiency.
        """
        if min(m, n, k) < 1:
            raise ValueError("GEMM dimensions must be >= 1")
        rows, cols = self.config.array_rows, self.config.array_cols
        row_eff = m / (rows * -(-m // rows))
        col_eff = n / (cols * -(-n // cols))
        fill = k / (k + rows)  # pipeline fill/drain amortization
        return self.config.efficiency_cap * row_eff * col_eff * fill

    def gemm_cycles(self, m: int, n: int, k: int) -> int:
        """Cycles for one GEMM at the tiled utilization."""
        flops = 2.0 * m * n * k
        eff = self.tiling_efficiency(m, n, k)
        return int(
            -(-flops // (self.config.peak_flops_per_cycle * eff))
        )

    def sustained_flops(self, m: int, n: int, k: int, clock_hz: float) -> float:
        """Sustained FLOP/s on this GEMM shape at *clock_hz*."""
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        return 2.0 * m * n * k / self.gemm_cycles(m, n, k) * clock_hz


class VectorEngine:
    """Spatz-class compact vector unit [48] for the non-GEMM operators
    (softmax, layernorm, activations)."""

    def __init__(self, lanes: int = 4, efficiency: float = 0.7) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        self.lanes = lanes
        self.efficiency = efficiency

    @property
    def flops_per_cycle(self) -> float:
        return 2.0 * self.lanes * self.efficiency

    def elementwise_cycles(self, elements: int, flops_per_element: float) -> int:
        """Cycles for an elementwise pass over *elements*."""
        if elements < 1 or flops_per_element <= 0:
            raise ValueError("invalid elementwise workload")
        total = elements * flops_per_element
        return int(-(-total // self.flops_per_cycle))
