"""Lightweight hierarchical profiler for the simulator hot paths.

The suite's throughput work (vectorized kernels, parallel campaigns,
content-addressed caching) needs *evidence*: which kernel burned the
wall-clock, how often the cache hit, what a rewrite actually bought.
:class:`Profiler` collects exactly that with nothing beyond the standard
library -- nestable named timers (``with profiler.timer("imc/mvm"):``),
monotonic counters, and report rendering as dict / JSON / aligned table.

Design constraints, in order:

1. **near-zero cost when disabled** -- the instrumented kernels are the
   innermost loops of the system, so every hook first checks a single
   boolean and returns; the global profiler starts disabled;
2. **nesting without bookkeeping at the call site** -- timers maintain a
   per-thread stack and record themselves under a ``parent/child`` path,
   so a kernel profiled inside a campaign shows up indented under it;
3. **self-timing honesty** -- ``perf_counter`` pairs only; no sampling,
   no threads, no atexit magic.

The module-level registry (:func:`get_profiler`) hands out named
singleton profilers; the anonymous default (``get_profiler()``) is the
one the built-in instrumentation uses and the ``repro profile`` CLI
enables.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional


class TimerStat:
    """Aggregate of one named timer: calls, total and extreme durations."""

    __slots__ = ("calls", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def record(self, elapsed_s: float) -> None:
        self.calls += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.calls else 0.0,
            "max_s": self.max_s,
        }


class Profiler:
    """Named timers and counters with hierarchical paths.

    Timer names are joined with ``/`` along the per-thread nesting stack:
    timing ``"mvm"`` inside an open ``"campaign"`` timer records under
    ``"campaign/mvm"``.  Counters are flat monotonic integers.  All
    mutation is guarded by one lock -- the profiler is shared state and
    campaign code is threaded.
    """

    def __init__(self, name: str = "", enabled: bool = True) -> None:
        self.name = name
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._timers: Dict[str, TimerStat] = {}
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------- control

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected statistics (keeps the enabled state)."""
        with self._lock:
            self._timers = {}
            self._counters = {}

    # ------------------------------------------------------------- timers

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the enclosed block under *name* (nested under any open
        timers of the current thread)."""
        if not self.enabled:
            yield
            return
        stack = self._stack()
        path = "/".join(stack + [name]) if stack else name
        stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stack.pop()
            with self._lock:
                stat = self._timers.get(path)
                if stat is None:
                    stat = self._timers[path] = TimerStat()
                stat.record(elapsed)

    def record(self, name: str, elapsed_s: float) -> None:
        """Record a pre-measured duration under *name*.

        For call sites that only know the right label *after* the timed
        work (e.g. a cache lookup that turns out to be a hit or a miss).
        Nested under open :meth:`timer` blocks exactly like a timer.
        """
        if not self.enabled:
            return
        stack = self._stack()
        path = "/".join(stack + [name]) if stack else name
        with self._lock:
            stat = self._timers.get(path)
            if stat is None:
                stat = self._timers[path] = TimerStat()
            stat.record(elapsed_s)

    # ------------------------------------------------------------ counters

    def count(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creates it at zero)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    # ------------------------------------------------------------- reports

    def as_dict(self) -> Dict[str, Any]:
        """Snapshot of every timer and counter."""
        with self._lock:
            return {
                "name": self.name,
                "timers": {
                    path: stat.as_dict()
                    for path, stat in sorted(self._timers.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }

    def as_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render_table(self) -> str:
        """Aligned text table: nested timer paths indented, counters
        appended."""
        snapshot = self.as_dict()
        rows = [("timer", "calls", "total (s)", "mean (s)", "max (s)")]
        for path, stat in snapshot["timers"].items():
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            rows.append(
                (
                    label,
                    str(stat["calls"]),
                    f"{stat['total_s']:.6f}",
                    f"{stat['mean_s']:.6f}",
                    f"{stat['max_s']:.6f}",
                )
            )
        widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
        lines = []
        title = f"profile: {self.name}" if self.name else "profile"
        lines.append(title)
        lines.append("-" * len(title))
        for idx, row in enumerate(rows):
            lines.append(
                "  ".join(
                    cell.ljust(w) if i == 0 else cell.rjust(w)
                    for i, (cell, w) in enumerate(zip(row, widths))
                )
            )
            if idx == 0:
                lines.append("  ".join("-" * w for w in widths))
        if snapshot["counters"]:
            lines.append("")
            lines.append("counters:")
            for name, value in snapshot["counters"].items():
                lines.append(f"  {name}: {value}")
        return "\n".join(lines)


# ------------------------------------------------------------- span bridge

#: When tracing is enabled, :mod:`repro.obs` installs a hook here:
#: a callable ``hook(label) -> context manager`` that opens a span with
#: the timer's label.  Every ``@profiled`` kernel then shows up as a
#: child span inside whatever request trace is active -- one
#: instrumentation point, two backends.  ``None`` (the default) keeps
#: the disabled path at a single extra identity check.
_SPAN_HOOK: Optional[Callable[[str], Any]] = None


def set_span_hook(hook: Optional[Callable[[str], Any]]) -> None:
    """Install (or clear, with ``None``) the tracing bridge used by
    :func:`profiled` wrappers.  Called by
    :func:`repro.obs.enable_tracing` / ``disable_tracing``."""
    global _SPAN_HOOK
    _SPAN_HOOK = hook


def get_span_hook() -> Optional[Callable[[str], Any]]:
    return _SPAN_HOOK


# ---------------------------------------------------------------- registry

_REGISTRY: Dict[str, Profiler] = {}
_REGISTRY_LOCK = threading.Lock()
_DEFAULT_NAME = "repro"


def get_profiler(name: str = _DEFAULT_NAME) -> Profiler:
    """The singleton profiler registered under *name*.

    The default profiler (no argument) is the one the built-in kernel
    instrumentation reports to; it starts **disabled** so instrumented
    code costs one attribute check until someone opts in
    (:func:`enable_profiling` or the ``repro profile`` CLI).
    """
    # Lock-free fast path: dict reads are atomic in CPython and the
    # instrumented kernels resolve the profiler on every call.
    profiler = _REGISTRY.get(name)
    if profiler is not None:
        return profiler
    with _REGISTRY_LOCK:
        profiler = _REGISTRY.get(name)
        if profiler is None:
            profiler = _REGISTRY[name] = Profiler(
                name=name, enabled=False
            )
        return profiler


def enable_profiling(name: str = _DEFAULT_NAME) -> Profiler:
    """Enable (and return) the registered profiler *name*."""
    profiler = get_profiler(name)
    profiler.enable()
    return profiler


def disable_profiling(name: str = _DEFAULT_NAME) -> Profiler:
    """Disable (and return) the registered profiler *name*."""
    profiler = get_profiler(name)
    profiler.disable()
    return profiler


def profiled(
    name: Optional[str] = None, profiler: Optional[Profiler] = None
) -> Callable:
    """Decorator timing every call of the wrapped function.

    Records under *name* (default ``module.qualname``) on *profiler*
    (default: the registered default profiler, resolved at call time so
    tests can swap it).  When the profiler is disabled the wrapper adds
    a single boolean check per call.
    """

    def decorate(fn: Callable) -> Callable:
        label = name or f"{fn.__module__.split('.')[-1]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            target = profiler if profiler is not None else get_profiler()
            hook = _SPAN_HOOK
            if hook is None:
                if not target.enabled:
                    return fn(*args, **kwargs)
                with target.timer(label):
                    return fn(*args, **kwargs)
            if not target.enabled:
                with hook(label):
                    return fn(*args, **kwargs)
            with hook(label), target.timer(label):
                return fn(*args, **kwargs)

        wrapper.__profiled_name__ = label
        return wrapper

    return decorate
