"""Profiling subsystem: evidence for every throughput claim.

- :class:`Profiler` -- nestable named timers + counters, dict/JSON/table
  reports;
- :func:`get_profiler` / :func:`enable_profiling` /
  :func:`disable_profiling` -- module-level registry of named singleton
  profilers (the default one backs the built-in kernel instrumentation
  and starts disabled);
- :func:`profiled` -- decorator wiring a function into the default
  profiler.
"""

from repro.perf.profiler import (
    Profiler,
    TimerStat,
    disable_profiling,
    enable_profiling,
    get_profiler,
    profiled,
)

__all__ = [
    "Profiler",
    "TimerStat",
    "disable_profiling",
    "enable_profiling",
    "get_profiler",
    "profiled",
]
