"""Profiling subsystem: evidence for every throughput claim.

- :class:`Profiler` -- nestable named timers + counters, dict/JSON/table
  reports;
- :func:`get_profiler` / :func:`enable_profiling` /
  :func:`disable_profiling` -- module-level registry of named singleton
  profilers (the default one backs the built-in kernel instrumentation
  and starts disabled);
- :func:`profiled` -- decorator wiring a function into the default
  profiler;
- :func:`set_span_hook` -- the bridge :mod:`repro.obs` installs so
  every ``@profiled`` timer also emits a trace span when tracing is on.
"""

from repro.perf.profiler import (
    Profiler,
    TimerStat,
    disable_profiling,
    enable_profiling,
    get_profiler,
    get_span_hook,
    profiled,
    set_span_hook,
)

__all__ = [
    "Profiler",
    "TimerStat",
    "disable_profiling",
    "enable_profiling",
    "get_profiler",
    "get_span_hook",
    "profiled",
    "set_span_hook",
]
