"""The Fig. 5 end-to-end pipeline simulator.

Fig. 5 decomposes the DNN application into processing steps between the
data host and the accelerator: dataset read, host preprocessing, transfer
to the accelerator, compute (training or inference), transfer back and
postprocessing.  The simulator prices every stage for a (device, storage,
workload) triple and supports input prefetching (I/O overlapped with
compute, standard in DL data loaders), so the I/O path contributes only
its *non-hidden* excess -- which is exactly why its optimization yields
the paper's "up to 10%" end-to-end gains rather than raw bandwidth
ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hetero.devices import ComputeDevice
from repro.hetero.storage import StorageDevice
from repro.hetero.workload import SegmentationWorkload


@dataclass(frozen=True)
class PipelineResult:
    """Per-stage time breakdown (seconds) of one pipeline execution."""

    stage_seconds: Dict[str, float]
    total_seconds: float
    energy_j: float
    volumes_processed: int

    @property
    def throughput_volumes_s(self) -> float:
        if self.total_seconds == 0:
            return 0.0
        return self.volumes_processed / self.total_seconds

    def stage_share(self, stage: str) -> float:
        """Fraction of the serial stage budget spent in *stage*."""
        budget = sum(self.stage_seconds.values())
        if budget == 0:
            return 0.0
        return self.stage_seconds.get(stage, 0.0) / budget


def _per_volume_stages(
    workload: SegmentationWorkload,
    device: ComputeDevice,
    storage: StorageDevice,
    training: bool,
    preprocessed_dataset: bool = False,
) -> Dict[str, float]:
    """Serial per-volume stage times (no overlap applied yet).

    *preprocessed_dataset* models the standard inference deployment where
    the dataset was converted to model-ready tensors offline, so no host
    preprocessing happens per volume.
    """
    read = storage.read_time_s(workload.bytes_per_volume)
    if preprocessed_dataset:
        preprocess = 0.0
    else:
        preprocess = workload.preprocess_cpu_s_per_volume * (
            1.0 - storage.offload_fraction
        )
    transfer_bytes = workload.bytes_per_volume / storage.data_reduction
    transfer_in = device.transfer_time_s(transfer_bytes)
    flops = (
        workload.train_flops_per_volume
        if training
        else workload.infer_flops_per_volume
    )
    compute = device.compute_time_s(flops, training=training)
    # Results (masks/gradients summaries) are small: ~2% of input volume.
    transfer_out = device.transfer_time_s(0.02 * workload.bytes_per_volume)
    postprocess = workload.postprocess_cpu_s_per_volume
    return {
        "storage_read": read,
        "preprocess": preprocess,
        "transfer_in": transfer_in,
        "compute": compute,
        "transfer_out": transfer_out,
        "postprocess": postprocess,
    }


def _pipeline_time(
    stages: Dict[str, float], overlap_io: bool
) -> float:
    """Per-volume steady-state time.

    With prefetching, the input path (read + preprocess + transfer-in)
    overlaps the accelerator busy time of the previous volume: the
    steady-state cost is the max of the two paths, plus the small
    non-overlappable output stages.
    """
    input_path = (
        stages["storage_read"] + stages["preprocess"] + stages["transfer_in"]
    )
    output_path = stages["transfer_out"] + stages["postprocess"]
    if overlap_io:
        return max(input_path, stages["compute"]) + output_path
    return input_path + stages["compute"] + output_path


def simulate_training(
    workload: SegmentationWorkload = SegmentationWorkload(),
    device: ComputeDevice = None,
    storage: StorageDevice = None,
    overlap_io: bool = True,
) -> PipelineResult:
    """Full training run: epochs x volumes through the Fig. 5 pipeline."""
    from repro.hetero.devices import GPU_A100
    from repro.hetero.storage import SATA_SSD

    device = device or GPU_A100
    storage = storage or SATA_SSD
    stages = _per_volume_stages(workload, device, storage, training=True)
    per_volume = _pipeline_time(stages, overlap_io)
    volumes = workload.num_volumes * workload.epochs
    total = per_volume * volumes
    stage_totals = {k: v * volumes for k, v in stages.items()}
    energy = total * device.power_w
    return PipelineResult(
        stage_seconds=stage_totals,
        total_seconds=total,
        energy_j=energy,
        volumes_processed=volumes,
    )


def simulate_inference(
    workload: SegmentationWorkload = SegmentationWorkload(),
    device: ComputeDevice = None,
    storage: StorageDevice = None,
    overlap_io: bool = True,
    preprocessed_dataset: bool = True,
) -> PipelineResult:
    """Inference sweep over the dataset (one pass, no epochs).

    Inference reads model-ready tensors by default (*preprocessed_dataset*)
    -- the deployment mode of the campaign's inference study [22].
    """
    from repro.hetero.devices import GPU_A100
    from repro.hetero.storage import SATA_SSD

    device = device or GPU_A100
    storage = storage or SATA_SSD
    stages = _per_volume_stages(
        workload, device, storage, training=False,
        preprocessed_dataset=preprocessed_dataset,
    )
    per_volume = _pipeline_time(stages, overlap_io)
    volumes = workload.num_volumes
    total = per_volume * volumes
    stage_totals = {k: v * volumes for k, v in stages.items()}
    energy = total * device.power_w
    return PipelineResult(
        stage_seconds=stage_totals,
        total_seconds=total,
        energy_j=energy,
        volumes_processed=volumes,
    )
