"""Compute device models for the heterogeneous benchmarking campaign.

Each :class:`ComputeDevice` carries the sustained (not peak) throughput
the profiling literature reports for DL training and inference, the
host-accelerator transfer bandwidth, and power draw.  The presets follow
the platform classes of the paper's campaign [21], [22]: a server CPU, a
datacenter GPU and a datacenter FPGA card.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import ValidationError
from repro.core.units import GIGA, TERA


class DeviceKind(enum.Enum):
    CPU = "CPU"
    GPU = "GPU"
    FPGA = "FPGA"


@dataclass(frozen=True)
class ComputeDevice:
    """Sustained performance envelope of one compute platform."""

    name: str
    kind: DeviceKind
    train_flops: float
    infer_flops: float
    transfer_bw_bytes_s: float
    power_w: float
    supports_training: bool = True

    def __post_init__(self) -> None:
        if min(self.train_flops, self.infer_flops) <= 0:
            raise ValidationError("throughput must be positive")
        if self.transfer_bw_bytes_s <= 0 or self.power_w <= 0:
            raise ValidationError("bandwidth and power must be positive")

    def compute_time_s(self, flops: float, training: bool) -> float:
        """Time to execute *flops* floating-point operations."""
        if flops < 0:
            raise ValidationError("flops must be non-negative")
        if training and not self.supports_training:
            raise ValidationError(f"{self.name} does not support training")
        rate = self.train_flops if training else self.infer_flops
        return flops / rate

    def transfer_time_s(self, num_bytes: float) -> float:
        """Host <-> accelerator transfer time."""
        if num_bytes < 0:
            raise ValidationError("bytes must be non-negative")
        return num_bytes / self.transfer_bw_bytes_s


#: Dual-socket server CPU (AVX-512 class, the campaign's host baseline).
CPU_XEON = ComputeDevice(
    name="Xeon server CPU",
    kind=DeviceKind.CPU,
    train_flops=1.5 * TERA,
    infer_flops=2.5 * TERA,
    transfer_bw_bytes_s=80 * GIGA,  # resident in host memory
    power_w=270.0,
)

#: Datacenter GPU.  Sustained -- not peak -- throughput of a 3-D
#: segmentation model (memory-bound convolutions reach a fraction of the
#: tensor-core peak).
GPU_A100 = ComputeDevice(
    name="A100 GPU",
    kind=DeviceKind.GPU,
    train_flops=30 * TERA,
    infer_flops=60 * TERA,
    transfer_bw_bytes_s=25 * GIGA,  # PCIe gen4 x16 effective
    power_w=400.0,
)

#: Datacenter FPGA card (Alveo-class INT8 inference overlay; training is
#: not deployed on the FPGA in the campaign).
FPGA_ALVEO = ComputeDevice(
    name="Alveo FPGA",
    kind=DeviceKind.FPGA,
    train_flops=1.0 * TERA,  # placeholder rate, guarded by the flag
    infer_flops=20 * TERA,
    transfer_bw_bytes_s=12 * GIGA,
    power_w=75.0,
    supports_training=False,
)
