"""The synthetic medical-segmentation workload (DESIGN.md substitution #4).

The campaign's clinical dataset (contrast-enhanced cardiac CT volumes for
aortic-calcium quantification [21]) is not redistributable; the pipeline
experiment only needs the *shape* of the workload: dataset volume, bytes
per sample, model FLOPs per sample for training and inference, and host
preprocessing cost.  Defaults approximate a 3-D U-Net-class segmentation
model over CT volumes.

The module also provides a voxel-level phantom generator so the accuracy
-side of the pipeline (Dice of a threshold segmenter on calcified-lesion
blobs) is exercised by real array code, not just cost formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.errors import ValidationError
from repro.core.rng import SeedLike, make_rng
from repro.core.units import GIGA, MEBI


@dataclass(frozen=True)
class SegmentationWorkload:
    """Cost shape of the Fig. 5 DL application."""

    num_volumes: int = 200
    bytes_per_volume: float = 96 * MEBI
    train_flops_per_volume: float = 15_000 * GIGA
    infer_flops_per_volume: float = 11_000 * GIGA
    preprocess_cpu_s_per_volume: float = 0.35
    postprocess_cpu_s_per_volume: float = 0.05
    epochs: int = 3

    def __post_init__(self) -> None:
        if self.num_volumes < 1 or self.epochs < 1:
            raise ValidationError("num_volumes and epochs must be >= 1")
        if min(
            self.bytes_per_volume,
            self.train_flops_per_volume,
            self.infer_flops_per_volume,
        ) <= 0:
            raise ValidationError("per-volume costs must be positive")
        if (
            self.preprocess_cpu_s_per_volume < 0
            or self.postprocess_cpu_s_per_volume < 0
        ):
            raise ValidationError("CPU stage times must be non-negative")

    @property
    def dataset_bytes(self) -> float:
        return self.num_volumes * self.bytes_per_volume


def ct_phantom(
    shape: Tuple[int, int, int] = (32, 64, 64),
    num_lesions: int = 5,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic CT volume with calcified-lesion-like bright blobs.

    Returns ``(volume, lesion_mask)``: background soft tissue around
    ~40 HU-normalized intensity with noise, vessels as a bright tube, and
    high-intensity ellipsoidal lesions (the calcium the campaign's model
    segments).  Intensities are normalized to [0, 1].
    """
    if num_lesions < 0:
        raise ValidationError("num_lesions must be non-negative")
    rng = make_rng(seed)
    depth, height, width = shape
    volume = 0.3 + 0.05 * rng.standard_normal(shape)
    zs, ys, xs = np.mgrid[0:depth, 0:height, 0:width]
    # A vessel running through the volume.
    vessel = ((ys - height / 2) ** 2 + (xs - width / 2) ** 2) < (
        min(height, width) / 8
    ) ** 2
    volume[vessel] = 0.55 + 0.03 * rng.standard_normal(int(vessel.sum()))
    mask = np.zeros(shape, dtype=bool)
    for _ in range(num_lesions):
        cz = rng.uniform(0.2, 0.8) * depth
        cy = rng.uniform(0.35, 0.65) * height
        cx = rng.uniform(0.35, 0.65) * width
        rz, ry, rx = rng.uniform(1.5, 3.5, size=3)
        lesion = (
            ((zs - cz) / rz) ** 2
            + ((ys - cy) / ry) ** 2
            + ((xs - cx) / rx) ** 2
        ) < 1.0
        mask |= lesion
    volume[mask] = 0.9 + 0.05 * rng.standard_normal(int(mask.sum()))
    return np.clip(volume, 0.0, 1.0), mask


def threshold_segmenter(volume: np.ndarray, threshold: float = 0.75) -> np.ndarray:
    """The stand-in inference kernel: intensity thresholding.

    Calcium is radiodense, so thresholding is the classical baseline the
    campaign's DL model improves on; here it exercises the accuracy path
    of the pipeline tests.
    """
    if not 0.0 < threshold < 1.0:
        raise ValidationError("threshold must be in (0, 1)")
    return np.asarray(volume) >= threshold


class HeteroCellWorkload:
    """``hetero-cell``: one (device, storage, phase) campaign cell of the
    Sec. VI benchmarking matrix, under the unified
    :class:`~repro.core.api.Workload` contract.  Device and storage are
    named by short preset keys so configs stay digest-friendly."""

    name = "hetero-cell"

    def space(self):
        return {
            "device": ("cpu", "gpu", "fpga"),
            "storage": ("sata", "nvme", "csd"),
            "phase": ("inference", "training"),
            "num_volumes": (32, 64, 200),
            "epochs": (1, 3),
            # Full workload shape, so campaign graphs can evaluate any
            # SegmentationWorkload -- defaults first, digest-friendly.
            "bytes_per_volume": (96 * MEBI, 32 * MEBI),
            "train_flops_per_volume": (15_000 * GIGA, 5_000 * GIGA),
            "infer_flops_per_volume": (11_000 * GIGA, 4_000 * GIGA),
            "preprocess_cpu_s_per_volume": (0.35, 0.1),
            "postprocess_cpu_s_per_volume": (0.05, 0.01),
        }

    @staticmethod
    def _presets():
        from repro.hetero.devices import CPU_XEON, FPGA_ALVEO, GPU_A100
        from repro.hetero.storage import (
            NVME_SSD,
            SATA_SSD,
            computational_storage,
        )

        devices = {"cpu": CPU_XEON, "gpu": GPU_A100, "fpga": FPGA_ALVEO}
        storage = {
            "sata": SATA_SSD,
            "nvme": NVME_SSD,
            "csd": computational_storage(),
        }
        return devices, storage

    def evaluate(self, config, *, seed: int = 0, impl=None):
        import time

        from repro.core.errors import ValidationError
        from repro.hetero.campaign import CampaignCell, _campaign_cell_task

        if impl not in (None, "numpy"):
            raise ValidationError(
                f"hetero-cell supports impl=None|'numpy', got {impl!r}"
            )
        cfg = dict(config)
        devices, storage_tiers = self._presets()
        device_key = str(cfg.get("device", "cpu"))
        storage_key = str(cfg.get("storage", "sata"))
        phase = str(cfg.get("phase", "inference"))
        if device_key not in devices:
            raise ValidationError(
                f"unknown device preset {device_key!r} "
                f"(choose from {sorted(devices)})"
            )
        if storage_key not in storage_tiers:
            raise ValidationError(
                f"unknown storage preset {storage_key!r} "
                f"(choose from {sorted(storage_tiers)})"
            )
        if phase not in ("training", "inference"):
            raise ValidationError(f"unknown phase {phase!r}")
        defaults = SegmentationWorkload()
        workload = SegmentationWorkload(
            num_volumes=int(cfg.get("num_volumes", 32)),
            bytes_per_volume=float(
                cfg.get("bytes_per_volume", defaults.bytes_per_volume)
            ),
            train_flops_per_volume=float(
                cfg.get(
                    "train_flops_per_volume",
                    defaults.train_flops_per_volume,
                )
            ),
            infer_flops_per_volume=float(
                cfg.get(
                    "infer_flops_per_volume",
                    defaults.infer_flops_per_volume,
                )
            ),
            preprocess_cpu_s_per_volume=float(
                cfg.get(
                    "preprocess_cpu_s_per_volume",
                    defaults.preprocess_cpu_s_per_volume,
                )
            ),
            postprocess_cpu_s_per_volume=float(
                cfg.get(
                    "postprocess_cpu_s_per_volume",
                    defaults.postprocess_cpu_s_per_volume,
                )
            ),
            epochs=int(cfg.get("epochs", 1)),
        )
        start = time.perf_counter()
        record = _campaign_cell_task(
            (workload, devices[device_key], storage_tiers[storage_key], phase)
        )
        wall = time.perf_counter() - start
        return CampaignCell.from_record(record).to_run_result(
            workload=self.name, config=cfg, seed=seed, impl=impl,
            wall_time_s=wall,
        )


def _register() -> None:
    from repro.core.api import register_workload

    register_workload(HeteroCellWorkload())


_register()
