"""I/O-path models: SSDs, persistent memory, computational storage.

After bottleneck identification the project "started improving the
end-to-end performance in DL by addressing the I/O path with the adoption
of custom solutions such as the one in [23] based on the Computational
Storage paradigm and even prospecting the use of advanced memory devices
such as Persistent Memory modules or low-latency SSDs."

A :class:`StorageDevice` serves dataset reads at a bandwidth/latency
point; :func:`computational_storage` wraps any device with near-storage
preprocessing (the FPGA-in-SSD of [23]): part of the per-volume
preprocessing work runs inside the device and only the reduced
(preprocessed) data crosses the host I/O path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ValidationError
from repro.core.units import GIGA, MICRO


@dataclass(frozen=True)
class StorageDevice:
    """One dataset storage tier."""

    name: str
    bandwidth_bytes_s: float
    access_latency_s: float
    offload_fraction: float = 0.0
    data_reduction: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_s <= 0:
            raise ValidationError("bandwidth must be positive")
        if self.access_latency_s < 0:
            raise ValidationError("latency must be non-negative")
        if not 0.0 <= self.offload_fraction <= 1.0:
            raise ValidationError("offload fraction must be in [0, 1]")
        if self.data_reduction < 1.0:
            raise ValidationError("data reduction factor must be >= 1")

    def read_time_s(self, num_bytes: float, accesses: int = 1) -> float:
        """Time to read *num_bytes* in *accesses* requests.

        Computational storage transfers ``bytes / data_reduction`` (the
        device ships preprocessed, reduced data to the host).
        """
        if num_bytes < 0 or accesses < 1:
            raise ValidationError("invalid read parameters")
        effective = num_bytes / self.data_reduction
        return accesses * self.access_latency_s + (
            effective / self.bandwidth_bytes_s
        )

    @property
    def is_computational(self) -> bool:
        return self.offload_fraction > 0 or self.data_reduction > 1.0


#: Enterprise SATA SSD (the campaign's baseline tier).
SATA_SSD = StorageDevice(
    name="SATA SSD",
    bandwidth_bytes_s=0.5 * GIGA,
    access_latency_s=120 * MICRO,
)

#: Low-latency NVMe SSD.
NVME_SSD = StorageDevice(
    name="NVMe SSD (low latency)",
    bandwidth_bytes_s=3.0 * GIGA,
    access_latency_s=15 * MICRO,
)

#: Persistent-memory modules on the memory bus.
PERSISTENT_MEMORY = StorageDevice(
    name="Persistent Memory",
    bandwidth_bytes_s=8.0 * GIGA,
    access_latency_s=0.5 * MICRO,
)


def computational_storage(
    base: StorageDevice = NVME_SSD,
    offload_fraction: float = 0.5,
    data_reduction: float = 1.6,
) -> StorageDevice:
    """Wrap *base* with near-storage preprocessing [23].

    *offload_fraction* of the host preprocessing work moves into the
    device; the shipped data shrinks by *data_reduction* (decoded,
    cropped, normalized volumes are smaller than raw archives).
    """
    return StorageDevice(
        name=f"Computational {base.name}",
        bandwidth_bytes_s=base.bandwidth_bytes_s,
        access_latency_s=base.access_latency_s,
        offload_fraction=offload_fraction,
        data_reduction=data_reduction,
    )
