"""Heterogeneous CPU/GPU/FPGA platforms for AI and HPC (paper Sec. VI).

The project "conducted a benchmarking campaign on a relevant DL model for
medical image segmentation ... in different stages of the DL pipeline"
(Fig. 5), identified the I/O path as a bottleneck, and "obtained a
training time reduction of up to 10% and inference throughput improvement
of up to 10%" through Computational Storage, Persistent Memory and
low-latency SSDs.

- :mod:`repro.hetero.devices`  -- CPU/GPU/FPGA compute device models;
- :mod:`repro.hetero.storage`  -- I/O-path models (SATA/NVMe SSD,
  persistent memory, computational storage);
- :mod:`repro.hetero.workload` -- the synthetic medical-segmentation
  workload (substitution #4 in DESIGN.md);
- :mod:`repro.hetero.pipeline` -- the Fig. 5 end-to-end pipeline
  simulator (training and inference);
- :mod:`repro.hetero.profiler` -- per-stage breakdowns and bottleneck
  identification.
"""

from repro.hetero.devices import ComputeDevice, CPU_XEON, GPU_A100, FPGA_ALVEO
from repro.hetero.storage import (
    StorageDevice,
    SATA_SSD,
    NVME_SSD,
    PERSISTENT_MEMORY,
    computational_storage,
)
from repro.hetero.workload import SegmentationWorkload
from repro.hetero.pipeline import PipelineResult, simulate_inference, simulate_training
from repro.hetero.profiler import StageProfile, bottleneck_stage, profile_table
from repro.hetero.campaign import run_campaign, best_configuration

__all__ = [
    "ComputeDevice",
    "CPU_XEON",
    "GPU_A100",
    "FPGA_ALVEO",
    "StorageDevice",
    "SATA_SSD",
    "NVME_SSD",
    "PERSISTENT_MEMORY",
    "computational_storage",
    "SegmentationWorkload",
    "PipelineResult",
    "simulate_training",
    "simulate_inference",
    "StageProfile",
    "bottleneck_stage",
    "profile_table",
    "run_campaign",
    "best_configuration",
]
