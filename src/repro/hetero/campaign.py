"""The full benchmarking-campaign matrix (paper Sec. VI).

The project "conducted a benchmarking campaign ... by using the most
appropriate profiling tools for CPU, GPU, and FPGA architectures in
different stages of the DL pipeline (i.e., mainly during training and
inference)".  :func:`run_campaign` reproduces the campaign's artifact: a
device x storage matrix of end-to-end results with per-stage bottleneck
attribution, the input to the trade-off analysis the paper describes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import (
    CampaignCellError,
    TransientFault,
    ValidationError,
)
from repro.exec.parallel import CacheLike, EvaluatorLike
from repro.hetero.devices import (
    CPU_XEON,
    ComputeDevice,
    FPGA_ALVEO,
    GPU_A100,
)
from repro.hetero.pipeline import (
    PipelineResult,
    simulate_inference,
    simulate_training,
)
from repro.hetero.profiler import bottleneck_stage
from repro.hetero.storage import (
    NVME_SSD,
    SATA_SSD,
    StorageDevice,
    computational_storage,
)
from repro.hetero.workload import SegmentationWorkload

DEFAULT_DEVICES: Tuple[ComputeDevice, ...] = (CPU_XEON, GPU_A100, FPGA_ALVEO)
DEFAULT_STORAGE: Tuple[StorageDevice, ...] = (
    SATA_SSD,
    NVME_SSD,
    computational_storage(),
)


@dataclass(frozen=True)
class CampaignCell:
    """One (device, storage, phase) measurement.

    *device* is the scheduled matrix coordinate.  Under fault injection
    *attempts* counts the executions the cell took (1 = first try
    succeeded) and *executed_on* names the surviving device the work
    actually ran on when the scheduled device dropped out.
    """

    device: str
    storage: str
    phase: str
    total_seconds: float
    throughput_volumes_s: float
    energy_j: float
    bottleneck: str
    attempts: int = 1
    executed_on: Optional[str] = None

    @property
    def key(self) -> str:
        """Stable cell identifier used by checkpoints and reports."""
        return f"{self.device}|{self.storage}|{self.phase}"

    def to_record(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "CampaignCell":
        return cls(**record)

    def to_run_result(
        self,
        *,
        workload: str = "hetero-cell",
        config=None,
        seed=None,
        impl=None,
        wall_time_s: float = 0.0,
    ):
        """This cell in the unified :class:`~repro.core.api.RunResult`
        shape; the legacy field names stay reachable as deprecated
        attribute aliases on the returned object."""
        from repro.core.api import build_run_result

        metrics = {
            "device": self.device,
            "storage": self.storage,
            "phase": self.phase,
            "total_seconds": self.total_seconds,
            "throughput_volumes_s": self.throughput_volumes_s,
            "energy_j": self.energy_j,
            "bottleneck": self.bottleneck,
        }
        if self.executed_on is not None:
            metrics["executed_on"] = self.executed_on
        return build_run_result(
            workload, metrics, config=config, seed=seed, impl=impl,
            wall_time_s=wall_time_s, attempts=self.attempts,
        )

    @classmethod
    def from_run_result(cls, result) -> "CampaignCell":
        """Inverse of :meth:`to_run_result`: rebuild the cell from the
        uniform interchange shape."""
        metrics = result.metrics
        return cls(
            device=str(metrics["device"]),
            storage=str(metrics["storage"]),
            phase=str(metrics["phase"]),
            total_seconds=float(metrics["total_seconds"]),
            throughput_volumes_s=float(metrics["throughput_volumes_s"]),
            energy_j=float(metrics["energy_j"]),
            bottleneck=str(metrics["bottleneck"]),
            attempts=int(result.attempts),
            executed_on=metrics.get("executed_on"),
        )


def _campaign_cell_task(
    args: Tuple[SegmentationWorkload, ComputeDevice, StorageDevice, str],
) -> Dict[str, Any]:
    """Evaluate one campaign cell; module-level so process pools can
    ship it, returning a JSON record so result caches can store it."""
    workload, device, storage, phase = args
    simulate = simulate_training if phase == "training" else simulate_inference
    result: PipelineResult = simulate(workload, device=device, storage=storage)
    return CampaignCell(
        device=device.name,
        storage=storage.name,
        phase=phase,
        total_seconds=result.total_seconds,
        throughput_volumes_s=result.throughput_volumes_s,
        energy_j=result.energy_j,
        bottleneck=bottleneck_stage(result).stage,
    ).to_record()


def run_campaign(
    workload: SegmentationWorkload = SegmentationWorkload(),
    devices: Tuple[ComputeDevice, ...] = DEFAULT_DEVICES,
    storage_tiers: Tuple[StorageDevice, ...] = DEFAULT_STORAGE,
    parallel: EvaluatorLike = None,
    cache: CacheLike = None,
) -> List[CampaignCell]:
    """Sweep the device x storage matrix for training and inference.

    FPGA cells skip the training phase (the campaign deploys FPGAs for
    inference only), mirroring the device capability flags.

    Cells are independent pure evaluations: *parallel* fans them out
    over a :class:`~repro.exec.ParallelEvaluator` (worker count or a
    ready engine) and *cache* memoizes cells across invocations by the
    request digest of (workload, device, storage, phase).  Results are
    returned in sweep order either way, so parallel and serial runs are
    identical.

    A thin wrapper: the matrix is one layer of a
    :class:`~repro.campaign.CampaignGraph` (built by
    :func:`repro.campaign.hetero_campaign_graph`) executed by
    :class:`~repro.campaign.GraphRunner`; build the graph directly to
    compose the matrix into larger campaigns.
    """
    from repro.campaign import GraphRunner, hetero_campaign_graph

    graph = hetero_campaign_graph(
        workload, tuple(devices), tuple(storage_tiers)
    )
    runner = GraphRunner(parallel=parallel, cache=cache, observe=False)
    return runner.run(graph).value("cells")


@dataclass(frozen=True)
class CampaignReport:
    """Outcome of a resilient campaign: every scheduled cell appears
    exactly once, as a measurement or as a recorded error."""

    cells: List[CampaignCell]
    errors: List[CampaignCellError]
    total_backoff_s: float

    @property
    def total_cells(self) -> int:
        return len(self.cells) + len(self.errors)

    @property
    def failure_rate(self) -> float:
        if self.total_cells == 0:
            return 0.0
        return len(self.errors) / self.total_cells

    @property
    def total_attempts(self) -> int:
        return sum(c.attempts for c in self.cells) + sum(
            e.attempts for e in self.errors
        )

    def keys(self) -> List[str]:
        """Sorted keys of every reported cell (results and errors)."""
        return sorted(
            [c.key for c in self.cells] + [e.key for e in self.errors]
        )


def _scheduled_cells(
    devices: Tuple[ComputeDevice, ...],
    storage_tiers: Tuple[StorageDevice, ...],
) -> List[Tuple[ComputeDevice, StorageDevice, str]]:
    """The full campaign matrix in deterministic sweep order."""
    cells = []
    for device in devices:
        for storage in storage_tiers:
            if device.supports_training:
                cells.append((device, storage, "training"))
            cells.append((device, storage, "inference"))
    return cells


def _resilient_cell_task(args: Tuple) -> Dict[str, Any]:
    """Run one resilient campaign cell (module-level: picklable).

    The whole per-cell contract lives here so serial and parallel
    sweeps share one code path: key-addressed fault injection, bounded
    retry under the backoff policy, and the terminal
    :class:`CampaignCellError` record when retries are exhausted.
    Returns ``{"record": ..., "backoff_s": ...}`` where the record is
    either a cell or an error in checkpoint format.
    """
    from repro.resilience import resilient_run

    (workload, device, actual, executed_on, storage, phase, injector,
     policy, key) = args
    faulty_storage = injector.faulty_storage(storage, key=key)
    simulate = simulate_training if phase == "training" else (
        simulate_inference
    )

    def run_cell() -> PipelineResult:
        return simulate(workload, device=actual, storage=faulty_storage)

    try:
        outcome = resilient_run(
            run_cell,
            policy=policy,
            rng=injector.derive_rng(f"retry|{key}"),
        )
    except TransientFault as exc:
        error = CampaignCellError(
            f"cell failed after {policy.max_attempts} attempts: {exc}",
            device=device.name,
            storage=storage.name,
            phase=phase,
            attempts=policy.max_attempts,
            cause=exc,
        )
        return {"record": error.to_record(), "backoff_s": 0.0}
    except Exception as exc:  # permanent fault / validation error
        error = CampaignCellError(
            f"cell failed: {exc}",
            device=device.name,
            storage=storage.name,
            phase=phase,
            attempts=1,
            cause=exc,
        )
        return {"record": error.to_record(), "backoff_s": 0.0}
    result: PipelineResult = outcome.value
    cell = CampaignCell(
        device=device.name,
        storage=storage.name,
        phase=phase,
        total_seconds=result.total_seconds,
        throughput_volumes_s=result.throughput_volumes_s,
        energy_j=result.energy_j,
        bottleneck=bottleneck_stage(result).stage,
        attempts=outcome.attempts,
        executed_on=executed_on,
    )
    return {"record": cell.to_record(), "backoff_s": outcome.backoff_s}


def run_resilient_campaign(
    workload: SegmentationWorkload = SegmentationWorkload(),
    devices: Tuple[ComputeDevice, ...] = DEFAULT_DEVICES,
    storage_tiers: Tuple[StorageDevice, ...] = DEFAULT_STORAGE,
    injector: Optional["FaultInjector"] = None,
    policy: Optional["BackoffPolicy"] = None,
    checkpoint: Optional["CheckpointStore"] = None,
    parallel: EvaluatorLike = None,
    resilience: Optional["ResiliencePolicy"] = None,
) -> CampaignReport:
    """The campaign matrix under fault injection, without aborting.

    Each scheduled (device, storage, phase) cell runs through
    :func:`~repro.resilience.resilient_run`: transient storage faults
    injected by *injector* are retried under the bounded backoff of
    *resilience* (a :class:`~repro.resilience.ResiliencePolicy`;
    ``policy=BackoffPolicy(...)`` is the deprecated spelling); a cell
    that still fails is recorded as a
    :class:`~repro.core.errors.CampaignCellError` and the sweep
    continues.  Devices lost to dropout have their cells remapped to
    the first surviving device (recorded via ``executed_on``).  With a
    *checkpoint*, completed cells are persisted and skipped on resume
    -- fault streams are key-addressed, so resuming reproduces the
    exact outcome of an uninterrupted run.

    *parallel* evaluates the remaining cells concurrently.  Fault and
    retry streams are derived from each cell's key, never from
    submission order, and per-cell retry happens inside the worker, so
    a parallel sweep reports bit-identical cells, errors and backoff
    accounting to a serial one (results and checkpoint writes stay in
    scheduled sweep order).  Results are not content-cached here: under
    fault injection a cell's outcome is part of the injected world, not
    a reusable pure value.

    A thin wrapper: the sweep is a
    :func:`repro.campaign.resilient_campaign_graph` executed by
    :class:`~repro.campaign.GraphRunner` (which supplies the serial
    incremental / parallel batch checkpointing and resume).
    """
    from repro.campaign import GraphRunner, resilient_campaign_graph
    from repro.obs.ledger import get_ledger
    from repro.resilience import FaultInjector, coerce_resilience

    ledger = get_ledger()
    injector = injector or FaultInjector()
    resolved = coerce_resilience(
        resilience, policy, caller="run_resilient_campaign"
    )
    backoff = resolved.backoff if resolved is not None else None
    if backoff is None:
        from repro.resilience import BackoffPolicy

        backoff = BackoffPolicy()

    ledger.event(
        "run.started",
        kind="resilient_campaign",
        devices=len(devices),
        storage_tiers=len(storage_tiers),
    )
    graph = resilient_campaign_graph(
        workload, tuple(devices), tuple(storage_tiers), injector, backoff
    )
    runner = GraphRunner(
        parallel=parallel, checkpoint=checkpoint, observe=False
    )
    run = runner.run(graph)
    report: CampaignReport = run.value("report")
    ledger.event(
        "run.finished",
        kind="resilient_campaign",
        cells=len(report.cells),
        errors=len(report.errors),
        resumed=run.counts()["resumed"],
    )
    return report


def best_configuration(
    cells: List[CampaignCell], phase: str, objective: str = "time"
) -> CampaignCell:
    """The winning campaign cell for *phase* under *objective*
    (``"time"`` or ``"energy"``)."""
    candidates = [c for c in cells if c.phase == phase]
    if not candidates:
        raise ValidationError(f"no campaign cells for phase {phase!r}")
    if objective == "time":
        return min(candidates, key=lambda c: c.total_seconds)
    if objective == "energy":
        return min(candidates, key=lambda c: c.energy_j)
    raise ValidationError(f"unknown objective {objective!r}")


def bottleneck_summary(cells: List[CampaignCell]) -> Dict[str, int]:
    """How often each stage is the bottleneck across the matrix -- the
    evidence behind the campaign's 'address the I/O path' conclusion."""
    summary: Dict[str, int] = {}
    for cell in cells:
        summary[cell.bottleneck] = summary.get(cell.bottleneck, 0) + 1
    return summary
