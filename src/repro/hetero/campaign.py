"""The full benchmarking-campaign matrix (paper Sec. VI).

The project "conducted a benchmarking campaign ... by using the most
appropriate profiling tools for CPU, GPU, and FPGA architectures in
different stages of the DL pipeline (i.e., mainly during training and
inference)".  :func:`run_campaign` reproduces the campaign's artifact: a
device x storage matrix of end-to-end results with per-stage bottleneck
attribution, the input to the trade-off analysis the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hetero.devices import (
    CPU_XEON,
    ComputeDevice,
    FPGA_ALVEO,
    GPU_A100,
)
from repro.hetero.pipeline import (
    PipelineResult,
    simulate_inference,
    simulate_training,
)
from repro.hetero.profiler import bottleneck_stage
from repro.hetero.storage import (
    NVME_SSD,
    SATA_SSD,
    StorageDevice,
    computational_storage,
)
from repro.hetero.workload import SegmentationWorkload

DEFAULT_DEVICES: Tuple[ComputeDevice, ...] = (CPU_XEON, GPU_A100, FPGA_ALVEO)
DEFAULT_STORAGE: Tuple[StorageDevice, ...] = (
    SATA_SSD,
    NVME_SSD,
    computational_storage(),
)


@dataclass(frozen=True)
class CampaignCell:
    """One (device, storage, phase) measurement."""

    device: str
    storage: str
    phase: str
    total_seconds: float
    throughput_volumes_s: float
    energy_j: float
    bottleneck: str


def run_campaign(
    workload: SegmentationWorkload = SegmentationWorkload(),
    devices: Tuple[ComputeDevice, ...] = DEFAULT_DEVICES,
    storage_tiers: Tuple[StorageDevice, ...] = DEFAULT_STORAGE,
) -> List[CampaignCell]:
    """Sweep the device x storage matrix for training and inference.

    FPGA cells skip the training phase (the campaign deploys FPGAs for
    inference only), mirroring the device capability flags.
    """
    cells: List[CampaignCell] = []
    for device in devices:
        for storage in storage_tiers:
            runs: List[Tuple[str, Optional[PipelineResult]]] = [
                (
                    "training",
                    simulate_training(workload, device=device,
                                      storage=storage)
                    if device.supports_training
                    else None,
                ),
                (
                    "inference",
                    simulate_inference(workload, device=device,
                                       storage=storage),
                ),
            ]
            for phase, result in runs:
                if result is None:
                    continue
                cells.append(
                    CampaignCell(
                        device=device.name,
                        storage=storage.name,
                        phase=phase,
                        total_seconds=result.total_seconds,
                        throughput_volumes_s=result.throughput_volumes_s,
                        energy_j=result.energy_j,
                        bottleneck=bottleneck_stage(result).stage,
                    )
                )
    return cells


def best_configuration(
    cells: List[CampaignCell], phase: str, objective: str = "time"
) -> CampaignCell:
    """The winning campaign cell for *phase* under *objective*
    (``"time"`` or ``"energy"``)."""
    candidates = [c for c in cells if c.phase == phase]
    if not candidates:
        raise ValueError(f"no campaign cells for phase {phase!r}")
    if objective == "time":
        return min(candidates, key=lambda c: c.total_seconds)
    if objective == "energy":
        return min(candidates, key=lambda c: c.energy_j)
    raise ValueError(f"unknown objective {objective!r}")


def bottleneck_summary(cells: List[CampaignCell]) -> Dict[str, int]:
    """How often each stage is the bottleneck across the matrix -- the
    evidence behind the campaign's 'address the I/O path' conclusion."""
    summary: Dict[str, int] = {}
    for cell in cells:
        summary[cell.bottleneck] = summary.get(cell.bottleneck, 0) + 1
    return summary
