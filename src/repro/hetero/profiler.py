"""Per-stage profiling and bottleneck identification.

The campaign used "the most appropriate profiling tools for CPU, GPU, and
FPGA architectures in different stages of the DL pipeline ... to extract
the performance characteristics"; here the profile comes from the
pipeline simulator, and the same artifacts are produced: a per-stage
breakdown table and the identified bottleneck that motivated the I/O-path
work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.tables import Table
from repro.hetero.pipeline import PipelineResult


@dataclass(frozen=True)
class StageProfile:
    """One row of the profiling breakdown."""

    stage: str
    seconds: float
    share: float


def profile(result: PipelineResult) -> List[StageProfile]:
    """Stage profiles sorted by descending time."""
    budget = sum(result.stage_seconds.values())
    profiles = [
        StageProfile(
            stage=stage,
            seconds=seconds,
            share=seconds / budget if budget else 0.0,
        )
        for stage, seconds in result.stage_seconds.items()
    ]
    profiles.sort(key=lambda p: -p.seconds)
    return profiles


def bottleneck_stage(result: PipelineResult) -> StageProfile:
    """The stage with the largest serial share."""
    profiles = profile(result)
    if not profiles:
        raise ValueError("empty profile")
    return profiles[0]


def io_share(result: PipelineResult) -> float:
    """Combined share of the I/O-path stages (read + transfers)."""
    io_stages = ("storage_read", "transfer_in", "transfer_out")
    budget = sum(result.stage_seconds.values())
    if budget == 0:
        return 0.0
    return sum(result.stage_seconds.get(s, 0.0) for s in io_stages) / budget


def profile_table(result: PipelineResult, title: str = "") -> Table:
    """Render the breakdown as the campaign-style profiling table."""
    table = Table(["stage", "seconds", "share (%)"], title=title)
    for entry in profile(result):
        table.add_row([entry.stage, entry.seconds, 100.0 * entry.share])
    return table
