"""Bits <-> bases codec with strand addressing (paper Fig. 6a).

Digital information "composed of '1's and '0's" is encoded into the four
nucleotide bases; the canonical mapping is two bits per base (A=00, C=01,
G=10, T=11, the encoding shown in Fig. 6a).  Payloads larger than one
strand are split into fixed-size oligos, each prefixed with an index field
so the unordered pool can be reassembled, plus an outer Reed-Solomon code
(:mod:`repro.dna.ecc`) applied by the full pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Fig. 6a digital encoding of the bases.
BASES = "ACGT"
_BASE_TO_BITS: Dict[str, int] = {base: i for i, base in enumerate(BASES)}


def bits_to_bases(data: bytes) -> str:
    """Encode *data* at two bits per base, most-significant bits first."""
    out = []
    for byte in data:
        for shift in (6, 4, 2, 0):
            out.append(BASES[(byte >> shift) & 0b11])
    return "".join(out)


def bases_to_bits(strand: str) -> bytes:
    """Decode a base string back to bytes.

    The strand length must be a multiple of 4 (one byte per 4 bases);
    unknown characters are rejected.
    """
    if len(strand) % 4:
        raise ValueError("strand length must be a multiple of 4 bases")
    data = bytearray()
    for k in range(0, len(strand), 4):
        byte = 0
        for ch in strand[k : k + 4]:
            if ch not in _BASE_TO_BITS:
                raise ValueError(f"invalid base {ch!r}")
            byte = (byte << 2) | _BASE_TO_BITS[ch]
        data.append(byte)
    return bytes(data)


@dataclass(frozen=True)
class OligoLayout:
    """Physical layout of one oligo: index header + payload bytes."""

    payload_bytes: int = 20
    index_bytes: int = 2

    def __post_init__(self) -> None:
        if self.payload_bytes < 1 or self.index_bytes < 1:
            raise ValueError("payload and index sizes must be >= 1")

    @property
    def strand_bases(self) -> int:
        """Total strand length in bases."""
        return 4 * (self.index_bytes + self.payload_bytes)

    @property
    def max_oligos(self) -> int:
        return 256**self.index_bytes


def encode_payload(
    data: bytes, layout: OligoLayout = OligoLayout()
) -> List[str]:
    """Split *data* into indexed oligo strands.

    The final chunk is zero-padded; the pipeline records the original
    length separately (in practice inside the ECC frame).
    """
    if not data:
        raise ValueError("payload must be non-empty")
    chunks = [
        data[i : i + layout.payload_bytes]
        for i in range(0, len(data), layout.payload_bytes)
    ]
    if len(chunks) > layout.max_oligos:
        raise ValueError(
            f"payload needs {len(chunks)} oligos, index field allows "
            f"{layout.max_oligos}"
        )
    strands = []
    for index, chunk in enumerate(chunks):
        padded = chunk.ljust(layout.payload_bytes, b"\x00")
        header = index.to_bytes(layout.index_bytes, "big")
        strands.append(bits_to_bases(header + padded))
    return strands


def parse_strand(
    strand: str, layout: OligoLayout = OligoLayout()
) -> Optional[Tuple[int, bytes]]:
    """Parse one strand into ``(index, payload)``; ``None`` if the strand
    has the wrong length or invalid characters (damaged beyond use)."""
    if len(strand) != layout.strand_bases:
        return None
    try:
        raw = bases_to_bits(strand)
    except ValueError:
        return None
    index = int.from_bytes(raw[: layout.index_bytes], "big")
    return index, raw[layout.index_bytes :]


def decode_strands(
    strands: List[str],
    payload_length: int,
    layout: OligoLayout = OligoLayout(),
) -> Tuple[bytes, int]:
    """Reassemble a payload from recovered *strands*.

    Returns ``(payload, missing_chunks)``.  Conflicting duplicates are
    resolved first-come; missing chunks are zero-filled (the outer ECC
    layer is responsible for repairing them).
    """
    if payload_length < 1:
        raise ValueError("payload_length must be >= 1")
    n_chunks = -(-payload_length // layout.payload_bytes)
    recovered: Dict[int, bytes] = {}
    for strand in strands:
        parsed = parse_strand(strand, layout)
        if parsed is None:
            continue
        index, payload = parsed
        if index < n_chunks and index not in recovered:
            recovered[index] = payload
    missing = n_chunks - len(recovered)
    data = b"".join(
        recovered.get(i, b"\x00" * layout.payload_bytes)
        for i in range(n_chunks)
    )
    return data[:payload_length], missing


def gc_content(strand: str) -> float:
    """Fraction of G/C bases -- a synthesis-quality constraint tracked by
    real encoders (reported, not enforced, by this pipeline)."""
    if not strand:
        raise ValueError("empty strand")
    return sum(1 for ch in strand if ch in "GC") / len(strand)


def max_homopolymer_run(strand: str) -> int:
    """Longest run of one repeated base (synthesis constraint metric)."""
    if not strand:
        raise ValueError("empty strand")
    best, run = 1, 1
    for prev, cur in zip(strand, strand[1:]):
        run = run + 1 if cur == prev else 1
        best = max(best, run)
    return best
