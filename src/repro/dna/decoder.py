"""End-to-end DNA storage pipeline (paper Fig. 6b).

:class:`DNAStorageSystem` wires the whole chain together:

  payload -> RS outer code -> oligo encoding -> channel (synthesis /
  PCR / sequencing noise) -> read clustering (edit distance) ->
  per-cluster consensus -> strand parsing -> RS correction -> payload

``store`` and ``retrieve`` are separate so benches can intercept the read
pool; :class:`RetrievalReport` carries the quality and *work* statistics
(cell updates for the accelerator model) of one retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.rng import SeedLike
from repro.dna.channel import ChannelParams, DNAChannel
from repro.dna.clustering import cluster_reads
from repro.dna.consensus import consensus_sequence
from repro.dna.ecc import ReedSolomonCodec
from repro.dna.editdistance import CellUpdateCounter
from repro.dna.encoding import OligoLayout, decode_strands, encode_payload


@dataclass(frozen=True)
class RetrievalReport:
    """Outcome and accounting of one retrieval."""

    payload: Optional[bytes]
    success: bool
    num_reads: int
    num_clusters: int
    missing_chunks: int
    cell_updates: int
    comparisons: int

    def to_run_result(
        self,
        *,
        workload: str = "dna-pipeline",
        config=None,
        seed=None,
        impl=None,
        wall_time_s: float = 0.0,
        extra_metrics=None,
    ):
        """This report in the unified :class:`~repro.core.api.RunResult`
        shape (the raw payload bytes stay out of the metrics dict; the
        legacy field names remain reachable as deprecated aliases)."""
        from repro.core.api import build_run_result

        metrics = {
            "success": self.success,
            "num_reads": self.num_reads,
            "num_clusters": self.num_clusters,
            "missing_chunks": self.missing_chunks,
            "cell_updates": self.cell_updates,
            "comparisons": self.comparisons,
        }
        if extra_metrics:
            metrics.update(extra_metrics)
        return build_run_result(
            workload, metrics, config=config, seed=seed, impl=impl,
            wall_time_s=wall_time_s,
        )


class DNAStorageSystem:
    """A configured DNA storage stack.

    *rs_n*/*rs_k* set the outer Reed-Solomon code; *layout* the oligo
    geometry; *cluster_threshold* the edit-distance band used to group
    reads (defaults to ~15% of the strand length, comfortably between
    intra-strand noise and inter-strand distance).
    """

    def __init__(
        self,
        layout: OligoLayout = OligoLayout(),
        rs_n: int = 255,
        rs_k: int = 223,
        channel_params: ChannelParams = ChannelParams(),
        cluster_threshold: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        self.layout = layout
        self.codec = ReedSolomonCodec(rs_n, rs_k)
        self.channel = DNAChannel(channel_params, seed=seed)
        if cluster_threshold is None:
            cluster_threshold = max(2, layout.strand_bases * 15 // 100)
        if cluster_threshold < 0:
            raise ValueError("cluster_threshold must be non-negative")
        self.cluster_threshold = cluster_threshold

    def store(self, payload: bytes) -> List[str]:
        """Encode *payload* into the oligo pool to be 'synthesized'."""
        if not payload:
            raise ValueError("payload must be non-empty")
        coded = self.codec.encode_blocks(payload)
        return encode_payload(coded, self.layout)

    def coded_length(self, payload_length: int) -> int:
        """RS-coded byte length for a payload of *payload_length*."""
        if payload_length < 1:
            raise ValueError("payload_length must be >= 1")
        blocks = -(-payload_length // self.codec.k)
        return blocks * self.codec.n

    def retrieve(
        self, reads: List[str], payload_length: int
    ) -> RetrievalReport:
        """Decode a pool of noisy *reads* back into the payload."""
        if payload_length < 1:
            raise ValueError("payload_length must be >= 1")
        counter = CellUpdateCounter()
        clustering = cluster_reads(
            reads, self.cluster_threshold, counter=counter
        )
        consensi = []
        for cluster in clustering.clusters:
            if cluster.size < 2:
                # Singletons are usually junk reads; keep them anyway --
                # the strand parser discards malformed ones.
                consensi.append(cluster.reads[0])
            else:
                consensi.append(consensus_sequence(cluster.reads))
        coded_len = self.coded_length(payload_length)
        coded, missing = decode_strands(consensi, coded_len, self.layout)
        payload = self.codec.decode_blocks(coded, payload_length)
        return RetrievalReport(
            payload=payload,
            success=payload is not None,
            num_reads=len(reads),
            num_clusters=clustering.num_clusters,
            missing_chunks=missing,
            cell_updates=counter.cells,
            comparisons=clustering.comparisons,
        )

    def roundtrip(self, payload: bytes) -> RetrievalReport:
        """Store, transmit through the channel, retrieve."""
        strands = self.store(payload)
        reads = self.channel.transmit(strands)
        return self.retrieve(reads, len(payload))
