"""DNA storage adapter for the unified :class:`~repro.core.api.Workload`
contract: one evaluation round-trips a seeded payload through the full
Fig. 6b pipeline (RS code -> oligos -> noisy channel -> clustering ->
consensus -> RS decode) and reports quality and accelerator work."""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.core.api import RunResult, register_workload
from repro.core.errors import ValidationError


class DNAPipelineWorkload:
    """``dna-pipeline``: end-to-end DNA storage round trip."""

    name = "dna-pipeline"

    def space(self) -> Dict[str, tuple]:
        return {
            "payload_bytes": (32, 64, 128),
            "rs_n": (63, 127, 255),
            "rs_k": (47, 111, 223),
            "mean_coverage": (6.0, 10.0, 16.0),
            "substitution_rate": (0.01, 0.003, 0.03),
            "indel_rate": (0.005, 0.001, 0.01),
        }

    def evaluate(
        self,
        config: Mapping[str, Any],
        *,
        seed: int = 0,
        impl: Optional[str] = None,
    ) -> RunResult:
        from repro.dna.channel import ChannelParams
        from repro.dna.decoder import DNAStorageSystem

        if impl not in (None, "scalar", "numpy", "jit"):
            raise ValidationError(
                f"dna-pipeline supports impl=None|'scalar'|'numpy'|'jit', "
                f"got {impl!r}"
            )
        cfg = dict(config)
        payload_bytes = int(cfg["payload_bytes"])
        indel = float(cfg.get("indel_rate", 0.005))
        params = ChannelParams(
            substitution_rate=float(cfg.get("substitution_rate", 0.01)),
            insertion_rate=indel,
            deletion_rate=indel,
            mean_coverage=float(cfg.get("mean_coverage", 10.0)),
        )
        seq = np.random.SeedSequence([seed, payload_bytes])
        payload_rng, channel_seed = seq.spawn(2)
        payload = bytes(
            int(v)
            for v in np.random.default_rng(payload_rng).integers(
                0, 256, payload_bytes
            )
        )
        system = DNAStorageSystem(
            rs_n=int(cfg.get("rs_n", 63)),
            rs_k=int(cfg.get("rs_k", 47)),
            channel_params=params,
            seed=np.random.default_rng(channel_seed),
        )
        start = time.perf_counter()
        report = system.roundtrip(payload)
        wall = time.perf_counter() - start
        return report.to_run_result(
            workload=self.name, config=cfg, seed=seed, impl=impl,
            wall_time_s=wall,
            extra_metrics={"payload_match": report.payload == payload},
        )


register_workload(DNAPipelineWorkload())
