"""Levenshtein (edit) distance kernels (paper Sec. VI, refs [27]-[35]).

Three implementations with identical semantics and very different cost
profiles, mirroring the algorithm landscape the paper surveys:

- :func:`levenshtein` -- the full O(n*m) dynamic program, the reference;
- :func:`levenshtein_banded` -- banded DP answering "is the distance at
  most k?" in O(k*min(n,m)), the pre-filter used by clustering;
- :func:`levenshtein_myers` -- Myers' bit-parallel algorithm, one DP
  column per machine word, the algorithm the project's FPGA accelerator
  [35] parallelizes in hardware.

All kernels optionally report *cell updates*, the CUPS currency in which
the paper quotes accelerator throughput (16.8 TCUPS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.jit import resolve_impl
from repro.perf import profiled


@dataclass
class CellUpdateCounter:
    """Accumulates DP cell updates (the 'CU' in CUPS)."""

    cells: int = 0

    def charge(self, count: int) -> None:
        if count < 0:
            raise ValueError("cell count must be non-negative")
        self.cells += count


def levenshtein(
    a: str, b: str, counter: Optional[CellUpdateCounter] = None
) -> int:
    """Exact edit distance via the full dynamic program (two-row,
    vectorized over the inner loop)."""
    if len(a) < len(b):
        a, b = b, a
    if not b:
        if counter is not None:
            counter.charge(0)
        return len(a)
    a_codes = np.frombuffer(a.encode("utf-8"), dtype=np.uint8)
    b_codes = np.frombuffer(b.encode("utf-8"), dtype=np.uint8)
    cols = np.arange(1, len(b_codes) + 1, dtype=np.int64)
    previous = np.arange(len(b_codes) + 1, dtype=np.int64)
    current = np.empty_like(previous)
    for i, ca in enumerate(a_codes, start=1):
        current[0] = i
        # Substitutions and deletions vectorize directly.
        np.minimum(
            previous[:-1] + (b_codes != ca), previous[1:] + 1, out=current[1:]
        )
        # Insertions chain left-to-right: final[j] = min_k (tmp[k] + j - k)
        # = j + prefix-min(tmp[k] - k), computed in C by
        # minimum.accumulate.  (The k = 0 boundary term i + j is always
        # dominated because tmp[1] <= i + 1.)
        shifted = current[1:] - cols
        np.minimum.accumulate(shifted, out=shifted)
        np.minimum(current[1:], shifted + cols, out=current[1:])
        previous, current = current, previous
    if counter is not None:
        counter.charge(len(a_codes) * len(b_codes))
    return int(previous[-1])


def levenshtein_reference(a: str, b: str) -> int:
    """Plain-Python reference DP (used to validate the optimized
    kernels in the test suite)."""
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (ca != cb),
                )
            )
        previous = current
    return previous[-1]


@profiled("dna.levenshtein_banded")
def levenshtein_banded(
    a: str,
    b: str,
    band: int,
    counter: Optional[CellUpdateCounter] = None,
    impl: str = "numpy",
) -> Optional[int]:
    """Edit distance if it is at most *band*, else ``None``.

    Classic Ukkonen band: only DP cells with ``|i - j| <= band`` are
    evaluated.  Used as the cheap pre-filter in read clustering -- two
    reads of the same strand differ by a handful of edits, unrelated
    reads by hundreds.

    ``impl`` selects the kernel: ``"scalar"`` is the dict-based
    reference DP; ``"numpy"`` (default) evaluates each band row as one
    vector operation (substitution/deletion elementwise, the insertion
    chain by prefix-minimum); ``"jit"`` runs the numba-compiled flat
    band loop of :mod:`repro.dna.jitkernels` -- the fastest tier at
    clustering-scale bands -- and degrades gracefully to ``"numpy"``
    when numba is not installed.  All tiers return the identical
    distance, early exit row, and cell-update charge.  Non-ASCII inputs
    fall back to the scalar path (the fast kernels compare byte codes).
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    if impl not in ("scalar", "numpy", "jit"):
        raise ValueError(
            f"impl must be 'scalar', 'numpy' or 'jit', got {impl!r}"
        )
    if abs(len(a) - len(b)) > band:
        return None
    if len(a) < len(b):
        a, b = b, a
    impl = resolve_impl(impl)  # "jit" -> "numpy" on numba-free installs
    if impl != "scalar":
        a_codes = np.frombuffer(a.encode("utf-8"), dtype=np.uint8)
        b_codes = np.frombuffer(b.encode("utf-8"), dtype=np.uint8)
        if len(a_codes) == len(a) and len(b_codes) == len(b):
            if impl == "jit":
                return _banded_jit(a_codes, b_codes, band, counter)
            return _banded_numpy(a_codes, b_codes, band, counter)
    return _banded_scalar(a, b, band, counter)


def _banded_jit(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    band: int,
    counter: Optional[CellUpdateCounter],
) -> Optional[int]:
    """Adapter over the compiled band kernel (``None`` verdicts travel
    as ``-1`` through the nopython boundary)."""
    from repro.dna.jitkernels import banded_kernel

    distance, cells = banded_kernel(a_codes, b_codes, band)
    if counter is not None:
        counter.charge(int(cells))
    return None if distance < 0 else int(distance)


def _banded_scalar(
    a: str, b: str, band: int, counter: Optional[CellUpdateCounter]
) -> Optional[int]:
    """Reference banded DP over dicts (callers pre-sort ``len(a) >=
    len(b)`` and pre-check the length gap)."""
    n, m = len(a), len(b)
    inf = band + 1
    previous = {j: j for j in range(min(band, m) + 1)}
    cells = len(previous)
    for i in range(1, n + 1):
        lo = max(0, i - band)
        hi = min(m, i + band)
        current = {}
        for j in range(lo, hi + 1):
            if j == 0:
                current[j] = i
                continue
            best = previous.get(j - 1, inf) + (a[i - 1] != b[j - 1])
            best = min(best, previous.get(j, inf) + 1)
            best = min(best, current.get(j - 1, inf) + 1)
            current[j] = best
        cells += len(current)
        if min(current.values()) > band:
            if counter is not None:
                counter.charge(cells)
            return None
        previous = current
    if counter is not None:
        counter.charge(cells)
    distance = previous.get(m, inf)
    return distance if distance <= band else None


def _banded_numpy(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    band: int,
    counter: Optional[CellUpdateCounter],
) -> Optional[int]:
    """Vectorized band rows; bit-identical to :func:`_banded_scalar`.

    Row *i* evaluates columns ``[lo, hi]``.  The substitution/deletion
    terms vectorize directly against the previous row (missing cells are
    ``inf = band + 1``, mirroring the dict ``.get`` default); the
    left-to-right insertion chain ``cur[j] = min(tmp[j], cur[j-1] + 1)``
    is the prefix-minimum ``cur[j] = j + min_{k<=j}(tmp[k] - k)``,
    computed in C by ``np.minimum.accumulate``.  Integer arithmetic
    throughout, so equality with the scalar path is exact.
    """
    n, m = len(a_codes), len(b_codes)
    inf = band + 1
    p_lo = 0
    previous = np.arange(min(band, m) + 1, dtype=np.int64)
    cells = previous.size
    for i in range(1, n + 1):
        lo = max(0, i - band)
        hi = min(m, i + band)
        width = hi - lo + 1
        # Substitution + deletion terms for columns max(lo, 1) .. hi.
        j0 = max(lo, 1)
        sub = (b_codes[j0 - 1 : hi] != a_codes[i - 1]).astype(np.int64)
        diag = _band_window(previous, p_lo, j0 - 1, hi - 1, inf) + sub
        up = _band_window(previous, p_lo, j0, hi, inf) + 1
        tmp = np.empty(width, dtype=np.int64)
        tmp[j0 - lo :] = np.minimum(diag, up)
        if lo == 0:
            tmp[0] = i  # boundary cell D[i, 0], fixed -- seeds the chain
        # Insertion chain as prefix-min of tmp[k] - k.
        offsets = np.arange(width, dtype=np.int64)
        chain = np.minimum.accumulate(tmp - offsets) + offsets
        current = np.minimum(tmp, chain)
        if lo == 0:
            current[0] = i
        cells += width
        if current.min() > band:
            if counter is not None:
                counter.charge(int(cells))
            return None
        previous, p_lo = current, lo
    if counter is not None:
        counter.charge(int(cells))
    if p_lo <= m <= p_lo + previous.size - 1:
        distance = int(previous[m - p_lo])
    else:
        distance = inf
    return distance if distance <= band else None


def _band_window(
    row: np.ndarray, row_lo: int, lo: int, hi: int, inf: int
) -> np.ndarray:
    """Columns ``lo..hi`` of a stored band *row* starting at *row_lo*,
    padding out-of-band positions with *inf*."""
    out = np.full(hi - lo + 1, inf, dtype=np.int64)
    src_lo = max(lo, row_lo)
    src_hi = min(hi, row_lo + row.size - 1)
    if src_lo <= src_hi:
        out[src_lo - lo : src_hi - lo + 1] = row[
            src_lo - row_lo : src_hi - row_lo + 1
        ]
    return out


def levenshtein_myers(
    a: str, b: str, counter: Optional[CellUpdateCounter] = None
) -> int:
    """Myers' bit-parallel edit distance.

    Processes one DP column per text character with O(1) word operations
    (Python integers act as arbitrary-width words, so any pattern length
    works in a single block).  This is the bit-vector formulation the
    project's FPGA accelerator implements with hardware parallelism.
    """
    pattern, text = a, b
    m = len(pattern)
    if m == 0:
        if counter is not None:
            counter.charge(0)
        return len(text)
    mask = (1 << m) - 1
    peq = {}
    for i, ch in enumerate(pattern):
        peq[ch] = peq.get(ch, 0) | (1 << i)
    pv = mask
    mv = 0
    score = m
    high_bit = 1 << (m - 1)
    for ch in text:
        eq = peq.get(ch, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        if ph & high_bit:
            score += 1
        elif mh & high_bit:
            score -= 1
        ph = ((ph << 1) | 1) & mask
        mh = (mh << 1) & mask
        pv = (mh | (~(xv | ph) & mask)) & mask
        mv = ph & xv
    if counter is not None:
        counter.charge(m * len(text))
    return score


def pairwise_distance_matrix(
    sequences: list,
    kernel=levenshtein_myers,
    counter: Optional[CellUpdateCounter] = None,
) -> np.ndarray:
    """Symmetric all-pairs edit-distance matrix (the accelerator's
    batch workload)."""
    n = len(sequences)
    matrix = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        for j in range(i + 1, n):
            d = kernel(sequences[i], sequences[j], counter)
            matrix[i, j] = matrix[j, i] = d
    return matrix
