"""DNA storage channel simulator (paper Fig. 6b, ref [26]).

"A distinctive feature of the DNA channel is that the input consists of
numerous strings of similar lengths that share a certain degree of
similarity."  The channel applies, per stored oligo:

1. **PCR amplification skew** -- the number of sequenced copies per oligo
   follows a (rounded, clipped) log-normal distribution;
2. **strand dropout** -- some oligos receive zero reads;
3. **per-base noise** -- each copy independently suffers substitutions,
   insertions and deletions at configurable rates (the error profile of
   synthesis + sequencing, the parametrization used by the DNAssim
   framework the project accelerates [26]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.rng import SeedLike, make_rng
from repro.dna.encoding import BASES


@dataclass(frozen=True)
class ChannelParams:
    """Error and coverage parameters of the storage channel."""

    substitution_rate: float = 0.01
    insertion_rate: float = 0.005
    deletion_rate: float = 0.005
    mean_coverage: float = 10.0
    coverage_sigma: float = 0.5
    dropout_rate: float = 0.0

    def __post_init__(self) -> None:
        rates = (
            self.substitution_rate,
            self.insertion_rate,
            self.deletion_rate,
            self.dropout_rate,
        )
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise ValueError("rates must be in [0, 1]")
        if self.substitution_rate + self.insertion_rate + self.deletion_rate > 1.0:
            raise ValueError("combined per-base error rates exceed 1")
        if self.mean_coverage <= 0:
            raise ValueError("mean coverage must be positive")
        if self.coverage_sigma < 0:
            raise ValueError("coverage sigma must be non-negative")

    @property
    def total_error_rate(self) -> float:
        return (
            self.substitution_rate + self.insertion_rate + self.deletion_rate
        )


class DNAChannel:
    """Stochastic synthesis/PCR/sequencing channel."""

    def __init__(
        self, params: ChannelParams = ChannelParams(), seed: SeedLike = None
    ) -> None:
        self.params = params
        self._rng = make_rng(seed)

    def corrupt_strand(self, strand: str) -> str:
        """One noisy read of *strand*."""
        if not strand:
            raise ValueError("empty strand")
        p = self.params
        out: List[str] = []
        for base in strand:
            # Insertion before this base (geometric with one draw --
            # multiple insertions arise across positions).
            if self._rng.random() < p.insertion_rate:
                out.append(BASES[self._rng.integers(4)])
            roll = self._rng.random()
            if roll < p.deletion_rate:
                continue
            if roll < p.deletion_rate + p.substitution_rate:
                choices = [b for b in BASES if b != base]
                out.append(choices[self._rng.integers(3)])
            else:
                out.append(base)
        if self._rng.random() < p.insertion_rate:
            out.append(BASES[self._rng.integers(4)])
        return "".join(out)

    def copy_count(self) -> int:
        """Sequencing copies of one oligo (log-normal PCR skew)."""
        p = self.params
        if self._rng.random() < p.dropout_rate:
            return 0
        # Log-normal with median = mean_coverage.
        count = self._rng.lognormal(
            mean=math.log(p.mean_coverage), sigma=p.coverage_sigma
        )
        return max(0, int(round(count)))

    def transmit(self, strands: List[str]) -> List[str]:
        """All reads for a pool of stored *strands*, shuffled (the pool is
        unordered -- recovering order is the decoder's job)."""
        if not strands:
            raise ValueError("strand pool must be non-empty")
        reads: List[str] = []
        for strand in strands:
            for _ in range(self.copy_count()):
                reads.append(self.corrupt_strand(strand))
        self._rng.shuffle(reads)
        return reads
