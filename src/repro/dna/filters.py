"""Approximate distance pre-filters (paper Sec. VI, refs [33], [34]).

"Alternative solutions are based on approximated distance techniques
between strings, although struggling in terms of edit/s figure of
merit."  This module implements the standard q-gram pre-filter family
(Shouji/SneakySnake-class): a cheap necessary condition that two strings
are within *k* edits, used to discard obviously-distant pairs before the
exact (expensive) kernel runs.

The q-gram lemma: one edit destroys at most *q* of a string's q-grams,
so if ``edit(a, b) <= k`` the q-gram profiles of *a* and *b* share at
least ``max(len) - q + 1 - k*q`` grams.  The filter is *complete* (never
rejects a true match -- property-tested) but not *sound* (may pass
distant pairs); the pipeline pays an exact verification for survivors.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Tuple

from repro.dna.editdistance import CellUpdateCounter, levenshtein_banded


def qgram_profile(sequence: str, q: int = 3) -> Counter:
    """Multiset of the q-grams of *sequence*."""
    if q < 1:
        raise ValueError("q must be >= 1")
    if len(sequence) < q:
        return Counter()
    return Counter(sequence[i : i + q] for i in range(len(sequence) - q + 1))


def qgram_distance_lower_bound(a: str, b: str, q: int = 3) -> float:
    """Lower bound on ``edit(a, b)`` from the q-gram lemma.

    ``edit >= (|profile difference|) / (2q)`` plus the length-difference
    bound; never exceeds the true distance (property-tested).
    """
    profile_a = qgram_profile(a, q)
    profile_b = qgram_profile(b, q)
    mismatch = sum(((profile_a - profile_b) + (profile_b - profile_a)).values())
    return max(mismatch / (2.0 * q), abs(len(a) - len(b)))


def qgram_filter(a: str, b: str, k: int, q: int = 3) -> bool:
    """True if the pair *might* be within *k* edits (filter passes)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return qgram_distance_lower_bound(a, b, q) <= k


@dataclass
class FilteredSearchStats:
    """Accounting of a filtered similarity search."""

    pairs: int
    filtered_out: int
    verified: int
    matches: int
    cell_updates: int

    @property
    def filter_rate(self) -> float:
        """Fraction of pairs the cheap filter discarded."""
        return self.filtered_out / self.pairs if self.pairs else 0.0


def filtered_all_pairs_within(
    sequences: List[str],
    k: int,
    q: int = 3,
    use_filter: bool = True,
) -> Tuple[List[Tuple[int, int]], FilteredSearchStats]:
    """All pairs within *k* edits, with optional q-gram pre-filtering.

    Returns the matching index pairs and the work statistics; with
    ``use_filter=False`` every pair pays the banded verification, giving
    the exact-only baseline the paper's FPGA accelerates.
    """
    counter = CellUpdateCounter()
    matches: List[Tuple[int, int]] = []
    pairs = 0
    filtered_out = 0
    verified = 0
    for i in range(len(sequences)):
        for j in range(i + 1, len(sequences)):
            pairs += 1
            if use_filter and not qgram_filter(
                sequences[i], sequences[j], k, q
            ):
                filtered_out += 1
                continue
            verified += 1
            distance = levenshtein_banded(
                sequences[i], sequences[j], band=k, counter=counter
            )
            if distance is not None:
                matches.append((i, j))
    return matches, FilteredSearchStats(
        pairs=pairs,
        filtered_out=filtered_out,
        verified=verified,
        matches=len(matches),
        cell_updates=counter.cells,
    )
