"""Compiled (``impl="jit"``) banded edit-distance kernel.

At clustering-scale bands (16-64 cells) the numpy band rows of
:func:`repro.dna.editdistance.levenshtein_banded` are a dozen elements
wide: ufunc dispatch overhead eats the vectorization win and profiling
shows >2x left on the table versus compiled code.  This kernel is the
scalar band DP written as flat int64 loops -- exactly the shape numba's
nopython mode compiles to tight machine code -- decorated with the soft
:func:`repro.core.jit.njit` shim, so on numba-free installs it still
*runs* (as plain Python) and the equivalence suite can pin bit-exactness
against the scalar oracle everywhere.

Semantics are byte-for-byte those of ``_banded_scalar``: same cell-update
charges, same early-exit row, same distances.
"""

from __future__ import annotations

import numpy as np

from repro.core.jit import njit, timed_first_call


@timed_first_call("dna.banded")
@njit(cache=True)
def banded_kernel(
    a_codes: np.ndarray, b_codes: np.ndarray, band: int
) -> tuple:
    """Banded Levenshtein DP over byte codes.

    Returns ``(distance, cells)`` with ``distance = -1`` when the true
    distance exceeds *band* (the ``None`` verdict).  Callers pre-sort
    ``len(a) >= len(b)`` and pre-check the length gap, mirroring the
    scalar reference.
    """
    n = a_codes.shape[0]
    m = b_codes.shape[0]
    inf = band + 1
    previous = np.full(m + 2, inf, dtype=np.int64)
    current = np.full(m + 2, inf, dtype=np.int64)
    first_hi = min(band, m)
    for j in range(first_hi + 1):
        previous[j] = j
    cells = first_hi + 1
    for i in range(1, n + 1):
        lo = max(0, i - band)
        hi = min(m, i + band)
        if lo >= 1:
            # The recycled row buffer still holds cells from two rows
            # back; the in-row read ``current[j - 1]`` at ``j == lo``
            # must see the out-of-band default instead.
            current[lo - 1] = inf
        row_min = inf
        for j in range(lo, hi + 1):
            if j == 0:
                current[0] = i
            else:
                best = previous[j - 1] + (
                    0 if a_codes[i - 1] == b_codes[j - 1] else 1
                )
                up = previous[j] + 1
                if up < best:
                    best = up
                left = current[j - 1] + 1
                if left < best:
                    best = left
                current[j] = best
            if current[j] < row_min:
                row_min = current[j]
        cells += hi - lo + 1
        if row_min > band:
            return -1, cells
        # Fence the band edges so the next row's out-of-band reads see
        # the dict ``.get`` default the scalar reference uses.
        if lo - 1 >= 0:
            current[lo - 1] = inf
        current[hi + 1] = inf
        swap = previous
        previous = current
        current = swap
    distance = previous[m]
    if distance > band:
        return -1, cells
    return distance, cells
