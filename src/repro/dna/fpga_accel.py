"""FPGA edit-distance accelerator performance model (paper Sec. VI, [35]).

The project's custom accelerator on an AMD-Xilinx Alveo U50 "uses nearly
90% of FPGA basic-block hardware resources, achieving about 90% computing
efficiency while delivering a maximum throughput of 16.8 TCUPS and an
energy efficiency of 46 Mpair/Joule."

We cannot synthesize for the U50, so this model reconstructs those
figures from the architecture: a grid of bit-parallel Myers processing
elements, each retiring ``word_bits`` DP cells per cycle (one 64-bit
column step), replicated until the device LUT budget is exhausted.

  peak CUPS = PEs * word_bits * f_clk
  sustained = peak * efficiency

The default configuration reproduces the published operating point within
a few percent; the model's sweeps (sequence length, PE count, frequency)
drive the Fig. 6 bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.units import GIGA, MEGA, TERA


#: Alveo U50 budget (public datasheet figures).
ALVEO_U50_LUTS = 872_000
ALVEO_U50_TDP_W = 75.0


@dataclass(frozen=True)
class EditDistanceAcceleratorModel:
    """Analytic model of the bit-parallel edit-distance accelerator."""

    word_bits: int = 64
    luts_per_pe: int = 895
    device_luts: int = ALVEO_U50_LUTS
    target_utilization: float = 0.90
    clock_mhz: float = 333.0
    computing_efficiency: float = 0.90
    board_power_w: float = 58.0

    def __post_init__(self) -> None:
        if self.word_bits < 1 or self.luts_per_pe < 1 or self.device_luts < 1:
            raise ValueError("sizes must be positive")
        if not 0 < self.target_utilization <= 1:
            raise ValueError("utilization must be in (0, 1]")
        if not 0 < self.computing_efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if self.clock_mhz <= 0 or self.board_power_w <= 0:
            raise ValueError("clock and power must be positive")

    @property
    def num_pes(self) -> int:
        """Processing elements fitting in the targeted LUT budget."""
        return int(self.device_luts * self.target_utilization // self.luts_per_pe)

    @property
    def resource_utilization(self) -> float:
        """Achieved fraction of device LUTs."""
        return self.num_pes * self.luts_per_pe / self.device_luts

    @property
    def peak_cups(self) -> float:
        """Peak cell updates per second."""
        return self.num_pes * self.word_bits * self.clock_mhz * MEGA

    @property
    def sustained_cups(self) -> float:
        """Sustained CUPS after pipeline stalls / host transfers."""
        return self.peak_cups * self.computing_efficiency

    @property
    def sustained_tcups(self) -> float:
        return self.sustained_cups / TERA

    def pairs_per_second(self, seq_len_a: int, seq_len_b: int) -> float:
        """Sequence-pair comparisons per second at the given lengths."""
        if seq_len_a < 1 or seq_len_b < 1:
            raise ValueError("sequence lengths must be positive")
        cells = seq_len_a * seq_len_b
        return self.sustained_cups / cells

    def pairs_per_joule(self, seq_len_a: int, seq_len_b: int) -> float:
        """Energy efficiency in pairs/joule."""
        return self.pairs_per_second(seq_len_a, seq_len_b) / self.board_power_w

    def time_for_cells(self, cell_updates: int) -> float:
        """Seconds to retire *cell_updates* DP cells."""
        if cell_updates < 0:
            raise ValueError("cell updates must be non-negative")
        return cell_updates / self.sustained_cups

    def energy_for_cells(self, cell_updates: int) -> float:
        """Joules to retire *cell_updates* DP cells."""
        return self.time_for_cells(cell_updates) * self.board_power_w


@dataclass(frozen=True)
class SoftwareBaselineModel:
    """Single-core software DP baseline for speedup comparisons.

    A tuned scalar inner loop retires roughly one DP cell per ~1.5 cycles
    on a ~3 GHz server core; the bit-parallel software variant (Myers on
    64-bit words) improves on it by ~word/4 in practice.
    """

    cells_per_second: float = 2.0 * GIGA
    cpu_power_w: float = 120.0

    def time_for_cells(self, cell_updates: int) -> float:
        if cell_updates < 0:
            raise ValueError("cell updates must be non-negative")
        return cell_updates / self.cells_per_second

    def energy_for_cells(self, cell_updates: int) -> float:
        return self.time_for_cells(cell_updates) * self.cpu_power_w
