"""Reed-Solomon outer code over GF(256) (paper Sec. VI, ref [25]).

The robustness of DNA storage rests on "error-correcting codes" wrapped
around the payload (Grass et al. [25] use Reed-Solomon).  This is a
complete from-scratch RS(n, k) codec: GF(2^8) arithmetic with the 0x11D
primitive polynomial, systematic encoding by polynomial division, and
Peterson-Gorenstein-Zierler decoding (syndrome matrix solve for the error
locator, exhaustive Chien-style root search, Vandermonde solve for the
magnitudes).  PGZ is O(t^3) per codeword, entirely adequate for the small
parity budgets DNA pipelines use, and straightforwardly verifiable -- the
decoder re-checks the syndromes of its own correction before accepting it.

The codec corrects up to ``t = (n - k) // 2`` byte errors per codeword --
including the zero-filled chunks left by dropped strands.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.perf import profiled

_PRIMITIVE_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1
_FIELD_SIZE = 256

# Exponential/log tables for GF(256).
_EXP = [0] * (2 * _FIELD_SIZE)
_LOG = [0] * _FIELD_SIZE


def _build_tables() -> None:
    value = 1
    for power in range(_FIELD_SIZE - 1):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLY
    for power in range(_FIELD_SIZE - 1, 2 * _FIELD_SIZE):
        _EXP[power] = _EXP[power - (_FIELD_SIZE - 1)]


_build_tables()


def _build_mul_table() -> np.ndarray:
    """Full 256 x 256 GF(256) product table (64 KiB, built once).

    ``_MUL_TABLE[a, b] == gf_mul(a, b)``: one gather replaces the
    log/antilog lookups and the zero-operand branch, which is what lets
    the vectorized codec paths do a whole row of multiplies per step.
    """
    exp = np.asarray(_EXP, dtype=np.int64)
    log = np.asarray(_LOG, dtype=np.int64)
    table = exp[log[:, None] + log[None, :]]
    table[0, :] = 0
    table[:, 0] = 0
    return table.astype(np.uint8)


_MUL_TABLE = _build_mul_table()


def gf_mul(a: int, b: int) -> int:
    """Multiply in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_div(a: int, b: int) -> int:
    """Divide in GF(256); division by zero raises."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return _EXP[_LOG[a] - _LOG[b] + (_FIELD_SIZE - 1)]


def gf_pow(a: int, n: int) -> int:
    """a**n in GF(256) (with 0**0 == 1)."""
    if a == 0:
        return 0 if n else 1
    return _EXP[(_LOG[a] * n) % (_FIELD_SIZE - 1)]


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    return gf_div(1, a)


def gf_solve(matrix: List[List[int]], rhs: List[int]) -> Optional[List[int]]:
    """Solve ``matrix @ x = rhs`` over GF(256) by Gaussian elimination.

    Returns ``None`` when the matrix is singular.  Sizes are tiny (at
    most ``t x t``), so clarity beats asymptotics here.
    """
    size = len(matrix)
    if any(len(row) != size for row in matrix) or len(rhs) != size:
        raise ValueError("matrix must be square and aligned with rhs")
    aug = [list(row) + [val] for row, val in zip(matrix, rhs)]
    for col in range(size):
        pivot = next(
            (r for r in range(col, size) if aug[r][col] != 0), None
        )
        if pivot is None:
            return None
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = gf_inverse(aug[col][col])
        aug[col] = [gf_mul(v, inv) for v in aug[col]]
        for r in range(size):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [
                    v ^ gf_mul(factor, p) for v, p in zip(aug[r], aug[col])
                ]
    return [row[-1] for row in aug]


def _poly_mul(p: List[int], q: List[int]) -> List[int]:
    out = [0] * (len(p) + len(q) - 1)
    for i, pi in enumerate(p):
        if pi == 0:
            continue
        for j, qj in enumerate(q):
            out[i + j] ^= gf_mul(pi, qj)
    return out


def _poly_eval(poly: List[int], x: int) -> int:
    """Evaluate *poly* (highest-degree coefficient first) at *x*."""
    result = 0
    for coeff in poly:
        result = gf_mul(result, x) ^ coeff
    return result


def _poly_eval_many(poly: List[int], xs: np.ndarray) -> np.ndarray:
    """Evaluate *poly* at every point of *xs* (Horner, one table gather
    per coefficient instead of one multiply per point)."""
    result = np.zeros(xs.shape, dtype=np.uint8)
    for coeff in poly:
        result = _MUL_TABLE[result, xs] ^ coeff
    return result


class ReedSolomonCodec:
    """Systematic RS(n, k) codec over GF(256).

    *n* is the codeword length (<= 255), *k* the message length; the code
    corrects up to ``t = (n - k) // 2`` byte errors anywhere in the
    codeword.  Codeword convention: ``c(x) = m(x) x^(n-k) + parity(x)``
    with byte 0 the highest-degree coefficient.

    ``impl="scalar"`` runs the per-byte ``gf_mul`` loops (the reference);
    ``impl="numpy"`` (default) replaces the inner multiply loops with
    gathers into the precomputed product table -- encode folds a whole
    generator row per byte, the syndromes are one table gather plus an
    XOR reduction, and the Chien search evaluates the locator at all *n*
    points at once.  GF(256) arithmetic is exact either way, so both
    produce identical bytes.
    """

    def __init__(self, n: int, k: int, impl: str = "numpy") -> None:
        if not 1 <= k < n <= 255:
            raise ValueError("require 1 <= k < n <= 255")
        if impl not in ("scalar", "numpy"):
            raise ValueError(
                f"impl must be 'scalar' or 'numpy', got {impl!r}"
            )
        self.n = n
        self.k = k
        self.n_parity = n - k
        self.impl = impl
        # Generator polynomial: product of (x - alpha^i), i = 0..n-k-1.
        gen = [1]
        for i in range(self.n_parity):
            gen = _poly_mul(gen, [1, gf_pow(2, i)])
        self._generator = gen
        # Lookup rows for the vectorized paths, built once per codec.
        # Tail of the (monic) generator: the row XORed into the
        # remainder per message byte during systematic encoding.
        self._gen_tail = np.asarray(gen[1:], dtype=np.uint8)
        # Syndrome powers: S_i = sum_j c_j * alpha^{i * (n - 1 - j)}
        # (byte 0 is the highest-degree coefficient).
        degrees = np.arange(n - 1, -1, -1, dtype=np.int64)
        rows = np.arange(self.n_parity, dtype=np.int64)[:, None]
        exp = np.asarray(_EXP, dtype=np.int64)
        self._syndrome_powers = exp[
            (rows * degrees[None, :]) % (_FIELD_SIZE - 1)
        ].astype(np.uint8)
        # Chien-search points: alpha^{-degree} for degree = 0..n-1.
        self._inv_alpha = np.asarray(
            [gf_inverse(gf_pow(2, d)) for d in range(n)], dtype=np.uint8
        )

    @property
    def t(self) -> int:
        """Maximum correctable byte errors per codeword."""
        return self.n_parity // 2

    @property
    def overhead(self) -> float:
        """Parity overhead fraction ``(n - k) / k``."""
        return self.n_parity / self.k

    @profiled("dna.rs_encode")
    def encode(self, message: bytes) -> bytes:
        """Systematic encoding: message followed by parity bytes."""
        if len(message) != self.k:
            raise ValueError(f"message must be {self.k} bytes")
        if self.impl == "numpy":
            remainder = np.zeros(self.n, dtype=np.uint8)
            remainder[: self.k] = np.frombuffer(message, dtype=np.uint8)
            width = self._gen_tail.size
            for i in range(self.k):
                coef = remainder[i]
                if coef:
                    # One table gather multiplies the whole generator
                    # tail by coef; XOR folds it into the remainder.
                    remainder[i + 1 : i + 1 + width] ^= _MUL_TABLE[
                        self._gen_tail, coef
                    ]
            return bytes(message) + remainder[self.k :].tobytes()
        remainder = list(message) + [0] * self.n_parity
        for i in range(self.k):
            coef = remainder[i]
            if coef == 0:
                continue
            for j in range(1, len(self._generator)):
                remainder[i + j] ^= gf_mul(self._generator[j], coef)
        return bytes(message) + bytes(remainder[self.k :])

    def _syndromes(self, codeword: bytes) -> List[int]:
        if self.impl == "numpy":
            cw = np.frombuffer(codeword, dtype=np.uint8)
            products = _MUL_TABLE[self._syndrome_powers, cw[None, :]]
            return np.bitwise_xor.reduce(products, axis=1).tolist()
        return [
            _poly_eval(list(codeword), gf_pow(2, i))
            for i in range(self.n_parity)
        ]

    @profiled("dna.rs_decode")
    def decode(self, codeword: bytes) -> Optional[bytes]:
        """Decode *codeword*; returns the corrected message or ``None``
        when the errors exceed the code's correction capability."""
        if len(codeword) != self.n:
            raise ValueError(f"codeword must be {self.n} bytes")
        syndromes = self._syndromes(codeword)
        if not any(syndromes):
            return bytes(codeword[: self.k])

        for n_errors in range(self.t, 0, -1):
            locator = self._pgz_locator(syndromes, n_errors)
            if locator is None:
                continue
            corrected = self._correct_with_locator(
                codeword, syndromes, locator
            )
            if corrected is not None:
                return corrected[: self.k]
        return None

    def _pgz_locator(
        self, syndromes: List[int], n_errors: int
    ) -> Optional[List[int]]:
        """Solve the PGZ syndrome system for *n_errors* locator
        coefficients ``[lambda_1 ... lambda_v]`` (sigma(x) = 1 +
        lambda_1 x + ... + lambda_v x^v)."""
        matrix = [
            [syndromes[i + j] for j in range(n_errors)]
            for i in range(n_errors)
        ]
        rhs = [syndromes[n_errors + i] for i in range(n_errors)]
        solution = gf_solve(matrix, rhs)
        if solution is None:
            return None
        # gf_solve returns [lambda_v, ..., lambda_1] ordering per the
        # matrix layout: column j multiplies lambda_{v-j}.
        return list(reversed(solution))

    def _correct_with_locator(
        self,
        codeword: bytes,
        syndromes: List[int],
        lambdas: List[int],
    ) -> Optional[bytes]:
        # sigma(x) highest-degree first: [lambda_v, ..., lambda_1, 1].
        sigma = list(reversed(lambdas)) + [1]
        # Root search: error at codeword position p (degree n-1-p)
        # corresponds to locator root x = alpha^{-(n-1-p)}.
        if self.impl == "numpy":
            values = _poly_eval_many(sigma, self._inv_alpha)
            positions = [
                self.n - 1 - int(d) for d in np.flatnonzero(values == 0)
            ]
        else:
            positions = []
            for degree in range(self.n):
                x = gf_inverse(gf_pow(2, degree))
                if _poly_eval(sigma, x) == 0:
                    positions.append(self.n - 1 - degree)
        if len(positions) != len(lambdas):
            return None
        # Magnitudes: solve the Vandermonde system
        # S_i = sum_k e_k * (alpha^{d_k})^i for i = 0..v-1.
        degrees = [self.n - 1 - p for p in positions]
        matrix = [
            [gf_pow(gf_pow(2, d), i) for d in degrees]
            for i in range(len(positions))
        ]
        rhs = syndromes[: len(positions)]
        magnitudes = gf_solve(matrix, rhs)
        if magnitudes is None:
            return None
        corrected = bytearray(codeword)
        for pos, magnitude in zip(positions, magnitudes):
            corrected[pos] ^= magnitude
        if any(self._syndromes(bytes(corrected))):
            return None
        return bytes(corrected)

    def encode_blocks(self, data: bytes) -> bytes:
        """Encode arbitrary-length *data* as consecutive RS blocks (the
        last block zero-padded)."""
        if not data:
            raise ValueError("data must be non-empty")
        out = bytearray()
        for i in range(0, len(data), self.k):
            block = data[i : i + self.k].ljust(self.k, b"\x00")
            out.extend(self.encode(block))
        return bytes(out)

    def decode_blocks(self, coded: bytes, data_length: int) -> Optional[bytes]:
        """Decode consecutive RS blocks back to *data_length* bytes;
        ``None`` if any block is uncorrectable."""
        if len(coded) % self.n:
            raise ValueError("coded length must be a multiple of n")
        out = bytearray()
        for i in range(0, len(coded), self.n):
            block = self.decode(coded[i : i + self.n])
            if block is None:
                return None
            out.extend(block)
        if data_length > len(out):
            raise ValueError("data_length exceeds decoded size")
        return bytes(out[:data_length])
