"""Per-cluster consensus reconstruction (paper Fig. 6b, "decoding" stage).

Given the noisy reads of one cluster, the decoder must reconstruct the
stored oligo.  We use iterative alignment-and-vote: every read is aligned
to the current template with the standard edit-distance traceback, votes
are tallied per template position (including an explicit deletion vote
and the majority insertion after each position), and the template is
re-estimated; a couple of iterations converge for the error rates DNA
channels exhibit.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple


def align_to_template(read: str, template: str) -> List[Tuple[int, str]]:
    """Align *read* against *template*, returning per-template-position
    events.

    Each element is ``(position, symbol)`` where *symbol* is the read
    base matched/substituted at that template position, ``""`` for a
    deletion, and insertions are attached to the *preceding* template
    position as ``(position, "+X")``.
    """
    n, m = len(template), len(read)
    # Full DP with traceback.
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        row = dp[i]
        prev = dp[i - 1]
        tc = template[i - 1]
        for j in range(1, m + 1):
            row[j] = min(
                prev[j] + 1,
                row[j - 1] + 1,
                prev[j - 1] + (tc != read[j - 1]),
            )
    events: List[Tuple[int, str]] = []
    i, j = n, m
    while i > 0 or j > 0:
        if (
            i > 0
            and j > 0
            and dp[i][j] == dp[i - 1][j - 1] + (template[i - 1] != read[j - 1])
        ):
            events.append((i - 1, read[j - 1]))
            i, j = i - 1, j - 1
        elif i > 0 and dp[i][j] == dp[i - 1][j] + 1:
            events.append((i - 1, ""))  # deletion: template pos unmatched
            i -= 1
        else:
            events.append((i - 1, "+" + read[j - 1]))  # insertion after i-1
            j -= 1
    events.reverse()
    return events


def consensus_sequence(
    reads: List[str],
    template: Optional[str] = None,
    iterations: int = 2,
) -> str:
    """Majority-vote consensus of *reads*.

    *template* defaults to the most common read length's first
    representative.  Returns the refined consensus string.
    """
    if not reads:
        raise ValueError("need at least one read")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if template is None:
        lengths = Counter(len(r) for r in reads)
        target_len = lengths.most_common(1)[0][0]
        template = next(r for r in reads if len(r) == target_len)
    for _ in range(iterations):
        new_template = _vote_once(reads, template)
        if new_template == template:
            break
        template = new_template
    return template


def _vote_once(reads: List[str], template: str) -> str:
    """One alignment-and-vote pass against *template*."""
    position_votes: List[Counter] = [Counter() for _ in template]
    insertion_votes: List[Counter] = [Counter() for _ in range(len(template) + 1)]
    for read in reads:
        for position, symbol in align_to_template(read, template):
            if symbol.startswith("+"):
                insertion_votes[position + 1][symbol[1:]] += 1
            else:
                position_votes[position][symbol] += 1
    out: List[str] = []
    half = len(reads) / 2.0
    # Leading insertions are attached to slot 0 via position -1 + 1.
    for base, count in insertion_votes[0].most_common(1):
        if count > half:
            out.append(base)
    for pos, votes in enumerate(position_votes):
        if votes:
            symbol, _ = votes.most_common(1)[0]
            if symbol:  # "" means majority deletion -> drop the position
                out.append(symbol)
        else:
            out.append(template[pos])
        for base, count in insertion_votes[pos + 1].most_common(1):
            if count > half:
                out.append(base)
    return "".join(out)
