"""DNA-based data storage pipeline (paper Sec. VI, Fig. 6).

DNA storage encodes digital information into synthetic nucleotide strands
(Fig. 6a); retrieving it requires sequencing many noisy copies, clustering
reads by similarity -- "the similarity index is determined using the edit
distance, also known as the Levenshtein distance" -- reconstructing a
consensus per cluster and decoding through the outer error-correcting
code (Fig. 6b).  The edit-distance computation dominates the decode time,
which is why the project built a custom FPGA accelerator on an Alveo U50
delivering "a maximum throughput of 16.8 TCUPS and an energy efficiency
of 46 Mpair/Joule" at ~90% resource usage and ~90% computing efficiency.

Modules:

- :mod:`repro.dna.encoding`     -- bits <-> bases codec with addressing;
- :mod:`repro.dna.ecc`          -- Reed-Solomon outer code over GF(256);
- :mod:`repro.dna.channel`      -- synthesis/PCR/sequencing noise channel;
- :mod:`repro.dna.editdistance` -- Levenshtein kernels: full DP, banded,
  Myers bit-parallel (the FPGA algorithm);
- :mod:`repro.dna.clustering`   -- read clustering by edit distance;
- :mod:`repro.dna.consensus`    -- per-cluster consensus reconstruction;
- :mod:`repro.dna.decoder`      -- the end-to-end retrieval pipeline;
- :mod:`repro.dna.fpga_accel`   -- Alveo U50 accelerator performance model.
"""

from repro.dna.encoding import (
    BASES,
    bases_to_bits,
    bits_to_bases,
    decode_strands,
    encode_payload,
)
from repro.dna.ecc import ReedSolomonCodec
from repro.dna.channel import ChannelParams, DNAChannel
from repro.dna.editdistance import (
    levenshtein,
    levenshtein_banded,
    levenshtein_myers,
)
from repro.dna.clustering import cluster_reads
from repro.dna.consensus import consensus_sequence
from repro.dna.filters import qgram_filter, filtered_all_pairs_within
from repro.dna.stats import estimate_channel
from repro.dna.decoder import DNAStorageSystem, RetrievalReport
from repro.dna.fpga_accel import EditDistanceAcceleratorModel

__all__ = [
    "BASES",
    "bits_to_bases",
    "bases_to_bits",
    "encode_payload",
    "decode_strands",
    "ReedSolomonCodec",
    "ChannelParams",
    "DNAChannel",
    "levenshtein",
    "levenshtein_banded",
    "levenshtein_myers",
    "cluster_reads",
    "consensus_sequence",
    "qgram_filter",
    "filtered_all_pairs_within",
    "estimate_channel",
    "DNAStorageSystem",
    "RetrievalReport",
    "EditDistanceAcceleratorModel",
]
